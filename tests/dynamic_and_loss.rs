//! Cross-crate integration: churn tracking, the adaptive timer, and the
//! §5.3.1 message-loss/timeout machinery working together.

use overlay_census::core::EstimateError;
use overlay_census::prelude::*;
use overlay_census::sim::loss::{AdaptiveTimeout, LossyTopology};
use overlay_census::sim::runner::{run_dynamic, RunConfig};
use overlay_census::walk::WalkError;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn balanced_net(n: usize, seed: u64) -> (DynamicNetwork, SmallRng) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let g = generators::balanced(n, 10, &mut rng);
    (
        DynamicNetwork::new(g, JoinRule::Balanced { max_degree: 10 }),
        rng,
    )
}

#[test]
fn sample_collide_tracks_a_flash_crowd() {
    let (mut net, mut rng) = balanced_net(2_000, 1);
    let scenario = Scenario::new().add_suddenly(20, 2_000); // double the overlay
    let sc = SampleCollide::new(CtrwSampler::new(10.0), 50)
        .with_point_estimator(PointEstimator::Asymptotic);
    let records = run_dynamic(&mut net, &sc, &RunConfig::new(40), &scenario, &mut rng);
    let before = &records[..20];
    let after = &records[25..]; // a few runs of slack after the event
    let mean = |rs: &[overlay_census::sim::runner::RunRecord]| {
        rs.iter().map(|r| r.estimate).sum::<f64>() / rs.len() as f64
    };
    let (b, a) = (mean(before), mean(after));
    assert!(
        a / b > 1.6,
        "estimates should roughly double across the flash crowd: {b} -> {a}"
    );
    assert!(
        (a / 4_000.0 - 1.0).abs() < 0.3,
        "post-event estimates near 4000: {a}"
    );
}

#[test]
fn adaptive_sample_collide_works_without_knowing_the_gap() {
    let (net, mut rng) = balanced_net(3_000, 2);
    let adaptive = AdaptiveSampleCollide::new(30, 0.5)
        .with_tolerance(0.2)
        .with_max_rounds(8);
    let me = net.graph().any_peer(&mut rng).expect("non-empty");
    let steps = adaptive
        .run_with(&mut RunCtx::new(&net, &mut rng), me)
        .expect("connected");
    let last = steps.last().expect("at least one round");
    assert!(
        (last.estimate / 3_000.0 - 1.0).abs() < 0.4,
        "adaptive estimate {} vs 3000",
        last.estimate
    );
    // The procedure increased the timer at least once from its tiny start.
    assert!(steps.len() >= 2);
    assert!(last.timer > 0.5);
}

#[test]
fn lossy_walks_recover_with_adaptive_timeout_and_retries() {
    let (net, mut rng) = balanced_net(800, 3);
    let lossy = LossyTopology::new(net.graph(), 0.0002, 99);
    let mut timeout = AdaptiveTimeout::new(1_000_000, 3.0);
    let me = net.graph().any_peer(&mut rng).expect("non-empty");

    let mut estimates = OnlineMoments::new();
    let mut lost = 0u32;
    let mut attempts = 0u32;
    while estimates.count() < 300 {
        attempts += 1;
        assert!(attempts < 5_000, "retry budget exhausted");
        let rt = RandomTour::with_timeout(timeout.budget());
        match rt.estimate_with(&mut RunCtx::new(&lossy, &mut rng), me) {
            Ok(est) => {
                timeout.record(est.messages);
                estimates.push(est.value);
            }
            Err(EstimateError::Walk(WalkError::Stuck(_) | WalkError::Timeout(_))) => lost += 1,
            Err(e) => panic!("unexpected failure: {e}"),
        }
    }
    assert!(
        lost > 0,
        "0.02% per-hop loss should break some ~6000-hop tours"
    );
    // Timeout learned a sane budget: above the mean trip, far below the
    // initial guess.
    let budget = timeout.budget();
    assert!(budget < 1_000_000, "budget {budget} should have adapted");
    // Two compounding low biases are *expected* here and documented:
    // loss truncates long tours (survivorship), and the adaptive budget —
    // learned from surviving trips only — feeds that truncation back on
    // itself. The estimate must stay positive and the right order of
    // magnitude, but systematically below the truth.
    let rel = estimates.mean() / 800.0;
    assert!(
        (0.3..1.05).contains(&rel),
        "lossy mean {} should be biased low but sane",
        estimates.mean()
    );
}

#[test]
fn fragmentation_reports_the_probes_component() {
    // Remove 80% of nodes: the overlay fragments, and RT estimates match
    // the probing node's component, not the global count.
    let (mut net, mut rng) = balanced_net(1_000, 4);
    for _ in 0..800 {
        net.leave(&mut rng);
    }
    let me = net.graph().any_peer(&mut rng).expect("200 nodes remain");
    if net.graph().degree(me) == 0 {
        return; // isolated probe: nothing to estimate
    }
    let truth = net.component_size_of(me) as f64;
    let rt = RandomTour::new();
    let m: OnlineMoments = (0..3_000)
        .map(|_| {
            rt.estimate_with(&mut RunCtx::new(&net, &mut rng), me)
                .expect("probe has neighbours")
                .value
        })
        .collect();
    let err = (m.mean() - truth).abs() / m.standard_error();
    assert!(
        err < 4.0,
        "RT mean {} vs component size {truth} (total alive: {})",
        m.mean(),
        net.size()
    );
}

#[test]
fn gossip_and_walk_methods_agree_on_the_same_overlay() {
    use overlay_census::core::gossip::GossipAveraging;
    use overlay_census::graph::spectral::DenseIndex;
    let (net, mut rng) = balanced_net(1_000, 5);
    let me = net.graph().any_peer(&mut rng).expect("non-empty");

    let gossip = GossipAveraging::new(40).run_with(&mut RunCtx::new(net.graph(), &mut rng));
    let idx = DenseIndex::new(net.graph());
    let gossip_estimate = gossip.estimates[idx.dense(me)];

    let sc = SampleCollide::new(CtrwSampler::new(10.0), 50);
    let sc_estimate = sc
        .estimate_with(&mut RunCtx::new(&net, &mut rng), me)
        .expect("connected")
        .value;

    assert!(
        (gossip_estimate / sc_estimate - 1.0).abs() < 0.5,
        "gossip {gossip_estimate} vs S&C {sc_estimate}"
    );
}

//! The message-level protocol simulator and the function-level
//! estimators are two executions of the same algorithms; these tests
//! check they agree statistically on the same overlays.

use overlay_census::prelude::*;
use overlay_census::proto::{Latency, Outcome, ProtocolSim};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn overlay(n: usize, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    generators::balanced(n, 10, &mut rng)
}

#[test]
fn tour_estimates_have_the_same_mean_and_spread() {
    let g = overlay(400, 1);
    let me = g.nodes().next().expect("non-empty");
    let runs = 3_000u32;

    // Function level.
    let mut rng = SmallRng::seed_from_u64(2);
    let rt = RandomTour::new();
    let func: OnlineMoments = (0..runs)
        .map(|_| {
            rt.estimate_with(&mut RunCtx::new(&g, &mut rng), me)
                .expect("connected")
                .value
        })
        .collect();

    // Message level.
    let mut sim = ProtocolSim::new(g.clone(), Latency::Constant(1.0), 3);
    let mut proto = OnlineMoments::new();
    for _ in 0..runs / 100 {
        for _ in 0..100 {
            sim.launch_random_tour(me, None);
        }
        for c in sim.run_until_idle() {
            match c.outcome {
                Outcome::Estimate(v) => proto.push(v),
                other => panic!("unexpected outcome {other:?}"),
            }
        }
    }

    let se = (func.sample_variance() / f64::from(runs)).sqrt() * 2.0;
    assert!(
        (func.mean() - proto.mean()).abs() < 4.0 * se.max(1.0),
        "means differ: function {} vs proto {}",
        func.mean(),
        proto.mean()
    );
    let var_ratio = func.sample_variance() / proto.sample_variance();
    assert!(
        (0.5..2.0).contains(&var_ratio),
        "variances differ: {} vs {}",
        func.sample_variance(),
        proto.sample_variance()
    );
}

#[test]
fn tour_costs_match_the_cycle_formula_in_both_executions() {
    let g = overlay(300, 4);
    let me = g.nodes().next().expect("non-empty");
    let expected = g.degree_sum() as f64 / g.degree(me) as f64;
    let runs = 2_000u32;

    let mut rng = SmallRng::seed_from_u64(5);
    let rt = RandomTour::new();
    let func: OnlineMoments = (0..runs)
        .map(|_| {
            rt.estimate_with(&mut RunCtx::new(&g, &mut rng), me)
                .expect("connected")
                .messages as f64
        })
        .collect();

    let mut sim = ProtocolSim::new(g.clone(), Latency::Constant(0.5), 6);
    for _ in 0..runs {
        sim.launch_random_tour(me, None);
    }
    let proto: OnlineMoments = sim
        .run_until_idle()
        .into_iter()
        .map(|c| c.messages as f64)
        .collect();

    for (name, m) in [("function", func), ("proto", proto)] {
        let err = (m.mean() - expected).abs() / m.standard_error();
        assert!(
            err < 4.0,
            "{name} cost {} vs cycle formula {expected}",
            m.mean()
        );
    }
}

#[test]
fn sampling_distributions_agree() {
    // Same fixed initiator, same timer: both executions should put the
    // same (near-uniform) mass everywhere; compare total-variation of
    // their empirical distributions directly.
    let g = overlay(60, 7);
    let me = g.nodes().next().expect("non-empty");
    let timer = 10.0;
    let runs = 40_000u32;

    let mut rng = SmallRng::seed_from_u64(8);
    let sampler = CtrwSampler::new(timer);
    let mut counts_func = vec![0u64; g.slot_count()];
    for _ in 0..runs {
        let s = sampler.sample(&g, me, &mut rng).expect("cannot fail");
        counts_func[s.node.index()] += 1;
    }

    let mut sim = ProtocolSim::new(g.clone(), Latency::Constant(0.1), 9);
    let mut counts_proto = vec![0u64; g.slot_count()];
    for _ in 0..runs {
        sim.launch_sample(me, timer, None);
    }
    for c in sim.run_until_idle() {
        match c.outcome {
            Outcome::Sample(node) => counts_proto[node.index()] += 1,
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    let to_dist = |counts: &[u64]| {
        counts
            .iter()
            .map(|&c| c as f64 / f64::from(runs))
            .collect::<Vec<_>>()
    };
    let tv =
        overlay_census::stats::total_variation(&to_dist(&counts_func), &to_dist(&counts_proto));
    assert!(tv < 0.05, "sampling executions diverge: TV {tv}");
}

#[test]
fn sample_collide_estimates_agree_on_the_mean() {
    let n = 1_500;
    let g = overlay(n, 10);
    let me = g.nodes().next().expect("non-empty");
    let l = 20u32;
    let reps = 40;

    let mut rng = SmallRng::seed_from_u64(11);
    let sc = SampleCollide::new(CtrwSampler::new(10.0), l);
    let func: OnlineMoments = (0..reps)
        .map(|_| {
            sc.estimate_with(&mut RunCtx::new(&g, &mut rng), me)
                .expect("connected")
                .value
        })
        .collect();

    let mut sim = ProtocolSim::new(g.clone(), Latency::ExponentialMean(0.02), 12);
    for _ in 0..reps {
        sim.launch_sample_collide(me, l, 10.0, None);
    }
    let proto: OnlineMoments = sim
        .run_until_idle()
        .into_iter()
        .map(|c| match c.outcome {
            Outcome::Estimate(v) => v,
            other => panic!("unexpected outcome {other:?}"),
        })
        .collect();

    for (name, m) in [("function", &func), ("proto", &proto)] {
        assert!(
            (m.mean() / n as f64 - 1.0).abs() < 0.25,
            "{name} mean {} vs {n}",
            m.mean()
        );
    }
}

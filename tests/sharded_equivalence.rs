//! Acceptance for the sharded census: over random graphs, seeds, and
//! shard counts S ∈ {1, 2, 8}, the partitioned machinery is byte-for-byte
//! the unsharded machinery — at the walk layer (stitched segments vs the
//! serial and frontier engines: outcome, hops, draws, accumulated weight
//! bits, final RNG position, with and without injected message loss) and
//! at the service layer (`ShardedCensusService` vs `CensusService`:
//! identical outcomes and identical cost ledgers for the same seed and
//! query list).
//!
//! `scripts/check.sh` runs this file again in release mode: the segment
//! kernels are hot-path code, and optimisation must not change a single
//! bit of any fate.

use overlay_census::core::{RandomTour, SampleCollide};
use overlay_census::graph::{generators, NodeId, ShardedFrozenView, Topology};
use overlay_census::metrics::{HistogramMetric, Metric, NoopRecorder, Registry};
use overlay_census::sampling::CtrwSampler;
use overlay_census::service::{CensusService, Counter, Query, ServiceConfig, ShardedCensusService};
use overlay_census::sim::faults::FaultPlan;
use overlay_census::sim::{DynamicNetwork, JoinRule};
use overlay_census::walk::continuous::{ctrw_walk, Sojourn};
use overlay_census::walk::discrete::random_tour;
use overlay_census::walk::frontier::{ctrw_frontier, tour_frontier, CtrwSpec, TourSpec};
use overlay_census::walk::segment::{ctrw_walk_stitched, ctrw_walk_stitched_on, tour_stitched};
use overlay_census::walk::stream::{stream_seed, SplitMix64, StreamDomain};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The shard counts the acceptance criterion names: degenerate, minimal,
/// and enough to make almost every edge a cut edge.
const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

/// Walks compared per case against the serial and frontier references.
const WALKS: u64 = 8;

fn walk_rng(base: u64, i: u64) -> SplitMix64 {
    SplitMix64::new(stream_seed(StreamDomain::FrontierWalk, base, i))
}

fn visit_weight(n: NodeId) -> f64 {
    ((n.index() % 13) as f64).mul_add(0.25, 1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn stitched_ctrw_is_bit_identical_to_serial_and_frontier(
        n in 40usize..250,
        degree in 3usize..8,
        graph_seed in any::<u64>(),
        base in any::<u64>(),
        timer in 0.5f64..6.0,
    ) {
        let mut rng = SmallRng::seed_from_u64(graph_seed);
        let g = generators::balanced(n, degree, &mut rng);
        let frozen = g.freeze();
        let start = g.nodes().next().expect("non-empty");
        // Third reference: the batched frontier kernel on the same
        // per-walk streams.
        let mut specs: Vec<_> = (0..WALKS)
            .map(|i| CtrwSpec {
                topology: &frozen,
                rng: walk_rng(base, i),
                start,
                timer,
                sojourn: Sojourn::Exponential,
            })
            .collect();
        let batched = ctrw_frontier(&mut specs, &NoopRecorder);
        for shards in SHARD_COUNTS {
            let view = ShardedFrozenView::partition(&frozen, shards);
            for i in 0..WALKS {
                let mut serial_rng = walk_rng(base, i);
                let serial =
                    ctrw_walk(&frozen, start, timer, Sojourn::Exponential, &mut serial_rng);
                let mut stitched_rng = walk_rng(base, i);
                let fate = ctrw_walk_stitched(
                    &view,
                    start,
                    timer,
                    Sojourn::Exponential,
                    &mut stitched_rng,
                    &NoopRecorder,
                );
                prop_assert_eq!(&fate.result, &serial, "walk {} diverged at S={}", i, shards);
                prop_assert_eq!(
                    &stitched_rng, &serial_rng,
                    "walk {} RNG position diverged at S={}", i, shards
                );
                let frontier = &batched[i as usize];
                prop_assert_eq!(
                    &fate.result, &frontier.result,
                    "walk {} disagrees with the frontier at S={}", i, shards
                );
                prop_assert_eq!(fate.hops, frontier.hops);
                prop_assert_eq!(fate.draws, frontier.draws);
                if shards == 1 {
                    prop_assert_eq!(fate.segments, 1, "one shard means one segment");
                }
            }
        }
    }

    #[test]
    fn stitched_tour_is_bit_identical_to_serial_and_frontier(
        n in 40usize..250,
        degree in 3usize..8,
        graph_seed in any::<u64>(),
        base in any::<u64>(),
        cap in 500u64..20_000,
    ) {
        let mut rng = SmallRng::seed_from_u64(graph_seed);
        let g = generators::balanced(n, degree, &mut rng);
        let frozen = g.freeze();
        let start = g.nodes().next().expect("non-empty");
        let mut specs: Vec<_> = (0..WALKS)
            .map(|i| TourSpec {
                topology: &frozen,
                rng: walk_rng(base, i),
                start,
                max_steps: Some(cap),
            })
            .collect();
        let batched = tour_frontier(&mut specs, visit_weight, &NoopRecorder);
        for shards in SHARD_COUNTS {
            let view = ShardedFrozenView::partition(&frozen, shards);
            for i in 0..WALKS {
                let mut serial_rng = walk_rng(base, i);
                let mut weight = 0.0f64;
                let serial = random_tour(&frozen, start, Some(cap), &mut serial_rng, |v| {
                    weight += visit_weight(v) / frozen.degree_of(v) as f64;
                });
                let mut stitched_rng = walk_rng(base, i);
                let fate = tour_stitched(
                    &view,
                    start,
                    Some(cap),
                    visit_weight,
                    &mut stitched_rng,
                    &NoopRecorder,
                );
                prop_assert_eq!(&fate.result, &serial, "tour {} diverged at S={}", i, shards);
                prop_assert_eq!(
                    fate.weight.to_bits(),
                    weight.to_bits(),
                    "tour {} weight not bit-identical at S={}", i, shards
                );
                prop_assert_eq!(
                    &stitched_rng, &serial_rng,
                    "tour {} RNG position diverged at S={}", i, shards
                );
                let frontier = &batched[i as usize];
                prop_assert_eq!(
                    &fate.result, &frontier.result,
                    "tour {} disagrees with the frontier at S={}", i, shards
                );
                prop_assert_eq!(fate.weight.to_bits(), frontier.weight.to_bits());
            }
        }
    }

    #[test]
    fn stitched_ctrw_matches_serial_under_message_loss(
        n in 40usize..200,
        graph_seed in any::<u64>(),
        base in any::<u64>(),
        loss in 0.05f64..0.5,
        fault_seed in any::<u64>(),
    ) {
        // Bit-identity under faults needs one wrapper per walk in *both*
        // paths: `FaultyTopology` draws faults from a counter-addressed
        // stream private to the wrapper, so a per-walk wrapper makes the
        // fault sequence a function of the walk alone — exactly how the
        // sharded service scopes one wrapper to each Sample flight.
        let mut rng = SmallRng::seed_from_u64(graph_seed);
        let g = generators::balanced(n, 6, &mut rng);
        let frozen = g.freeze();
        let start = g.nodes().next().expect("non-empty");
        let plan = FaultPlan::new().with_message_loss(loss, fault_seed);
        for shards in SHARD_COUNTS {
            let view = ShardedFrozenView::partition(&frozen, shards);
            for i in 0..WALKS {
                let mut serial_rng = walk_rng(base, i);
                let serial_faulty = plan.apply(&frozen);
                let serial = ctrw_walk(
                    &serial_faulty,
                    start,
                    4.0,
                    Sojourn::Exponential,
                    &mut serial_rng,
                );
                let mut stitched_rng = walk_rng(base, i);
                let stitched_faulty = plan.apply(&frozen);
                let fate = ctrw_walk_stitched_on(
                    &view,
                    &stitched_faulty,
                    start,
                    4.0,
                    Sojourn::Exponential,
                    &mut stitched_rng,
                    &NoopRecorder,
                );
                prop_assert_eq!(
                    &fate.result, &serial,
                    "lossy walk {} diverged at S={}", i, shards
                );
                prop_assert_eq!(
                    &stitched_rng, &serial_rng,
                    "lossy walk {} RNG position diverged at S={}", i, shards
                );
            }
        }
    }
}

/// The cost ledger both services must agree on exactly. Execution-shape
/// metrics are deliberately excluded: `CutCrossings`, `ShardHandoffs`,
/// and `SegmentLength` count *where* a walk ran (zero on the unsharded
/// service by construction), `WalkBatchRounds`/`BatchOccupancy` belong to
/// the frontier drain mode, gauges are last-write-wins scheduling hints,
/// and the `QueryLatency` sum is wall-clock. Everything that describes
/// *what was computed and what it cost the overlay* is included.
const LEDGER_COUNTERS: [Metric; 12] = [
    Metric::TourHops,
    Metric::CtrwHops,
    Metric::SojournDraws,
    Metric::SamplesDrawn,
    Metric::ToursCompleted,
    Metric::ToursLost,
    Metric::WalkTimeouts,
    Metric::WalkRetries,
    Metric::QueriesSubmitted,
    Metric::QueriesCompleted,
    Metric::QueriesExpired,
    Metric::QueriesRejected,
];

/// Histograms compared by count *and* sum: every observed value is an
/// integer-valued or exactly-representable f64 far below 2^53, so the
/// sums are exact regardless of accumulation order across workers.
const LEDGER_HISTOGRAMS: [HistogramMetric; 3] = [
    HistogramMetric::TourLength,
    HistogramMetric::CtrwVirtualTime,
    HistogramMetric::SampleCost,
];

type Ledger = (Vec<u64>, Vec<(u64, f64)>, u64);

fn ledger(reg: &Registry) -> Ledger {
    (
        LEDGER_COUNTERS.iter().map(|&m| reg.counter(m)).collect(),
        LEDGER_HISTOGRAMS
            .iter()
            .map(|&h| (reg.histogram_count(h), reg.histogram_sum(h)))
            .collect(),
        reg.histogram_count(HistogramMetric::QueryLatency),
    )
}

fn network(n: usize, seed: u64) -> DynamicNetwork {
    let mut rng = SmallRng::seed_from_u64(seed);
    DynamicNetwork::new(
        generators::balanced(n, 8, &mut rng),
        JoinRule::Balanced { max_degree: 8 },
    )
}

fn aggregate_weight(n: NodeId) -> f64 {
    ((n.index() % 7) as f64) + 1.0
}

fn mixed_queries() -> Vec<Query> {
    vec![
        Query::Count(Counter::RandomTour(RandomTour::new())),
        Query::Sample(CtrwSampler::new(6.0)),
        Query::Aggregate(aggregate_weight),
        Query::Count(Counter::SampleCollide(SampleCollide::new(
            CtrwSampler::new(5.0),
            4,
        ))),
        Query::Sample(CtrwSampler::new(9.0)),
    ]
}

/// Runs `service`'s unsharded twin and every sharded shard count over the
/// same seed and query list, asserting outcome and ledger equality.
fn assert_sharded_matches_unsharded(config: ServiceConfig, net_seed: u64, queries: usize) {
    let baseline_reg = Registry::new();
    let mut baseline = CensusService::new(network(300, net_seed), config);
    let ((), expected) = baseline.serve_rec(&[], &baseline_reg, |census| {
        for q in mixed_queries().into_iter().cycle().take(queries) {
            census.submit(q).expect("queue has room");
        }
    });
    let expected_ledger = ledger(&baseline_reg);
    assert_eq!(expected.len(), queries);

    for shards in SHARD_COUNTS {
        let reg = Registry::new();
        let mut svc = ShardedCensusService::new(network(300, net_seed), config.with_shards(shards));
        let ((), outcomes) = svc.serve_rec(&[], &reg, |census| {
            for q in mixed_queries().into_iter().cycle().take(queries) {
                census.submit(q).expect("queue has room");
            }
        });
        assert_eq!(outcomes, expected, "outcomes diverged at {shards} shards");
        assert_eq!(
            ledger(&reg),
            expected_ledger,
            "cost ledger diverged at {shards} shards"
        );
        if shards == 1 {
            assert_eq!(
                reg.counter(Metric::CutCrossings),
                0,
                "one shard has no cut edges"
            );
        }
    }
}

#[test]
fn sharded_service_matches_unsharded_outcomes_and_ledger() {
    let config = ServiceConfig::new(47).with_workers(2);
    assert_sharded_matches_unsharded(config, 5, 15);
}

#[test]
fn sharded_service_matches_unsharded_under_message_loss() {
    let config = ServiceConfig::new(53)
        .with_workers(2)
        .with_retries(2)
        .with_faults(
            FaultPlan::new()
                .with_message_loss(0.15, 99)
                .with_retransmits(1),
        );
    assert_sharded_matches_unsharded(config, 6, 15);
}

#[test]
fn multi_shard_execution_actually_crosses_shards() {
    // The equality tests above would pass vacuously if walks never left
    // their home shard; pin that the 8-way partition of a well-mixed
    // overlay really does stitch across cut edges.
    let config = ServiceConfig::new(61).with_workers(1).with_shards(8);
    let reg = Registry::new();
    let mut svc = ShardedCensusService::new(network(300, 7), config);
    let ((), outcomes) = svc.serve_rec(&[], &reg, |census| {
        for _ in 0..8 {
            census
                .submit(Query::Sample(CtrwSampler::new(10.0)))
                .expect("queue has room");
        }
    });
    assert_eq!(outcomes.len(), 8);
    assert!(
        reg.counter(Metric::CutCrossings) > 0,
        "an 8-way partition of a balanced overlay must cut walk paths"
    );
    assert!(reg.counter(Metric::ShardHandoffs) > 0);
}

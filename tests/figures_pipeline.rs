//! End-to-end smoke tests of the figure-regeneration harness: every
//! experiment id runs at tiny scale, produces a non-empty CSV with the
//! documented columns, and writes its artefacts to disk.

use census_bench::{run_experiment, Params, ALL_IDS};

fn tiny() -> Params {
    let mut p = Params::scaled(0.01);
    p.n = 500;
    p.rt_runs = 250;
    p.sc_runs = 25;
    p.rt_window = 40;
    p.rt_dynamic_runs = 250;
    p.rt_dynamic_window = 40;
    p.sc_dynamic_runs = 30;
    p
}

#[test]
fn every_experiment_id_runs_and_writes() {
    let dir = std::env::temp_dir().join("overlay-census-figures-test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let p = tiny();
    for id in ALL_IDS {
        let result = run_experiment(id, &p);
        assert_eq!(&result.id, id);
        assert!(!result.table.is_empty(), "{id}: empty CSV");
        assert!(
            result.summary.contains(id),
            "{id}: summary does not name the experiment"
        );
        result.write_to(&dir).expect("artefacts written");
        let csv = dir.join(format!("{id}.csv"));
        let body = std::fs::read_to_string(&csv).expect("csv exists");
        assert!(body.lines().count() >= 2, "{id}: csv has no data rows");
        // Header + every row have the same arity.
        let cols = body.lines().next().expect("header").split(',').count();
        for line in body.lines().skip(1) {
            assert_eq!(line.split(',').count(), cols, "{id}: ragged csv");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dynamic_figures_track_the_scenarios() {
    let p = tiny();
    // fig9 grows by 50%: final truth above start truth.
    let r = run_experiment("fig9", &p);
    let rows: Vec<Vec<f64>> = r
        .table
        .to_csv_string()
        .lines()
        .skip(1)
        .map(|l| l.split(',').map(|c| c.parse().expect("numeric")).collect())
        .collect();
    let (first, last) = (&rows[0], rows.last().expect("rows"));
    assert!(
        last[1] > first[1] * 1.3,
        "fig9 truth should grow 50%: {} -> {}",
        first[1],
        last[1]
    );

    // fig13 ends 25% below start after -25% -25% +25%.
    let r = run_experiment("fig13", &p);
    let rows: Vec<Vec<f64>> = r
        .table
        .to_csv_string()
        .lines()
        .skip(1)
        .map(|l| l.split(',').map(|c| c.parse().expect("numeric")).collect())
        .collect();
    let (first, last) = (&rows[0], rows.last().expect("rows"));
    let expected = first[1] * 0.75;
    assert!(
        (last[1] / expected - 1.0).abs() < 0.15,
        "fig13 final truth {} vs expected {expected}",
        last[1]
    );
}

#[test]
fn fig4_orders_the_cdfs_by_dispersion() {
    let p = tiny();
    let r = run_experiment("fig4", &p);
    let rows: Vec<Vec<f64>> = r
        .table
        .to_csv_string()
        .lines()
        .skip(1)
        .map(|l| l.split(',').map(|c| c.parse().expect("numeric")).collect())
        .collect();
    // At 60% of true size, the S&C l=100 CDF should have much less mass
    // than the RT CDF (RT's single-tour spread is huge).
    let near = |target: f64| {
        rows.iter()
            .min_by(|a, b| {
                (a[0] - target)
                    .abs()
                    .partial_cmp(&(b[0] - target).abs())
                    .expect("finite")
            })
            .expect("rows")
            .clone()
    };
    let row = near(0.6);
    let (rt, sc100) = (row[1], row[3]);
    assert!(
        rt > sc100 + 0.1,
        "at 0.6N: RT CDF {rt} should exceed S&C l=100 CDF {sc100}"
    );
}

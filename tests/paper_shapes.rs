//! End-to-end statistical shape checks spanning all crates.
//!
//! These assert the paper's headline *scaling claims* on overlays large
//! enough for the asymptotics to bite, at sizes still comfortable for CI.

use overlay_census::core::theory;
use overlay_census::prelude::*;
use overlay_census::sampling::quality;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn balanced(n: usize, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    generators::balanced(n, 10, &mut rng)
}

#[test]
fn random_tour_is_unbiased_at_scale() {
    let n = 2_000;
    let g = balanced(n, 1);
    let mut rng = SmallRng::seed_from_u64(2);
    let me = g.any_peer(&mut rng).expect("non-empty");
    let rt = RandomTour::new();
    let m: OnlineMoments = (0..6_000)
        .map(|_| {
            rt.estimate_with(&mut RunCtx::new(&g, &mut rng), me)
                .expect("connected")
                .value
        })
        .collect();
    let err = (m.mean() - n as f64).abs() / m.standard_error();
    assert!(err < 4.0, "RT mean {} is {err} SEs from {n}", m.mean());
}

#[test]
fn sample_collide_cost_scales_as_sqrt_n() {
    // E[C_l] ~ sqrt(2lN): quadrupling... a 16x size increase must grow
    // the message cost ~4x.
    let mut rng = SmallRng::seed_from_u64(3);
    let mut mean_cost = |n: usize| {
        let g = balanced(n, n as u64);
        let me = g.any_peer(&mut rng).expect("non-empty");
        let sc = SampleCollide::new(CtrwSampler::new(10.0), 20);
        let m: OnlineMoments = (0..15)
            .map(|_| {
                sc.estimate_with(&mut RunCtx::new(&g, &mut rng), me)
                    .expect("connected")
                    .messages as f64
            })
            .collect();
        m.mean()
    };
    let small = mean_cost(1_000);
    let large = mean_cost(16_000);
    let ratio = large / small;
    assert!(
        (2.5..6.0).contains(&ratio),
        "S&C cost ratio for 16x nodes should be ~4 (sqrt law), got {ratio}"
    );
}

#[test]
fn random_tour_cost_scales_linearly() {
    let mut rng = SmallRng::seed_from_u64(4);
    let mut mean_cost = |n: usize| {
        let g = balanced(n, n as u64 + 7);
        let me = g.any_peer(&mut rng).expect("non-empty");
        let d_i = g.degree(me) as f64;
        let rt = RandomTour::new();
        let m: OnlineMoments = (0..200)
            .map(|_| {
                rt.estimate_with(&mut RunCtx::new(&g, &mut rng), me)
                    .expect("connected")
                    .messages as f64
            })
            .collect();
        // Normalise by the initiator's degree so different probes compare.
        m.mean() * d_i
    };
    let small = mean_cost(1_000);
    let large = mean_cost(8_000);
    let ratio = large / small;
    assert!(
        (5.0..13.0).contains(&ratio),
        "RT cost ratio for 8x nodes should be ~8 (linear law), got {ratio}"
    );
}

#[test]
fn equal_variance_cost_gap_widens_with_n() {
    // §4.3: cost(RT)/cost(S&C) at matched variance grows like sqrt(N).
    // Measured here through the theory module's laws fed with measured
    // graph constants, then spot-checked against simulated costs.
    let mut rng = SmallRng::seed_from_u64(5);
    let mut measured_gap = |n: usize| {
        let g = balanced(n, n as u64 + 13);
        let me = g.any_peer(&mut rng).expect("non-empty");
        // Measured S&C cost at l = 25.
        let sc = SampleCollide::new(CtrwSampler::new(10.0), 25);
        let sc_cost: OnlineMoments = (0..10)
            .map(|_| {
                sc.estimate_with(&mut RunCtx::new(&g, &mut rng), me)
                    .expect("connected")
                    .messages as f64
            })
            .collect();
        // RT cost to reach the same 1/l variance: a single tour has
        // relative variance ~1.3 (paper Table 1), so it needs ~1.3*l tours.
        let rt = RandomTour::new();
        let tours = (1.3f64 * 25.0).ceil() as u64;
        let rt_cost: OnlineMoments = (0..10)
            .map(|_| {
                (0..tours)
                    .map(|_| {
                        rt.estimate_with(&mut RunCtx::new(&g, &mut rng), me)
                            .expect("connected")
                            .messages
                    })
                    .sum::<u64>() as f64
            })
            .collect();
        rt_cost.mean() / sc_cost.mean()
    };
    let gap_small = measured_gap(1_000);
    let gap_large = measured_gap(9_000);
    assert!(
        gap_large > 2.0 * gap_small,
        "equal-variance cost gap should grow ~3x for 9x nodes: {gap_small} -> {gap_large}"
    );
}

#[test]
fn corollary_1_holds_with_real_ctrw_sampling() {
    // The 1/l relative variance law with the *actual* CTRW sampler (not
    // the oracle), on the paper's topology.
    let n = 5_000;
    let g = balanced(n, 6);
    let mut rng = SmallRng::seed_from_u64(7);
    let me = g.any_peer(&mut rng).expect("non-empty");
    let l = 25u32;
    let sc = SampleCollide::new(CtrwSampler::new(10.0), l);
    let mse: f64 = (0..120)
        .map(|_| {
            let v = sc
                .estimate_with(&mut RunCtx::new(&g, &mut rng), me)
                .expect("connected")
                .value;
            (v / n as f64 - 1.0).powi(2)
        })
        .sum::<f64>()
        / 120.0;
    let predicted = theory::sc_relative_mse(l);
    assert!(
        (mse / predicted - 1.0).abs() < 0.6,
        "relative MSE {mse} vs 1/l = {predicted}"
    );
}

#[test]
fn lemma_1_bound_holds_on_the_papers_topology() {
    let g = balanced(300, 8);
    if !overlay_census::graph::algo::is_connected(&g) {
        return;
    }
    let gap = overlay_census::graph::spectral::spectral_gap(&g);
    let me = g.nodes().next().expect("non-empty");
    for t in [0.5, 1.0, 2.0, 4.0] {
        let tv = quality::exact_ctrw_tv_to_uniform(&g, me, t);
        let bound = theory::ctrw_tv_bound(g.num_nodes() as f64, gap, t);
        assert!(tv <= bound + 1e-9, "t={t}: tv {tv} > bound {bound}");
    }
}

#[test]
fn proposition_3_second_moment() {
    // E[C_l^2] -> 2lN under perfect sampling.
    let n = 4_000;
    let g = generators::complete(n);
    let mut rng = SmallRng::seed_from_u64(9);
    let sc = SampleCollide::new(OracleSampler::new(), 8);
    let me = g.nodes().next().expect("non-empty");
    let m: OnlineMoments = (0..600)
        .map(|_| {
            let r = sc
                .collect_with(&mut RunCtx::new(&g, &mut rng), me)
                .expect("oracle cannot fail");
            (r.c_l as f64).powi(2)
        })
        .collect();
    let predicted = 2.0 * 8.0 * n as f64;
    let err = (m.mean() - predicted).abs() / m.standard_error();
    assert!(err < 4.0, "E[C_l^2] {} vs {predicted}", m.mean());
}

#[test]
fn estimators_work_on_scale_free_overlays_with_hubs() {
    // §5.2.2: node heterogeneity does not bias either method.
    let mut rng = SmallRng::seed_from_u64(10);
    let n = 3_000;
    let g = generators::barabasi_albert(n, 3, &mut rng);
    let me = g.any_peer(&mut rng).expect("non-empty");

    let rt = RandomTour::new();
    let m: OnlineMoments = (0..4_000)
        .map(|_| {
            rt.estimate_with(&mut RunCtx::new(&g, &mut rng), me)
                .expect("connected")
                .value
        })
        .collect();
    let err = (m.mean() - n as f64).abs() / m.standard_error();
    assert!(err < 4.0, "RT on scale-free: mean {}", m.mean());

    let sc = SampleCollide::new(CtrwSampler::new(10.0), 50);
    let m: OnlineMoments = (0..40)
        .map(|_| {
            sc.estimate_with(&mut RunCtx::new(&g, &mut rng), me)
                .expect("connected")
                .value
        })
        .collect();
    assert!(
        (m.mean() / n as f64 - 1.0).abs() < 0.15,
        "S&C on scale-free: mean {}",
        m.mean()
    );
}

//! Acceptance for the campaign runner's resume contract: a killed
//! campaign picks up where it stopped, re-executing nothing.
//!
//! The test simulates an interrupt with `max_runs`: the first
//! invocation executes exactly two of four points and exits, the second
//! finishes the remaining two while *skipping* the recorded ones, and a
//! third finds nothing left to do. Skipping must be real — the
//! per-run record files written by the first invocation survive the
//! resume byte for byte (re-execution would at minimum perturb the
//! measured wall-clock and latency fields).

use std::collections::BTreeMap;
use std::path::Path;

use census_bench::campaign::{
    expand, run_campaign, ArrivalSpec, AttackSpec, CampaignSpec, EstimatorKind, FaultSpec,
    OverlaySpec, TopologySpec,
};

fn tiny_spec() -> CampaignSpec {
    CampaignSpec {
        campaign: "resume-acceptance".to_owned(),
        seed: 61,
        queries_per_run: 4,
        timer: 4.0,
        sc_l: 2,
        topologies: vec![TopologySpec::Balanced {
            n: 600,
            max_degree: 10,
        }],
        estimators: vec![EstimatorKind::RandomTour, EstimatorKind::CtrwSample],
        shards: vec![0, 2],
        workers: vec![2],
        faults: vec![FaultSpec::None],
        arrivals: vec![ArrivalSpec::Closed { concurrency: 4 }],
        attacks: vec![AttackSpec::None],
        overlays: vec![OverlaySpec::None],
    }
}

/// Bytes of every per-run record currently on disk, keyed by file name.
fn run_records(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut records = BTreeMap::new();
    for entry in std::fs::read_dir(dir.join("runs")).expect("runs dir exists") {
        let entry = entry.expect("readable entry");
        records.insert(
            entry.file_name().to_string_lossy().into_owned(),
            std::fs::read(entry.path()).expect("readable record"),
        );
    }
    records
}

#[test]
fn interrupted_campaign_resumes_without_reexecution() {
    let spec = tiny_spec();
    assert_eq!(
        expand(&spec).len(),
        4,
        "the acceptance mix space is 4 points"
    );

    let results = std::env::temp_dir().join(format!(
        "overlay-census-campaign-resume-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&results);
    let campaign_dir = results.join(&spec.campaign);

    // "Interrupt" after two runs.
    let first = run_campaign(&spec, &results, Some(2)).expect("partial campaign runs");
    assert_eq!(first.total, 4);
    assert_eq!(first.executed, 2);
    assert_eq!(first.skipped, 0);
    assert!(
        first.manifest_path.exists(),
        "manifest written mid-campaign"
    );
    let after_first = run_records(&campaign_dir);
    assert_eq!(after_first.len(), 2, "one record per executed run");

    // Resume: the two recorded points are skipped, the rest execute.
    let second = run_campaign(&spec, &results, None).expect("resume runs");
    assert_eq!(second.total, 4);
    assert_eq!(second.skipped, 2);
    assert_eq!(second.executed, 2);
    let after_second = run_records(&campaign_dir);
    assert_eq!(after_second.len(), 4, "all four records on disk");
    for (name, bytes) in &after_first {
        assert_eq!(
            after_second.get(name),
            Some(bytes),
            "resume must not rewrite {name} — skipped runs are not re-executed"
        );
    }

    // Nothing left: a third pass is a pure no-op.
    let manifest_before = std::fs::read(&second.manifest_path).expect("manifest readable");
    let third = run_campaign(&spec, &results, None).expect("no-op rerun");
    assert_eq!(third.executed, 0);
    assert_eq!(third.skipped, 4);
    assert_eq!(
        std::fs::read(&third.manifest_path).expect("manifest readable"),
        manifest_before,
        "a fully recorded campaign leaves the manifest untouched"
    );

    // A conflicting spec under the same campaign name must refuse to
    // reuse the manifest rather than silently mixing records.
    let mut conflicting = tiny_spec();
    conflicting.seed = 62;
    assert!(
        run_campaign(&conflicting, &results, None).is_err(),
        "a changed spec must not resume another spec's manifest"
    );

    let _ = std::fs::remove_dir_all(&results);
}

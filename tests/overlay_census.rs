//! Integration: the self-constructing overlay end to end — the
//! `overlay-convergence` experiment meets its acceptance bar (a census
//! whose refreezes are coupled to the construction protocol tracks the
//! growing overlay, while a never-refrozen snapshot drifts towards 100%
//! error) and replays bit-identically per seed.

use census_bench::{run_experiment, Params};

fn tiny() -> Params {
    let mut p = Params::scaled(0.01);
    p.n = 1_500;
    p
}

fn rows(csv: &str) -> Vec<Vec<f64>> {
    csv.lines()
        .skip(1)
        .map(|l| l.split(',').map(|c| c.parse().expect("numeric")).collect())
        .collect()
}

#[test]
fn coupled_refreezes_beat_the_stale_snapshot_at_the_final_checkpoint() {
    let r = run_experiment("overlay-convergence", &tiny());
    let rows = rows(&r.table.to_csv_string());
    // Columns: tick, truth, edges, lambda2, connected, naive_estimate,
    // coupled_estimate, naive_rel_err, coupled_rel_err.
    let last = rows.last().expect("the scenario checkpoints");
    assert_eq!(
        last[1] as usize,
        tiny().n,
        "the construction must reach the target size before the bar applies"
    );
    assert_eq!(last[4], 1.0, "the finished overlay must be connected");
    let (naive, coupled) = (last[7], last[8]);
    assert!(
        naive > 0.5,
        "the stale snapshot still sizes the seed clique, so its error \
         must have climbed past 50%: got {naive}"
    );
    assert!(
        coupled < 0.3,
        "refreezing on the protocol's mutation counts must keep the \
         coupled arm within 30% of the truth: got {coupled}"
    );
    assert!(
        naive >= 2.0 * coupled,
        "the headline gap: naive {naive} vs coupled {coupled}"
    );
    // The drift is monotone in spirit: the naive error at the end
    // dominates the error at the first checkpoint.
    assert!(
        naive > rows[0][7],
        "staleness must hurt more as the overlay grows"
    );
    // The finished overlay is a healthy mixer: a strictly positive
    // Laplacian gap (the structural `connected` flag above already
    // rules out a definitional zero).
    assert!(last[3] > 0.0 && last[3].is_finite());
}

#[test]
fn overlay_convergence_replays_bit_identically_per_seed() {
    let p = tiny();
    let a = run_experiment("overlay-convergence", &p);
    let b = run_experiment("overlay-convergence", &p);
    assert_eq!(
        a.table.to_csv_string(),
        b.table.to_csv_string(),
        "the experiment must be a pure function of its params"
    );
    assert_eq!(a.summary, b.summary);
    let mut other = p;
    other.seed ^= 0x5EED;
    let c = run_experiment("overlay-convergence", &other);
    assert_ne!(
        a.table.to_csv_string(),
        c.table.to_csv_string(),
        "a different seed must produce a different trace"
    );
}

//! Acceptance tests for the fault-injection harness and the resilient
//! estimation supervisor: under §5.3.1-style message loss, the
//! supervised Random Tour stays complete *and* unbiased, the naive
//! retry-until-success strategy stays biased low, counters reconcile
//! exactly, and fault randomness never perturbs walk randomness.

use overlay_census::core::supervisor::{AdaptiveTimeout, Supervised};
use overlay_census::prelude::*;
use overlay_census::sim::faults::FaultPlan;
use overlay_census::sim::parallel::splitmix64;
use overlay_census::sim::runner::{try_run_static_on, RunConfig};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

const PAPER_SEED: u64 = 20060723;

/// The ISSUE's acceptance bar: balanced 10k-node overlay, per-hop loss
/// p = 0.001 over a transport with 2 retransmits, supervised Random Tour
/// with a `mean + 6·std` adaptive budget — ≥ 99% of runs complete and
/// the mean lands within 10% of truth, with the attempt ledger
/// reconciling exactly.
#[test]
fn supervised_random_tour_survives_message_loss_unbiased() {
    let mut rng = SmallRng::seed_from_u64(PAPER_SEED);
    let g = generators::balanced(10_000, 10, &mut rng);
    let probe = g.random_node(&mut rng).expect("non-empty");
    let truth = 10_000.0;

    let faulty = FaultPlan::new()
        .with_message_loss(0.001, PAPER_SEED ^ 0xFA)
        .with_retransmits(2)
        .apply(&g);
    let supervised = Supervised::new(RandomTour::new())
        .with_timeout(AdaptiveTimeout::new(u64::MAX, 6.0).with_warmup(10))
        .with_retries(5);
    let reg = Registry::new();

    let runs = 1_500u64;
    let records = try_run_static_on(
        &faulty,
        truth,
        &supervised,
        probe,
        // The supervisor owns the retries; the runner adds none.
        &RunConfig::new(runs).with_retries(0),
        &mut rng,
        &reg,
    )
    .expect("supervised estimation must complete every run");

    // Completion: the supervisor absorbed every injected fault.
    assert_eq!(records.len() as u64, runs, ">= 99% of runs must complete");

    let mean = records.iter().map(|r| r.estimate).sum::<f64>() / runs as f64;
    let rel = (mean - truth).abs() / truth;
    assert!(
        rel < 0.10,
        "supervised mean {mean} must lie within 10% of {truth} (off by {:.1}%)",
        100.0 * rel
    );

    // The attempt ledger reconciles exactly: every supervisor attempt is
    // exactly one tour outcome, and attempts = runs + retries.
    let stats = supervised.stats();
    let outcomes = reg.counter(Metric::ToursCompleted)
        + reg.counter(Metric::ToursLost)
        + reg.counter(Metric::WalkTimeouts);
    assert_eq!(
        outcomes, stats.attempts,
        "tour outcomes must equal attempts"
    );
    assert_eq!(
        stats.attempts,
        runs + reg.counter(Metric::WalkRetries),
        "attempts must equal runs plus credited retries"
    );
    assert_eq!(stats.completed, runs);
    assert!(
        faulty.fault_snapshot().drops > 0,
        "the fault plan must actually have fired"
    );
}

/// The bias the supervisor exists to avoid: at the same loss rate, naive
/// retry-until-success over a non-retransmitting transport completes
/// runs happily — but its survivors are overwhelmingly the shortest
/// tours, so the mean collapses far below the truth (the truncated-tour
/// law pinned in `census_sim::loss`).
#[test]
fn naive_retry_until_success_is_biased_low_under_loss() {
    let mut rng = SmallRng::seed_from_u64(PAPER_SEED + 1);
    let g = generators::balanced(10_000, 10, &mut rng);
    let probe = g.random_node(&mut rng).expect("non-empty");

    let faulty = FaultPlan::new()
        .with_message_loss(0.001, PAPER_SEED ^ 0xFB)
        .apply(&g);
    let rt = RandomTour::new();

    let mut survivors = Vec::new();
    for _ in 0..50 {
        for _ in 0..40 {
            if let Ok(est) = rt.estimate_with(&mut RunCtx::new(&faulty, &mut rng), probe) {
                survivors.push(est.value);
                break;
            }
        }
    }
    assert!(
        survivors.len() >= 25,
        "retry-until-success does complete runs ({}/50)",
        survivors.len()
    );
    let mean = survivors.iter().sum::<f64>() / survivors.len() as f64;
    assert!(
        mean < 0.5 * 10_000.0,
        "naive survivor mean {mean} must be biased far below 10000"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    /// RNG-stream isolation: for ANY fault configuration, a walk that
    /// survives the fault plan produces bit-for-bit the estimate of the
    /// fault-free walk with the same walk seed — fault layers may
    /// truncate a walk, never steer it. This is what makes the surviving
    /// estimate stream a subsequence of the fault-free estimate stream.
    #[test]
    fn surviving_walks_match_their_fault_free_twins(
        fault_seed in any::<u64>(),
        loss in 0.0f64..0.3,
        stale in 0.0f64..0.2,
        crash in 0.0f64..0.01,
        retransmits in 0u32..3,
    ) {
        let mut build_rng = SmallRng::seed_from_u64(77);
        let g = generators::balanced(300, 10, &mut build_rng);
        let probe = g.nodes().next().expect("non-empty");
        let faulty = FaultPlan::new()
            .with_message_loss(loss, fault_seed)
            .with_stale_links(stale, splitmix64(fault_seed))
            .with_crashes(crash, splitmix64(fault_seed ^ 1))
            .with_retransmits(retransmits)
            .apply(&g);
        let rt = RandomTour::new();
        let mut survived = 0u32;
        for i in 0..40u64 {
            let walk_seed = splitmix64(0x4242 ^ i);
            let free = rt
                .estimate_with(
                    &mut RunCtx::new(&g, &mut SmallRng::seed_from_u64(walk_seed)),
                    probe,
                )
                .expect("fault-free balanced overlay cannot fail");
            if let Ok(est) = rt.estimate_with(
                &mut RunCtx::new(&faulty, &mut SmallRng::seed_from_u64(walk_seed)),
                probe,
            ) {
                survived += 1;
                prop_assert_eq!(est.value, free.value);
                prop_assert_eq!(est.messages, free.messages);
            }
        }
        // Sanity: the harness is not vacuous — something survives at the
        // benign end of the grid (tiny loss, some retransmits).
        if loss < 0.01 && stale < 0.01 && crash < 0.001 {
            prop_assert!(survived > 0, "benign faults must let walks through");
        }
    }
}

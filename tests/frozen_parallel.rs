//! Cross-crate integration: the frozen CSR snapshot layer and the
//! deterministic replication engine.
//!
//! Two contracts are checked end to end:
//!
//! - **snapshot equivalence** — freezing preserves per-node adjacency
//!   order, so a walk driven by the same RNG stream visits the exact
//!   same node sequence on the live [`Graph`] and its [`FrozenView`];
//! - **replication determinism** — `parallel::replicate` output is a
//!   pure function of `(base_seed, replica_index)`, byte-identical
//!   across invocations and equal to a serial loop, no matter how the
//!   OS schedules the worker threads.

use overlay_census::graph::FrozenView;
use overlay_census::prelude::*;
use overlay_census::sim::parallel::{replica_seed, replicate, replicate_static, Replica};
use overlay_census::sim::runner::{run_static, RunRecord};
use overlay_census::walk::discrete::random_tour;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn balanced_net(n: usize, seed: u64) -> (DynamicNetwork, SmallRng) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let g = generators::balanced(n, 10, &mut rng);
    (
        DynamicNetwork::new(g, JoinRule::Balanced { max_degree: 10 }),
        rng,
    )
}

#[test]
fn tour_visit_sequences_are_identical_on_graph_and_frozen_view() {
    let mut rng = SmallRng::seed_from_u64(11);
    let g = generators::balanced(2_000, 10, &mut rng);
    let frozen: FrozenView = g.freeze();
    let start = g.nodes().next().expect("non-empty");
    for seed in 0..20u64 {
        let mut live_visits = Vec::new();
        let mut frozen_visits = Vec::new();
        let mut live_rng = SmallRng::seed_from_u64(seed);
        let mut frozen_rng = SmallRng::seed_from_u64(seed);
        let live = random_tour(&g, start, None, &mut live_rng, |v| live_visits.push(v))
            .expect("connected");
        let snap = random_tour(&frozen, start, None, &mut frozen_rng, |v| {
            frozen_visits.push(v);
        })
        .expect("connected");
        assert_eq!(live, snap, "tour length diverged for walk seed {seed}");
        assert_eq!(
            live_visits, frozen_visits,
            "visit sequence diverged for walk seed {seed}"
        );
    }
}

#[test]
fn estimates_are_identical_on_graph_and_frozen_view() {
    let mut rng = SmallRng::seed_from_u64(21);
    let g = generators::balanced(1_000, 10, &mut rng);
    let frozen = g.freeze();
    let probe = g.nodes().next().expect("non-empty");
    let rt = RandomTour::new();
    let mut live_rng = SmallRng::seed_from_u64(22);
    let mut frozen_rng = SmallRng::seed_from_u64(22);
    for _ in 0..30 {
        let live = rt
            .estimate_with(&mut RunCtx::new(&g, &mut live_rng), probe)
            .expect("connected");
        let snap = rt
            .estimate_with(&mut RunCtx::new(&frozen, &mut frozen_rng), probe)
            .expect("connected");
        assert_eq!(live.value, snap.value);
        assert_eq!(live.messages, snap.messages);
    }
}

#[test]
fn run_static_series_matches_serial_estimates_on_the_live_graph() {
    // `run_static` now freezes internally; the records must still be the
    // ones the old live-graph loop produced with the same RNG stream.
    let (net, mut rng) = balanced_net(800, 31);
    let probe = net.graph().random_node(&mut rng).expect("non-empty");
    let rt = RandomTour::new();
    let mut runner_rng = SmallRng::seed_from_u64(32);
    let records = run_static(&net, &rt, probe, 25, &mut runner_rng);
    let mut serial_rng = SmallRng::seed_from_u64(32);
    for r in &records {
        let e = rt
            .estimate_with(&mut RunCtx::new(net.graph(), &mut serial_rng), probe)
            .expect("connected");
        assert_eq!(r.estimate, e.value);
        assert_eq!(r.messages, e.messages);
    }
}

#[test]
fn replication_engine_is_byte_identical_across_invocations() {
    let (net, mut rng) = balanced_net(500, 41);
    let probe = net.graph().random_node(&mut rng).expect("non-empty");
    let sc = SampleCollide::new(CtrwSampler::new(10.0), 5)
        .with_point_estimator(PointEstimator::Asymptotic);
    let first: Vec<Vec<RunRecord>> = replicate_static(&net, &sc, probe, 10, 4, 99);
    let second: Vec<Vec<RunRecord>> = replicate_static(&net, &sc, probe, 10, 4, 99);
    assert_eq!(first, second);
    assert_eq!(first.len(), 4);
    assert!(
        (0..3).all(|i| first[i] != first[i + 1]),
        "replicas must be statistically independent, not copies"
    );
}

#[test]
fn parallel_replication_equals_the_serial_loop() {
    // Scheduling independence: the threaded engine must reproduce a plain
    // serial loop over `Replica` handles exactly.
    let (net, mut rng) = balanced_net(400, 51);
    let probe = net.graph().random_node(&mut rng).expect("non-empty");
    let rt = RandomTour::new();
    let threaded = replicate(5, 7, |r| {
        let mut rng = r.rng();
        run_static(&net, &rt, probe, 15, &mut rng)
    });
    let serial: Vec<Vec<RunRecord>> = (0..5)
        .map(|index| {
            let replica = Replica {
                index,
                seed: replica_seed(7, index),
            };
            let mut rng = replica.rng();
            run_static(&net, &rt, probe, 15, &mut rng)
        })
        .collect();
    assert_eq!(threaded, serial);
}

//! Integration: the adversarial census layer end to end — the
//! `byzantine-sweep` experiment meets its acceptance bar (hardened
//! Metropolis sampling at least 3× less biased than the naive sampler
//! at 20% subverted peers) and replays bit-identically per seed.

use census_bench::{run_experiment, Params};

fn tiny() -> Params {
    let mut p = Params::scaled(0.01);
    p.n = 800;
    p.sc_runs = 50;
    p.replications = 3;
    p
}

fn rows(csv: &str) -> Vec<Vec<f64>> {
    csv.lines()
        .skip(1)
        .map(|l| l.split(',').map(|c| c.parse().expect("numeric")).collect())
        .collect()
}

#[test]
fn hardened_sampler_is_3x_less_biased_at_the_headline_cell() {
    let r = run_experiment("byzantine-sweep", &tiny());
    let rows = rows(&r.table.to_csv_string());
    // Columns: byzantine_pct, truth_pct, naive_rel_err,
    // hardened_rel_err, naive_completion_pct, hardened_completion_pct,
    // hardened_advantage.
    let headline = rows
        .iter()
        .find(|row| (row[0] - 20.0).abs() < 1e-9)
        .expect("the sweep includes the 20% cell");
    let (naive, hardened) = (headline[2], headline[3]);
    assert!(
        naive >= 3.0 * hardened,
        "hardening must cut the bias at least 3x at 20% subverted: \
         naive {naive} vs hardened {hardened}"
    );
    // Sanity on the endpoints: with nobody subverted both arms are
    // exact, and the naive error grows with the subverted fraction.
    let clean = &rows[0];
    assert_eq!(clean[0], 0.0);
    assert_eq!(clean[2], 0.0, "no adversary, no naive bias");
    assert_eq!(clean[3], 0.0, "no adversary, no hardened bias");
    assert!(
        headline[2] > rows[1][2] * 0.5,
        "naive bias should not collapse as the adversary grows"
    );
    // Liveness was not the discriminator: both arms completed samples.
    assert!(headline[4] > 0.0 && headline[5] > 0.0);
}

#[test]
fn byzantine_sweep_replays_bit_identically_per_seed() {
    let p = tiny();
    let a = run_experiment("byzantine-sweep", &p);
    let b = run_experiment("byzantine-sweep", &p);
    assert_eq!(
        a.table.to_csv_string(),
        b.table.to_csv_string(),
        "the sweep must be a pure function of its params"
    );
    assert_eq!(a.summary, b.summary);
    let mut other = p;
    other.seed ^= 0x5EED;
    let c = run_experiment("byzantine-sweep", &other);
    assert_ne!(
        a.table.to_csv_string(),
        c.table.to_csv_string(),
        "a different seed must produce a different trace"
    );
}

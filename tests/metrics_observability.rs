//! End-to-end checks of the cost observability layer.
//!
//! Three contracts span the whole stack:
//!
//! - **closed forms** — the hop counters a live [`Registry`] accumulates
//!   match the paper's expected-cost formulas: `(Σ_j d_j)/d_i` per
//!   Random Tour (§3.2) and `E[C_l]·T·d̄` per Sample & Collide run
//!   (§4.3, [`theory::sc_expected_messages`]);
//! - **reconciliation** — the registry's message total equals the sum of
//!   per-run [`Estimate::messages`], exactly, because both are fed by
//!   the same `RunCtx::on_message` call sites;
//! - **passivity & determinism** — recording never perturbs an estimate
//!   (the RNG stream is untouched), and per-replica registries merged by
//!   `replicate_recorded` are bit-identical across invocations.

use overlay_census::core::theory;
use overlay_census::metrics::HistogramMetric;
use overlay_census::prelude::*;
use overlay_census::sim::parallel::replicate_recorded;
use overlay_census::sim::runner::run_static_rec;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn balanced(n: usize, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    generators::balanced(n, 10, &mut rng)
}

#[test]
fn recorded_tour_hops_match_the_closed_form_on_the_complete_graph() {
    // On K_n every degree is n-1, so the §3.2 expected tour cost
    // (Σ_j d_j)/d_i collapses to exactly n hops, from any initiator.
    let n = 60usize;
    let g = generators::complete(n);
    let me = g.nodes().next().expect("non-empty");
    let tours = 400u64;

    let costs = Registry::new();
    let mut rng = SmallRng::seed_from_u64(17);
    let mut ctx = RunCtx::with_recorder(&g, &mut rng, &costs);
    let rt = RandomTour::new();
    let mut reported = 0u64;
    for _ in 0..tours {
        reported += rt.estimate_with(&mut ctx, me).expect("connected").messages;
    }

    // Exact reconciliation: the registry and the estimates count the
    // same hops through the same accounting site.
    assert_eq!(costs.counter(Metric::TourHops), reported);
    assert_eq!(costs.message_total(), reported);
    assert_eq!(costs.counter(Metric::ToursCompleted), tours);
    assert_eq!(costs.histogram_count(HistogramMetric::TourLength), tours);
    assert!(
        (costs.histogram_sum(HistogramMetric::TourLength) - reported as f64).abs() < 1e-9,
        "tour-length histogram mass must equal the hop counter"
    );

    // Statistical agreement with the closed form (relative std of the
    // mean is ~1/sqrt(tours) ≈ 5% here; allow 4σ).
    let mean_hops = costs.counter(Metric::TourHops) as f64 / tours as f64;
    let expected = n as f64;
    assert!(
        (mean_hops / expected - 1.0).abs() < 0.20,
        "mean tour cost {mean_hops:.1} should be within 20% of Σd/d_i = {expected}"
    );
}

#[test]
fn recorded_tour_hops_match_the_closed_form_on_a_balanced_overlay() {
    let g = balanced(800, 21);
    let me = g.nodes().next().expect("non-empty");
    let expected = g.degree_sum() as f64 / g.degree(me) as f64;
    let tours = 1_000u64;

    let costs = Registry::new();
    let mut rng = SmallRng::seed_from_u64(23);
    let mut ctx = RunCtx::with_recorder(&g, &mut rng, &costs);
    let rt = RandomTour::new();
    for _ in 0..tours {
        let _ = rt.estimate_with(&mut ctx, me).expect("connected");
    }

    let mean_hops = costs.counter(Metric::TourHops) as f64 / tours as f64;
    assert!(
        (mean_hops / expected - 1.0).abs() < 0.30,
        "mean tour cost {mean_hops:.1} should be within 30% of Σd/d_i = {expected:.1}"
    );
}

#[test]
fn recorded_sc_messages_match_the_paper_cost_formula() {
    let n = 1_000usize;
    let g = balanced(n, 29);
    let me = g.nodes().next().expect("non-empty");
    let (l, timer) = (20u32, 10.0);
    let runs = 40u64;

    let costs = Registry::new();
    let mut rng = SmallRng::seed_from_u64(31);
    let mut ctx = RunCtx::with_recorder(&g, &mut rng, &costs);
    let sc = SampleCollide::new(CtrwSampler::new(timer), l);
    let mut reported = 0u64;
    for _ in 0..runs {
        let e = sc.estimate_with(&mut ctx, me).expect("connected");
        ctx.on_event(Metric::ReportedMessages, e.messages);
        reported += e.messages;
    }

    // S&C's only message cost is CTRW sample hops, and the registry's
    // total reconciles exactly with what the estimates reported.
    assert_eq!(costs.counter(Metric::CtrwHops), reported);
    assert_eq!(costs.message_total(), reported);
    assert_eq!(
        costs.message_total(),
        costs.counter(Metric::ReportedMessages)
    );
    assert!(costs.counter(Metric::SamplesDrawn) > 0);

    // §4.3: E[cost] = E[C_l]·T·d̄. The sqrt-law constant is loose at
    // this scale, so accept a factor-2 band around the prediction.
    let predicted = theory::sc_expected_messages(n as f64, l, timer, g.average_degree());
    let mean = costs.message_total() as f64 / runs as f64;
    assert!(
        mean / predicted > 0.5 && mean / predicted < 2.0,
        "mean S&C cost {mean:.0} should be within 2x of the predicted {predicted:.0}"
    );
}

#[test]
fn recording_is_passive_for_identical_rng_streams() {
    let g = balanced(500, 37);
    let me = g.nodes().next().expect("non-empty");
    let rt = RandomTour::new();

    let mut plain_rng = SmallRng::seed_from_u64(41);
    let mut plain_ctx = RunCtx::new(&g, &mut plain_rng);
    let plain: Vec<_> = (0..50)
        .map(|_| rt.estimate_with(&mut plain_ctx, me).expect("connected"))
        .collect();

    let costs = Registry::new();
    let mut rec_rng = SmallRng::seed_from_u64(41);
    let mut rec_ctx = RunCtx::with_recorder(&g, &mut rec_rng, &costs);
    let recorded: Vec<_> = (0..50)
        .map(|_| rt.estimate_with(&mut rec_ctx, me).expect("connected"))
        .collect();

    assert_eq!(
        plain, recorded,
        "a live registry must not perturb the walks"
    );
}

#[test]
fn merged_replica_registries_are_deterministic_end_to_end() {
    let mut rng = SmallRng::seed_from_u64(43);
    let g = generators::balanced(300, 10, &mut rng);
    let me = g.nodes().next().expect("non-empty");
    let net = DynamicNetwork::new(g, JoinRule::Balanced { max_degree: 10 });
    let rt = RandomTour::new();

    let run_once = || {
        replicate_recorded(4, 47, |replica, registry| {
            let mut rng = replica.rng();
            run_static_rec(&net, &rt, me, 25, &mut rng, registry)
        })
    };
    let (series_a, merged_a) = run_once();
    let (series_b, merged_b) = run_once();
    assert_eq!(series_a, series_b, "replica records must be reproducible");
    assert_eq!(
        merged_a.snapshot(),
        merged_b.snapshot(),
        "merged registries must be bit-identical across runs"
    );

    // The merged registry reconciles with the per-run records exactly.
    let reported: u64 = series_a.iter().flatten().map(|r| r.messages).sum();
    assert_eq!(merged_a.counter(Metric::ReportedMessages), reported);
    assert_eq!(merged_a.message_total(), reported);
    assert_eq!(merged_a.counter(Metric::EstimatesCompleted), 4 * 25);
}

#[test]
fn figure_csvs_are_bit_identical_with_and_without_recording() {
    use census_bench::{figures, run_experiment, Params};

    let mut p = Params::scaled(0.01);
    p.n = 400;
    p.rt_runs = 200;
    p.rt_window = 40;

    let registry = Registry::new();
    let recorded = figures::fig1(&p, &registry).table.to_csv_string();
    let plain = run_experiment("fig1", &p).table.to_csv_string();
    assert_eq!(
        recorded, plain,
        "recording must leave the figure CSV untouched"
    );
    assert_eq!(
        registry.message_total(),
        registry.counter(Metric::ReportedMessages),
        "the harness credits every estimate it consumes"
    );
}

//! Acceptance for the binary snapshot codec and the format-negotiating
//! snapshot API.
//!
//! Property tests drive churned graphs — random edges, killed slots,
//! isolated nodes, the empty graph — through encode → decode → re-encode
//! and assert the bytes reproduce exactly; [`Graph::thaw`] must invert
//! freezing just as losslessly. The rejection half feeds the decoder
//! corrupted headers, truncations at *every* prefix length, flipped
//! payload bytes, and arbitrary junk, and requires a typed
//! [`SnapshotError`] every time — never a panic, never a silently
//! wrong view.
//!
//! `scripts/check.sh` reruns this file in release mode: the codec is
//! the cold-start path of every campaign run, and optimisation must not
//! change a byte of the format.

use overlay_census::graph::io::{
    load_snapshot_path, read_frozen, save_snapshot_path, write_frozen, Snapshot, SnapshotError,
    SnapshotFormat,
};
use overlay_census::graph::Graph;
use proptest::prelude::*;

/// A graph with `slots` nodes, the given candidate edges, and the given
/// slots churned out (dead slots keep their index; edge/kill indices
/// fold into range). Mirrors how overlays actually look mid-experiment:
/// dead slots interleaved with live ones, isolated nodes included.
fn churned(slots: usize, edges: &[(usize, usize)], kills: &[usize]) -> Graph {
    let mut g = Graph::with_capacity(slots);
    let ids = g.add_nodes(slots);
    for &(a, b) in edges {
        let (a, b) = (a % slots, b % slots);
        if a != b {
            let _ = g.add_edge(ids[a], ids[b]);
        }
    }
    for &k in kills {
        let _ = g.remove_node(ids[k % slots]);
    }
    g
}

/// Encodes a freeze of `g` without advancing `g`'s own epoch counter
/// (every `freeze()` stamps the next epoch, so encoding through a clone
/// keeps repeated encodes of one graph byte-comparable).
fn encode(g: &Graph) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_frozen(&g.clone().freeze(), &mut bytes).expect("in-memory encode cannot fail");
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn binary_codec_round_trips_churned_graphs(
        slots in 1usize..40,
        edges in proptest::collection::vec((0usize..40, 0usize..40), 0..80),
        kills in proptest::collection::vec(0usize..40, 0..10),
    ) {
        let g = churned(slots, &edges, &kills);
        let bytes = encode(&g);
        let view = read_frozen(&bytes[..]).expect("own encoding decodes");
        let mut again = Vec::new();
        write_frozen(&view, &mut again).expect("re-encode");
        prop_assert_eq!(&bytes, &again, "decode → encode must be the identity on bytes");
        prop_assert_eq!(view.num_nodes(), g.num_nodes());
        prop_assert_eq!(view.num_edges(), g.num_edges());
    }

    #[test]
    fn thaw_inverts_freeze_byte_for_byte(
        slots in 1usize..30,
        edges in proptest::collection::vec((0usize..30, 0usize..30), 0..60),
        kills in proptest::collection::vec(0usize..30, 0..8),
    ) {
        let g = churned(slots, &edges, &kills);
        let thawed = Graph::thaw(&g.clone().freeze());
        prop_assert_eq!(
            encode(&g),
            encode(&thawed),
            "thawed graph must refreeze to the identical snapshot"
        );
    }

    #[test]
    fn every_truncation_is_rejected_without_panicking(
        slots in 1usize..12,
        edges in proptest::collection::vec((0usize..12, 0usize..12), 0..20),
    ) {
        let bytes = encode(&churned(slots, &edges, &[]));
        for len in 0..bytes.len() {
            prop_assert!(
                read_frozen(&bytes[..len]).is_err(),
                "prefix of {len}/{} bytes must not decode",
                bytes.len()
            );
        }
    }

    #[test]
    fn arbitrary_junk_never_panics(junk in proptest::collection::vec(0u8..=255, 0..200)) {
        // Typed error or (for junk that happens to spell a valid tiny
        // snapshot — impossible below 64 bytes of exact structure, but
        // the property doesn't rely on that) a view; never a panic.
        let _ = read_frozen(&junk[..]);
    }
}

#[test]
fn empty_and_isolated_graphs_round_trip() {
    // Fully churned out: every slot dead.
    let all_dead = churned(3, &[(0, 1), (1, 2)], &[0, 1, 2]);
    assert_eq!(all_dead.num_nodes(), 0);
    let bytes = encode(&all_dead);
    let view = read_frozen(&bytes[..]).expect("all-dead snapshot decodes");
    assert_eq!(view.num_nodes(), 0);

    // Isolated live nodes, no edges at all.
    let isolated = churned(5, &[], &[]);
    let bytes = encode(&isolated);
    let view = read_frozen(&bytes[..]).expect("edgeless snapshot decodes");
    assert_eq!(view.num_nodes(), 5);
    assert_eq!(view.num_edges(), 0);

    // A graph with zero slots.
    let empty = Graph::new();
    let bytes = encode(&empty);
    let view = read_frozen(&bytes[..]).expect("empty snapshot decodes");
    assert_eq!(view.slot_count(), 0);
}

#[test]
fn corrupted_headers_yield_typed_errors() {
    let g = churned(8, &[(0, 1), (1, 2), (2, 3), (4, 5)], &[6]);
    let good = encode(&g);

    // Flipped magic: not our file.
    let mut bad = good.clone();
    bad[0] ^= 0xFF;
    assert!(matches!(
        read_frozen(&bad[..]),
        Err(SnapshotError::BadMagic)
    ));

    // Future format version.
    let mut bad = good.clone();
    bad[8..12].copy_from_slice(&99u32.to_le_bytes());
    assert!(matches!(
        read_frozen(&bad[..]),
        Err(SnapshotError::UnsupportedVersion(99))
    ));

    // Header cut short.
    assert!(matches!(
        read_frozen(&good[..10]),
        Err(SnapshotError::Truncated { .. })
    ));

    // A flipped payload byte must trip the checksum.
    let mut bad = good.clone();
    let last = bad.len() - 1;
    bad[last] ^= 0x01;
    assert!(matches!(
        read_frozen(&bad[..]),
        Err(SnapshotError::ChecksumMismatch { .. })
    ));

    // A flipped checksum byte equally so.
    let mut bad = good.clone();
    bad[56] ^= 0x01;
    assert!(matches!(
        read_frozen(&bad[..]),
        Err(SnapshotError::ChecksumMismatch { .. })
    ));

    // Trailing garbage after a well-formed snapshot.
    let mut bad = good.clone();
    bad.push(0);
    assert!(
        read_frozen(&bad[..]).is_err(),
        "trailing bytes must be rejected"
    );
}

#[test]
fn path_entry_points_negotiate_formats_from_extensions() {
    let dir = std::env::temp_dir().join("overlay-census-snapshot-roundtrip");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let g = churned(10, &[(0, 1), (2, 3), (4, 5), (5, 6)], &[7]);
    // Baseline bytes before any save advances g's epoch counter.
    let g_bytes = encode(&g);

    let binary = dir.join("overlay.snap");
    assert_eq!(
        save_snapshot_path(&g, &binary).expect("binary save"),
        SnapshotFormat::BinaryV1
    );
    match load_snapshot_path(&binary).expect("binary load") {
        Snapshot::Frozen(view) => {
            assert_eq!(view.num_nodes(), g.num_nodes());
            assert_eq!(view.num_edges(), g.num_edges());
        }
        Snapshot::Graph(_) => panic!(".snap must load as a frozen view"),
    }

    let text = dir.join("overlay.el");
    assert_eq!(
        save_snapshot_path(&g, &text).expect("text save"),
        SnapshotFormat::EdgeListText
    );
    match load_snapshot_path(&text).expect("text load") {
        Snapshot::Graph(back) => {
            assert_eq!(back.num_nodes(), g.num_nodes());
            assert_eq!(back.num_edges(), g.num_edges());
            // Same snapshot bytes ⇒ same graph, edge for edge.
            assert_eq!(encode(&back), g_bytes);
        }
        Snapshot::Frozen(_) => panic!(".el must load as a live graph"),
    }

    let unknown = dir.join("overlay.xyz");
    assert!(matches!(
        save_snapshot_path(&g, &unknown),
        Err(SnapshotError::UnknownExtension(_))
    ));

    let _ = std::fs::remove_dir_all(&dir);
}

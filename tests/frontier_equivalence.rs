//! Property acceptance for the batched walk-stepping kernel: over random
//! graphs, seeds, frontier widths, and every exact-mode kernel tuning
//! (node bucketing × prefetch, [`KernelTuning::ALL`]), every fate the
//! frontier reports — outcome, hop count, sojourn draws, accumulated
//! tour weight, and the final RNG position — is byte-identical to
//! running the serial engine on the same per-walk stream, with and
//! without injected message loss.
//!
//! `scripts/check.sh` runs this file again in release mode: the frontier
//! is a hot-path kernel, and optimisation must not change a single bit
//! of any fate (no fast-math, no re-association, no reordering). The
//! `FastStatEq` mode is *excluded* by design — it trades bit-identity
//! for throughput and answers to the statistical-equivalence suite in
//! `tests/frontier_modes.rs` instead.

use overlay_census::graph::{generators, NodeId, Topology};
use overlay_census::metrics::NoopRecorder;
use overlay_census::sim::faults::FaultPlan;
use overlay_census::walk::continuous::{ctrw_walk, Sojourn};
use overlay_census::walk::discrete::random_tour;
use overlay_census::walk::frontier::{
    ctrw_frontier_with, tour_frontier_with, CtrwSpec, FrontierMode, KernelTuning, TourSpec,
};
use overlay_census::walk::stream::{stream_seed, SplitMix64, StreamDomain};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The frontier widths the acceptance criterion names: degenerate,
/// odd/partial, and a full chunk.
const WIDTHS: [u64; 3] = [1, 7, 64];

fn walk_rng(base: u64, i: u64) -> SplitMix64 {
    SplitMix64::new(stream_seed(StreamDomain::FrontierWalk, base, i))
}

fn visit_weight(n: NodeId) -> f64 {
    ((n.index() % 13) as f64).mul_add(0.25, 1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ctrw_frontier_is_bit_identical_to_serial(
        n in 40usize..300,
        degree in 3usize..8,
        graph_seed in any::<u64>(),
        base in any::<u64>(),
        timer in 0.5f64..6.0,
    ) {
        let mut rng = SmallRng::seed_from_u64(graph_seed);
        let g = generators::balanced(n, degree, &mut rng);
        let frozen = g.freeze();
        let start = g.nodes().next().expect("non-empty");
        for tuning in KernelTuning::ALL {
            for width in WIDTHS {
                let mut specs: Vec<_> = (0..width)
                    .map(|i| CtrwSpec {
                        topology: &frozen,
                        rng: walk_rng(base, i),
                        start,
                        timer,
                        sojourn: Sojourn::Exponential,
                    })
                    .collect();
                let fates =
                    ctrw_frontier_with(&mut specs, FrontierMode::Exact(tuning), &NoopRecorder);
                for (i, (fate, spec)) in fates.iter().zip(&specs).enumerate() {
                    let mut serial_rng = walk_rng(base, i as u64);
                    let serial =
                        ctrw_walk(&frozen, start, timer, Sojourn::Exponential, &mut serial_rng);
                    prop_assert_eq!(
                        &fate.result, &serial,
                        "walk {} diverged at W={} under {:?}", i, width, tuning
                    );
                    let out = serial.expect("fault-free CTRW completes");
                    prop_assert_eq!(fate.hops, out.hops);
                    // Fault-free: one exponential per visit, hops + 1 visits.
                    prop_assert_eq!(fate.draws, out.hops + 1);
                    prop_assert_eq!(
                        &spec.rng, &serial_rng,
                        "walk {} RNG position diverged at W={} under {:?}", i, width, tuning
                    );
                }
            }
        }
    }

    #[test]
    fn tour_frontier_is_bit_identical_to_serial(
        n in 40usize..300,
        degree in 3usize..8,
        graph_seed in any::<u64>(),
        base in any::<u64>(),
        cap in 500u64..20_000,
    ) {
        let mut rng = SmallRng::seed_from_u64(graph_seed);
        let g = generators::balanced(n, degree, &mut rng);
        let frozen = g.freeze();
        let start = g.nodes().next().expect("non-empty");
        for tuning in KernelTuning::ALL {
            for width in WIDTHS {
                let mut specs: Vec<_> = (0..width)
                    .map(|i| TourSpec {
                        topology: &frozen,
                        rng: walk_rng(base, i),
                        start,
                        max_steps: Some(cap),
                    })
                    .collect();
                let fates = tour_frontier_with(
                    &mut specs,
                    visit_weight,
                    FrontierMode::Exact(tuning),
                    &NoopRecorder,
                );
                for (i, (fate, spec)) in fates.iter().zip(&specs).enumerate() {
                    let mut serial_rng = walk_rng(base, i as u64);
                    let mut weight = 0.0f64;
                    let serial = random_tour(&frozen, start, Some(cap), &mut serial_rng, |v| {
                        weight += visit_weight(v) / frozen.degree_of(v) as f64;
                    });
                    prop_assert_eq!(
                        &fate.result, &serial,
                        "tour {} diverged at W={} under {:?}", i, width, tuning
                    );
                    prop_assert_eq!(
                        fate.weight.to_bits(),
                        weight.to_bits(),
                        "tour {} weight not bit-identical at W={} under {:?}", i, width, tuning
                    );
                    prop_assert_eq!(
                        &spec.rng, &serial_rng,
                        "tour {} RNG position diverged at W={} under {:?}", i, width, tuning
                    );
                }
            }
        }
    }

    #[test]
    fn ctrw_frontier_matches_serial_under_message_loss(
        n in 40usize..200,
        graph_seed in any::<u64>(),
        base in any::<u64>(),
        loss in 0.05f64..0.5,
        fault_seed in any::<u64>(),
    ) {
        // Bit-identity under faults needs one wrapper per walk in *both*
        // paths: `FaultyTopology` draws faults from a counter-addressed
        // stream private to the wrapper, so a per-walk wrapper makes the
        // fault sequence a function of the walk alone. This mirrors how
        // census-service scopes one wrapper to each query.
        let mut rng = SmallRng::seed_from_u64(graph_seed);
        let g = generators::balanced(n, 6, &mut rng);
        let frozen = g.freeze();
        let start = g.nodes().next().expect("non-empty");
        let plan = FaultPlan::new().with_message_loss(loss, fault_seed);
        for tuning in KernelTuning::ALL {
            for width in WIDTHS {
                let mut specs: Vec<_> = (0..width)
                    .map(|i| CtrwSpec {
                        topology: plan.apply(&frozen),
                        rng: walk_rng(base, i),
                        start,
                        timer: 4.0,
                        sojourn: Sojourn::Exponential,
                    })
                    .collect();
                let fates =
                    ctrw_frontier_with(&mut specs, FrontierMode::Exact(tuning), &NoopRecorder);
                for (i, fate) in fates.iter().enumerate() {
                    let mut serial_rng = walk_rng(base, i as u64);
                    let faulty = plan.apply(&frozen);
                    let serial =
                        ctrw_walk(&faulty, start, 4.0, Sojourn::Exponential, &mut serial_rng);
                    prop_assert_eq!(
                        &fate.result, &serial,
                        "lossy walk {} diverged at W={} under {:?}", i, width, tuning
                    );
                }
            }
        }
    }
}

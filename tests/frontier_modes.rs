//! Edge-case and mode acceptance for the frontier kernels, complementing
//! the bit-identity properties of `tests/frontier_equivalence.rs`:
//!
//! - degenerate frontiers (isolated initiators, all-stuck launches,
//!   empty batches, width 1, deterministic sojourns, mixed fates) behave
//!   identically to the serial engines under every exact kernel tuning;
//! - precondition violations panic *before* any walk's RNG consumes a
//!   draw, in both kernels;
//! - the `FastStatEq` mode — which abandons per-walk streams for one
//!   pooled block generator — still draws from the correct *law*: its
//!   CTRW endpoints pass a chi-square test against the uniformization
//!   oracle [`exact_distribution`], and its Random Tour estimates stay
//!   unbiased. `scripts/check.sh` re-runs the `fast_` tests in release
//!   mode alongside the equivalence suite.

use std::panic::{catch_unwind, AssertUnwindSafe};

use overlay_census::graph::spectral::DenseIndex;
use overlay_census::graph::{generators, Graph, NodeId, Topology};
use overlay_census::metrics::{HistogramMetric, Metric, NoopRecorder, Registry};
use overlay_census::sim::faults::FaultPlan;
use overlay_census::stats::{chi_square_expected, total_variation};
use overlay_census::walk::continuous::{ctrw_walk, exact_distribution, Sojourn};
use overlay_census::walk::discrete::random_tour;
use overlay_census::walk::frontier::{
    ctrw_frontier_with, tour_frontier_with, CtrwSpec, FrontierMode, KernelTuning, TourSpec,
};
use overlay_census::walk::stream::{stream_seed, SplitMix64, StreamDomain};
use overlay_census::walk::WalkError;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn walk_rng(base: u64, i: u64) -> SplitMix64 {
    SplitMix64::new(stream_seed(StreamDomain::FrontierWalk, base, i))
}

/// Every mode a frontier can run in: the full exact tuning matrix plus
/// the pooled fast mode.
fn all_modes() -> Vec<FrontierMode> {
    let mut modes: Vec<FrontierMode> = KernelTuning::ALL
        .into_iter()
        .map(FrontierMode::Exact)
        .collect();
    modes.push(FrontierMode::FastStatEq);
    modes
}

/// A connected hub-and-spoke component plus one isolated (alive,
/// degree-0) node.
fn graph_with_isolated_node() -> (Graph, NodeId, NodeId) {
    let mut g = Graph::new();
    let hub = g.add_node();
    for _ in 0..4 {
        let leaf = g.add_node();
        g.add_edge(hub, leaf).expect("fresh edge");
    }
    let lone = g.add_node();
    (g, hub, lone)
}

#[test]
fn isolated_tour_initiator_is_stuck_with_zero_weight_in_every_mode() {
    // Regression for the launch division by zero: a tour launched at an
    // alive, degree-0 initiator must report Stuck with NO visit weight
    // charged — f(start)/d(start) is undefined — in the serial engine
    // and in every frontier mode, bit for bit.
    let (g, hub, lone) = graph_with_isolated_node();
    let f = |n: NodeId| ((n.index() % 5) as f64).mul_add(0.5, 1.0);

    // Serial reference: stuck, no visits, RNG untouched.
    let mut serial_rng = walk_rng(3, 0);
    let mut visits = 0u32;
    assert_eq!(
        random_tour(&g, lone, None, &mut serial_rng, |_| visits += 1),
        Err(WalkError::Stuck(lone))
    );
    assert_eq!(visits, 0);
    assert_eq!(
        serial_rng,
        walk_rng(3, 0),
        "serial stuck launch draws nothing"
    );

    for mode in all_modes() {
        // Mix stuck and healthy lanes so the frontier exercises both the
        // degree-0 early-out and the normal launch in one batch.
        let mut specs: Vec<_> = (0..6u64)
            .map(|i| TourSpec {
                topology: &g,
                rng: walk_rng(3, i),
                start: if i % 2 == 0 { lone } else { hub },
                max_steps: Some(10_000),
            })
            .collect();
        let fates = tour_frontier_with(&mut specs, f, mode, &NoopRecorder);
        for (i, fate) in fates.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(
                    fate.result,
                    Err(WalkError::Stuck(lone)),
                    "lane {i} under {mode:?}"
                );
                assert_eq!(fate.hops, 0, "stuck launch sent nothing ({mode:?})");
                assert_eq!(
                    fate.weight.to_bits(),
                    0.0f64.to_bits(),
                    "stuck launch must charge no visit weight ({mode:?})"
                );
            } else {
                assert!(fate.result.is_ok(), "healthy lane {i} under {mode:?}");
                assert!(fate.weight.is_finite());
            }
        }
    }
}

#[test]
fn tour_precondition_panics_before_any_rng_draw() {
    // The "checked up front" contract: when spec k's initiator is
    // invalid, the panic must fire before ANY spec — including the
    // earlier, valid ones — consumes a launch draw. SplitMix64 is
    // PartialEq, so RNG positions compare exactly.
    let (mut g, hub, _) = graph_with_isolated_node();
    let dead = g.add_node();
    g.remove_node(dead).expect("dead node departs");
    for mode in all_modes() {
        let mut specs: Vec<_> = (0..4u64)
            .map(|i| TourSpec {
                topology: &g,
                rng: walk_rng(7, i),
                start: if i == 3 { dead } else { hub },
                max_steps: None,
            })
            .collect();
        let panicked = catch_unwind(AssertUnwindSafe(|| {
            let _ = tour_frontier_with(&mut specs, |_| 1.0, mode, &NoopRecorder);
        }))
        .is_err();
        assert!(panicked, "dead initiator must panic under {mode:?}");
        for (i, spec) in specs.iter().enumerate() {
            assert_eq!(
                spec.rng,
                walk_rng(7, i as u64),
                "spec {i} RNG consumed before the validation panic ({mode:?})"
            );
        }
    }
}

#[test]
fn ctrw_precondition_panics_before_any_rng_draw() {
    let (g, hub, _) = graph_with_isolated_node();
    for mode in all_modes() {
        let mut specs: Vec<_> = (0..4u64)
            .map(|i| CtrwSpec {
                topology: &g,
                rng: walk_rng(8, i),
                start: hub,
                // The last spec carries an invalid timer.
                timer: if i == 3 { -1.0 } else { 2.0 },
                sojourn: Sojourn::Exponential,
            })
            .collect();
        let panicked = catch_unwind(AssertUnwindSafe(|| {
            let _ = ctrw_frontier_with(&mut specs, mode, &NoopRecorder);
        }))
        .is_err();
        assert!(panicked, "invalid timer must panic under {mode:?}");
        for (i, spec) in specs.iter().enumerate() {
            assert_eq!(
                spec.rng,
                walk_rng(8, i as u64),
                "spec {i} RNG consumed before the validation panic ({mode:?})"
            );
        }
    }
}

#[test]
fn empty_frontier_records_nothing_in_every_mode() {
    // The accounting contract new kernels inherit: an empty spec list
    // runs zero rounds, so there is no spurious zero-occupancy
    // observation and no WalkBatchRounds increment — in any mode.
    for mode in all_modes() {
        let reg = Registry::new();
        let ctrw = ctrw_frontier_with::<&Graph, SplitMix64, _>(&mut [], mode, &reg);
        assert!(ctrw.is_empty());
        let tours = tour_frontier_with::<&Graph, SplitMix64, _, _>(&mut [], |_| 1.0, mode, &reg);
        assert!(tours.is_empty());
        assert_eq!(reg.counter(Metric::WalkBatchRounds), 0, "{mode:?}");
        assert_eq!(
            reg.histogram_count(HistogramMetric::BatchOccupancy),
            0,
            "{mode:?}"
        );
        assert_eq!(reg.message_total(), 0, "{mode:?}");
    }
}

#[test]
fn all_stuck_tour_frontier_is_launch_only_and_records_nothing() {
    // Every lane dies at launch (isolated initiators): the round loop
    // never runs, so the frontier-shape metrics must stay silent exactly
    // like the empty frontier — stuck fates are launch events, not
    // rounds.
    let mut g = Graph::new();
    let loners: Vec<NodeId> = (0..5).map(|_| g.add_node()).collect();
    for mode in all_modes() {
        let reg = Registry::new();
        let mut specs: Vec<_> = loners
            .iter()
            .enumerate()
            .map(|(i, &lone)| TourSpec {
                topology: &g,
                rng: walk_rng(9, i as u64),
                start: lone,
                max_steps: None,
            })
            .collect();
        let fates = tour_frontier_with(&mut specs, |_| 1.0, mode, &reg);
        for (fate, &lone) in fates.iter().zip(&loners) {
            assert_eq!(fate.result, Err(WalkError::Stuck(lone)), "{mode:?}");
            assert_eq!(fate.hops, 0);
            assert_eq!(fate.weight.to_bits(), 0.0f64.to_bits());
        }
        assert_eq!(reg.counter(Metric::WalkBatchRounds), 0, "{mode:?}");
        assert_eq!(
            reg.histogram_count(HistogramMetric::BatchOccupancy),
            0,
            "{mode:?}"
        );
    }
}

#[test]
fn deterministic_sojourn_frontier_matches_serial_with_zero_draws() {
    // Remark 1 walks consume RNG only for neighbour choices; the kernel
    // must report zero sojourn draws and still match the serial engine
    // bit for bit under every exact tuning.
    let mut rng = SmallRng::seed_from_u64(13);
    let g = generators::balanced(120, 6, &mut rng);
    let frozen = g.freeze();
    let start = g.nodes().next().expect("non-empty");
    for tuning in KernelTuning::ALL {
        let mut specs: Vec<_> = (0..5u64)
            .map(|i| CtrwSpec {
                topology: &frozen,
                rng: walk_rng(11, i),
                start,
                timer: 3.0,
                sojourn: Sojourn::Deterministic,
            })
            .collect();
        let fates = ctrw_frontier_with(&mut specs, FrontierMode::Exact(tuning), &NoopRecorder);
        for (i, (fate, spec)) in fates.iter().zip(&specs).enumerate() {
            let mut serial_rng = walk_rng(11, i as u64);
            let serial = ctrw_walk(&frozen, start, 3.0, Sojourn::Deterministic, &mut serial_rng);
            assert_eq!(fate.result, serial, "walk {i} under {tuning:?}");
            assert_eq!(fate.draws, 0, "deterministic sojourns draw nothing");
            assert_eq!(spec.rng, serial_rng, "walk {i} RNG position ({tuning:?})");
        }
    }
}

#[test]
fn mixed_fate_tour_frontier_matches_serial_across_tunings() {
    // One frontier holding completions, timeouts, and fault-stuck walks
    // at once: per-lane caps force timeouts, a lossy wrapper strands
    // some walks mid-tour, the rest complete. Every fate must still be
    // the serial one, bit for bit, under every exact tuning.
    let mut rng = SmallRng::seed_from_u64(17);
    let g = generators::balanced(150, 6, &mut rng);
    let frozen = g.freeze();
    let start = g.nodes().next().expect("non-empty");
    // Three lane flavours, cycling: fault-free with a 1-step cap (a
    // guaranteed timeout), heavy loss with a generous cap (stuck, almost
    // surely), fault-free with a generous cap (completes, almost
    // surely). The serial twin below reconstructs the same flavour.
    let quiet = FaultPlan::new();
    let lossy = FaultPlan::new().with_message_loss(0.75, 99);
    let plan_for = move |i: u64| if i % 3 == 1 { lossy } else { quiet };
    let cap_for = |i: u64| {
        if i.is_multiple_of(3) {
            Some(1)
        } else {
            Some(50_000)
        }
    };
    let f = |n: NodeId| ((n.index() % 7) as f64).mul_add(0.25, 1.0);
    for tuning in KernelTuning::ALL {
        let mut specs: Vec<_> = (0..24u64)
            .map(|i| TourSpec {
                topology: plan_for(i).apply(&frozen),
                rng: walk_rng(19, i),
                start,
                max_steps: cap_for(i),
            })
            .collect();
        let fates = tour_frontier_with(&mut specs, f, FrontierMode::Exact(tuning), &NoopRecorder);
        let mut kinds = [0u32; 3]; // completed, timeout, stuck
        for (i, fate) in fates.iter().enumerate() {
            let mut serial_rng = walk_rng(19, i as u64);
            let faulty = plan_for(i as u64).apply(&frozen);
            let mut weight = 0.0f64;
            let serial = random_tour(&faulty, start, cap_for(i as u64), &mut serial_rng, |v| {
                weight += f(v) / faulty.degree_of(v) as f64;
            });
            assert_eq!(fate.result, serial, "tour {i} under {tuning:?}");
            assert_eq!(
                fate.weight.to_bits(),
                weight.to_bits(),
                "tour {i} weight ({tuning:?})"
            );
            match fate.result {
                Ok(_) => kinds[0] += 1,
                Err(WalkError::Timeout(_)) => kinds[1] += 1,
                Err(_) => kinds[2] += 1,
            }
        }
        assert!(
            kinds.iter().all(|&k| k > 0),
            "fixture must mix all three fates, got {kinds:?}"
        );
    }
}

#[test]
fn width_one_frontier_degenerates_to_the_serial_engine() {
    // W = 1 is the degenerate frontier: one walk, no interleaving at
    // all. Exact modes must be bit-identical to serial; fast mode must
    // still complete and report a live endpoint.
    let mut rng = SmallRng::seed_from_u64(23);
    let g = generators::balanced(80, 5, &mut rng);
    let frozen = g.freeze();
    let start = g.nodes().next().expect("non-empty");
    for tuning in KernelTuning::ALL {
        let mut specs = vec![CtrwSpec {
            topology: &frozen,
            rng: walk_rng(29, 0),
            start,
            timer: 4.0,
            sojourn: Sojourn::Exponential,
        }];
        let fates = ctrw_frontier_with(&mut specs, FrontierMode::Exact(tuning), &NoopRecorder);
        let mut serial_rng = walk_rng(29, 0);
        let serial = ctrw_walk(&frozen, start, 4.0, Sojourn::Exponential, &mut serial_rng);
        assert_eq!(fates[0].result, serial, "{tuning:?}");
        assert_eq!(specs[0].rng, serial_rng, "{tuning:?}");
    }
    let mut specs = vec![CtrwSpec {
        topology: &frozen,
        rng: walk_rng(29, 0),
        start,
        timer: 4.0,
        sojourn: Sojourn::Exponential,
    }];
    let fates = ctrw_frontier_with(&mut specs, FrontierMode::FastStatEq, &NoopRecorder);
    let out = fates[0].result.expect("fault-free walk completes");
    assert!(frozen.contains(out.node));
}

// ---------------------------------------------------------------------
// FastStatEq statistical acceptance (`scripts/check.sh` re-runs these in
// release mode: `cargo test --release --test frontier_modes fast_`).
// ---------------------------------------------------------------------

#[test]
fn fast_ctrw_endpoint_law_matches_the_exact_distribution() {
    // The pooled generator changes which bits each walk sees, never the
    // law: endpoint counts over many fast frontiers must fit the
    // uniformization oracle exp(−Lt)δ_start within chi-square noise.
    let mut rng = SmallRng::seed_from_u64(31);
    let g = generators::balanced(64, 5, &mut rng);
    let frozen = g.freeze();
    let start = g.nodes().next().expect("non-empty");
    const TIMER: f64 = 6.0;
    let expected = exact_distribution(&g, start, TIMER);
    let idx = DenseIndex::new(&g);

    const WIDTH: u64 = 64;
    const DRAWS: u64 = 60_000;
    let mut counts = vec![0u64; expected.len()];
    let mut launched = 0u64;
    while launched < DRAWS {
        let width = (DRAWS - launched).min(WIDTH);
        let mut specs: Vec<_> = (0..width)
            .map(|i| CtrwSpec {
                topology: &frozen,
                rng: walk_rng(37, launched + i),
                start,
                timer: TIMER,
                sojourn: Sojourn::Exponential,
            })
            .collect();
        for fate in ctrw_frontier_with(&mut specs, FrontierMode::FastStatEq, &NoopRecorder) {
            let out = fate.result.expect("fault-free walk completes");
            counts[idx.dense(out.node)] += 1;
        }
        launched += width;
    }

    let (stat, dof) = chi_square_expected(&counts, &expected);
    let bar = dof as f64 + 6.0 * (2.0 * dof as f64).sqrt();
    assert!(
        stat <= bar,
        "fast-mode chi-square {stat:.1} exceeds {bar:.1} (dof {dof})"
    );
    let empirical: Vec<f64> = counts.iter().map(|&c| c as f64 / DRAWS as f64).collect();
    let tv = total_variation(&empirical, &expected);
    assert!(tv < 0.02, "fast-mode TV to the exact law is {tv:.4}");
}

#[test]
fn fast_tour_estimates_remain_unbiased() {
    // Random Tour with f ≡ 1 estimates the component size (§3.1). The
    // fast mode must keep E[d(start)·Σ 1/d(X_k)] = N.
    let mut rng = SmallRng::seed_from_u64(41);
    let g = generators::barabasi_albert(150, 3, &mut rng);
    let frozen = g.freeze();
    let start = g.nodes().next().expect("non-empty");
    let degree = frozen.degree_of(start) as f64;

    const WIDTH: u64 = 64;
    const TOURS: u64 = 3_000;
    let mut total = 0.0f64;
    let mut completed = 0u64;
    let mut launched = 0u64;
    while launched < TOURS {
        let width = (TOURS - launched).min(WIDTH);
        let mut specs: Vec<_> = (0..width)
            .map(|i| TourSpec {
                topology: &frozen,
                rng: walk_rng(43, launched + i),
                start,
                max_steps: Some(2_000_000),
            })
            .collect();
        for fate in tour_frontier_with(&mut specs, |_| 1.0, FrontierMode::FastStatEq, &NoopRecorder)
        {
            if fate.result.is_ok() {
                total += degree * fate.weight;
                completed += 1;
            }
        }
        launched += width;
    }
    assert!(completed > TOURS * 9 / 10, "tours should complete");
    let mean = total / completed as f64;
    let n = g.num_nodes() as f64;
    assert!(
        (mean - n).abs() / n < 0.15,
        "fast-mode tour estimate {mean:.1} vs true {n} drifts beyond 15%"
    );
}

#[test]
fn fast_mode_is_replay_deterministic() {
    // Fast mode abandons serial streams, not determinism: the same specs
    // and batch composition must reproduce identical fates.
    let mut rng = SmallRng::seed_from_u64(47);
    let g = generators::balanced(100, 6, &mut rng);
    let frozen = g.freeze();
    let start = g.nodes().next().expect("non-empty");
    let build = || -> Vec<TourSpec<&overlay_census::graph::FrozenView, SplitMix64>> {
        (0..32u64)
            .map(|i| TourSpec {
                topology: &frozen,
                rng: walk_rng(53, i),
                start,
                max_steps: Some(100_000),
            })
            .collect()
    };
    let mut a = build();
    let mut b = build();
    let fa = tour_frontier_with(&mut a, |_| 1.0, FrontierMode::FastStatEq, &NoopRecorder);
    let fb = tour_frontier_with(&mut b, |_| 1.0, FrontierMode::FastStatEq, &NoopRecorder);
    assert_eq!(fa, fb, "fast tours must replay bit-identically");
}

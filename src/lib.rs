//! # overlay-census
//!
//! A production-quality Rust reproduction of **“Peer counting and sampling
//! in overlay networks: random walk methods”** (L. Massoulié,
//! E. Le Merrer, A.-M. Kermarrec, A. J. Ganesh — PODC 2006): generic,
//! topology-agnostic estimation of the number of peers in a peer-to-peer
//! overlay — and of arbitrary aggregates `Σ_j f(j)` — using only local
//! neighbour knowledge.
//!
//! The workspace is layered bottom-up; this umbrella crate re-exports
//! every layer:
//!
//! | crate | contents |
//! |---|---|
//! | [`stats`] | streaming moments, sliding windows, ECDFs, distribution distances |
//! | [`metrics`] | cost observability: [`metrics::RunCtx`], per-metric counters and histograms, zero-cost no-op default |
//! | [`graph`] | dynamic overlay graphs, §5.1 topology generators, spectral gap & conductance |
//! | [`walk`] | discrete- and continuous-time random walk engines, message accounting |
//! | [`sampling`] | the CTRW uniform peer sampler and its baselines |
//! | [`core`] | **Random Tour** and **Sample & Collide** estimators + baselines |
//! | [`sim`] | churn scenarios, dynamic experiment runners, fault injection ([`sim::faults`]) |
//! | [`service`] | a continuous-census query engine: epoch-pinned snapshots, bounded queue with explicit backpressure, deterministic worker pool |
//! | [`proto`] | the same protocols at message level: discrete-event delivery, latencies, concurrent operations, departures, timeouts |
//!
//! ## Quickstart
//!
//! ```
//! use overlay_census::prelude::*;
//! use rand::SeedableRng;
//! use rand::rngs::SmallRng;
//!
//! let mut rng = SmallRng::seed_from_u64(42);
//!
//! // A 5,000-peer overlay built exactly like the paper's §5.1 graphs.
//! let overlay = generators::balanced(5_000, 10, &mut rng);
//! let me = overlay.nodes().next().expect("non-empty");
//!
//! // Sample & Collide, l = 100: one estimate within ~10% (Corollary 1).
//! // The registry passively counts every walk hop while the estimate runs.
//! let costs = Registry::new();
//! let mut ctx = RunCtx::with_recorder(&overlay, &mut rng, &costs);
//! let sc = SampleCollide::new(CtrwSampler::new(10.0), 100);
//! let estimate = sc.estimate_with(&mut ctx, me)?;
//! assert!((estimate.value / 5_000.0 - 1.0).abs() < 0.5);
//! assert_eq!(costs.message_total(), estimate.messages);
//! # Ok::<(), overlay_census::core::EstimateError>(())
//! ```
//!
//! The figure harness exposes the same registry per experiment:
//! `cargo run --release -p census-bench --bin figures -- --metrics-json all`
//! writes a `metrics.json` cost breakdown next to the CSVs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use census_core as core;
pub use census_graph as graph;
pub use census_metrics as metrics;
pub use census_proto as proto;
pub use census_sampling as sampling;
pub use census_service as service;
pub use census_sim as sim;
pub use census_stats as stats;
pub use census_walk as walk;

/// Convenience re-exports covering the common workflow: build an overlay,
/// pick a sampler, run an estimator, evaluate the result.
pub mod prelude {
    pub use census_core::{
        AdaptiveSampleCollide, AdaptiveTimeout, Estimate, EstimateError, PointEstimator,
        RandomTour, SampleCollide, SizeEstimator, StepBudgeted, Supervised,
    };
    pub use census_graph::{generators, Graph, NodeId, Topology};
    pub use census_metrics::{GaugeMetric, Metric, NoopRecorder, Recorder, Registry, RunCtx};
    pub use census_sampling::{
        CtrwSampler, DtrwSampler, MetropolisSampler, OracleSampler, Sampler,
    };
    pub use census_service::{
        CensusService, Counter, Query, QueryAnswer, QueryOutcome, RefreezePolicy, ServiceConfig,
        SubmitError,
    };
    pub use census_sim::faults::FaultPlan;
    pub use census_sim::{DynamicNetwork, JoinRule, Scenario};
    pub use census_stats::{Ecdf, OnlineMoments, SlidingWindow, Summary};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_the_workflow() {
        use crate::prelude::*;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;

        let mut rng = SmallRng::seed_from_u64(1);
        let g = generators::balanced(100, 10, &mut rng);
        let initiator = g.nodes().next().expect("non-empty");
        let costs = Registry::new();
        let mut ctx = RunCtx::with_recorder(&g, &mut rng, &costs);
        let est = RandomTour::new()
            .estimate_with(&mut ctx, initiator)
            .expect("connected overlay");
        assert!(est.value > 0.0);
        assert_eq!(costs.counter(Metric::TourHops), est.messages);
    }
}

#!/usr/bin/env bash
# Repo-wide gate: formatting, lints, tests. Run before every push.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> frontier equivalence (release)"
# The batched walk kernel must stay bit-identical to the serial engines
# under the optimiser the benchmarks actually run with — for every
# exact-mode KernelTuning combination (bucketing x prefetch).
cargo test --release --test frontier_equivalence -q

echo "==> frontier fast-mode statistical equivalence (release)"
# FastStatEq trades bit-identity for throughput; its substitute bars —
# chi-square against the exact CTRW law, total-variation distance,
# Random Tour unbiasedness, replay determinism — must hold at release
# optimisation where the mode is actually used.
cargo test --release --test frontier_modes fast_ -q

echo "==> sharded equivalence (release)"
# Same contract for the sharded machinery: stitched segments and the
# multi-shard service must stay bit-identical to the unsharded paths.
cargo test --release --test sharded_equivalence -q

echo "==> snapshot round-trip (release)"
# The binary snapshot codec is the cold-start path of every campaign
# run; the byte-identity and corruption-rejection properties must hold
# under the optimiser too.
cargo test --release --test snapshot_roundtrip -q

echo "==> census under self-construction (release)"
# The overlay-convergence headline (coupled refreezes beat the stale
# snapshot by >= 2x) and per-seed replay identity, at release speed.
cargo test --release --test overlay_census -q

echo "==> cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "All checks passed."

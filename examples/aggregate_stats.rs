//! Aggregate estimation beyond peer counting (§3 of the paper).
//!
//! The Random Tour estimator targets any sum `Σ_j f(j)`. This example
//! reproduces the paper's two motivating aggregates on a scale-free
//! overlay:
//!
//! 1. the number of peers with degree above a threshold, and
//! 2. the total upload capacity (a per-peer attribute), from which a
//!    live-streaming system could decide whether to admit more dial-up
//!    users (the paper's §1 motivation).
//!
//! Run with: `cargo run --release --example aggregate_stats`

use overlay_census::graph::algo;
use overlay_census::graph::attributes::NodeAttributes;
use overlay_census::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), EstimateError> {
    let mut rng = SmallRng::seed_from_u64(11);
    let n = 10_000;
    let overlay = generators::barabasi_albert(n, 3, &mut rng);
    let me = overlay.any_peer(&mut rng).expect("overlay is non-empty");

    // Assign each peer an upload capacity: 80% dial-up (0.05 Mb/s),
    // 20% broadband (10 Mb/s).
    let capacities: NodeAttributes<f64> = overlay
        .nodes()
        .map(|v| {
            let cap = if rng.random::<f64>() < 0.8 {
                0.05
            } else {
                10.0
            };
            (v, cap)
        })
        .collect();
    let true_capacity: f64 = capacities.iter().map(|(_, &c)| c).sum();
    let threshold = 10;
    let true_high_degree = algo::count_degree_above(&overlay, threshold) as f64;

    let rt = RandomTour::new();
    let tours = 200;
    let mut ctx = RunCtx::new(&overlay, &mut rng);

    let mut high_degree = OnlineMoments::new();
    let mut capacity = OnlineMoments::new();
    for _ in 0..tours {
        let est = rt.estimate_sum_with(&mut ctx, me, |j| {
            if overlay.degree(j) > threshold {
                1.0
            } else {
                0.0
            }
        })?;
        high_degree.push(est.value);
        let est = rt.estimate_sum_with(&mut ctx, me, |j| {
            *capacities.get(j).expect("every peer has a capacity")
        })?;
        capacity.push(est.value);
    }

    println!(
        "scale-free overlay: {n} peers, {} edges\n",
        overlay.num_edges()
    );
    println!("aggregate                     truth      estimate ({tours} tours)");
    println!(
        "peers with degree > {threshold}:     {true_high_degree:>8.0}    {:>10.0}  ({:+.1}%)",
        high_degree.mean(),
        100.0 * (high_degree.mean() / true_high_degree - 1.0)
    );
    println!(
        "total upload capacity Mb/s:  {true_capacity:>8.0}    {:>10.0}  ({:+.1}%)",
        capacity.mean(),
        100.0 * (capacity.mean() / true_capacity - 1.0)
    );
    Ok(())
}

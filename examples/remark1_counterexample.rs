//! The paper's Remark 1 counterexample, live.
//!
//! On a regular bipartite overlay, a CTRW emulated with *deterministic*
//! sojourn times (each visit drains exactly `1/d`) can never mix: an
//! integer timer always dies after a fixed number of hops, so the sample
//! is stuck on one side of the bipartition forever. Exponential sojourns
//! (the paper's sampler) mix fine. This example measures the
//! total-variation distance to uniform for both, plus the biased DTRW for
//! contrast.
//!
//! Run with: `cargo run --release --example remark1_counterexample`

use overlay_census::prelude::*;
use overlay_census::sampling::quality;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut rng = SmallRng::seed_from_u64(17);
    let half = 200;
    let degree = 6;
    let g = generators::regular_bipartite(half, degree, &mut rng)
        .expect("simple union of matchings exists");
    let initiator = g.nodes().next().expect("non-empty");
    let runs = 200_000;

    println!(
        "{}-regular bipartite overlay, 2 x {half} peers; timer T = 10; {runs} samples each\n",
        degree
    );

    let fixed = |sampler: &dyn Fn(&mut SmallRng) -> NodeId, rng: &mut SmallRng| {
        let idx = overlay_census::graph::spectral::DenseIndex::new(&g);
        let mut counts = vec![0u64; idx.len()];
        for _ in 0..runs {
            counts[idx.dense(sampler(rng))] += 1;
        }
        let emp: Vec<f64> = counts.iter().map(|&c| c as f64 / f64::from(runs)).collect();
        let uni = vec![1.0 / emp.len() as f64; emp.len()];
        overlay_census::stats::total_variation(&emp, &uni)
    };

    let exp = CtrwSampler::new(10.0);
    let tv_exp = fixed(
        &|rng| exp.sample(&g, initiator, rng).expect("connected").node,
        &mut rng,
    );
    println!("CTRW, exponential sojourns:   TV to uniform = {tv_exp:.4}   (sound)");

    let det = CtrwSampler::with_deterministic_sojourns(10.0);
    let tv_det = fixed(
        &|rng| det.sample(&g, initiator, rng).expect("connected").node,
        &mut rng,
    );
    println!("CTRW, deterministic sojourns: TV to uniform = {tv_det:.4}   (parity-locked, >= 0.5)");

    let dtrw = DtrwSampler::new(60);
    let tv_dtrw = fixed(
        &|rng| dtrw.sample(&g, initiator, rng).expect("connected").node,
        &mut rng,
    );
    println!("DTRW, 60 fixed steps:         TV to uniform = {tv_dtrw:.4}   (parity-locked too)");

    // The exact (noiseless) Lemma 1 quantity for reference.
    let exact = quality::exact_ctrw_tv_to_uniform(&g, initiator, 10.0);
    println!("\nexact CTRW law at T = 10 (uniformization): TV = {exact:.6}");
    assert!(
        tv_det >= 0.45,
        "deterministic sojourns must be parity-locked"
    );
    assert!(tv_exp < 0.1, "exponential sojourns must mix");
}

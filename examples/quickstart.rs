//! Quickstart: estimate the size of an overlay two ways.
//!
//! Builds a 20,000-peer overlay with the paper's balanced-random-graph
//! procedure, then estimates its size from a single peer using
//! (a) averaged Random Tours and (b) one Sample & Collide run, printing
//! accuracy and message cost for both. A [`Registry`] attached to the
//! shared [`RunCtx`] breaks the cost down per metric at the end —
//! recording is passive, so the estimates are unchanged by it.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! The same breakdown is available for every figure of the paper via
//! `cargo run --release -p census-bench --bin figures -- --metrics-json all`.

use overlay_census::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() -> Result<(), EstimateError> {
    let mut rng = SmallRng::seed_from_u64(7);
    let n = 20_000;
    let overlay = generators::balanced(n, 10, &mut rng);
    let me = overlay.any_peer(&mut rng).expect("overlay is non-empty");
    println!(
        "overlay: {n} peers, average degree {:.2}",
        overlay.average_degree()
    );
    println!("probing from {me} (degree {})\n", overlay.degree(me));

    // One context carries the topology, the RNG, and a cost registry
    // through every run below.
    let costs = Registry::new();
    let mut ctx = RunCtx::with_recorder(&overlay, &mut rng, &costs);

    // (a) Random Tour, averaged over 200 tours.
    let rt = RandomTour::new();
    let mut mean = OnlineMoments::new();
    let mut messages = 0u64;
    for _ in 0..200 {
        let est = rt.estimate_with(&mut ctx, me)?;
        mean.push(est.value);
        messages += est.messages;
    }
    println!(
        "Random Tour (200 tours):     N^ = {:>9.0}  ({:>5.1}% of truth, {} messages)",
        mean.mean(),
        100.0 * mean.mean() / n as f64,
        messages
    );

    // (b) Sample & Collide with l = 100 (relative std ~ 10%).
    let sc = SampleCollide::new(CtrwSampler::new(10.0), 100);
    let est = sc.estimate_with(&mut ctx, me)?;
    println!(
        "Sample & Collide (l = 100):  N^ = {:>9.0}  ({:>5.1}% of truth, {} messages)",
        est.value,
        100.0 * est.value / n as f64,
        est.messages
    );

    // What the registry saw: every message the two methods sent.
    println!(
        "\ncost breakdown ({} messages total):",
        costs.message_total()
    );
    println!(
        "  random tour hops:  {:>9}",
        costs.counter(Metric::TourHops)
    );
    println!(
        "  ctrw sample hops:  {:>9}",
        costs.counter(Metric::CtrwHops)
    );
    assert_eq!(costs.message_total(), messages + est.messages);
    Ok(())
}

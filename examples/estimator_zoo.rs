//! Every size estimator in the repository on one overlay.
//!
//! Prints an accuracy/cost table comparing the paper's two methods (at
//! several accuracy settings) against the related-work baselines it
//! discusses: the inverted birthday paradox, gossip averaging, and
//! probabilistic polling.
//!
//! Run with: `cargo run --release --example estimator_zoo`

use overlay_census::core::birthday::InvertedBirthdayParadox;
use overlay_census::core::gossip::GossipAveraging;
use overlay_census::core::polling::ProbabilisticPolling;
use overlay_census::graph::spectral::DenseIndex;
use overlay_census::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn report(name: &str, truth: f64, values: &[f64], messages: &[f64]) {
    let v = Summary::from_slice(values);
    let c = Summary::from_slice(messages);
    let rmse = (values
        .iter()
        .map(|x| (x / truth - 1.0).powi(2))
        .sum::<f64>()
        / values.len() as f64)
        .sqrt();
    println!("{name:<34} {:>9.0}  {rmse:>7.3}  {:>12.0}", v.mean, c.mean);
}

fn main() -> Result<(), EstimateError> {
    let mut rng = SmallRng::seed_from_u64(3);
    let n = 10_000;
    let overlay = generators::balanced(n, 10, &mut rng);
    let truth = n as f64;
    let me = overlay.any_peer(&mut rng).expect("overlay is non-empty");
    let reps = 30;
    let mut ctx = RunCtx::new(&overlay, &mut rng);

    println!("overlay: {n} peers (balanced random graph)\n");
    println!(
        "{:<34} {:>9}  {:>7}  {:>12}",
        "method", "mean N^", "relRMSE", "msgs/run"
    );

    // Random Tour: single tours and a 50-tour average.
    let rt = RandomTour::new();
    let (mut vals, mut costs) = (Vec::new(), Vec::new());
    for _ in 0..reps {
        let e = rt.estimate_with(&mut ctx, me)?;
        vals.push(e.value);
        costs.push(e.messages as f64);
    }
    report("random tour (1 tour)", truth, &vals, &costs);

    let (mut vals, mut costs) = (Vec::new(), Vec::new());
    for _ in 0..reps {
        let mut m = OnlineMoments::new();
        let mut msg = 0u64;
        for _ in 0..50 {
            let e = rt.estimate_with(&mut ctx, me)?;
            m.push(e.value);
            msg += e.messages;
        }
        vals.push(m.mean());
        costs.push(msg as f64);
    }
    report("random tour (50-tour average)", truth, &vals, &costs);

    // Sample & Collide at the paper's two settings.
    for l in [10u32, 100] {
        let sc = SampleCollide::new(CtrwSampler::new(10.0), l);
        let (mut vals, mut costs) = (Vec::new(), Vec::new());
        for _ in 0..reps {
            let e = sc.estimate_with(&mut ctx, me)?;
            vals.push(e.value);
            costs.push(e.messages as f64);
        }
        report(&format!("sample & collide (l = {l})"), truth, &vals, &costs);
    }

    // Adaptive timer variant (unknown spectral gap).
    let adaptive = AdaptiveSampleCollide::new(20, 1.0).with_tolerance(0.15);
    let (mut vals, mut costs) = (Vec::new(), Vec::new());
    for _ in 0..reps {
        let e = adaptive.estimate_with(&mut ctx, me)?;
        vals.push(e.value);
        costs.push(e.messages as f64);
    }
    report("adaptive sample & collide (l=20)", truth, &vals, &costs);

    // Inverted birthday paradox (Bawa et al.), 10 averaged runs.
    let ibp = InvertedBirthdayParadox::new(CtrwSampler::new(10.0), 10);
    let (mut vals, mut costs) = (Vec::new(), Vec::new());
    for _ in 0..reps {
        let e = ibp.estimate_with(&mut ctx, me)?;
        vals.push(e.value);
        costs.push(e.messages as f64);
    }
    report("inverted birthday paradox (x10)", truth, &vals, &costs);

    // Gossip averaging (whole-system protocol).
    let gossip = GossipAveraging::new(45);
    let idx = DenseIndex::new(&overlay);
    let (mut vals, mut costs) = (Vec::new(), Vec::new());
    for _ in 0..5 {
        let out = gossip.run_with(&mut ctx);
        vals.push(out.estimates[idx.dense(me)]);
        costs.push(out.messages as f64);
    }
    report("gossip averaging (45 rounds)", truth, &vals, &costs);

    // Probabilistic polling.
    let polling = ProbabilisticPolling::new(0.1);
    let (mut vals, mut costs) = (Vec::new(), Vec::new());
    for _ in 0..reps {
        let out = polling.run_with(&mut ctx, me);
        vals.push(out.estimate);
        costs.push(out.messages as f64);
    }
    report("probabilistic polling (p=0.1)", truth, &vals, &costs);

    println!(
        "\nnote: gossip amortises its cost over all {n} peers; walk methods bill one initiator."
    );
    Ok(())
}

//! The census as a *service*: concurrent queries over a churning overlay.
//!
//! The paper's estimators are request/response protocols any peer can
//! invoke at any time. This example runs them that way: a
//! [`CensusService`] pins frozen epochs of a 10,000-peer overlay while a
//! churn stream removes a fifth of the membership, four workers answer a
//! mixed stream of Count / Sample / Aggregate queries, and the metrics
//! registry watches the whole thing.
//!
//! Run with: `cargo run --release --example census_service`

use overlay_census::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn degree_mass(_peer: overlay_census::graph::NodeId) -> f64 {
    1.0
}

fn main() {
    let mut rng = SmallRng::seed_from_u64(7);
    let n = 10_000;
    let net = DynamicNetwork::new(
        generators::balanced(n, 10, &mut rng),
        JoinRule::Balanced { max_degree: 10 },
    );

    // Refreeze lazily: only after 500 departures accumulate (or 4 events
    // pass un-published, whichever comes first).
    let config = ServiceConfig::new(42)
        .with_workers(4)
        .with_queue_capacity(64)
        .with_policy(RefreezePolicy::new(500, 4));
    let mut service = CensusService::new(net, config);

    // A fifth of the overlay departs across 10 membership events.
    let events = Scenario::new()
        .remove_gradually(0, 10, n as u64 / 5)
        .events(10);

    let costs = Registry::new();
    let ((submitted, rejected), outcomes) = service.serve_rec(&events, &costs, |census| {
        let mut submitted = 0u64;
        let mut rejected = 0u64;
        for i in 0..48u64 {
            let query = match i % 4 {
                0 => Query::Count(Counter::RandomTour(RandomTour::new())),
                1 => Query::Count(Counter::SampleCollide(SampleCollide::new(
                    CtrwSampler::new(10.0),
                    20,
                ))),
                2 => Query::Sample(CtrwSampler::new(10.0)),
                _ => Query::Aggregate(degree_mass),
            };
            submitted += 1;
            if census.submit(query).is_err() {
                rejected += 1; // explicit backpressure, never a silent drop
            }
        }
        (submitted, rejected)
    });

    println!("continuous census over a shrinking overlay (N0 = {n})\n");
    println!(" id  epoch  kind        answer");
    for o in &outcomes {
        let (kind, answer) = match &o.result {
            Ok(QueryAnswer::Count(e)) => (
                "count",
                format!("N ≈ {:>8.0}  ({} msgs)", e.value, e.messages),
            ),
            Ok(QueryAnswer::Sample(s)) => {
                ("sample", format!("peer {:?} after {} hops", s.node, s.hops))
            }
            Ok(QueryAnswer::Aggregate(e)) => (
                "aggregate",
                format!("Σf ≈ {:>8.0}  ({} msgs)", e.value, e.messages),
            ),
            Err(e) => ("expired", format!("{e}")),
        };
        println!("{:>3}  {:>5}  {kind:<10}  {answer}", o.id, o.epoch);
    }

    let completed = costs.counter(Metric::QueriesCompleted);
    let expired = costs.counter(Metric::QueriesExpired);
    println!(
        "\nledger: {submitted} submitted = {} accepted + {rejected} rejected",
        outcomes.len()
    );
    println!(
        "        {} accepted = {completed} completed + {expired} expired",
        outcomes.len()
    );
    println!(
        "epochs: final snapshot epoch {} (last observed reader lag {})",
        costs.gauge(GaugeMetric::SnapshotEpoch),
        costs.gauge(GaugeMetric::EpochLag),
    );
    println!(
        "cost:   {} overlay messages across all queries",
        costs.message_total()
    );
}

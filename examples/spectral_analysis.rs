//! The spectral side of the paper: why topology decides accuracy.
//!
//! For a set of same-size topologies, computes the Laplacian spectral
//! gap λ₂, the expansion (isoperimetric) estimate, the Cheeger sandwich,
//! Lemma 1's mixing timer recommendation, and the exact CTRW sampling
//! error at the paper's `T = 10` — the quantities Propositions 2 and
//! Lemma 1 tie estimator quality to.
//!
//! Run with: `cargo run --release --example spectral_analysis`

use overlay_census::graph::{metrics, spectral};
use overlay_census::prelude::*;
use overlay_census::sampling::quality;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut rng = SmallRng::seed_from_u64(29);
    let dim = 9usize;
    let n = 1 << dim; // 512 nodes everywhere
    let topologies: Vec<(&str, Graph)> = vec![
        (
            "balanced (paper §5.1)",
            generators::balanced(n, 10, &mut rng),
        ),
        (
            "scale-free (BA m=3)",
            generators::barabasi_albert(n, 3, &mut rng),
        ),
        ("k-out, k=3", generators::k_out(n, 3, &mut rng)),
        ("hypercube", generators::hypercube(dim)),
        (
            "torus",
            generators::torus(1 << (dim / 2), 1 << (dim - dim / 2)),
        ),
        ("ring", generators::ring(n)),
    ];

    println!("{n}-node topologies, paper timer T = 10\n");
    println!(
        "{:<22} {:>7} {:>7} {:>9} {:>10} {:>10} {:>8}",
        "topology", "λ₂", "ι(G)", "Cheeger", "T for 1%", "TV @ T=10", "clust"
    );
    for (name, g) in &topologies {
        let gap = spectral::spectral_gap_with(g, 200_000, 1e-13).lambda2;
        let iota = spectral::isoperimetric_sweep(g);
        let (lo, hi) = spectral::cheeger_bounds(g, iota);
        let sandwich = if lo - 1e-9 <= gap && gap <= hi + 1e-9 {
            "ok"
        } else {
            "VIOLATED"
        };
        let timer = if gap > 1e-9 {
            format!("{:.1}", spectral::mixing_timer(g.num_nodes(), gap, 0.01))
        } else {
            "inf".to_owned()
        };
        let probe = g.nodes().next().expect("non-empty");
        let tv = quality::exact_ctrw_tv_to_uniform(g, probe, 10.0);
        println!(
            "{name:<22} {gap:>7.4} {iota:>7.4} {sandwich:>9} {timer:>10} {tv:>10.4} {:>8.3}",
            metrics::average_clustering(g)
        );
    }
    println!(
        "\nReading: expanders (top rows) mix in T≈10 and sample near-uniformly;\n\
         the torus and ring need far longer timers — exactly Lemma 1's\n\
         ½√N·exp(−λ₂T) bound, and the reason Proposition 2's Random Tour\n\
         variance blows up on them (see ablation-expansion)."
    );
}

//! Tracking a churning overlay (the paper's §5.3, Figure 13 style).
//!
//! Runs Sample & Collide (l = 100) through a catastrophic churn schedule
//! — two 25% mass departures and one flash crowd — and prints an ASCII
//! strip chart of true size vs estimate.
//!
//! Run with: `cargo run --release --example churn_tracking`

use overlay_census::prelude::*;
use overlay_census::sim::runner::{run_dynamic, RunConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut rng = SmallRng::seed_from_u64(13);
    let n = 20_000;
    let g = generators::balanced(n, 10, &mut rng);
    let mut net = DynamicNetwork::new(g, JoinRule::Balanced { max_degree: 10 });

    // Figure 13's schedule scaled to 100 runs: -25% at run 10 and 50,
    // +25% at run 70.
    let quarter = (n / 4) as u64;
    let scenario = Scenario::new()
        .remove_suddenly(10, quarter)
        .remove_suddenly(50, quarter)
        .add_suddenly(70, quarter);

    let sc = SampleCollide::new(CtrwSampler::new(10.0), 100)
        .with_point_estimator(PointEstimator::Asymptotic);
    let records = run_dynamic(&mut net, &sc, &RunConfig::new(100), &scenario, &mut rng);

    println!("Sample & Collide (l = 100) under catastrophic churn, N0 = {n}\n");
    println!("run   true size   estimate   quality  [#: estimate, |: truth]");
    let max = records
        .iter()
        .map(|r| r.true_size.max(r.estimate))
        .fold(0.0f64, f64::max);
    for r in records.iter().step_by(2) {
        let bar = |v: f64| ((v / max) * 48.0).round() as usize;
        let (e, t) = (bar(r.estimate), bar(r.true_size));
        let mut strip = vec![' '; 50];
        strip[e.min(49)] = '#';
        strip[t.min(49)] = '|';
        let strip: String = strip.into_iter().collect();
        println!(
            "{:>3}   {:>9.0}  {:>9.0}   {:>5.1}%  {strip}",
            r.run,
            r.true_size,
            r.estimate,
            100.0 * r.estimate / r.true_size
        );
    }
    let worst = records
        .iter()
        .map(|r| (100.0 * r.estimate / r.true_size - 100.0).abs())
        .fold(0.0f64, f64::max);
    println!(
        "\nworst-case deviation across the run: {worst:.1}% (theory: ~10% std away from events)"
    );
}

//! The estimators as live message protocols.
//!
//! Runs Random Tour and Sample & Collide through the discrete-event
//! protocol simulator: probes hop with exponential network latencies,
//! twenty initiators estimate concurrently, peers churn out mid-flight,
//! and one initiator guards its probe with a timeout (§5.3.1).
//!
//! Run with: `cargo run --release --example protocol_sim`

use overlay_census::prelude::*;
use overlay_census::proto::{Latency, Outcome, ProtocolSim, SimTime};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut rng = SmallRng::seed_from_u64(23);
    let n = 5_000;
    let g = generators::balanced(n, 10, &mut rng);
    let initiators: Vec<NodeId> = g.nodes().step_by(137).take(20).collect();

    // 50 ms mean per-hop latency, like a WAN overlay.
    let mut sim = ProtocolSim::new(g, Latency::ExponentialMean(0.05), 42);

    // Twenty concurrent estimations: ten tours, ten Sample & Collide.
    for (k, &who) in initiators.iter().enumerate() {
        if k % 2 == 0 {
            sim.launch_random_tour(who, Some(3_600.0));
        } else {
            sim.launch_sample_collide(who, 30, 10.0, Some(3_600.0));
        }
    }

    // Churn: a fresh victim departs every 10 virtual seconds.
    let victims: Vec<NodeId> = sim.graph().nodes().step_by(211).take(40).collect();
    for (k, v) in victims.into_iter().enumerate() {
        if !initiators.contains(&v) {
            sim.schedule_departure(v, SimTime::new(10.0 * (k + 1) as f64));
        }
    }

    println!("{n}-peer overlay, 20 concurrent estimations, churn every 10 s\n");
    println!("op   outcome                 messages   finished");
    let mut done = sim.run_until_idle();
    done.sort_by_key(|c| c.op);
    let (mut ok, mut lost) = (0, 0);
    for c in &done {
        let outcome = match c.outcome {
            Outcome::Estimate(v) => {
                ok += 1;
                format!("N^ = {v:>8.0} ({:>5.1}%)", 100.0 * v / n as f64)
            }
            Outcome::Sample(node) => format!("sample {node}"),
            Outcome::TimedOut => {
                lost += 1;
                "timed out".to_owned()
            }
            Outcome::Lost => {
                lost += 1;
                "lost to churn".to_owned()
            }
        };
        println!(
            "{:>3?}  {outcome:<22} {:>9}   {}",
            c.op, c.messages, c.finished_at
        );
    }
    println!(
        "\n{ok} estimates delivered, {lost} probes lost/timed out, virtual time {}",
        sim.now()
    );
}

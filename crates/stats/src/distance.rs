//! Distances between probability distributions.
//!
//! The paper measures peer-sampling quality by the *variation distance*
//! between the distribution of the returned sample and the uniform target
//! (§4.1, Lemma 1). These helpers compute that distance, both between
//! explicit probability vectors and from empirical sample counts, plus a
//! chi-square uniformity statistic and a Kolmogorov–Smirnov statistic used
//! by the test suite to check the limit law of Proposition 3.

/// Total variation distance `½ Σ |p_i − q_i|` between two distributions.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
///
/// # Examples
///
/// ```
/// use census_stats::total_variation;
///
/// let d = total_variation(&[0.5, 0.5], &[1.0, 0.0]);
/// assert!((d - 0.5).abs() < 1e-12);
/// ```
#[must_use]
pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions must have equal support");
    0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

/// Converts raw counts over a support of size `support` into an empirical
/// probability distribution.
///
/// `counts` maps support indices to observation counts; indices not present
/// get probability zero.
///
/// # Panics
///
/// Panics if `support` is zero, if any index is out of range, or if there
/// are no observations.
#[must_use]
pub fn empirical_distribution(counts: &[(usize, u64)], support: usize) -> Vec<f64> {
    assert!(support > 0, "support must be non-empty");
    let total: u64 = counts.iter().map(|&(_, c)| c).sum();
    assert!(total > 0, "empirical distribution needs observations");
    let mut dist = vec![0.0; support];
    for &(idx, c) in counts {
        assert!(idx < support, "count index out of support range");
        dist[idx] += c as f64 / total as f64;
    }
    dist
}

/// Chi-square statistic of observed counts against the uniform distribution
/// over a support of the given size.
///
/// Returns `(statistic, degrees_of_freedom)`. Under uniformity the
/// statistic is approximately chi-square distributed with
/// `support - 1` degrees of freedom, i.e. mean `support - 1` and standard
/// deviation `sqrt(2 (support - 1))`; the test suite uses a
/// `mean + k·std` threshold rather than exact p-values.
///
/// # Panics
///
/// Panics if `support` is zero or if `counts` contains an index outside the
/// support.
#[must_use]
pub fn chi_square_uniform(counts: &[(usize, u64)], support: usize) -> (f64, usize) {
    assert!(support > 0, "support must be non-empty");
    let total: u64 = counts.iter().map(|&(_, c)| c).sum();
    let expected = total as f64 / support as f64;
    let mut stat = 0.0;
    let mut seen = 0usize;
    for &(idx, c) in counts {
        assert!(idx < support, "count index out of support range");
        let d = c as f64 - expected;
        stat += d * d / expected;
        seen += 1;
    }
    // Support points with zero observations contribute `expected` each.
    stat += (support - seen) as f64 * expected;
    (stat, support - 1)
}

/// Chi-square statistic of observed counts against an arbitrary expected
/// probability vector — the general form of [`chi_square_uniform`], for
/// targets like the exact CTRW law of
/// `census_walk::continuous::exact_distribution` or a degree law.
///
/// `counts[i]` is the observation count for support point `i` and
/// `expected[i]` its target probability. Support points with expected
/// probability zero are excluded from the statistic (and from the degrees
/// of freedom) but must have zero observations — a single draw landing on
/// a zero-probability point is an infinite-statistic refutation, reported
/// as `f64::INFINITY`. Returns `(statistic, degrees_of_freedom)` with
/// `dof = (included support points) - 1`; like [`chi_square_uniform`],
/// callers test against `mean + k·std = dof + k·sqrt(2·dof)`.
///
/// # Panics
///
/// Panics if the slices' lengths differ, if `expected` has entries that
/// are negative or non-finite, if its total mass is not ≈ 1, or if there
/// are no observations.
#[must_use]
pub fn chi_square_expected(counts: &[u64], expected: &[f64]) -> (f64, usize) {
    assert_eq!(
        counts.len(),
        expected.len(),
        "counts and expected must share a support"
    );
    assert!(
        expected.iter().all(|&p| p.is_finite() && p >= 0.0),
        "expected probabilities must be finite and non-negative"
    );
    let mass: f64 = expected.iter().sum();
    assert!(
        (mass - 1.0).abs() < 1e-6,
        "expected probabilities must sum to 1, got {mass}"
    );
    let total: u64 = counts.iter().sum();
    assert!(total > 0, "chi-square needs observations");
    let mut stat = 0.0;
    let mut included = 0usize;
    for (&c, &p) in counts.iter().zip(expected) {
        if p == 0.0 {
            if c > 0 {
                return (f64::INFINITY, counts.len().saturating_sub(1));
            }
            continue;
        }
        included += 1;
        let e = total as f64 * p;
        let d = c as f64 - e;
        stat += d * d / e;
    }
    (stat, included.saturating_sub(1))
}

/// One-sample Kolmogorov–Smirnov statistic: the maximal absolute deviation
/// between the empirical CDF of `sample` and the reference CDF `cdf`.
///
/// # Panics
///
/// Panics if the sample is empty or contains non-finite values.
#[must_use]
pub fn ks_statistic<F: Fn(f64) -> f64>(sample: &[f64], cdf: F) -> f64 {
    assert!(!sample.is_empty(), "KS statistic needs a non-empty sample");
    let mut sorted: Vec<f64> = sample.to_vec();
    assert!(
        sorted.iter().all(|v| v.is_finite()),
        "KS statistic requires finite sample values"
    );
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("values are finite"));
    let n = sorted.len() as f64;
    let mut d = 0.0f64;
    for (i, &x) in sorted.iter().enumerate() {
        let f = cdf(x);
        let lo = i as f64 / n;
        let hi = (i + 1) as f64 / n;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn tv_identical_is_zero() {
        assert_eq!(total_variation(&[0.3, 0.7], &[0.3, 0.7]), 0.0);
    }

    #[test]
    fn tv_disjoint_is_one() {
        let d = total_variation(&[1.0, 0.0], &[0.0, 1.0]);
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal support")]
    fn tv_length_mismatch_panics() {
        let _ = total_variation(&[1.0], &[0.5, 0.5]);
    }

    #[test]
    fn empirical_normalises() {
        let dist = empirical_distribution(&[(0, 3), (2, 1)], 4);
        assert_eq!(dist, vec![0.75, 0.0, 0.25, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of support")]
    fn empirical_out_of_range_panics() {
        let _ = empirical_distribution(&[(5, 1)], 4);
    }

    #[test]
    fn chi_square_uniform_counts_is_zero() {
        let counts: Vec<(usize, u64)> = (0..10).map(|i| (i, 100)).collect();
        let (stat, dof) = chi_square_uniform(&counts, 10);
        assert!(stat.abs() < 1e-9);
        assert_eq!(dof, 9);
    }

    #[test]
    fn chi_square_detects_concentration() {
        let (stat, dof) = chi_square_uniform(&[(0, 1000)], 10);
        // All mass on one point of ten: statistic is huge vs dof.
        assert_eq!(dof, 9);
        assert!(stat > 100.0 * dof as f64);
    }

    #[test]
    fn chi_square_counts_missing_support_points() {
        // 100 observations over support 4, all on points 0 and 1.
        let (stat, _) = chi_square_uniform(&[(0, 50), (1, 50)], 4);
        let expected = 25.0;
        let by_hand = 2.0 * (25.0f64.powi(2) / expected) + 2.0 * expected;
        assert!((stat - by_hand).abs() < 1e-9);
    }

    #[test]
    fn chi_square_expected_matches_uniform_special_case() {
        let counts = [48u64, 52, 61, 39];
        let pairs: Vec<(usize, u64)> = counts.iter().copied().enumerate().collect();
        let (general, dof_g) = chi_square_expected(&counts, &[0.25; 4]);
        let (uniform, dof_u) = chi_square_uniform(&pairs, 4);
        assert!((general - uniform).abs() < 1e-9);
        assert_eq!(dof_g, dof_u);
    }

    #[test]
    fn chi_square_expected_is_zero_on_exact_counts() {
        // 1000 draws split exactly as the 0.5/0.3/0.2 target.
        let (stat, dof) = chi_square_expected(&[500, 300, 200], &[0.5, 0.3, 0.2]);
        assert!(stat.abs() < 1e-9);
        assert_eq!(dof, 2);
    }

    #[test]
    fn chi_square_expected_refutes_mass_on_zero_probability_point() {
        let (stat, _) = chi_square_expected(&[99, 0, 1], &[0.5, 0.5, 0.0]);
        assert!(stat.is_infinite());
        // Zero-probability points with zero observations are excluded.
        let (ok, dof) = chi_square_expected(&[50, 50, 0], &[0.5, 0.5, 0.0]);
        assert!(ok.is_finite());
        assert_eq!(dof, 1);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn chi_square_expected_rejects_unnormalised_targets() {
        let _ = chi_square_expected(&[1, 1], &[0.9, 0.9]);
    }

    #[test]
    fn ks_of_exact_uniform_grid_is_small() {
        let sample: Vec<f64> = (0..1000).map(|i| (i as f64 + 0.5) / 1000.0).collect();
        let d = ks_statistic(&sample, |x| x.clamp(0.0, 1.0));
        assert!(d < 0.001);
    }

    #[test]
    fn ks_of_shifted_sample_is_large() {
        let sample: Vec<f64> = (0..100).map(|i| 0.9 + 0.001 * i as f64).collect();
        let d = ks_statistic(&sample, |x| x.clamp(0.0, 1.0));
        assert!(d > 0.8);
    }

    proptest! {
        #[test]
        fn tv_is_symmetric_and_bounded(
            p in proptest::collection::vec(0.0f64..1.0, 2..20),
        ) {
            let total: f64 = p.iter().sum();
            prop_assume!(total > 0.0);
            let p: Vec<f64> = p.iter().map(|x| x / total).collect();
            let n = p.len();
            let q = vec![1.0 / n as f64; n];
            let d1 = total_variation(&p, &q);
            let d2 = total_variation(&q, &p);
            prop_assert!((d1 - d2).abs() < 1e-12);
            prop_assert!((-1e-12..=1.0 + 1e-12).contains(&d1));
        }
    }
}

//! Time-series diagnostics for estimator run sequences.
//!
//! Both of the paper's methods produce *sequences* of estimates whose
//! averaging behaviour matters (sliding windows, cumulative means). These
//! helpers check the i.i.d. assumptions behind that averaging:
//! [`autocorrelation`] detects dependence between consecutive runs (e.g.
//! tours from the same initiator are independent; windowed series are
//! not), and [`bootstrap_mean_ci`] produces distribution-free confidence
//! intervals for estimator means, used by the harness's paper-vs-measured
//! comparisons.

use rand::Rng;

/// Sample autocorrelation of `xs` at the given lag:
/// `Σ (x_t − x̄)(x_{t+lag} − x̄) / Σ (x_t − x̄)²`.
///
/// Returns `NaN` when the series is constant (zero variance).
///
/// # Panics
///
/// Panics if `lag >= xs.len()` or the series is empty.
///
/// # Examples
///
/// ```
/// use census_stats::autocorrelation;
///
/// let alternating: Vec<f64> = (0..100).map(|i| f64::from(i % 2)).collect();
/// assert!(autocorrelation(&alternating, 1) < -0.9);
/// assert!(autocorrelation(&alternating, 2) > 0.9);
/// ```
#[must_use]
pub fn autocorrelation(xs: &[f64], lag: usize) -> f64 {
    assert!(!xs.is_empty(), "autocorrelation needs observations");
    assert!(lag < xs.len(), "lag must be below the series length");
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let denom: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum();
    if denom == 0.0 {
        return f64::NAN;
    }
    let numer: f64 = xs
        .windows(lag + 1)
        .map(|w| (w[0] - mean) * (w[lag] - mean))
        .sum();
    numer / denom
}

/// A two-sided bootstrap confidence interval for the mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower bound.
    pub lo: f64,
    /// Point estimate (the sample mean).
    pub mean: f64,
    /// Upper bound.
    pub hi: f64,
    /// Nominal coverage (e.g. 0.95).
    pub level: f64,
}

impl ConfidenceInterval {
    /// Whether the interval contains `value`.
    #[must_use]
    pub fn contains(&self, value: f64) -> bool {
        (self.lo..=self.hi).contains(&value)
    }

    /// Interval width.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Percentile-bootstrap confidence interval for the mean of `xs`:
/// resamples with replacement `resamples` times and takes the empirical
/// `(1±level)/2` quantiles of the resampled means.
///
/// # Panics
///
/// Panics if `xs` is empty, `resamples` is zero, or `level` is not in
/// `(0, 1)`.
///
/// # Examples
///
/// ```
/// use census_stats::bootstrap_mean_ci;
/// use rand::SeedableRng;
/// use rand::rngs::SmallRng;
///
/// let xs: Vec<f64> = (0..200).map(|i| f64::from(i % 10)).collect();
/// let ci = bootstrap_mean_ci(&xs, 500, 0.95, &mut SmallRng::seed_from_u64(1));
/// assert!(ci.contains(4.5));
/// ```
#[must_use]
pub fn bootstrap_mean_ci<R: Rng>(
    xs: &[f64],
    resamples: u32,
    level: f64,
    rng: &mut R,
) -> ConfidenceInterval {
    assert!(!xs.is_empty(), "bootstrap needs observations");
    assert!(resamples > 0, "need at least one resample");
    assert!(level > 0.0 && level < 1.0, "level must lie in (0, 1)");
    let n = xs.len();
    let mean = xs.iter().sum::<f64>() / n as f64;
    let mut means: Vec<f64> = (0..resamples)
        .map(|_| {
            let total: f64 = (0..n).map(|_| xs[rng.random_range(0..n)]).sum();
            total / n as f64
        })
        .collect();
    means.sort_by(|a, b| a.partial_cmp(b).expect("means are finite"));
    let alpha = (1.0 - level) / 2.0;
    let pick = |q: f64| {
        let idx = ((means.len() as f64 - 1.0) * q).round() as usize;
        means[idx]
    };
    ConfidenceInterval {
        lo: pick(alpha),
        mean,
        hi: pick(1.0 - alpha),
        level,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn iid_noise_has_small_autocorrelation() {
        let mut rng = SmallRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..5_000).map(|_| rng.random::<f64>()).collect();
        for lag in 1..5 {
            let r = autocorrelation(&xs, lag);
            assert!(r.abs() < 0.05, "lag {lag}: {r}");
        }
    }

    #[test]
    fn moving_average_series_is_positively_correlated() {
        // A sliding-window mean over iid noise has autocorrelation
        // ~ 1 - lag/window at small lags: the reason windowed quality
        // plots look smooth (and why window width trades reactivity).
        let mut rng = SmallRng::seed_from_u64(2);
        let raw: Vec<f64> = (0..6_000).map(|_| rng.random::<f64>()).collect();
        let window = 50;
        let smoothed: Vec<f64> = raw
            .windows(window)
            .map(|w| w.iter().sum::<f64>() / window as f64)
            .collect();
        let r1 = autocorrelation(&smoothed, 1);
        let r25 = autocorrelation(&smoothed, 25);
        assert!(r1 > 0.9, "lag-1 of smoothed series: {r1}");
        assert!(r25 > 0.3 && r25 < 0.7, "lag-25 of smoothed series: {r25}");
    }

    #[test]
    fn constant_series_is_nan() {
        assert!(autocorrelation(&[3.0; 10], 1).is_nan());
    }

    #[test]
    fn lag_zero_is_one() {
        let xs = [1.0, 5.0, 2.0, 8.0];
        assert!((autocorrelation(&xs, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "below the series length")]
    fn oversized_lag_panics() {
        let _ = autocorrelation(&[1.0, 2.0], 5);
    }

    #[test]
    fn ci_covers_true_mean_of_known_distribution() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut covered = 0;
        let trials = 60;
        for _ in 0..trials {
            let xs: Vec<f64> = (0..150).map(|_| rng.random::<f64>() * 2.0).collect();
            let ci = bootstrap_mean_ci(&xs, 300, 0.95, &mut rng);
            if ci.contains(1.0) {
                covered += 1;
            }
        }
        // 95% nominal coverage: allow generous slack on 60 trials.
        assert!(covered >= 50, "covered only {covered}/{trials}");
    }

    #[test]
    fn ci_width_shrinks_with_sample_size() {
        let mut rng = SmallRng::seed_from_u64(4);
        let small: Vec<f64> = (0..50).map(|_| rng.random::<f64>()).collect();
        let large: Vec<f64> = (0..5_000).map(|_| rng.random::<f64>()).collect();
        let ci_small = bootstrap_mean_ci(&small, 400, 0.95, &mut rng);
        let ci_large = bootstrap_mean_ci(&large, 400, 0.95, &mut rng);
        assert!(ci_large.width() < ci_small.width() / 3.0);
    }

    #[test]
    fn singleton_sample_is_degenerate_interval() {
        let mut rng = SmallRng::seed_from_u64(5);
        let ci = bootstrap_mean_ci(&[7.0], 100, 0.9, &mut rng);
        assert_eq!((ci.lo, ci.mean, ci.hi), (7.0, 7.0, 7.0));
        assert_eq!(ci.width(), 0.0);
    }

    proptest! {
        #[test]
        fn ci_is_ordered_and_brackets_the_mean(
            xs in proptest::collection::vec(-100.0f64..100.0, 2..80),
            seed in any::<u64>(),
        ) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let ci = bootstrap_mean_ci(&xs, 200, 0.9, &mut rng);
            prop_assert!(ci.lo <= ci.hi);
            // The sample mean need not be inside a percentile CI in
            // pathological cases, but lo/hi must be plausible resample
            // means, i.e. within the data range.
            let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
            let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(ci.lo >= min - 1e-9 && ci.hi <= max + 1e-9);
        }

        #[test]
        fn autocorrelation_is_bounded(
            xs in proptest::collection::vec(-100.0f64..100.0, 3..100),
            lag in 1usize..3,
        ) {
            prop_assume!(lag < xs.len());
            let r = autocorrelation(&xs, lag);
            if !r.is_nan() {
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
            }
        }
    }
}

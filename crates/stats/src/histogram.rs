//! Uniform-bin histograms.

/// A histogram with uniformly sized bins over a fixed range.
///
/// Values below the range are clamped into the first bin and values above
/// into the last, so every pushed finite value is counted; this mirrors how
/// the paper reports bounded "quality %" plots.
///
/// # Examples
///
/// ```
/// use census_stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// h.push(1.0);
/// h.push(9.5);
/// assert_eq!(h.counts(), &[1, 0, 0, 0, 1]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` uniform bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`, if `lo >= hi`, or if either bound is not
    /// finite.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(lo < hi, "lower bound must be below upper bound");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Adds one observation. Non-finite values are ignored.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        let bins = self.counts.len();
        let idx = ((x - self.lo) / (self.hi - self.lo) * bins as f64).floor();
        let idx = if idx < 0.0 {
            0
        } else {
            (idx as usize).min(bins - 1)
        };
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Per-bin counts.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of counted observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Per-bin relative frequencies; all zeros when empty.
    #[must_use]
    pub fn frequencies(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Midpoint of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of range");
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + width * (i as f64 + 0.5)
    }

    /// Number of bins.
    #[must_use]
    pub fn bins(&self) -> usize {
        self.counts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_binning() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for x in [0.0, 0.1, 0.3, 0.5, 0.99] {
            h.push(x);
        }
        assert_eq!(h.counts(), &[2, 1, 1, 1]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn clamps_out_of_range() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.push(-5.0);
        h.push(5.0);
        h.push(1.0); // hi itself clamps into last bin
        assert_eq!(h.counts(), &[1, 2]);
    }

    #[test]
    fn ignores_non_finite() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.push(f64::NAN);
        h.push(f64::INFINITY);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn frequencies_sum_to_one() {
        let mut h = Histogram::new(0.0, 10.0, 7);
        for i in 0..100 {
            h.push(i as f64 / 10.0);
        }
        let sum: f64 = h.frequencies().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bin_centers() {
        let h = Histogram::new(0.0, 10.0, 5);
        assert_eq!(h.bin_center(0), 1.0);
        assert_eq!(h.bin_center(4), 9.0);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "below upper bound")]
    fn inverted_bounds_panic() {
        let _ = Histogram::new(1.0, 0.0, 3);
    }

    proptest! {
        #[test]
        fn total_equals_finite_pushes(xs in proptest::collection::vec(-10f64..20.0, 0..200)) {
            let mut h = Histogram::new(0.0, 10.0, 11);
            for &x in &xs {
                h.push(x);
            }
            prop_assert_eq!(h.total(), xs.len() as u64);
            prop_assert_eq!(h.counts().iter().sum::<u64>(), xs.len() as u64);
        }
    }
}

//! Fixed-capacity sliding-window average.

use std::collections::VecDeque;

/// A fixed-capacity sliding window maintaining a running mean.
///
/// The paper smooths noisy per-run size estimates with sliding windows
/// (200 samples in Figures 2 and 6, 700 samples in Figures 8–10). A larger
/// window reduces estimator variance at the cost of reactivity to churn;
/// this trade-off is exactly what `SlidingWindow` lets the experiments
/// explore.
///
/// # Examples
///
/// ```
/// use census_stats::SlidingWindow;
///
/// let mut w = SlidingWindow::new(2);
/// w.push(1.0);
/// w.push(3.0);
/// assert_eq!(w.mean(), 2.0);
/// w.push(5.0); // evicts 1.0
/// assert_eq!(w.mean(), 4.0);
/// ```
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    capacity: usize,
    values: VecDeque<f64>,
    sum: f64,
}

impl SlidingWindow {
    /// Creates a window holding at most `capacity` values.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "sliding window capacity must be positive");
        Self {
            capacity,
            values: VecDeque::with_capacity(capacity),
            sum: 0.0,
        }
    }

    /// Appends a value, evicting the oldest when full. Returns the evicted
    /// value, if any.
    pub fn push(&mut self, x: f64) -> Option<f64> {
        let evicted = if self.values.len() == self.capacity {
            let old = self.values.pop_front().expect("window is non-empty");
            self.sum -= old;
            Some(old)
        } else {
            None
        };
        self.values.push_back(x);
        self.sum += x;
        // Guard against drift from long streams of cancelling additions.
        if self.values.len().is_multiple_of(4096) {
            self.sum = self.values.iter().sum();
        }
        evicted
    }

    /// Mean of the values currently in the window; `NaN` when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            f64::NAN
        } else {
            self.sum / self.values.len() as f64
        }
    }

    /// Number of values currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the window holds no values.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Whether the window has reached its capacity.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.values.len() == self.capacity
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates over the values from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.values.iter().copied()
    }

    /// Removes all values.
    pub fn clear(&mut self) {
        self.values.clear();
        self.sum = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = SlidingWindow::new(0);
    }

    #[test]
    fn empty_mean_is_nan() {
        assert!(SlidingWindow::new(3).mean().is_nan());
    }

    #[test]
    fn fills_then_evicts_fifo() {
        let mut w = SlidingWindow::new(3);
        assert_eq!(w.push(1.0), None);
        assert_eq!(w.push(2.0), None);
        assert_eq!(w.push(3.0), None);
        assert!(w.is_full());
        assert_eq!(w.push(4.0), Some(1.0));
        assert_eq!(w.mean(), 3.0);
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn clear_resets() {
        let mut w = SlidingWindow::new(2);
        w.push(5.0);
        w.clear();
        assert!(w.is_empty());
        assert!(w.mean().is_nan());
        w.push(7.0);
        assert_eq!(w.mean(), 7.0);
    }

    #[test]
    fn iter_is_oldest_first() {
        let mut w = SlidingWindow::new(2);
        w.push(1.0);
        w.push(2.0);
        w.push(3.0);
        let v: Vec<f64> = w.iter().collect();
        assert_eq!(v, vec![2.0, 3.0]);
    }

    #[test]
    fn long_stream_stays_accurate() {
        let mut w = SlidingWindow::new(100);
        for i in 0..100_000 {
            w.push((i % 7) as f64 * 1e6 - 3e6);
        }
        let expected: f64 = w.iter().sum::<f64>() / w.len() as f64;
        assert!((w.mean() - expected).abs() < 1e-6);
    }

    proptest! {
        #[test]
        fn mean_matches_naive(
            xs in proptest::collection::vec(-1e6f64..1e6, 1..300),
            cap in 1usize..50,
        ) {
            let mut w = SlidingWindow::new(cap);
            for &x in &xs {
                w.push(x);
            }
            let tail: Vec<f64> = xs.iter().rev().take(cap).rev().copied().collect();
            let naive = tail.iter().sum::<f64>() / tail.len() as f64;
            prop_assert!((w.mean() - naive).abs() < 1e-6);
            prop_assert_eq!(w.len(), tail.len());
        }
    }
}

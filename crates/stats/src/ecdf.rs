//! Empirical cumulative distribution functions.

/// An empirical cumulative distribution function built from a sample.
///
/// Used to regenerate the CDF plots of the paper (Figure 4: distribution of
/// normalised estimate values; Figure 5: distribution of normalised message
/// costs). Evaluation is `O(log n)` by binary search over the sorted sample.
///
/// # Examples
///
/// ```
/// use census_stats::Ecdf;
///
/// let cdf = Ecdf::new(vec![1.0, 2.0, 2.0, 4.0]);
/// assert_eq!(cdf.eval(0.0), 0.0);
/// assert_eq!(cdf.eval(2.0), 0.75);
/// assert_eq!(cdf.eval(10.0), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from a sample. Non-finite values are discarded.
    ///
    /// # Panics
    ///
    /// Panics if the sample contains no finite value.
    #[must_use]
    pub fn new(mut values: Vec<f64>) -> Self {
        values.retain(|v| v.is_finite());
        assert!(
            !values.is_empty(),
            "ECDF requires at least one finite value"
        );
        values.sort_by(|a, b| a.partial_cmp(b).expect("values are finite"));
        Self { sorted: values }
    }

    /// Fraction of the sample that is `<= x`.
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        self.sorted.partition_point(|&v| v <= x) as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (`0 <= q <= 1`) using the nearest-rank method.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile level must lie in [0, 1]"
        );
        if q == 0.0 {
            return self.sorted[0];
        }
        let rank = (q * self.sorted.len() as f64).ceil() as usize;
        self.sorted[rank.clamp(1, self.sorted.len()) - 1]
    }

    /// Median of the sample.
    #[must_use]
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Number of sample points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the ECDF is built on an empty sample (never true: the
    /// constructor rejects empty input, so this always returns `false`; it
    /// exists for API symmetry with `len`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Smallest sample value.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest sample value.
    #[must_use]
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("ECDF is non-empty")
    }

    /// Returns `(x, F(x))` points suitable for plotting: the CDF evaluated
    /// at `resolution + 1` evenly spaced abscissae spanning the sample
    /// range.
    ///
    /// # Panics
    ///
    /// Panics if `resolution` is zero.
    #[must_use]
    pub fn plot_points(&self, resolution: usize) -> Vec<(f64, f64)> {
        assert!(resolution > 0, "resolution must be positive");
        let (lo, hi) = (self.min(), self.max());
        let step = (hi - lo) / resolution as f64;
        (0..=resolution)
            .map(|i| {
                let x = lo + step * i as f64;
                (x, self.eval(x))
            })
            .collect()
    }

    /// The sorted sample underlying the ECDF.
    #[must_use]
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    #[should_panic(expected = "at least one finite value")]
    fn empty_panics() {
        let _ = Ecdf::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "at least one finite value")]
    fn all_nan_panics() {
        let _ = Ecdf::new(vec![f64::NAN, f64::INFINITY]);
    }

    #[test]
    fn step_values() {
        let cdf = Ecdf::new(vec![3.0, 1.0, 2.0, 2.0]);
        assert_eq!(cdf.eval(0.5), 0.0);
        assert_eq!(cdf.eval(1.0), 0.25);
        assert_eq!(cdf.eval(1.5), 0.25);
        assert_eq!(cdf.eval(2.0), 0.75);
        assert_eq!(cdf.eval(3.0), 1.0);
    }

    #[test]
    fn quantiles() {
        let cdf = Ecdf::new((1..=10).map(f64::from).collect());
        assert_eq!(cdf.quantile(0.0), 1.0);
        assert_eq!(cdf.quantile(0.1), 1.0);
        assert_eq!(cdf.median(), 5.0);
        assert_eq!(cdf.quantile(1.0), 10.0);
    }

    #[test]
    fn plot_points_monotone() {
        let cdf = Ecdf::new(vec![0.0, 1.0, 5.0, 9.0, 10.0]);
        let pts = cdf.plot_points(20);
        assert_eq!(pts.len(), 21);
        for w in pts.windows(2) {
            assert!(w[1].1 >= w[0].1);
            assert!(w[1].0 >= w[0].0);
        }
        assert_eq!(pts.last().expect("non-empty").1, 1.0);
    }

    #[test]
    fn single_point() {
        let cdf = Ecdf::new(vec![7.0]);
        assert_eq!(cdf.eval(6.9), 0.0);
        assert_eq!(cdf.eval(7.0), 1.0);
        assert_eq!(cdf.median(), 7.0);
    }

    proptest! {
        #[test]
        fn eval_is_monotone_in_x(
            xs in proptest::collection::vec(-1e3f64..1e3, 1..100),
            a in -1e3f64..1e3,
            b in -1e3f64..1e3,
        ) {
            let cdf = Ecdf::new(xs);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(cdf.eval(lo) <= cdf.eval(hi));
        }

        #[test]
        fn quantile_inverts_eval(
            xs in proptest::collection::vec(-1e3f64..1e3, 1..100),
            q in 0.01f64..1.0,
        ) {
            let cdf = Ecdf::new(xs);
            let x = cdf.quantile(q);
            prop_assert!(cdf.eval(x) >= q - 1e-12);
        }
    }
}

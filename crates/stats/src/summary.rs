//! One-shot descriptive statistics.

use crate::OnlineMoments;

/// Descriptive statistics of a finished sample.
///
/// This is the record printed by the figure harness for Table 1 of the
/// paper (mean and variance of normalised estimate values and costs).
///
/// # Examples
///
/// ```
/// use census_stats::Summary;
///
/// let s = Summary::from_slice(&[1.0, 2.0, 3.0]);
/// assert_eq!(s.mean, 2.0);
/// assert_eq!(s.count, 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample variance (`n - 1` denominator); `NaN` if `count < 2`.
    pub variance: f64,
    /// Sample standard deviation.
    pub std: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Summary {
    /// Summarises a slice of observations.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    #[must_use]
    pub fn from_slice(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot summarise an empty sample");
        let m: OnlineMoments = values.iter().copied().collect();
        Self::from(&m)
    }

    /// Relative standard deviation `std / |mean|`; `NaN` when the mean is
    /// zero or moments are undefined.
    #[must_use]
    pub fn relative_std(&self) -> f64 {
        if self.mean == 0.0 {
            f64::NAN
        } else {
            self.std / self.mean.abs()
        }
    }
}

impl From<&OnlineMoments> for Summary {
    fn from(m: &OnlineMoments) -> Self {
        Self {
            count: m.count(),
            mean: m.mean(),
            variance: m.sample_variance(),
            std: m.sample_std(),
            min: m.min(),
            max: m.max(),
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.4} var={:.4} std={:.4} min={:.4} max={:.4}",
            self.count, self.mean, self.variance, self.std, self.min, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarises_known_sample() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert_eq!(s.mean, 5.0);
        assert!((s.variance - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_panics() {
        let _ = Summary::from_slice(&[]);
    }

    #[test]
    fn relative_std() {
        let s = Summary::from_slice(&[9.0, 11.0]);
        assert!((s.relative_std() - (2.0f64).sqrt() / 10.0).abs() < 1e-12);
    }

    #[test]
    fn serde_roundtrip() {
        let s = Summary::from_slice(&[1.0, 2.0]);
        let json = serde_json::to_string(&s).expect("serialize");
        assert_eq!(
            serde_json::from_str::<Summary>(&json).expect("deserialize"),
            s
        );
    }

    #[test]
    fn display_is_nonempty() {
        let s = Summary::from_slice(&[1.0]);
        assert!(!format!("{s}").is_empty());
    }
}

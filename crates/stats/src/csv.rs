//! Minimal CSV writing for experiment outputs.
//!
//! The figure harness emits one CSV per paper figure. The format is plain
//! enough that an external dependency is unwarranted: numeric columns,
//! comma separation, no quoting needed for the identifiers we emit (writer
//! rejects fields that would require quoting rather than silently
//! corrupting the file).

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// An in-memory CSV table with a fixed header.
///
/// # Examples
///
/// ```
/// use census_stats::csv::CsvTable;
///
/// let mut t = CsvTable::new(&["run", "estimate"]);
/// t.push_row(&[1.0, 99_832.0]);
/// assert!(t.to_csv_string().starts_with("run,estimate\n1,99832\n"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsvTable {
    header: Vec<String>,
    rows: Vec<Vec<f64>>,
}

impl CsvTable {
    /// Creates a table with the given column names.
    ///
    /// # Panics
    ///
    /// Panics if there are no columns or a column name contains a comma,
    /// quote, or newline.
    #[must_use]
    pub fn new(columns: &[&str]) -> Self {
        assert!(!columns.is_empty(), "CSV table needs at least one column");
        for c in columns {
            assert!(
                !c.contains([',', '"', '\n', '\r']),
                "column name {c:?} requires quoting, which this writer does not support"
            );
        }
        Self {
            header: columns.iter().map(|c| (*c).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a numeric row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width must match header width"
        );
        self.rows.push(row.to_vec());
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as a CSV string. Integral values are printed
    /// without a trailing `.0` so the files diff cleanly.
    #[must_use]
    pub fn to_csv_string(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            for (i, v) in row.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    let _ = write!(out, "{}", *v as i64);
                } else {
                    let _ = write!(out, "{v}");
                }
            }
            out.push('\n');
        }
        out
    }

    /// Writes the table to a file, creating parent directories as needed.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from directory creation or the file write.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_and_rows() {
        let mut t = CsvTable::new(&["a", "b"]);
        t.push_row(&[1.0, 2.5]);
        t.push_row(&[-3.0, 0.125]);
        assert_eq!(t.to_csv_string(), "a,b\n1,2.5\n-3,0.125\n");
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_panics() {
        let mut t = CsvTable::new(&["a"]);
        t.push_row(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "requires quoting")]
    fn comma_in_header_panics() {
        let _ = CsvTable::new(&["a,b"]);
    }

    #[test]
    fn writes_file() {
        let dir = std::env::temp_dir().join("census-stats-csv-test");
        let path = dir.join("nested/out.csv");
        let mut t = CsvTable::new(&["x"]);
        t.push_row(&[7.0]);
        t.write_to(&path).expect("write succeeds");
        let body = std::fs::read_to_string(&path).expect("file exists");
        assert_eq!(body, "x\n7\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

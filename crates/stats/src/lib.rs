//! Statistical utilities shared by the overlay-census crates.
//!
//! This crate provides the small, dependency-light statistical toolbox used
//! throughout the reproduction of Massoulié et al., *Peer counting and
//! sampling in overlay networks: random walk methods* (PODC 2006):
//!
//! - [`OnlineMoments`]: numerically stable streaming mean/variance
//!   (Welford's algorithm), used to summarise estimator runs.
//! - [`SlidingWindow`]: fixed-size moving average, used by the paper's
//!   dynamic experiments (e.g. the 700-sample window of Figures 8–10).
//! - [`Ecdf`]: empirical cumulative distribution function, used for the CDF
//!   plots of Figures 4 and 5.
//! - [`Histogram`]: uniform-bin histogram.
//! - distance measures ([`total_variation`], [`chi_square_uniform`],
//!   [`chi_square_expected`], [`ks_statistic`]) used to quantify the
//!   quality of peer-sampling distributions against the uniform target
//!   (or any explicit target law).
//! - [`Summary`]: one-shot descriptive statistics of a sample.
//!
//! # Examples
//!
//! ```
//! use census_stats::OnlineMoments;
//!
//! let mut m = OnlineMoments::new();
//! for x in [1.0, 2.0, 3.0] {
//!     m.push(x);
//! }
//! assert_eq!(m.mean(), 2.0);
//! assert_eq!(m.sample_variance(), 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod distance;
mod ecdf;
mod histogram;
mod moments;
mod series;
mod summary;
mod window;

pub mod csv;

pub use distance::{
    chi_square_expected, chi_square_uniform, empirical_distribution, ks_statistic, total_variation,
};
pub use ecdf::Ecdf;
pub use histogram::Histogram;
pub use moments::OnlineMoments;
pub use series::{autocorrelation, bootstrap_mean_ci, ConfidenceInterval};
pub use summary::Summary;
pub use window::SlidingWindow;

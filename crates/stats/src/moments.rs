//! Streaming mean/variance via Welford's algorithm.

/// Numerically stable streaming estimator of mean and variance.
///
/// Uses Welford's online algorithm so that very long runs (millions of
/// estimator invocations) do not lose precision to catastrophic
/// cancellation. Two accumulators can be [merged](OnlineMoments::merge),
/// which the figure harness uses to combine per-thread partial results.
///
/// # Examples
///
/// ```
/// use census_stats::OnlineMoments;
///
/// let m: OnlineMoments = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
/// assert_eq!(m.mean(), 5.0);
/// assert_eq!(m.population_variance(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OnlineMoments {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineMoments {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineMoments) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations seen so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of the observations; `NaN` when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Population variance (divides by `n`); `NaN` when empty.
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by `n - 1`); `NaN` when fewer than two
    /// observations have been pushed.
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            f64::NAN
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn sample_std(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean, `s / sqrt(n)`.
    #[must_use]
    pub fn standard_error(&self) -> f64 {
        self.sample_std() / (self.count as f64).sqrt()
    }

    /// Smallest observation; `+inf` when empty.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `-inf` when empty.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl FromIterator<f64> for OnlineMoments {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut m = OnlineMoments::new();
        for x in iter {
            m.push(x);
        }
        m
    }
}

impl Extend<f64> for OnlineMoments {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_is_nan() {
        let m = OnlineMoments::new();
        assert_eq!(m.count(), 0);
        assert!(m.mean().is_nan());
        assert!(m.population_variance().is_nan());
        assert!(m.sample_variance().is_nan());
    }

    #[test]
    fn single_observation() {
        let mut m = OnlineMoments::new();
        m.push(42.0);
        assert_eq!(m.mean(), 42.0);
        assert_eq!(m.population_variance(), 0.0);
        assert!(m.sample_variance().is_nan());
        assert_eq!(m.min(), 42.0);
        assert_eq!(m.max(), 42.0);
    }

    #[test]
    fn known_variance() {
        let m: OnlineMoments = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(m.mean(), 5.0);
        assert!((m.population_variance() - 4.0).abs() < 1e-12);
        assert!((m.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let (a, b) = xs.split_at(37);
        let mut left: OnlineMoments = a.iter().copied().collect();
        let right: OnlineMoments = b.iter().copied().collect();
        left.merge(&right);
        let all: OnlineMoments = xs.iter().copied().collect();
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-10);
        assert!((left.sample_variance() - all.sample_variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut m: OnlineMoments = [1.0, 2.0].into_iter().collect();
        let before = m;
        m.merge(&OnlineMoments::new());
        assert_eq!(m, before);
        let mut e = OnlineMoments::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn extend_appends() {
        let mut m = OnlineMoments::new();
        m.extend([1.0, 3.0]);
        m.extend([5.0]);
        assert_eq!(m.count(), 3);
        assert_eq!(m.mean(), 3.0);
    }

    #[test]
    fn standard_error_shrinks_with_n() {
        let small: OnlineMoments = (0..10).map(|i| i as f64).collect();
        let large: OnlineMoments = (0..1000).map(|i| (i % 10) as f64).collect();
        assert!(large.standard_error() < small.standard_error());
    }

    proptest! {
        #[test]
        fn mean_within_min_max(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let m: OnlineMoments = xs.iter().copied().collect();
            prop_assert!(m.mean() >= m.min() - 1e-9);
            prop_assert!(m.mean() <= m.max() + 1e-9);
        }

        #[test]
        fn variance_non_negative(xs in proptest::collection::vec(-1e6f64..1e6, 2..200)) {
            let m: OnlineMoments = xs.iter().copied().collect();
            prop_assert!(m.population_variance() >= -1e-9);
            prop_assert!(m.sample_variance() >= -1e-9);
        }

        #[test]
        fn merge_commutes(
            xs in proptest::collection::vec(-1e3f64..1e3, 0..50),
            ys in proptest::collection::vec(-1e3f64..1e3, 0..50),
        ) {
            let a: OnlineMoments = xs.iter().copied().collect();
            let b: OnlineMoments = ys.iter().copied().collect();
            let mut ab = a;
            ab.merge(&b);
            let mut ba = b;
            ba.merge(&a);
            prop_assert_eq!(ab.count(), ba.count());
            if ab.count() > 0 {
                prop_assert!((ab.mean() - ba.mean()).abs() < 1e-9);
                prop_assert!((ab.population_variance() - ba.population_variance()).abs() < 1e-6);
            }
        }
    }
}

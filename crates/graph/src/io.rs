//! Overlay snapshot I/O.
//!
//! Two interchange formats for [`Graph`] snapshots:
//!
//! - a line-oriented **edge-list** text format (`write_edge_list` /
//!   `read_edge_list`) for quick inspection and interop with graph tools;
//! - **serde** support on [`Graph`] itself (via a stable `{slots, dead,
//!   edges}` representation), so experiments can checkpoint overlays with
//!   any serde format.
//!
//! Both formats preserve dead (departed) node slots: identifiers are
//! never recycled (see [`crate::NodeId`]), and a faithful snapshot must
//! keep the slot numbering intact.

use std::io::{self, BufRead, Write};

use crate::{Graph, NodeId};

/// Magic first line of the edge-list format.
const HEADER: &str = "# overlay-census edge list v1";

/// Writes a graph snapshot in the edge-list text format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Examples
///
/// ```
/// use census_graph::{generators, io};
///
/// let g = generators::ring(4);
/// let mut buf = Vec::new();
/// io::write_edge_list(&g, &mut buf)?;
/// let restored = io::read_edge_list(&buf[..])?;
/// assert_eq!(g, restored);
/// # Ok::<(), std::io::Error>(())
/// ```
pub fn write_edge_list<W: Write>(g: &Graph, mut w: W) -> io::Result<()> {
    writeln!(w, "{HEADER}")?;
    writeln!(w, "slots {}", g.slot_count())?;
    for i in 0..g.slot_count() {
        if !g.is_alive(NodeId::new(i)) {
            writeln!(w, "dead {i}")?;
        }
    }
    for (a, b) in g.edges() {
        writeln!(w, "edge {} {}", a.index(), b.index())?;
    }
    Ok(())
}

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Reads a graph snapshot written by [`write_edge_list`].
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] on any malformed line, unknown
/// directive, out-of-range index, duplicate edge, or edge touching a dead
/// slot, in addition to propagating reader errors.
pub fn read_edge_list<R: BufRead>(r: R) -> io::Result<Graph> {
    let mut lines = r.lines();
    let first = lines
        .next()
        .ok_or_else(|| bad_data("empty input".into()))??;
    if first.trim() != HEADER {
        return Err(bad_data(format!("missing header, got {first:?}")));
    }
    let mut graph: Option<Graph> = None;
    for line in lines {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let directive = parts.next().expect("non-empty line has a token");
        match directive {
            "slots" => {
                if graph.is_some() {
                    return Err(bad_data("duplicate slots directive".into()));
                }
                let n: usize = parts
                    .next()
                    .ok_or_else(|| bad_data("slots needs a count".into()))?
                    .parse()
                    .map_err(|e| bad_data(format!("bad slot count: {e}")))?;
                let mut g = Graph::with_capacity(n);
                g.add_nodes(n);
                graph = Some(g);
            }
            "dead" => {
                let g = graph
                    .as_mut()
                    .ok_or_else(|| bad_data("dead before slots".into()))?;
                let i: usize = parts
                    .next()
                    .ok_or_else(|| bad_data("dead needs an index".into()))?
                    .parse()
                    .map_err(|e| bad_data(format!("bad dead index: {e}")))?;
                if i >= g.slot_count() {
                    return Err(bad_data(format!("dead index {i} out of range")));
                }
                g.remove_node(NodeId::new(i))
                    .map_err(|e| bad_data(format!("cannot kill slot {i}: {e}")))?;
            }
            "edge" => {
                let g = graph
                    .as_mut()
                    .ok_or_else(|| bad_data("edge before slots".into()))?;
                let mut idx = || -> io::Result<usize> {
                    parts
                        .next()
                        .ok_or_else(|| bad_data("edge needs two endpoints".into()))?
                        .parse()
                        .map_err(|e| bad_data(format!("bad endpoint: {e}")))
                };
                let (a, b) = (idx()?, idx()?);
                if a >= g.slot_count() || b >= g.slot_count() {
                    return Err(bad_data(format!("edge {a}-{b} out of range")));
                }
                g.add_edge(NodeId::new(a), NodeId::new(b))
                    .map_err(|e| bad_data(format!("invalid edge {a}-{b}: {e}")))?;
            }
            other => {
                return Err(bad_data(format!("unknown directive {other:?}")));
            }
        }
    }
    graph.ok_or_else(|| bad_data("no slots directive".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_preserves_everything() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut g = generators::balanced(100, 10, &mut rng);
        g.remove_node(NodeId::new(7)).expect("alive");
        g.remove_node(NodeId::new(42)).expect("alive");
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).expect("write");
        let restored = read_edge_list(&buf[..]).expect("read");
        assert_eq!(g, restored);
        assert!(!restored.is_alive(NodeId::new(7)));
        assert_eq!(restored.num_edges(), g.num_edges());
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = Graph::new();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).expect("write");
        assert_eq!(read_edge_list(&buf[..]).expect("read"), g);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = format!("{HEADER}\n\n# a comment\nslots 2\nedge 0 1\n");
        let g = read_edge_list(text.as_bytes()).expect("read");
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn rejects_missing_header() {
        let err = read_edge_list("slots 2\n".as_bytes()).expect_err("must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_edge_out_of_range() {
        let text = format!("{HEADER}\nslots 2\nedge 0 5\n");
        assert!(read_edge_list(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_duplicate_edge() {
        let text = format!("{HEADER}\nslots 2\nedge 0 1\nedge 1 0\n");
        assert!(read_edge_list(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_self_loop_and_dead_endpoint() {
        let loop_text = format!("{HEADER}\nslots 2\nedge 1 1\n");
        assert!(read_edge_list(loop_text.as_bytes()).is_err());
        let dead_text = format!("{HEADER}\nslots 2\ndead 0\nedge 0 1\n");
        assert!(read_edge_list(dead_text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_unknown_directive() {
        let text = format!("{HEADER}\nslots 1\nfrobnicate 3\n");
        assert!(read_edge_list(text.as_bytes()).is_err());
    }

    #[test]
    fn serde_roundtrip_via_json() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut g = generators::erdos_renyi(30, 0.2, &mut rng);
        if g.num_nodes() > 1 {
            let victim = g.nodes().nth(1).expect("second node exists");
            g.remove_node(victim).expect("alive");
        }
        let json = serde_json::to_string(&g).expect("serialize");
        let back: Graph = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(g, back);
    }

    #[test]
    fn serde_rejects_corrupt_snapshots() {
        // An edge referencing a dead slot must not deserialize.
        let json = r#"{"slots":2,"dead":[1],"edges":[[0,1]]}"#;
        assert!(serde_json::from_str::<Graph>(json).is_err());
    }
}

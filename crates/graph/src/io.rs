//! Overlay snapshot I/O.
//!
//! Three interchange shapes for overlay snapshots:
//!
//! - a line-oriented **edge-list text** format
//!   ([`SnapshotFormat::EdgeListText`]) for quick inspection and interop
//!   with graph tools;
//! - a **binary CSR** format ([`SnapshotFormat::BinaryV1`]): the frozen
//!   snapshot's arrays ([`FrozenView`]) laid out verbatim as
//!   little-endian sections behind a versioned, checksummed header, so a
//!   multi-million-node snapshot reloads in a handful of bulk passes
//!   instead of a per-edge parse (see [`load_frozen`]);
//! - **serde** support on [`Graph`] itself (via a stable `{slots, dead,
//!   edges}` representation), so experiments can checkpoint overlays
//!   with any serde format.
//!
//! All of them preserve dead (departed) node slots: identifiers are
//! never recycled (see [`crate::NodeId`]), and a faithful snapshot must
//! keep the slot numbering intact.
//!
//! # Entry points
//!
//! [`save_snapshot`] / [`load_snapshot`] are the unified, format-
//! negotiating surface: saving takes an explicit [`SnapshotFormat`],
//! loading sniffs the leading magic bytes and returns a [`Snapshot`]
//! that is either a live [`Graph`] (text) or a [`FrozenView`] (binary),
//! convertible either way ([`Snapshot::into_graph`] thaws,
//! [`Snapshot::into_frozen`] freezes). The path-based twins
//! ([`save_snapshot_path`], [`load_snapshot_path`]) negotiate from the
//! file extension and take the bulk-read fast path for binary files.
//!
//! # Binary layout (`BinaryV1`)
//!
//! ```text
//! [ 0..8 )  magic  89 4F 43 53 4E 41 50 0A   ("\x89OCSNAP\n")
//! [ 8..12)  format version, u32 LE (= 1)
//! [12..16)  reserved, zero
//! [16..24)  slot_count, u64 LE
//! [24..32)  live_count, u64 LE
//! [32..40)  entry_count, u64 LE (total adjacency entries = 2·edges)
//! [40..48)  num_edges, u64 LE
//! [48..56)  freeze epoch, u64 LE
//! [56..64)  checksum, u64 LE (FNV-1a over the section words)
//! [64..  )  offsets   section: (slot_count + 1) × u32 LE
//!           neighbors section: entry_count × u32 LE
//!           alive     section: ceil(slot_count / 8) bytes, LSB-first
//! ```
//!
//! The file ends exactly after the alive bitmap; trailing bytes, short
//! sections, padding bits set past `slot_count`, or a checksum mismatch
//! are all rejected with a typed [`SnapshotError`] — a corrupt file can
//! never panic the loader or produce a view violating CSR invariants.

use std::error::Error;
use std::fmt;
use std::fs;
use std::io::{self, BufRead, Read, Write};
use std::path::Path;

use crate::{FrozenView, Graph, NodeId};

/// Magic first line of the edge-list text format.
const TEXT_HEADER: &str = "# overlay-census edge list v1";

/// Magic prefix of the binary snapshot format. The non-ASCII first byte
/// (as in PNG) keeps binary snapshots from ever sniffing as text.
const BINARY_MAGIC: [u8; 8] = *b"\x89OCSNAP\n";

/// Binary format version this build writes and the only one it reads.
const BINARY_VERSION: u32 = 1;

/// Bytes of the fixed binary header.
const HEADER_LEN: usize = 64;

/// On-disk encodings of an overlay snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotFormat {
    /// The line-oriented `# overlay-census edge list v1` text format:
    /// human-readable, diff-able, parsed edge by edge.
    EdgeListText,
    /// The versioned binary CSR format: the [`FrozenView`] arrays as
    /// checksummed little-endian sections, decoded in bulk.
    BinaryV1,
}

impl SnapshotFormat {
    /// Negotiates a format from a file extension: `el`, `edges`, or
    /// `txt` mean [`SnapshotFormat::EdgeListText`]; `snap`, `bin`, or
    /// `csr` mean [`SnapshotFormat::BinaryV1`]. Matching is
    /// case-insensitive (`.SNAP` and `.El` negotiate like their
    /// lowercase twins — filesystems that uppercase extensions must not
    /// fall to [`SnapshotError::UnknownExtension`]). Unknown or missing
    /// extensions return `None`.
    #[must_use]
    pub fn from_extension(path: &Path) -> Option<Self> {
        match path.extension()?.to_str()?.to_ascii_lowercase().as_str() {
            "el" | "edges" | "txt" => Some(SnapshotFormat::EdgeListText),
            "snap" | "bin" | "csr" => Some(SnapshotFormat::BinaryV1),
            _ => None,
        }
    }

    /// Negotiates a format from the leading bytes of a snapshot: the
    /// binary magic prefix, or the edge-list text header. Returns `None`
    /// when the prefix matches neither (or is too short to tell).
    #[must_use]
    pub fn sniff(prefix: &[u8]) -> Option<Self> {
        if prefix.len() >= BINARY_MAGIC.len() && prefix[..BINARY_MAGIC.len()] == BINARY_MAGIC {
            Some(SnapshotFormat::BinaryV1)
        } else if prefix.len() >= TEXT_HEADER.len()
            && &prefix[..TEXT_HEADER.len()] == TEXT_HEADER.as_bytes()
        {
            Some(SnapshotFormat::EdgeListText)
        } else {
            None
        }
    }
}

impl fmt::Display for SnapshotFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotFormat::EdgeListText => write!(f, "edge-list-text"),
            SnapshotFormat::BinaryV1 => write!(f, "binary-v1"),
        }
    }
}

/// Typed failure of any snapshot save or load.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying reader or writer failed.
    Io(io::Error),
    /// The input starts with neither the binary magic nor the edge-list
    /// text header.
    BadMagic,
    /// A binary snapshot written by a newer (or corrupted) format
    /// version.
    UnsupportedVersion(u32),
    /// A section ended before its header-declared length.
    Truncated {
        /// Which part of the file came up short.
        section: &'static str,
        /// Bytes the header promised.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// The section checksum did not match the header.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum recomputed over the sections read.
        actual: u64,
    },
    /// The input parsed but violates a structural invariant (offsets not
    /// monotone, a neighbour pointing at a dead slot, a malformed
    /// edge-list line, ...).
    Corrupt(String),
    /// A path-based entry point could not negotiate a format from the
    /// file extension.
    UnknownExtension(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O failed: {e}"),
            SnapshotError::BadMagic => write!(f, "not an overlay-census snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported binary snapshot version {v}")
            }
            SnapshotError::Truncated {
                section,
                expected,
                actual,
            } => write!(
                f,
                "truncated snapshot: {section} holds {actual} of {expected} expected bytes"
            ),
            SnapshotError::ChecksumMismatch { expected, actual } => write!(
                f,
                "snapshot checksum mismatch: header says {expected:#018x}, sections hash to {actual:#018x}"
            ),
            SnapshotError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
            SnapshotError::UnknownExtension(ext) => {
                write!(f, "cannot negotiate a snapshot format from extension {ext:?}")
            }
        }
    }
}

impl Error for SnapshotError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        // The edge-list parser reports malformed input as
        // `InvalidData`; fold that into the structural-corruption
        // variant so callers match one arm for "bad file".
        if e.kind() == io::ErrorKind::InvalidData {
            SnapshotError::Corrupt(e.to_string())
        } else {
            SnapshotError::Io(e)
        }
    }
}

/// What [`load_snapshot`] hands back: the representation native to the
/// negotiated format.
#[derive(Debug, Clone, PartialEq)]
pub enum Snapshot {
    /// A live graph parsed from the edge-list text format.
    Graph(Graph),
    /// A frozen CSR view decoded from the binary format.
    Frozen(FrozenView),
}

impl Snapshot {
    /// The format this snapshot was loaded from.
    #[must_use]
    pub fn format(&self) -> SnapshotFormat {
        match self {
            Snapshot::Graph(_) => SnapshotFormat::EdgeListText,
            Snapshot::Frozen(_) => SnapshotFormat::BinaryV1,
        }
    }

    /// Live node count, whichever representation is held.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        match self {
            Snapshot::Graph(g) => g.num_nodes(),
            Snapshot::Frozen(v) => v.num_nodes(),
        }
    }

    /// The snapshot as a frozen CSR view, freezing a text-loaded graph
    /// (stamping epoch 0 of the fresh graph's counter) if necessary.
    #[must_use]
    pub fn into_frozen(self) -> FrozenView {
        match self {
            Snapshot::Graph(g) => g.freeze(),
            Snapshot::Frozen(v) => v,
        }
    }

    /// The snapshot as a live, mutable graph, thawing a binary-loaded
    /// view (see [`Graph::thaw`]) if necessary.
    #[must_use]
    pub fn into_graph(self) -> Graph {
        match self {
            Snapshot::Graph(g) => g,
            Snapshot::Frozen(v) => Graph::thaw(&v),
        }
    }
}

/// Writes a graph snapshot in the requested format.
///
/// `BinaryV1` freezes the graph (advancing its freeze counter, exactly
/// like any other [`Graph::freeze`]) and writes the CSR arrays; use
/// [`write_frozen`] to save an already-frozen view without re-freezing.
///
/// # Errors
///
/// Propagates writer failures as [`SnapshotError::Io`].
///
/// # Examples
///
/// ```
/// use census_graph::io::{self, Snapshot, SnapshotFormat};
/// use census_graph::generators;
///
/// let g = generators::ring(4);
/// let mut buf = Vec::new();
/// io::save_snapshot(&g, SnapshotFormat::BinaryV1, &mut buf)?;
/// let Snapshot::Frozen(view) = io::load_snapshot(&buf[..])? else {
///     unreachable!("binary snapshots load frozen");
/// };
/// assert_eq!(view.num_nodes(), 4);
/// # Ok::<(), census_graph::io::SnapshotError>(())
/// ```
pub fn save_snapshot<W: Write>(
    g: &Graph,
    format: SnapshotFormat,
    w: W,
) -> Result<(), SnapshotError> {
    match format {
        SnapshotFormat::EdgeListText => write_edge_list_impl(g, w).map_err(SnapshotError::from),
        SnapshotFormat::BinaryV1 => write_frozen(&g.freeze(), w),
    }
}

/// Reads a snapshot in either format, negotiating from the leading
/// magic bytes.
///
/// # Errors
///
/// [`SnapshotError::BadMagic`] when the input matches neither format;
/// otherwise whatever the negotiated decoder reports.
pub fn load_snapshot<R: BufRead>(mut r: R) -> Result<Snapshot, SnapshotError> {
    let prefix = r.fill_buf().map_err(SnapshotError::Io)?;
    match SnapshotFormat::sniff(prefix) {
        Some(SnapshotFormat::BinaryV1) => read_frozen(r).map(Snapshot::Frozen),
        Some(SnapshotFormat::EdgeListText) => read_edge_list_impl(r)
            .map(Snapshot::Graph)
            .map_err(SnapshotError::from),
        None => Err(SnapshotError::BadMagic),
    }
}

/// Saves a graph snapshot to `path`, negotiating the format from the
/// extension (see [`SnapshotFormat::from_extension`]). Returns the
/// format written.
///
/// # Errors
///
/// [`SnapshotError::UnknownExtension`] when no format matches the
/// extension; otherwise whatever [`save_snapshot`] reports.
pub fn save_snapshot_path(g: &Graph, path: &Path) -> Result<SnapshotFormat, SnapshotError> {
    let format = SnapshotFormat::from_extension(path)
        .ok_or_else(|| SnapshotError::UnknownExtension(format!("{}", path.display())))?;
    let file = fs::File::create(path).map_err(SnapshotError::Io)?;
    save_snapshot(g, format, io::BufWriter::new(file))?;
    Ok(format)
}

/// Loads a snapshot from `path`, negotiating the format from the file
/// contents. Binary snapshots go through the bulk single-read path of
/// [`load_frozen`].
///
/// # Errors
///
/// See [`load_snapshot`].
pub fn load_snapshot_path(path: &Path) -> Result<Snapshot, SnapshotError> {
    let bytes = fs::read(path).map_err(SnapshotError::Io)?;
    match SnapshotFormat::sniff(&bytes) {
        Some(SnapshotFormat::BinaryV1) => decode_frozen(&bytes).map(Snapshot::Frozen),
        Some(SnapshotFormat::EdgeListText) => read_edge_list_impl(&bytes[..])
            .map(Snapshot::Graph)
            .map_err(SnapshotError::from),
        None => Err(SnapshotError::BadMagic),
    }
}

// ---------------------------------------------------------------------
// Binary CSR codec
// ---------------------------------------------------------------------

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Integrity checksum over the section byte stream, folded 8 bytes at a
/// time (FNV-1a over little-endian u64 words, zero-padded tail) so
/// hashing keeps pace with the bulk decode it guards.
#[derive(Debug)]
struct SectionHasher {
    state: u64,
}

impl SectionHasher {
    fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    fn update(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("chunk is 8 bytes"));
            self.state = (self.state ^ word).wrapping_mul(FNV_PRIME);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.state = (self.state ^ u64::from_le_bytes(tail)).wrapping_mul(FNV_PRIME);
        }
    }

    fn finish(&self) -> u64 {
        self.state
    }
}

/// Encodes `words` little-endian into `w` through a fixed scratch
/// buffer, feeding the same bytes to `hasher`.
fn write_u32_section<W: Write>(
    words: impl Iterator<Item = u32>,
    w: &mut W,
    hasher: &mut SectionHasher,
) -> io::Result<()> {
    // 16 KiB of scratch: big enough to amortise write calls, small
    // enough to stay cache-resident.
    const CHUNK_WORDS: usize = 4096;
    let mut buf = Vec::with_capacity(CHUNK_WORDS * 4);
    for word in words {
        buf.extend_from_slice(&word.to_le_bytes());
        if buf.len() == CHUNK_WORDS * 4 {
            hasher.update(&buf);
            w.write_all(&buf)?;
            buf.clear();
        }
    }
    if !buf.is_empty() {
        hasher.update(&buf);
        w.write_all(&buf)?;
    }
    Ok(())
}

/// The LSB-first liveness bitmap section of a view.
fn alive_bitmap(alive: &[bool]) -> Vec<u8> {
    let mut bitmap = vec![0u8; alive.len().div_ceil(8)];
    for (i, &is_alive) in alive.iter().enumerate() {
        if is_alive {
            bitmap[i / 8] |= 1 << (i % 8);
        }
    }
    bitmap
}

/// Writes a frozen view in the binary CSR format (see the module docs
/// for the layout).
///
/// # Errors
///
/// Propagates writer failures as [`SnapshotError::Io`].
pub fn write_frozen<W: Write>(view: &FrozenView, mut w: W) -> Result<(), SnapshotError> {
    let (offsets, neighbors, alive) = view.csr_parts();
    let bitmap = alive_bitmap(alive);

    // Pass 1: checksum the sections (cheap word folds over in-memory
    // arrays); pass 2: stream them out. Nothing file-sized is buffered.
    let mut hasher = SectionHasher::new();
    let sink = &mut io::sink();
    write_u32_section(offsets.iter().copied(), sink, &mut hasher)
        .expect("hashing to a sink cannot fail");
    write_u32_section(
        neighbors.iter().map(|n| n.index() as u32),
        sink,
        &mut hasher,
    )
    .expect("hashing to a sink cannot fail");
    hasher.update(&bitmap);
    let checksum = hasher.finish();

    let mut header = [0u8; HEADER_LEN];
    header[..8].copy_from_slice(&BINARY_MAGIC);
    header[8..12].copy_from_slice(&BINARY_VERSION.to_le_bytes());
    // [12..16) reserved, zero.
    header[16..24].copy_from_slice(&(view.slot_count() as u64).to_le_bytes());
    header[24..32].copy_from_slice(&(view.num_nodes() as u64).to_le_bytes());
    header[32..40].copy_from_slice(&(view.degree_sum() as u64).to_le_bytes());
    header[40..48].copy_from_slice(&(view.num_edges() as u64).to_le_bytes());
    header[48..56].copy_from_slice(&view.epoch().to_le_bytes());
    header[56..64].copy_from_slice(&checksum.to_le_bytes());
    w.write_all(&header).map_err(SnapshotError::Io)?;

    let mut discard = SectionHasher::new();
    write_u32_section(offsets.iter().copied(), &mut w, &mut discard).map_err(SnapshotError::Io)?;
    write_u32_section(
        neighbors.iter().map(|n| n.index() as u32),
        &mut w,
        &mut discard,
    )
    .map_err(SnapshotError::Io)?;
    w.write_all(&bitmap).map_err(SnapshotError::Io)?;
    w.flush().map_err(SnapshotError::Io)?;
    Ok(())
}

/// Saves a frozen view to `path` in the binary CSR format.
///
/// # Errors
///
/// See [`write_frozen`].
pub fn save_frozen(view: &FrozenView, path: &Path) -> Result<(), SnapshotError> {
    let file = fs::File::create(path).map_err(SnapshotError::Io)?;
    write_frozen(view, io::BufWriter::new(file))
}

/// Loads a binary frozen snapshot from `path` through the bulk path:
/// one `fs::read` of the whole file, then a handful of linear decode
/// and validation passes over the in-memory bytes — no per-edge
/// parsing, no intermediate graph. This is the campaign-scale reload
/// path: a multi-million-node snapshot loads in a small fraction of the
/// time generating and freezing it took (`perf-probe bench snapshot-io`
/// holds the ratio under 1%).
///
/// # Errors
///
/// See [`read_frozen`].
pub fn load_frozen(path: &Path) -> Result<FrozenView, SnapshotError> {
    let bytes = fs::read(path).map_err(SnapshotError::Io)?;
    decode_frozen(&bytes)
}

/// Reads a binary frozen snapshot from an arbitrary reader (buffering
/// it fully; prefer [`load_frozen`] for files).
///
/// # Errors
///
/// Every malformation maps to a typed [`SnapshotError`]; no input can
/// panic the decoder or yield a view violating CSR invariants.
pub fn read_frozen<R: Read>(mut r: R) -> Result<FrozenView, SnapshotError> {
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes).map_err(SnapshotError::Io)?;
    decode_frozen(&bytes)
}

/// Reads a little-endian u64 from a fixed header position.
fn header_u64(header: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(header[at..at + 8].try_into().expect("8-byte header field"))
}

/// Decodes a 4-byte-aligned little-endian u32 section. On little-endian
/// targets the loop compiles to a bulk copy.
fn decode_u32_section(bytes: &[u8]) -> Vec<u32> {
    debug_assert_eq!(bytes.len() % 4, 0);
    bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("chunk is 4 bytes")))
        .collect()
}

fn corrupt(msg: impl Into<String>) -> SnapshotError {
    SnapshotError::Corrupt(msg.into())
}

/// The slice-level binary decoder behind [`load_frozen`] /
/// [`read_frozen`]: validates the header against the actual byte count
/// *before* allocating, checksums the sections, then decodes and checks
/// every CSR invariant.
fn decode_frozen(bytes: &[u8]) -> Result<FrozenView, SnapshotError> {
    if bytes.len() < BINARY_MAGIC.len() || bytes[..BINARY_MAGIC.len()] != BINARY_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    if bytes.len() < HEADER_LEN {
        return Err(SnapshotError::Truncated {
            section: "header",
            expected: HEADER_LEN as u64,
            actual: bytes.len() as u64,
        });
    }
    let header = &bytes[..HEADER_LEN];
    let version = u32::from_le_bytes(header[8..12].try_into().expect("4-byte version"));
    if version != BINARY_VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let slot_count = header_u64(header, 16);
    let live_count = header_u64(header, 24);
    let entry_count = header_u64(header, 32);
    let num_edges = header_u64(header, 40);
    let epoch = header_u64(header, 48);
    let checksum = header_u64(header, 56);

    // Section geometry, validated against the real byte count before any
    // header-sized allocation happens.
    let offsets_len = slot_count
        .checked_add(1)
        .and_then(|n| n.checked_mul(4))
        .ok_or_else(|| corrupt("slot count overflows the offsets section"))?;
    let neighbors_len = entry_count
        .checked_mul(4)
        .ok_or_else(|| corrupt("entry count overflows the neighbors section"))?;
    let bitmap_len = slot_count.div_ceil(8);
    let body_len = offsets_len
        .checked_add(neighbors_len)
        .and_then(|n| n.checked_add(bitmap_len))
        .ok_or_else(|| corrupt("section lengths overflow"))?;
    let expected = (HEADER_LEN as u64)
        .checked_add(body_len)
        .ok_or_else(|| corrupt("file length overflows"))?;
    let actual = bytes.len() as u64;
    if actual < expected {
        return Err(SnapshotError::Truncated {
            section: "sections",
            expected,
            actual,
        });
    }
    if actual > expected {
        return Err(corrupt(format!(
            "{} trailing bytes after the alive bitmap",
            actual - expected
        )));
    }

    let body = &bytes[HEADER_LEN..];
    let (offsets_bytes, rest) = body.split_at(offsets_len as usize);
    let (neighbors_bytes, bitmap) = rest.split_at(neighbors_len as usize);

    let mut hasher = SectionHasher::new();
    hasher.update(offsets_bytes);
    hasher.update(neighbors_bytes);
    hasher.update(bitmap);
    let recomputed = hasher.finish();
    if recomputed != checksum {
        return Err(SnapshotError::ChecksumMismatch {
            expected: checksum,
            actual: recomputed,
        });
    }

    // Decode sections.
    let slots = usize::try_from(slot_count).map_err(|_| corrupt("slot count exceeds usize"))?;
    let offsets = decode_u32_section(offsets_bytes);
    let neighbor_words = decode_u32_section(neighbors_bytes);
    let mut alive = vec![false; slots];
    let mut live: Vec<NodeId> = Vec::with_capacity(
        usize::try_from(live_count).map_err(|_| corrupt("live count exceeds usize"))?,
    );
    for (i, slot_alive) in alive.iter_mut().enumerate() {
        if bitmap[i / 8] & (1 << (i % 8)) != 0 {
            *slot_alive = true;
            live.push(NodeId::new(i));
        }
    }
    // Padding bits past slot_count must be zero: the writer never sets
    // them, and rejecting them keeps save∘load byte-idempotent.
    if slots % 8 != 0 {
        if let Some(&last) = bitmap.last() {
            if last >> (slots % 8) != 0 {
                return Err(corrupt("alive bitmap has padding bits set"));
            }
        }
    }

    // CSR invariants: everything a FrozenView consumer assumes.
    if live.len() as u64 != live_count {
        return Err(corrupt(format!(
            "header claims {live_count} live nodes, bitmap holds {}",
            live.len()
        )));
    }
    if entry_count != num_edges.wrapping_mul(2) {
        return Err(corrupt(format!(
            "entry count {entry_count} is not twice the edge count {num_edges}"
        )));
    }
    if offsets.first() != Some(&0) {
        return Err(corrupt("offsets section must start at zero"));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(corrupt("offsets section is not monotone"));
    }
    if u64::from(*offsets.last().expect("offsets section is non-empty")) != entry_count {
        return Err(corrupt(
            "offsets section does not span the neighbor section",
        ));
    }
    for (i, &slot_alive) in alive.iter().enumerate() {
        if !slot_alive && offsets[i] != offsets[i + 1] {
            return Err(corrupt(format!("dead slot {i} has a non-empty CSR row")));
        }
    }
    let neighbors: Vec<NodeId> = neighbor_words
        .into_iter()
        .map(|w| {
            let i = w as usize;
            if i < slots && alive[i] {
                Ok(NodeId::new(i))
            } else {
                Err(corrupt(format!(
                    "neighbor entry n{w} is out of range or dead"
                )))
            }
        })
        .collect::<Result<_, _>>()?;

    let edges = usize::try_from(num_edges).map_err(|_| corrupt("edge count exceeds usize"))?;
    Ok(FrozenView::from_csr_parts(
        offsets, neighbors, live, alive, edges, epoch,
    ))
}

// ---------------------------------------------------------------------
// Edge-list text codec
// ---------------------------------------------------------------------

fn write_edge_list_impl<W: Write>(g: &Graph, mut w: W) -> io::Result<()> {
    writeln!(w, "{TEXT_HEADER}")?;
    writeln!(w, "slots {}", g.slot_count())?;
    for i in 0..g.slot_count() {
        if !g.is_alive(NodeId::new(i)) {
            writeln!(w, "dead {i}")?;
        }
    }
    for (a, b) in g.edges() {
        writeln!(w, "edge {} {}", a.index(), b.index())?;
    }
    Ok(())
}

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn read_edge_list_impl<R: BufRead>(r: R) -> io::Result<Graph> {
    let mut lines = r.lines();
    let first = lines
        .next()
        .ok_or_else(|| bad_data("empty input".into()))??;
    if first.trim() != TEXT_HEADER {
        return Err(bad_data(format!("missing header, got {first:?}")));
    }
    let mut graph: Option<Graph> = None;
    for line in lines {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let directive = parts.next().expect("non-empty line has a token");
        match directive {
            "slots" => {
                if graph.is_some() {
                    return Err(bad_data("duplicate slots directive".into()));
                }
                let n: usize = parts
                    .next()
                    .ok_or_else(|| bad_data("slots needs a count".into()))?
                    .parse()
                    .map_err(|e| bad_data(format!("bad slot count: {e}")))?;
                let mut g = Graph::with_capacity(n);
                g.add_nodes(n);
                graph = Some(g);
            }
            "dead" => {
                let g = graph
                    .as_mut()
                    .ok_or_else(|| bad_data("dead before slots".into()))?;
                let i: usize = parts
                    .next()
                    .ok_or_else(|| bad_data("dead needs an index".into()))?
                    .parse()
                    .map_err(|e| bad_data(format!("bad dead index: {e}")))?;
                if i >= g.slot_count() {
                    return Err(bad_data(format!("dead index {i} out of range")));
                }
                g.remove_node(NodeId::new(i))
                    .map_err(|e| bad_data(format!("cannot kill slot {i}: {e}")))?;
            }
            "edge" => {
                let g = graph
                    .as_mut()
                    .ok_or_else(|| bad_data("edge before slots".into()))?;
                let mut idx = || -> io::Result<usize> {
                    parts
                        .next()
                        .ok_or_else(|| bad_data("edge needs two endpoints".into()))?
                        .parse()
                        .map_err(|e| bad_data(format!("bad endpoint: {e}")))
                };
                let (a, b) = (idx()?, idx()?);
                if a >= g.slot_count() || b >= g.slot_count() {
                    return Err(bad_data(format!("edge {a}-{b} out of range")));
                }
                g.add_edge(NodeId::new(a), NodeId::new(b))
                    .map_err(|e| bad_data(format!("invalid edge {a}-{b}: {e}")))?;
            }
            other => {
                return Err(bad_data(format!("unknown directive {other:?}")));
            }
        }
    }
    graph.ok_or_else(|| bad_data("no slots directive".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn churned(n: usize, kills: usize, seed: u64) -> Graph {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut g = generators::balanced(n, 10, &mut rng);
        for _ in 0..kills {
            let victim = g.random_node(&mut rng).expect("non-empty");
            let _ = g.remove_node(victim);
        }
        g
    }

    #[test]
    fn text_roundtrip_preserves_everything() {
        let mut g = churned(100, 0, 1);
        g.remove_node(NodeId::new(7)).expect("alive");
        g.remove_node(NodeId::new(42)).expect("alive");
        let mut buf = Vec::new();
        save_snapshot(&g, SnapshotFormat::EdgeListText, &mut buf).expect("write");
        let restored = load_snapshot(&buf[..]).expect("read");
        assert_eq!(restored.format(), SnapshotFormat::EdgeListText);
        let restored = restored.into_graph();
        assert_eq!(g, restored);
        assert!(!restored.is_alive(NodeId::new(7)));
        assert_eq!(restored.num_edges(), g.num_edges());
    }

    #[test]
    fn binary_roundtrip_is_identical_including_epoch() {
        let g = churned(200, 50, 2);
        let _ = g.freeze(); // advance the counter so the epoch is non-zero
        let frozen = g.freeze();
        assert_eq!(frozen.epoch(), 1);
        let mut buf = Vec::new();
        write_frozen(&frozen, &mut buf).expect("write");
        let back = read_frozen(&buf[..]).expect("read");
        assert_eq!(back, frozen);
        assert_eq!(back.epoch(), frozen.epoch());
        let (o1, n1, a1) = frozen.csr_parts();
        let (o2, n2, a2) = back.csr_parts();
        assert_eq!((o1, n1, a1), (o2, n2, a2), "arrays must match bit for bit");
    }

    #[test]
    fn empty_graph_roundtrips_in_both_formats() {
        let g = Graph::new();
        let mut text = Vec::new();
        save_snapshot(&g, SnapshotFormat::EdgeListText, &mut text).expect("write");
        assert_eq!(load_snapshot(&text[..]).expect("read").into_graph(), g);
        let frozen = g.freeze();
        let mut bin = Vec::new();
        write_frozen(&frozen, &mut bin).expect("write");
        assert_eq!(read_frozen(&bin[..]).expect("read"), frozen);
    }

    #[test]
    fn save_snapshot_binary_matches_write_frozen() {
        let g = churned(64, 10, 3);
        let mut via_graph = Vec::new();
        save_snapshot(&g.clone(), SnapshotFormat::BinaryV1, &mut via_graph).expect("write");
        let loaded = load_snapshot(&via_graph[..]).expect("read").into_frozen();
        assert_eq!(loaded, g.freeze());
    }

    #[test]
    fn thaw_then_freeze_reproduces_the_view() {
        let g = churned(150, 40, 4);
        let frozen = g.freeze();
        let thawed = Graph::thaw(&frozen);
        assert_eq!(thawed.num_nodes(), g.num_nodes());
        assert_eq!(thawed.num_edges(), g.num_edges());
        assert_eq!(
            thawed.freeze_count(),
            0,
            "thawed graphs restart the counter"
        );
        let refrozen = thawed.freeze();
        assert_eq!(refrozen, frozen);
        assert_eq!(refrozen.epoch(), 0);
        // Neighbour order — the walk-equivalence invariant — survives.
        for v in g.nodes() {
            assert_eq!(thawed.neighbors(v), g.neighbors(v));
        }
    }

    #[test]
    fn sniff_and_extension_negotiate_consistently() {
        assert_eq!(
            SnapshotFormat::sniff(TEXT_HEADER.as_bytes()),
            Some(SnapshotFormat::EdgeListText)
        );
        assert_eq!(
            SnapshotFormat::sniff(&BINARY_MAGIC),
            Some(SnapshotFormat::BinaryV1)
        );
        assert_eq!(SnapshotFormat::sniff(b"plain nonsense"), None);
        assert_eq!(SnapshotFormat::sniff(b"#"), None, "too short to tell");
        assert_eq!(
            SnapshotFormat::from_extension(Path::new("a/b.snap")),
            Some(SnapshotFormat::BinaryV1)
        );
        assert_eq!(
            SnapshotFormat::from_extension(Path::new("a/b.el")),
            Some(SnapshotFormat::EdgeListText)
        );
        assert_eq!(SnapshotFormat::from_extension(Path::new("a/b.json")), None);
        assert_eq!(SnapshotFormat::from_extension(Path::new("noext")), None);
    }

    #[test]
    fn extension_negotiation_is_case_insensitive() {
        for (spelled, format) in [
            ("a/b.SNAP", SnapshotFormat::BinaryV1),
            ("a/b.Snap", SnapshotFormat::BinaryV1),
            ("a/b.BIN", SnapshotFormat::BinaryV1),
            ("a/b.CSR", SnapshotFormat::BinaryV1),
            ("a/b.El", SnapshotFormat::EdgeListText),
            ("a/b.EDGES", SnapshotFormat::EdgeListText),
            ("a/b.TXT", SnapshotFormat::EdgeListText),
        ] {
            assert_eq!(
                SnapshotFormat::from_extension(Path::new(spelled)),
                Some(format),
                "{spelled} must negotiate case-insensitively"
            );
        }
        assert_eq!(SnapshotFormat::from_extension(Path::new("a/b.JSON")), None);
        // The path entry points inherit the normalisation.
        let dir = std::env::temp_dir().join("census-io-case-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let g = churned(40, 10, 3);
        let upper = dir.join("overlay.SNAP");
        assert_eq!(
            save_snapshot_path(&g, &upper).expect("uppercase extension saves"),
            SnapshotFormat::BinaryV1
        );
        assert_eq!(
            load_snapshot_path(&upper).expect("load").into_frozen(),
            g.freeze()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn path_entry_points_roundtrip_both_formats() {
        let dir = std::env::temp_dir().join("census-io-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let g = churned(80, 20, 5);

        let bin = dir.join("overlay.snap");
        assert_eq!(
            save_snapshot_path(&g.clone(), &bin).expect("save"),
            SnapshotFormat::BinaryV1
        );
        let loaded = load_snapshot_path(&bin).expect("load");
        assert_eq!(loaded.format(), SnapshotFormat::BinaryV1);
        assert_eq!(loaded.num_nodes(), g.num_nodes());
        assert_eq!(loaded.into_frozen(), g.freeze());

        let text = dir.join("overlay.el");
        assert_eq!(
            save_snapshot_path(&g, &text).expect("save"),
            SnapshotFormat::EdgeListText
        );
        assert_eq!(load_snapshot_path(&text).expect("load").into_graph(), g);

        let err = save_snapshot_path(&g, &dir.join("overlay.json")).expect_err("unknown ext");
        assert!(matches!(err, SnapshotError::UnknownExtension(_)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        assert!(matches!(
            load_snapshot(&b"garbage that is neither format"[..]),
            Err(SnapshotError::BadMagic)
        ));
        let frozen = churned(50, 5, 6).freeze();
        let mut buf = Vec::new();
        write_frozen(&frozen, &mut buf).expect("write");
        // Every strict prefix must fail with a typed error, never panic.
        for cut in [8, HEADER_LEN - 1, HEADER_LEN, buf.len() - 1] {
            let err = read_frozen(&buf[..cut]).expect_err("truncated input");
            assert!(
                matches!(err, SnapshotError::Truncated { .. }),
                "cut at {cut} gave {err}"
            );
        }
        // Trailing garbage is rejected too.
        let mut longer = buf.clone();
        longer.push(0);
        assert!(matches!(
            read_frozen(&longer[..]),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn rejects_version_checksum_and_structural_corruption() {
        let frozen = churned(50, 5, 7).freeze();
        let mut buf = Vec::new();
        write_frozen(&frozen, &mut buf).expect("write");

        let mut wrong_version = buf.clone();
        wrong_version[8] = 9;
        assert!(matches!(
            read_frozen(&wrong_version[..]),
            Err(SnapshotError::UnsupportedVersion(9))
        ));

        // Flip one neighbor byte: the checksum catches it first.
        let mut flipped = buf.clone();
        let mid = HEADER_LEN + (buf.len() - HEADER_LEN) / 2;
        flipped[mid] ^= 0xFF;
        assert!(matches!(
            read_frozen(&flipped[..]),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));

        // Corrupt the header edge count: sections still hash clean, but
        // the structural validation rejects the inconsistency.
        let mut bad_edges = buf;
        bad_edges[40..48].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            read_frozen(&bad_edges[..]),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = SnapshotError::Truncated {
            section: "sections",
            expected: 100,
            actual: 7,
        };
        assert!(e.to_string().contains("7 of 100"));
        assert!(SnapshotError::BadMagic.to_string().contains("magic"));
        let c = SnapshotError::ChecksumMismatch {
            expected: 1,
            actual: 2,
        };
        assert!(c.to_string().contains("checksum"));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = format!("{TEXT_HEADER}\n\n# a comment\nslots 2\nedge 0 1\n");
        let g = load_snapshot(text.as_bytes()).expect("read").into_graph();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn text_rejects_malformed_input() {
        let cases = [
            "slots 2\n".to_owned(),                                  // missing header
            format!("{TEXT_HEADER}\nslots 2\nedge 0 5\n"),           // out of range
            format!("{TEXT_HEADER}\nslots 2\nedge 0 1\nedge 1 0\n"), // duplicate
            format!("{TEXT_HEADER}\nslots 2\nedge 1 1\n"),           // self-loop
            format!("{TEXT_HEADER}\nslots 2\ndead 0\nedge 0 1\n"),   // dead endpoint
            format!("{TEXT_HEADER}\nslots 1\nfrobnicate 3\n"),       // unknown directive
        ];
        for text in cases {
            let err = read_edge_list_impl(text.as_bytes()).expect_err("must fail");
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{text:?}");
        }
        // The unified loader wraps the same failures as Corrupt (except
        // the missing header, which is a magic mismatch).
        assert!(matches!(
            load_snapshot("slots 2\n".as_bytes()),
            Err(SnapshotError::BadMagic)
        ));
        let dup = format!("{TEXT_HEADER}\nslots 2\nedge 0 1\nedge 1 0\n");
        assert!(matches!(
            load_snapshot(dup.as_bytes()),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn serde_roundtrip_via_json() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut g = generators::erdos_renyi(30, 0.2, &mut rng);
        if g.num_nodes() > 1 {
            let victim = g.nodes().nth(1).expect("second node exists");
            g.remove_node(victim).expect("alive");
        }
        let json = serde_json::to_string(&g).expect("serialize");
        let back: Graph = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(g, back);
    }

    #[test]
    fn serde_rejects_corrupt_snapshots() {
        // An edge referencing a dead slot must not deserialize.
        let json = r#"{"slots":2,"dead":[1],"edges":[[0,1]]}"#;
        assert!(serde_json::from_str::<Graph>(json).is_err());
    }
}

//! Connectivity and degree-distribution utilities.
//!
//! The paper's evaluation always reports the true system size as "that of
//! the connected component to which the probing node belongs" (§5.1), so
//! the experiment harness needs fast component queries on overlays that
//! churn has fragmented.

use std::collections::VecDeque;

use crate::{Graph, NodeId};

/// Identifiers of every node in the connected component containing
/// `start`, discovered by breadth-first search.
///
/// # Panics
///
/// Panics if `start` is not alive.
#[must_use]
pub fn connected_component(g: &Graph, start: NodeId) -> Vec<NodeId> {
    assert!(g.is_alive(start), "BFS from dead node {start}");
    let mut visited = vec![false; g.slot_count()];
    let mut queue = VecDeque::new();
    let mut component = Vec::new();
    visited[start.index()] = true;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        component.push(u);
        for &v in g.neighbors(u) {
            if !visited[v.index()] {
                visited[v.index()] = true;
                queue.push_back(v);
            }
        }
    }
    component
}

/// Size of the connected component containing `start`.
///
/// # Panics
///
/// Panics if `start` is not alive.
#[must_use]
pub fn component_size(g: &Graph, start: NodeId) -> usize {
    connected_component(g, start).len()
}

/// Sizes of all connected components, in decreasing order.
#[must_use]
pub fn component_sizes(g: &Graph) -> Vec<usize> {
    let mut visited = vec![false; g.slot_count()];
    let mut sizes = Vec::new();
    for start in g.nodes() {
        if visited[start.index()] {
            continue;
        }
        let mut queue = VecDeque::new();
        visited[start.index()] = true;
        queue.push_back(start);
        let mut size = 0usize;
        while let Some(u) = queue.pop_front() {
            size += 1;
            for &v in g.neighbors(u) {
                if !visited[v.index()] {
                    visited[v.index()] = true;
                    queue.push_back(v);
                }
            }
        }
        sizes.push(size);
    }
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    sizes
}

/// Whether all live nodes form a single connected component. An empty
/// graph is considered connected.
#[must_use]
pub fn is_connected(g: &Graph) -> bool {
    match g.nodes().next() {
        None => true,
        Some(start) => component_size(g, start) == g.num_nodes(),
    }
}

/// BFS distances (in hops) from `start`; dead or unreachable slots map to
/// `None`. Indexed by [`NodeId::index`].
///
/// # Panics
///
/// Panics if `start` is not alive.
#[must_use]
pub fn bfs_distances(g: &Graph, start: NodeId) -> Vec<Option<usize>> {
    assert!(g.is_alive(start), "BFS from dead node {start}");
    let mut dist: Vec<Option<usize>> = vec![None; g.slot_count()];
    let mut queue = VecDeque::new();
    dist[start.index()] = Some(0);
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()].expect("enqueued nodes have distances");
        for &v in g.neighbors(u) {
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// A lower bound on the diameter of the component containing `start`,
/// obtained by a double BFS sweep (exact on trees, and a strong heuristic
/// on the overlay families used here).
///
/// # Panics
///
/// Panics if `start` is not alive.
#[must_use]
pub fn diameter_lower_bound(g: &Graph, start: NodeId) -> usize {
    let first = bfs_distances(g, start);
    let far = first
        .iter()
        .enumerate()
        .filter_map(|(i, d)| d.map(|d| (d, i)))
        .max()
        .map(|(_, i)| NodeId::new(i))
        .expect("start itself has a distance");
    bfs_distances(g, far)
        .into_iter()
        .flatten()
        .max()
        .expect("far node has a distance")
}

/// Counts of each degree value among live nodes; index `d` holds the
/// number of nodes with degree `d`.
#[must_use]
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for n in g.nodes() {
        hist[g.degree(n)] += 1;
    }
    hist
}

/// Number of live nodes whose degree is strictly greater than `threshold`
/// — the paper's running example of a non-trivial aggregate (§3).
#[must_use]
pub fn count_degree_above(g: &Graph, threshold: usize) -> usize {
    g.nodes().filter(|&n| g.degree(n) > threshold).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn two_triangles() -> (Graph, NodeId, NodeId) {
        let mut g = Graph::new();
        let ids = g.add_nodes(6);
        for (a, b) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            g.add_edge(ids[a], ids[b]).expect("fresh edge");
        }
        (g, ids[0], ids[3])
    }

    #[test]
    fn component_queries() {
        let (g, a, b) = two_triangles();
        assert_eq!(component_size(&g, a), 3);
        assert_eq!(component_size(&g, b), 3);
        assert!(!is_connected(&g));
        assert_eq!(component_sizes(&g), vec![3, 3]);
        let mut comp = connected_component(&g, a);
        comp.sort();
        assert_eq!(
            comp.iter().map(|n| n.index()).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn empty_and_singleton_connectivity() {
        let mut g = Graph::new();
        assert!(is_connected(&g));
        let a = g.add_node();
        assert!(is_connected(&g));
        assert_eq!(component_size(&g, a), 1);
        g.add_node();
        assert!(!is_connected(&g));
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = generators::path(5);
        let d = bfs_distances(&g, NodeId::new(0));
        let got: Vec<usize> = d.into_iter().map(|x| x.expect("connected")).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bfs_unreachable_is_none() {
        let (mut g, a, b) = two_triangles();
        g.remove_node(NodeId::new(5)).expect("alive");
        let d = bfs_distances(&g, a);
        assert_eq!(d[b.index()], None);
        assert_eq!(d[a.index()], Some(0));
    }

    #[test]
    fn diameter_of_path_is_exact() {
        let g = generators::path(10);
        assert_eq!(diameter_lower_bound(&g, NodeId::new(4)), 9);
    }

    #[test]
    fn diameter_of_ring() {
        let g = generators::ring(10);
        assert_eq!(diameter_lower_bound(&g, NodeId::new(0)), 5);
    }

    #[test]
    fn degree_histogram_star() {
        let g = generators::star(5);
        let h = degree_histogram(&g);
        assert_eq!(h[1], 4);
        assert_eq!(h[4], 1);
        assert_eq!(h.iter().sum::<usize>(), 5);
    }

    #[test]
    fn count_degree_above_works() {
        let g = generators::star(5);
        assert_eq!(count_degree_above(&g, 1), 1);
        assert_eq!(count_degree_above(&g, 0), 5);
        assert_eq!(count_degree_above(&g, 4), 0);
    }

    #[test]
    fn generated_balanced_graph_mostly_connected() {
        let mut rng = SmallRng::seed_from_u64(11);
        let g = generators::balanced(500, 10, &mut rng);
        let sizes = component_sizes(&g);
        assert!(sizes[0] > 450, "giant component should dominate: {sizes:?}");
    }
}

//! Walker/Vose alias tables for O(1) weighted node draws.
//!
//! Several layers need draws from the *degree-proportional* law — the
//! DTRW's stationary distribution `π_j = d_j / Σ d` (Eq. (1) of the
//! paper): stationary-start walk launches in the benches, and the
//! degree-law oracle sampler that calibrates the §4 bias ablations.
//! Sampling that law naively costs a binary search over a cumulative
//! degree array per draw; the alias method precomputes two flat tables in
//! `O(n)` and then serves every draw with one uniform index, one uniform
//! variate, and at most two array reads — O(1), branch-light, and
//! cache-friendly.
//!
//! Construction is Vose's stable two-stack variant: each column `i`
//! either keeps its own node (probability `prob[i]`) or defers to a
//! single donor column `alias[i]`, and every column's total mass is
//! exactly `w_i / Σ w` up to one floating-point rounding per pairing.

use rand::Rng;

use crate::NodeId;

/// Precomputed alias tables over a weighted node set; see the module
/// docs. Built by [`crate::FrozenView::alias_tables`] for the
/// degree-proportional law, or from any non-negative weighting via
/// [`AliasTables::from_weights`].
#[derive(Debug, Clone, PartialEq)]
pub struct AliasTables {
    nodes: Vec<NodeId>,
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTables {
    /// Builds alias tables assigning `nodes[i]` probability
    /// `weights[i] / Σ weights`.
    ///
    /// Zero-weight nodes are kept in the tables but receive exactly zero
    /// acceptance mass (their column always defers to its donor), so an
    /// isolated node can never be drawn from the degree law. If *all*
    /// weights are zero — or `nodes` is empty — the law is undefined and
    /// the tables are empty: [`AliasTables::sample`] returns `None`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ, any weight is negative or non-finite,
    /// or there are more than `u32::MAX` nodes.
    #[must_use]
    pub fn from_weights(nodes: Vec<NodeId>, weights: &[f64]) -> Self {
        assert_eq!(nodes.len(), weights.len(), "one weight per node");
        assert!(
            u32::try_from(nodes.len()).is_ok(),
            "alias tables index columns with u32"
        );
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        let total: f64 = weights.iter().sum();
        if nodes.is_empty() || total <= 0.0 {
            return Self {
                nodes: Vec::new(),
                prob: Vec::new(),
                alias: Vec::new(),
            };
        }

        let n = nodes.len();
        // Scale so the mean column mass is 1: columns below 1 need a
        // donor, columns above 1 have mass to donate.
        let mut prob: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut alias: Vec<u32> = (0..n as u32).collect();
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s as usize] = l;
            // Donor `l` tops column `s` up to exactly 1.
            prob[l as usize] -= 1.0 - prob[s as usize];
            if prob[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Whatever remains is within floating-point rounding of 1; pin it
        // so the acceptance test `u < prob[i]` cannot leak through to an
        // uninitialised-looking alias.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }
        Self { nodes, prob, alias }
    }

    /// Number of columns (nodes with a defined law; zero when the total
    /// weight was zero).
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tables are empty (empty node set or all-zero weights).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Draws one node from the encoded law in O(1): a uniform column, a
    /// uniform acceptance variate, two table reads. Returns `None` when
    /// the tables are empty. Consumes exactly two RNG values per call
    /// regardless of the outcome.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeId> {
        if self.nodes.is_empty() {
            return None;
        }
        let i = rng.random_range(0..self.nodes.len());
        let u: f64 = rng.random();
        Some(if u < self.prob[i] {
            self.nodes[i]
        } else {
            self.nodes[self.alias[i] as usize]
        })
    }

    /// The exact probability mass the tables assign to each column's
    /// node, in `nodes` order — the verification hook: construction is
    /// correct iff this equals `w_i / Σ w` up to rounding.
    #[must_use]
    pub fn encoded_mass(&self) -> Vec<(NodeId, f64)> {
        let n = self.nodes.len() as f64;
        let mut mass = vec![0.0f64; self.nodes.len()];
        for i in 0..self.nodes.len() {
            mass[i] += self.prob[i] / n;
            if self.prob[i] < 1.0 {
                mass[self.alias[i] as usize] += (1.0 - self.prob[i]) / n;
            }
        }
        self.nodes.iter().copied().zip(mass).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, Graph};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn encoded_mass_is_the_degree_law() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = generators::balanced(300, 8, &mut rng);
        let frozen = g.freeze();
        let tables = frozen.alias_tables();
        assert_eq!(tables.len(), frozen.num_nodes());
        let total = frozen.degree_sum() as f64;
        for (node, mass) in tables.encoded_mass() {
            let want = frozen.degree(node) as f64 / total;
            assert!(
                (mass - want).abs() < 1e-12,
                "node {node}: encoded {mass} vs degree law {want}"
            );
        }
    }

    #[test]
    fn empirical_draws_match_degree_law_on_star() {
        // The star maximally separates uniform from degree-weighted: the
        // hub holds half the total degree.
        let g = generators::star(9);
        let tables = g.freeze().alias_tables();
        let mut rng = SmallRng::seed_from_u64(4);
        let runs = 40_000u32;
        let hub = (0..runs)
            .filter(|_| tables.sample(&mut rng).expect("non-empty") == NodeId::new(0))
            .count();
        let frac = f64::from(hub as u32) / f64::from(runs);
        assert!((frac - 0.5).abs() < 0.01, "hub mass {frac} should be ~1/2");
    }

    #[test]
    fn zero_weight_nodes_are_never_drawn() {
        // A live but isolated node has degree 0: representable, never
        // sampled.
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        let lone = g.add_node();
        g.add_edge(a, b).expect("fresh edge");
        let tables = g.freeze().alias_tables();
        assert_eq!(tables.len(), 3);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..2_000 {
            let drawn = tables.sample(&mut rng).expect("non-empty");
            assert_ne!(drawn, lone, "zero-degree node drawn");
        }
    }

    #[test]
    fn all_isolated_snapshot_has_no_law() {
        let mut g = Graph::new();
        g.add_nodes(4);
        let tables = g.freeze().alias_tables();
        assert!(tables.is_empty());
        let mut rng = SmallRng::seed_from_u64(6);
        assert_eq!(tables.sample(&mut rng), None);
    }

    #[test]
    fn empty_snapshot_has_no_law() {
        let tables = Graph::new().freeze().alias_tables();
        assert!(tables.is_empty());
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_weights_panic() {
        let _ = AliasTables::from_weights(vec![NodeId::new(0)], &[-1.0]);
    }

    #[test]
    fn sample_consumes_exactly_two_draws() {
        // Fixed RNG budget per draw is part of the contract: callers
        // interleave alias draws with other stream consumers.
        let g = generators::star(5);
        let tables = g.freeze().alias_tables();
        let mut counted = SmallRng::seed_from_u64(7);
        let mut twin = SmallRng::seed_from_u64(7);
        for _ in 0..50 {
            tables.sample(&mut counted).expect("non-empty");
            let _ = twin.random_range(0..tables.len());
            let _: f64 = twin.random();
        }
        assert_eq!(counted.random::<u64>(), twin.random::<u64>());
    }
}

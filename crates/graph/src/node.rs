//! Node identifiers.

use std::fmt;

/// Identifier of a peer in an overlay graph.
///
/// Identifiers are dense indices assigned at join time and *never
/// recycled*: a departed peer's identifier stays dead forever. This matters
/// for the Sample & Collide estimator, whose collision detection compares
/// sampled identities across time — recycling an identifier could turn two
/// distinct peers into a phantom collision during churn.
///
/// # Examples
///
/// ```
/// use census_graph::NodeId;
///
/// let n = NodeId::new(42);
/// assert_eq!(n.index(), 42);
/// assert_eq!(format!("{n}"), "n42");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
#[serde(transparent)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates an identifier from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX` — overlays beyond four billion
    /// peers are outside the simulator's design envelope.
    #[must_use]
    pub fn new(index: usize) -> Self {
        Self(u32::try_from(index).expect("node index fits in u32"))
    }

    /// The dense index of this identifier.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<NodeId> for usize {
    fn from(n: NodeId) -> usize {
        n.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let n = NodeId::new(7);
        assert_eq!(n.index(), 7);
        assert_eq!(usize::from(n), 7);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::new(3), NodeId::new(3));
    }

    #[test]
    #[should_panic(expected = "fits in u32")]
    fn oversized_index_panics() {
        let _ = NodeId::new(usize::MAX);
    }
}

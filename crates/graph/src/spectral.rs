//! Laplacian spectral quantities.
//!
//! Both of the paper's accuracy results are governed by the spectral gap
//! λ₂ of the graph Laplacian: Proposition 2 bounds the Random Tour
//! variance by a λ₂ term, and Lemma 1 bounds the CTRW sampling error by
//! `½ √N e^(−λ₂ T)`. §3.4 connects λ₂ to the isoperimetric constant
//! (expansion) through Cheeger's inequality. This module computes all
//! three quantities:
//!
//! - [`spectral_gap`] / [`fiedler_vector`]: λ₂ and its eigenvector via
//!   projected power iteration (matrix-free, works at simulation sizes).
//! - [`exact_spectrum`]: full Laplacian spectrum by cyclic Jacobi, for
//!   small graphs — the test oracle for the iterative path.
//! - [`isoperimetric_sweep`] / [`isoperimetric_exact`]: the expansion
//!   constant ι(G) = min_{|S| ≤ N/2} e(S, S̄)/|S|, by Fiedler sweep and by
//!   exhaustive enumeration respectively.
//! - [`cheeger_bounds`]: the two-sided Cheeger estimate of λ₂ from ι(G).
//! - [`mixing_timer`]: the timer value `T` that makes the CTRW sample
//!   ε-close to uniform per Lemma 1.

use crate::{Graph, NodeId};

/// Dense re-indexing of the live nodes of a graph.
///
/// Spectral routines work on dense vectors; this maps between live
/// [`NodeId`]s and positions `0..n`.
#[derive(Debug, Clone)]
pub struct DenseIndex {
    dense_of_slot: Vec<usize>,
    node_of_dense: Vec<NodeId>,
}

impl DenseIndex {
    /// Builds the index for the current live nodes of `g`.
    #[must_use]
    pub fn new(g: &Graph) -> Self {
        let mut dense_of_slot = vec![usize::MAX; g.slot_count()];
        let mut node_of_dense = Vec::with_capacity(g.num_nodes());
        for node in g.nodes() {
            dense_of_slot[node.index()] = node_of_dense.len();
            node_of_dense.push(node);
        }
        Self {
            dense_of_slot,
            node_of_dense,
        }
    }

    /// Number of live nodes indexed.
    #[must_use]
    pub fn len(&self) -> usize {
        self.node_of_dense.len()
    }

    /// Whether the graph had no live nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.node_of_dense.is_empty()
    }

    /// Dense position of a live node.
    ///
    /// # Panics
    ///
    /// Panics if the node was not live when the index was built.
    #[must_use]
    pub fn dense(&self, node: NodeId) -> usize {
        let d = self.dense_of_slot[node.index()];
        assert!(d != usize::MAX, "node {node} is not in the dense index");
        d
    }

    /// Node at a dense position.
    ///
    /// # Panics
    ///
    /// Panics if `dense` is out of range.
    #[must_use]
    pub fn node(&self, dense: usize) -> NodeId {
        self.node_of_dense[dense]
    }
}

/// Applies the graph Laplacian: `out = L x` where
/// `(L x)_v = deg(v)·x_v − Σ_{u ~ v} x_u`.
///
/// # Panics
///
/// Panics if the vector lengths do not match the index size.
pub fn laplacian_matvec(g: &Graph, idx: &DenseIndex, x: &[f64], out: &mut [f64]) {
    assert_eq!(x.len(), idx.len(), "input length must match index");
    assert_eq!(out.len(), idx.len(), "output length must match index");
    for d in 0..idx.len() {
        let v = idx.node(d);
        let mut acc = g.degree(v) as f64 * x[d];
        for &u in g.neighbors(v) {
            acc -= x[idx.dense(u)];
        }
        out[d] = acc;
    }
}

fn project_out_constant(x: &mut [f64]) {
    let mean = x.iter().sum::<f64>() / x.len() as f64;
    for v in x.iter_mut() {
        *v -= mean;
    }
}

fn normalise(x: &mut [f64]) -> f64 {
    let norm = x.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm > 0.0 {
        for v in x.iter_mut() {
            *v /= norm;
        }
    }
    norm
}

/// Result of the projected power iteration: the spectral gap λ₂ and the
/// associated (Fiedler) eigenvector over the dense index.
#[derive(Debug, Clone)]
pub struct GapEstimate {
    /// The estimated second-smallest Laplacian eigenvalue λ₂.
    pub lambda2: f64,
    /// Unit eigenvector associated with λ₂, in dense-index order.
    pub fiedler: Vec<f64>,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Whether the graph was connected. Disconnected graphs have λ₂ = 0
    /// *by definition*, so a tiny `lambda2` on its own is ambiguous
    /// between "barely-connected expander bottleneck" and "two islands";
    /// this flag (computed structurally by BFS, not inferred from the
    /// iteration) disambiguates. Mid-construction overlays are routinely
    /// disconnected, so callers tracking λ₂ trajectories should gate on
    /// it before interpreting the value.
    pub connected: bool,
}

/// Estimates the Laplacian spectral gap λ₂ and Fiedler vector by power
/// iteration on `cI − L` projected orthogonally to the constant vector,
/// with `c = 2·max_degree ≥ λ_max(L)`.
///
/// Iteration stops when the Rayleigh quotient changes by less than `tol`
/// between iterations, or after `max_iters`. For graphs with a small gap
/// between λ₂ and λ₃ (e.g. long rings) convergence is geometric with rate
/// `(c−λ₃)/(c−λ₂)`; pass a generous `max_iters` there.
///
/// **Contract for disconnected graphs.** λ₂ = 0 exactly when the graph is
/// disconnected, and the iteration converges to (near) zero there — it
/// does not fail or panic. The returned [`GapEstimate::connected`] flag,
/// computed structurally by BFS, says which case a near-zero `lambda2`
/// is: `connected = false` means the zero is definitional (two or more
/// components), `connected = true` means the graph really is a slow
/// mixer. Callers that previously thresholded on `lambda2 < 1e-6` should
/// consult the flag instead.
///
/// # Panics
///
/// Panics if the graph has fewer than two live nodes (λ₂ is undefined).
#[must_use]
pub fn spectral_gap_with(g: &Graph, max_iters: usize, tol: f64) -> GapEstimate {
    let idx = DenseIndex::new(g);
    let n = idx.len();
    assert!(n >= 2, "spectral gap needs at least two nodes");
    let connected = crate::algo::component_size(g, idx.node(0)) == n;
    let c = 2.0 * g.max_degree() as f64;
    if c == 0.0 {
        // No edges at all: L = 0, every non-constant vector has eigenvalue 0.
        let mut fiedler = vec![0.0; n];
        fiedler[0] = (1.0 - 1.0 / n as f64).sqrt();
        return GapEstimate {
            lambda2: 0.0,
            fiedler,
            iterations: 0,
            connected,
        };
    }

    // Deterministic, well-spread start vector (orthogonalised below).
    let mut x: Vec<f64> = (0..n)
        .map(|i| ((i as f64) * 0.7548776662 + 0.1).sin())
        .collect();
    project_out_constant(&mut x);
    normalise(&mut x);
    let mut lx = vec![0.0; n];
    let mut rayleigh_prev = f64::INFINITY;
    let mut iterations = 0;
    for it in 1..=max_iters {
        iterations = it;
        laplacian_matvec(g, &idx, &x, &mut lx);
        // y = (cI - L) x
        for i in 0..n {
            lx[i] = c * x[i] - lx[i];
        }
        project_out_constant(&mut lx);
        let norm = normalise(&mut lx);
        std::mem::swap(&mut x, &mut lx);
        // Rayleigh quotient of (cI - L) equals its top eigenvalue at
        // convergence; `norm` is that quotient after normalisation.
        let rayleigh = norm;
        if (rayleigh - rayleigh_prev).abs() <= tol * rayleigh.abs().max(1.0) {
            rayleigh_prev = rayleigh;
            break;
        }
        rayleigh_prev = rayleigh;
    }
    // One final exact Rayleigh quotient of L for accuracy.
    laplacian_matvec(g, &idx, &x, &mut lx);
    let lambda2 = x.iter().zip(&lx).map(|(a, b)| a * b).sum::<f64>();
    let _ = rayleigh_prev;
    GapEstimate {
        lambda2: lambda2.max(0.0),
        fiedler: x,
        iterations,
        connected,
    }
}

/// [`spectral_gap_with`] with defaults (`max_iters = 50_000`,
/// `tol = 1e-12`), returning only λ₂.
///
/// # Panics
///
/// Panics if the graph has fewer than two live nodes.
#[must_use]
pub fn spectral_gap(g: &Graph) -> f64 {
    spectral_gap_with(g, 50_000, 1e-12).lambda2
}

/// The Fiedler vector (eigenvector of λ₂) over [`DenseIndex`] order, via
/// the same iteration as [`spectral_gap_with`].
///
/// # Panics
///
/// Panics if the graph has fewer than two live nodes.
#[must_use]
pub fn fiedler_vector(g: &Graph) -> Vec<f64> {
    spectral_gap_with(g, 50_000, 1e-12).fiedler
}

/// Full Laplacian spectrum (ascending) by the cyclic Jacobi method on the
/// dense Laplacian. Intended as a test oracle; cost is O(n³) per sweep.
///
/// # Panics
///
/// Panics if the graph is empty or has more than 512 live nodes.
#[must_use]
pub fn exact_spectrum(g: &Graph) -> Vec<f64> {
    let idx = DenseIndex::new(g);
    let n = idx.len();
    assert!(n > 0, "spectrum of an empty graph is undefined");
    assert!(
        n <= 512,
        "exact spectrum is a small-graph oracle (n <= 512)"
    );

    // Dense Laplacian.
    let mut a = vec![0.0f64; n * n];
    for d in 0..n {
        let v = idx.node(d);
        a[d * n + d] = g.degree(v) as f64;
        for &u in g.neighbors(v) {
            a[d * n + idx.dense(u)] = -1.0;
        }
    }

    // Cyclic Jacobi rotations until off-diagonal mass is negligible.
    for _sweep in 0..100 {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                off += a[p * n + q] * a[p * n + q];
            }
        }
        if off < 1e-22 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[p * n + q];
                if apq.abs() < 1e-15 {
                    continue;
                }
                let app = a[p * n + p];
                let aqq = a[q * n + q];
                // Rotation angle zeroing a_pq: tan(2θ) = 2 a_pq / (a_pp − a_qq).
                let theta = 0.5 * (2.0 * apq).atan2(app - aqq);
                let (s, c) = theta.sin_cos();
                // A ← Rᵀ A R with R the Givens rotation in the (p, q) plane.
                for k in 0..n {
                    let akp = a[k * n + p];
                    let akq = a[k * n + q];
                    a[k * n + p] = c * akp + s * akq;
                    a[k * n + q] = -s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[p * n + k];
                    let aqk = a[q * n + k];
                    a[p * n + k] = c * apk + s * aqk;
                    a[q * n + k] = -s * apk + c * aqk;
                }
            }
        }
    }
    let mut eig: Vec<f64> = (0..n).map(|i| a[i * n + i]).collect();
    eig.sort_by(|x, y| x.partial_cmp(y).expect("eigenvalues are finite"));
    eig
}

/// The isoperimetric (expansion) constant
/// `ι(G) = min_{S, |S| ≤ N/2} e(S, S̄) / |S|`
/// estimated by a sweep cut over the Fiedler ordering.
///
/// This is an *upper bound* on ι(G) (every sweep prefix is a candidate
/// `S`); on the families used here the sweep is near-exact.
///
/// # Panics
///
/// Panics if the graph has fewer than two live nodes.
#[must_use]
pub fn isoperimetric_sweep(g: &Graph) -> f64 {
    let idx = DenseIndex::new(g);
    let n = idx.len();
    assert!(n >= 2, "expansion needs at least two nodes");
    let fiedler = fiedler_vector(g);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| fiedler[a].partial_cmp(&fiedler[b]).expect("finite entries"));

    let mut in_s = vec![false; n];
    let mut cut = 0usize;
    let mut best = f64::INFINITY;
    for (taken, &d) in order.iter().enumerate().take(n - 1) {
        let v = idx.node(d);
        let inside = g
            .neighbors(v)
            .iter()
            .filter(|&&u| in_s[idx.dense(u)])
            .count();
        cut = cut + g.degree(v) - 2 * inside;
        in_s[d] = true;
        let size = taken + 1;
        if size <= n / 2 {
            best = best.min(cut as f64 / size as f64);
        }
    }
    best
}

/// Exact isoperimetric constant by exhaustive subset enumeration.
///
/// # Panics
///
/// Panics if the graph has fewer than 2 or more than 22 live nodes.
#[must_use]
pub fn isoperimetric_exact(g: &Graph) -> f64 {
    let idx = DenseIndex::new(g);
    let n = idx.len();
    assert!(
        (2..=22).contains(&n),
        "exhaustive expansion needs 2..=22 nodes"
    );
    // Adjacency bitmasks over dense indices.
    let masks: Vec<u32> = (0..n)
        .map(|d| {
            let v = idx.node(d);
            g.neighbors(v)
                .iter()
                .map(|&u| 1u32 << idx.dense(u))
                .fold(0, |a, b| a | b)
        })
        .collect();
    let mut best = f64::INFINITY;
    for s in 1u32..(1 << n) - 1 {
        let size = s.count_ones() as usize;
        if size > n / 2 {
            continue;
        }
        let mut cut = 0u32;
        let mut bits = s;
        while bits != 0 {
            let d = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            cut += (masks[d] & !s).count_ones();
        }
        best = best.min(f64::from(cut) / size as f64);
    }
    best
}

/// Two-sided Cheeger estimate of λ₂ from the expansion constant ι(G):
/// `ι² / (2·max_degree) ≤ λ₂ ≤ 2·ι` (Mohar's form used in §3.4).
///
/// # Panics
///
/// Panics if the graph has no edges.
#[must_use]
pub fn cheeger_bounds(g: &Graph, iota: f64) -> (f64, f64) {
    let dmax = g.max_degree();
    assert!(dmax > 0, "Cheeger bounds need at least one edge");
    (iota * iota / (2.0 * dmax as f64), 2.0 * iota)
}

/// The CTRW timer value `T` guaranteeing total-variation distance at most
/// `eps` from uniform, per Lemma 1: `T = ln(√N / (2 eps)) / λ₂`.
///
/// # Panics
///
/// Panics if `eps` or `lambda2` is not positive, or `n == 0`.
#[must_use]
pub fn mixing_timer(n: usize, lambda2: f64, eps: f64) -> f64 {
    assert!(n > 0, "mixing timer needs a non-empty overlay");
    assert!(eps > 0.0, "target accuracy must be positive");
    assert!(lambda2 > 0.0, "mixing requires a positive spectral gap");
    ((n as f64).sqrt() / (2.0 * eps)).ln().max(0.0) / lambda2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn assert_close(a: f64, b: f64, tol: f64, what: &str) {
        assert!((a - b).abs() < tol, "{what}: {a} vs {b}");
    }

    #[test]
    fn complete_graph_gap_is_n() {
        let g = generators::complete(8);
        assert_close(spectral_gap(&g), 8.0, 1e-6, "K_8 gap");
    }

    #[test]
    fn star_gap_is_one() {
        let g = generators::star(9);
        assert_close(spectral_gap(&g), 1.0, 1e-6, "star gap");
    }

    #[test]
    fn ring_gap_matches_closed_form() {
        let n = 24;
        let g = generators::ring(n);
        let expected = 2.0 - 2.0 * (2.0 * std::f64::consts::PI / n as f64).cos();
        assert_close(spectral_gap(&g), expected, 1e-6, "ring gap");
    }

    #[test]
    fn path_gap_matches_closed_form() {
        let n = 16;
        let g = generators::path(n);
        let expected = 2.0 - 2.0 * (std::f64::consts::PI / n as f64).cos();
        assert_close(spectral_gap(&g), expected, 1e-6, "path gap");
    }

    #[test]
    fn hypercube_gap_is_two() {
        let g = generators::hypercube(4);
        assert_close(spectral_gap(&g), 2.0, 1e-6, "hypercube gap");
    }

    #[test]
    fn complete_bipartite_gap_is_min_side() {
        let g = generators::complete_bipartite(3, 5);
        assert_close(spectral_gap(&g), 3.0, 1e-6, "K_{3,5} gap");
    }

    #[test]
    fn disconnected_graph_gap_is_zero() {
        let mut g = generators::complete(4);
        let extra = g.add_node();
        let _ = extra;
        assert!(spectral_gap(&g) < 1e-6);
    }

    #[test]
    fn edgeless_graph_gap_is_zero() {
        let mut g = Graph::new();
        g.add_nodes(3);
        assert_eq!(spectral_gap(&g), 0.0);
    }

    #[test]
    fn connected_flag_disambiguates_near_zero_gaps() {
        // Regression: a near-zero lambda2 used to be silently ambiguous
        // between "disconnected" (definitional zero) and "slow mixer".
        // Isolated node next to a clique: disconnected, gap ~ 0.
        let mut g = generators::complete(4);
        let _ = g.add_node();
        let est = spectral_gap_with(&g, 50_000, 1e-12);
        assert!(!est.connected, "clique + isolate is disconnected");
        assert!(est.lambda2 < 1e-6);

        // Edgeless early-return path carries the flag too.
        let mut e = Graph::new();
        e.add_nodes(3);
        let est = spectral_gap_with(&e, 50_000, 1e-12);
        assert!(!est.connected, "edgeless graph is disconnected");
        assert_eq!(est.lambda2, 0.0);
        assert_eq!(est.iterations, 0);

        // Two cliques joined by one bridge: tiny gap but connected —
        // exactly the case the flag exists to tell apart.
        let mut b = Graph::new();
        let ids = b.add_nodes(10);
        for i in 0..5 {
            for j in (i + 1)..5 {
                b.add_edge(ids[i], ids[j]).expect("fresh edge");
                b.add_edge(ids[i + 5], ids[j + 5]).expect("fresh edge");
            }
        }
        b.add_edge(ids[0], ids[5]).expect("bridge");
        let est = spectral_gap_with(&b, 50_000, 1e-12);
        assert!(est.connected, "bridged barbell is connected");
        assert!(est.lambda2 > 0.0);

        // And an honest expander reads connected with a healthy gap.
        let est = spectral_gap_with(&generators::complete(6), 50_000, 1e-12);
        assert!(est.connected);
        assert!(est.lambda2 > 1.0);
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn single_node_gap_panics() {
        let mut g = Graph::new();
        g.add_node();
        let _ = spectral_gap(&g);
    }

    #[test]
    fn exact_spectrum_of_complete_graph() {
        let g = generators::complete(5);
        let eig = exact_spectrum(&g);
        assert_close(eig[0], 0.0, 1e-9, "kernel");
        for &e in &eig[1..] {
            assert_close(e, 5.0, 1e-8, "K_5 eigenvalue");
        }
    }

    #[test]
    fn exact_spectrum_of_star() {
        // Star S_n Laplacian spectrum: {0, 1 (n-2 times), n}.
        let g = generators::star(6);
        let eig = exact_spectrum(&g);
        assert_close(eig[0], 0.0, 1e-9, "kernel");
        for &e in &eig[1..5] {
            assert_close(e, 1.0, 1e-8, "leaf eigenvalue");
        }
        assert_close(eig[5], 6.0, 1e-8, "top eigenvalue");
    }

    #[test]
    fn power_iteration_agrees_with_jacobi_on_random_graph() {
        let mut rng = SmallRng::seed_from_u64(13);
        let g = generators::erdos_renyi(40, 0.2, &mut rng);
        let eig = exact_spectrum(&g);
        let gap = spectral_gap(&g);
        assert_close(gap, eig[1], 1e-5, "lambda_2");
    }

    #[test]
    fn fiedler_vector_splits_barbell() {
        // Two K_5's joined by one edge: the Fiedler vector separates them.
        let mut g = Graph::new();
        let ids = g.add_nodes(10);
        for i in 0..5 {
            for j in (i + 1)..5 {
                g.add_edge(ids[i], ids[j]).expect("fresh edge");
                g.add_edge(ids[i + 5], ids[j + 5]).expect("fresh edge");
            }
        }
        g.add_edge(ids[0], ids[5]).expect("bridge");
        let f = fiedler_vector(&g);
        let left: f64 = f[..5].iter().sum::<f64>() / 5.0;
        let right: f64 = f[5..].iter().sum::<f64>() / 5.0;
        assert!(left * right < 0.0, "sides have opposite Fiedler sign");
    }

    #[test]
    fn sweep_finds_barbell_bottleneck() {
        let mut g = Graph::new();
        let ids = g.add_nodes(12);
        for i in 0..6 {
            for j in (i + 1)..6 {
                g.add_edge(ids[i], ids[j]).expect("fresh edge");
                g.add_edge(ids[i + 6], ids[j + 6]).expect("fresh edge");
            }
        }
        g.add_edge(ids[0], ids[6]).expect("bridge");
        // Best cut: one clique vs the other -> 1 edge / 6 nodes.
        assert_close(
            isoperimetric_sweep(&g),
            1.0 / 6.0,
            1e-9,
            "barbell expansion",
        );
        assert_close(isoperimetric_exact(&g), 1.0 / 6.0, 1e-9, "exact expansion");
    }

    #[test]
    fn exact_expansion_of_complete_graph() {
        // K_n: subset of size s cuts s(n-s) edges; min over s<=n/2 at s=n/2.
        let g = generators::complete(6);
        assert_close(isoperimetric_exact(&g), 3.0, 1e-9, "K_6 expansion");
    }

    #[test]
    fn exact_expansion_of_ring() {
        // Ring: best S is a contiguous arc, cut 2, size n/2.
        let g = generators::ring(10);
        assert_close(isoperimetric_exact(&g), 2.0 / 5.0, 1e-9, "C_10 expansion");
        let sweep = isoperimetric_sweep(&g);
        assert!(sweep >= 2.0 / 5.0 - 1e-9, "sweep upper-bounds exact");
        assert!(sweep <= 2.0 / 5.0 + 1e-6, "sweep is near-exact on the ring");
    }

    #[test]
    fn cheeger_sandwich_holds() {
        for g in [
            generators::ring(12),
            generators::complete(8),
            generators::hypercube(3),
            generators::star(9),
        ] {
            let iota = isoperimetric_exact(&g);
            let (lo, hi) = cheeger_bounds(&g, iota);
            let gap = spectral_gap(&g);
            assert!(
                lo - 1e-9 <= gap && gap <= hi + 1e-9,
                "Cheeger violated: {lo} <= {gap} <= {hi}"
            );
        }
    }

    #[test]
    fn mixing_timer_scales_inversely_with_gap() {
        let t1 = mixing_timer(10_000, 1.0, 0.01);
        let t2 = mixing_timer(10_000, 2.0, 0.01);
        assert_close(t1 / t2, 2.0, 1e-9, "timer ratio");
        // Paper §5.2.1: T=10 consistent with lambda_2 >= 2.3 at N=100k, eps~1/N... the
        // order of magnitude should match ln(sqrt(N)/2eps)/lambda_2.
        let t = mixing_timer(100_000, 2.3, 0.01);
        assert!((3.0..7.0).contains(&t), "paper-scale timer {t}");
    }

    #[test]
    fn balanced_graph_is_an_expander() {
        let mut rng = SmallRng::seed_from_u64(77);
        let g = generators::balanced(400, 10, &mut rng);
        let gap = spectral_gap_with(&g, 20_000, 1e-12).lambda2;
        assert!(
            gap > 0.3,
            "balanced overlays should have a healthy gap, got {gap}"
        );
    }

    #[test]
    fn ring_is_not_an_expander() {
        let g = generators::ring(400);
        let gap = spectral_gap_with(&g, 200_000, 1e-14).lambda2;
        assert!(gap < 0.01, "long rings mix slowly, got {gap}");
    }
}

//! Best-effort software prefetch hints.
//!
//! The batched walk frontier knows which CSR row walk `i + K` will touch
//! while it is still processing walk `i` — exactly the situation hardware
//! prefetchers cannot exploit, because consecutive walks land on
//! unrelated rows. A software hint issued a few walks ahead starts the
//! cache fill early, so by the time the sweep reaches that walk its
//! neighbour row is (often) already resident.
//!
//! A prefetch is *advisory by contract*: it never faults, never reads the
//! line architecturally, and is free for the hardware (or a non-x86_64
//! build) to ignore. That is what lets kernels prefetch speculatively —
//! including for walks that will be compacted away before their turn —
//! without perturbing any result or RNG stream.

/// Hints the memory system to pull the cache line containing `target`
/// toward L1, without reading it.
///
/// On x86_64 this lowers to a single `prefetcht0` instruction; on other
/// architectures it is a no-op. Purely a performance hint: no observable
/// effect on any value, and safe for any reference.
#[inline(always)]
pub fn prefetch_read<T>(target: &T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `_mm_prefetch` is architecturally a hint. It performs no
    // memory access (not even a speculative fault — invalid addresses are
    // ignored by the hardware), so passing any pointer is sound; here the
    // pointer additionally comes from a live reference.
    #[allow(unsafe_code)]
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch::<_MM_HINT_T0>(std::ptr::from_ref(target).cast::<i8>());
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = target;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_is_observably_inert() {
        // The whole contract: a hint changes no value.
        let xs = [1u64, 2, 3];
        prefetch_read(&xs[0]);
        prefetch_read(&xs[2]);
        assert_eq!(xs, [1, 2, 3]);
    }
}

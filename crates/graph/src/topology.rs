//! The neighbour-oracle abstraction walked by the random walk engines.

use rand::RngCore;

use crate::{Graph, NodeId};

/// Local view of an overlay, as seen by a message performing a random walk.
///
/// The paper's protocols are strictly local: a message at node `j` can only
/// learn `j`'s degree and be forwarded to one of `j`'s neighbours chosen
/// uniformly at random. `Topology` captures exactly that interface, so the
/// walk, sampling, and estimation crates work unchanged over a static
/// [`Graph`] or over the churn simulator's dynamic overlay.
///
/// The trait is object-safe (randomness is passed as `&mut dyn RngCore`) so
/// estimators can hold `&dyn Topology` when convenient.
///
/// # Examples
///
/// ```
/// use census_graph::{Graph, Topology};
/// use rand::SeedableRng;
/// use rand::rngs::SmallRng;
///
/// let mut g = Graph::new();
/// let a = g.add_node();
/// let b = g.add_node();
/// g.add_edge(a, b)?;
/// let mut rng = SmallRng::seed_from_u64(1);
/// assert_eq!(Topology::degree_of(&g, a), 1);
/// assert_eq!(g.neighbor_of(a, &mut rng), Some(b));
/// # Ok::<(), census_graph::GraphError>(())
/// ```
pub trait Topology {
    /// Number of live peers currently in the overlay. Estimators use this
    /// only for ground truth in experiments, never inside a protocol.
    fn peer_count(&self) -> usize;

    /// Whether the peer is currently a live overlay member.
    fn contains(&self, node: NodeId) -> bool;

    /// Degree of a live peer.
    ///
    /// # Panics
    ///
    /// Implementations panic if the peer is not alive.
    fn degree_of(&self, node: NodeId) -> usize;

    /// A uniformly random neighbour of a live peer, or `None` if it is
    /// isolated.
    ///
    /// # Panics
    ///
    /// Implementations panic if the peer is not alive.
    fn neighbor_of(&self, node: NodeId, rng: &mut dyn RngCore) -> Option<NodeId>;

    /// A uniformly random live peer, used to pick experiment initiators.
    /// Returns `None` when the overlay is empty.
    fn any_peer(&self, rng: &mut dyn RngCore) -> Option<NodeId>;
}

impl Topology for Graph {
    fn peer_count(&self) -> usize {
        self.num_nodes()
    }

    fn contains(&self, node: NodeId) -> bool {
        self.is_alive(node)
    }

    fn degree_of(&self, node: NodeId) -> usize {
        self.degree(node)
    }

    fn neighbor_of(&self, node: NodeId, rng: &mut dyn RngCore) -> Option<NodeId> {
        self.random_neighbor(node, rng)
    }

    fn any_peer(&self, rng: &mut dyn RngCore) -> Option<NodeId> {
        self.random_node(rng)
    }
}

impl<T: Topology + ?Sized> Topology for &T {
    fn peer_count(&self) -> usize {
        (**self).peer_count()
    }

    fn contains(&self, node: NodeId) -> bool {
        (**self).contains(node)
    }

    fn degree_of(&self, node: NodeId) -> usize {
        (**self).degree_of(node)
    }

    fn neighbor_of(&self, node: NodeId, rng: &mut dyn RngCore) -> Option<NodeId> {
        (**self).neighbor_of(node, rng)
    }

    fn any_peer(&self, rng: &mut dyn RngCore) -> Option<NodeId> {
        (**self).any_peer(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn graph_implements_topology() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b).expect("fresh edge");
        let t: &dyn Topology = &g;
        assert_eq!(t.peer_count(), 2);
        assert!(t.contains(a));
        assert!(!t.contains(NodeId::new(9)));
        assert_eq!(t.degree_of(b), 1);
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(t.neighbor_of(a, &mut rng), Some(b));
        assert!(t.any_peer(&mut rng).is_some());
    }

    #[test]
    fn reference_forwards() {
        let mut g = Graph::new();
        g.add_node();
        fn count<T: Topology>(t: T) -> usize {
            t.peer_count()
        }
        assert_eq!(count(&g), 1);
        let by_ref: &Graph = &g;
        assert_eq!(count(by_ref), 1);
    }
}

//! The neighbour-oracle abstraction walked by the random walk engines.

use rand::Rng;

use crate::{FrozenView, Graph, NodeId};

/// Local view of an overlay, as seen by a message performing a random walk.
///
/// The paper's protocols are strictly local: a message at node `j` can only
/// learn `j`'s degree and be forwarded to one of `j`'s neighbours chosen
/// uniformly at random. `Topology` captures exactly that interface, so the
/// walk, sampling, and estimation crates work unchanged over a static
/// [`Graph`], its flat [`FrozenView`] snapshot, or the churn simulator's
/// dynamic overlay.
///
/// The primitive accessor is [`Topology::neighbors_of`], which returns the
/// neighbour list as a slice; [`Topology::neighbor_of`] has a default
/// implementation on top of it (one bounds-checked index), so every walk
/// step is statically dispatched and inlinable. Implementations that model
/// an *environment* rather than a graph — e.g. the loss simulator's
/// [`LossyTopology`](https://docs.rs/census-sim) wrapper, which makes a hop
/// fail with some probability — override `neighbor_of`; the walk engines
/// therefore always step through `neighbor_of`, never by indexing the
/// slice themselves.
///
/// # Examples
///
/// ```
/// use census_graph::{Graph, Topology};
/// use rand::SeedableRng;
/// use rand::rngs::SmallRng;
///
/// let mut g = Graph::new();
/// let a = g.add_node();
/// let b = g.add_node();
/// g.add_edge(a, b)?;
/// let mut rng = SmallRng::seed_from_u64(1);
/// assert_eq!(Topology::degree_of(&g, a), 1);
/// assert_eq!(Topology::neighbors_of(&g, a), &[b]);
/// assert_eq!(g.neighbor_of(a, &mut rng), Some(b));
/// # Ok::<(), census_graph::GraphError>(())
/// ```
pub trait Topology {
    /// Number of live peers currently in the overlay. Estimators use this
    /// only for ground truth in experiments, never inside a protocol.
    fn peer_count(&self) -> usize;

    /// Whether the peer is currently a live overlay member.
    fn contains(&self, node: NodeId) -> bool;

    /// The neighbour list of a live peer, as a slice.
    ///
    /// This is the hot-path primitive: one call per walk step, no
    /// allocation, no dynamic dispatch.
    ///
    /// # Panics
    ///
    /// Implementations panic if the peer is not alive.
    fn neighbors_of(&self, node: NodeId) -> &[NodeId];

    /// Degree of a live peer.
    ///
    /// # Panics
    ///
    /// Implementations panic if the peer is not alive.
    fn degree_of(&self, node: NodeId) -> usize {
        self.neighbors_of(node).len()
    }

    /// A uniformly random neighbour of a live peer, or `None` if it is
    /// isolated.
    ///
    /// The default implementation indexes [`Topology::neighbors_of`]
    /// uniformly. Environment wrappers (message loss) override this to
    /// inject per-hop failures, which is why walk engines must forward
    /// through this method rather than sampling the slice directly.
    ///
    /// # Panics
    ///
    /// Implementations panic if the peer is not alive.
    #[inline]
    fn neighbor_of<R: Rng + ?Sized>(&self, node: NodeId, rng: &mut R) -> Option<NodeId> {
        let list = self.neighbors_of(node);
        if list.is_empty() {
            None
        } else {
            Some(list[rng.random_range(0..list.len())])
        }
    }

    /// Hints the memory system to start pulling `node`'s neighbour row
    /// toward cache, without reading it.
    ///
    /// Strictly advisory, and the default does nothing. Implementations
    /// must have **no observable effect** — no RNG consumption, no fault
    /// draws, no panics, for *any* id including dead or out-of-range ones
    /// — because batched kernels issue this speculatively for walks whose
    /// next step may never happen. [`FrozenView`] overrides it with a
    /// real `prefetcht0` on the CSR row; environment wrappers that do not
    /// forward it merely forgo the hint.
    #[inline]
    fn prefetch_row(&self, node: NodeId) {
        let _ = node;
    }

    /// A uniformly random live peer, used to pick experiment initiators.
    /// Returns `None` when the overlay is empty.
    fn any_peer<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeId>;

    /// Whether the peer at `node` reports this visit as a Sample & Collide
    /// collision. `locally_marked` is the initiator's own bookkeeping
    /// (it has seen this peer in the current batch before); an honest
    /// peer simply confirms it, and the default implementation does
    /// exactly that.
    ///
    /// The collision *check* is initiator-local, but the paper's protocol
    /// has the visited peer answer the probe — which is what a Byzantine
    /// peer can lie about. Adversarial environment wrappers override this
    /// to forge collisions (`false → true`); the estimators therefore
    /// consult the topology rather than trusting their local set alone.
    #[inline]
    fn reports_collision(&self, node: NodeId, locally_marked: bool) -> bool {
        let _ = node;
        locally_marked
    }
}

impl Topology for Graph {
    fn peer_count(&self) -> usize {
        self.num_nodes()
    }

    fn contains(&self, node: NodeId) -> bool {
        self.is_alive(node)
    }

    #[inline]
    fn neighbors_of(&self, node: NodeId) -> &[NodeId] {
        self.neighbors(node)
    }

    #[inline]
    fn degree_of(&self, node: NodeId) -> usize {
        self.degree(node)
    }

    #[inline]
    fn neighbor_of<R: Rng + ?Sized>(&self, node: NodeId, rng: &mut R) -> Option<NodeId> {
        self.random_neighbor(node, rng)
    }

    fn any_peer<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeId> {
        self.random_node(rng)
    }
}

impl Topology for FrozenView {
    fn peer_count(&self) -> usize {
        self.num_nodes()
    }

    fn contains(&self, node: NodeId) -> bool {
        self.is_alive(node)
    }

    #[inline]
    fn neighbors_of(&self, node: NodeId) -> &[NodeId] {
        self.neighbors(node)
    }

    #[inline]
    fn degree_of(&self, node: NodeId) -> usize {
        self.degree(node)
    }

    #[inline]
    fn prefetch_row(&self, node: NodeId) {
        FrozenView::prefetch_row(self, node);
    }

    fn any_peer<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeId> {
        self.random_node(rng)
    }
}

impl<T: Topology + ?Sized> Topology for &T {
    fn peer_count(&self) -> usize {
        (**self).peer_count()
    }

    fn contains(&self, node: NodeId) -> bool {
        (**self).contains(node)
    }

    #[inline]
    fn neighbors_of(&self, node: NodeId) -> &[NodeId] {
        (**self).neighbors_of(node)
    }

    #[inline]
    fn degree_of(&self, node: NodeId) -> usize {
        (**self).degree_of(node)
    }

    #[inline]
    fn neighbor_of<R: Rng + ?Sized>(&self, node: NodeId, rng: &mut R) -> Option<NodeId> {
        (**self).neighbor_of(node, rng)
    }

    #[inline]
    fn prefetch_row(&self, node: NodeId) {
        (**self).prefetch_row(node);
    }

    fn any_peer<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeId> {
        (**self).any_peer(rng)
    }

    #[inline]
    fn reports_collision(&self, node: NodeId, locally_marked: bool) -> bool {
        (**self).reports_collision(node, locally_marked)
    }
}

/// Shared-ownership forwarding: the sharded census service hands walk
/// state between worker threads inside cross-shard handoff flights, which
/// need an owned (`Send + 'static`) topology handle rather than a borrow.
impl<T: Topology + ?Sized> Topology for std::sync::Arc<T> {
    fn peer_count(&self) -> usize {
        (**self).peer_count()
    }

    fn contains(&self, node: NodeId) -> bool {
        (**self).contains(node)
    }

    #[inline]
    fn neighbors_of(&self, node: NodeId) -> &[NodeId] {
        (**self).neighbors_of(node)
    }

    #[inline]
    fn degree_of(&self, node: NodeId) -> usize {
        (**self).degree_of(node)
    }

    #[inline]
    fn neighbor_of<R: Rng + ?Sized>(&self, node: NodeId, rng: &mut R) -> Option<NodeId> {
        (**self).neighbor_of(node, rng)
    }

    #[inline]
    fn prefetch_row(&self, node: NodeId) {
        (**self).prefetch_row(node);
    }

    fn any_peer<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeId> {
        (**self).any_peer(rng)
    }

    #[inline]
    fn reports_collision(&self, node: NodeId, locally_marked: bool) -> bool {
        (**self).reports_collision(node, locally_marked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn graph_implements_topology() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b).expect("fresh edge");
        fn probe<T: Topology>(t: &T, a: NodeId, b: NodeId) {
            assert_eq!(t.peer_count(), 2);
            assert!(t.contains(a));
            assert!(!t.contains(NodeId::new(9)));
            assert_eq!(t.degree_of(b), 1);
            assert_eq!(t.neighbors_of(a), &[b]);
            let mut rng = SmallRng::seed_from_u64(0);
            assert_eq!(t.neighbor_of(a, &mut rng), Some(b));
            assert!(t.any_peer(&mut rng).is_some());
            // Honest peers confirm exactly the initiator's bookkeeping.
            assert!(t.reports_collision(a, true));
            assert!(!t.reports_collision(a, false));
        }
        probe(&g, a, b);
        probe(&g.freeze(), a, b);
    }

    #[test]
    fn reference_forwards() {
        let mut g = Graph::new();
        g.add_node();
        fn count<T: Topology>(t: T) -> usize {
            t.peer_count()
        }
        assert_eq!(count(&g), 1);
        let by_ref: &Graph = &g;
        assert_eq!(count(by_ref), 1);
        let shared = std::sync::Arc::new(g);
        assert_eq!(count(std::sync::Arc::clone(&shared)), 1);
    }

    #[test]
    fn default_neighbor_of_matches_graph_override() {
        // The default slice-indexing `neighbor_of` and Graph's
        // `random_neighbor` override must consume the RNG identically:
        // walk sequences over a Graph and its FrozenView must coincide.
        let mut g = Graph::new();
        let hub = g.add_node();
        let leaves = g.add_nodes(5);
        for &l in &leaves {
            g.add_edge(hub, l).expect("fresh edge");
        }
        let f = g.freeze();
        let mut rng_a = SmallRng::seed_from_u64(42);
        let mut rng_b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                g.neighbor_of(hub, &mut rng_a),
                f.neighbor_of(hub, &mut rng_b)
            );
        }
    }
}

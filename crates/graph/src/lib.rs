//! Overlay graph substrate for the overlay-census reproduction.
//!
//! The paper (Massoulié et al., PODC 2006) models a peer-to-peer overlay as
//! an undirected graph in which each peer knows only its neighbours. This
//! crate provides:
//!
//! - [`Graph`]: a dynamic undirected graph supporting the node joins and
//!   uniform node departures of the paper's §5.3 churn scenarios. Node
//!   identities are never recycled, so sample-collision semantics stay
//!   sound across membership changes.
//! - [`FrozenView`]: a flat CSR snapshot of a [`Graph`] built by
//!   [`Graph::freeze`] — the same topology with every neighbour list laid
//!   out contiguously, which is what the walk engines iterate over in the
//!   figure-scale hot loops.
//! - [`ShardedFrozenView`]: a [`FrozenView`] partitioned into per-shard
//!   CSR slabs joined by cut-edge connector tables, enabling shard-local
//!   walk segments that are stitched back together bit-identically to the
//!   unsharded walk (`census-walk`'s segment kernel, the sharded census
//!   service).
//! - [`Topology`]: the minimal neighbour-oracle interface the random walk
//!   engines need — a walker only ever asks a node for its degree and for a
//!   uniformly random neighbour, exactly the locality constraint of an
//!   overlay protocol. Implemented by [`Graph`], [`FrozenView`] and the
//!   churn simulator's dynamic overlay.
//! - [`generators`]: the two evaluation topologies of §5.1 (balanced random
//!   graphs with degrees in 1..=10 and Barabási–Albert scale-free graphs)
//!   plus the analytical reference families (Erdős–Rényi, k-out, random
//!   regular, rings/tori, hypercubes, bipartite regular for Remark 1, ...).
//! - [`spectral`]: the Laplacian spectral gap λ₂ and conductance tooling
//!   that the paper's accuracy bounds (Prop. 2, Lemma 1, Cheeger
//!   inequality) are stated in terms of.
//! - [`algo`]: connectivity and degree-distribution utilities (the paper
//!   always reports sizes relative to the probing node's connected
//!   component).
//!
//! # Examples
//!
//! ```
//! use census_graph::generators;
//! use rand::SeedableRng;
//! use rand::rngs::SmallRng;
//!
//! let mut rng = SmallRng::seed_from_u64(7);
//! let g = generators::balanced(1_000, 10, &mut rng);
//! assert_eq!(g.num_nodes(), 1_000);
//! let avg = 2.0 * g.num_edges() as f64 / g.num_nodes() as f64;
//! assert!((6.0..9.0).contains(&avg), "paper reports average degree 7-8");
//! ```

// `deny` rather than `forbid`: the one sanctioned exception is the
// scoped `allow` on the prefetch hint intrinsic in `prefetch`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod algo;
pub mod attributes;
pub mod generators;
pub mod io;
pub mod metrics;
pub mod spectral;

mod alias;
mod frozen;
mod graph;
mod node;
mod prefetch;
mod sharded;
mod topology;

pub use alias::AliasTables;
pub use frozen::FrozenView;
pub use graph::{Graph, GraphError};
pub use node::NodeId;
pub use prefetch::prefetch_read;
pub use sharded::{Connector, Route, ShardSlab, ShardedFrozenView};
pub use topology::Topology;

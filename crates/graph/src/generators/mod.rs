//! Overlay topology generators.
//!
//! The paper's evaluation (§5.1) uses two families: *balanced random
//! graphs* (per-node degrees drawn from 1..=10 with a degree cap, average
//! degree 7–8) and *scale-free graphs* (Barabási–Albert preferential
//! attachment). The analysis sections additionally reference Erdős–Rényi
//! graphs (\[17\]) and k-out random graphs (\[18\]) as examples of expanders,
//! and Remark 1 builds a counterexample on a regular bipartite graph. The
//! remaining structured families (rings, tori, hypercubes, stars, ...) are
//! the standard low- and high-expansion references the test-suite checks
//! spectral quantities against.
//!
//! All generators are deterministic given the caller-supplied RNG, so every
//! experiment in the repository is reproducible from its seed.

mod balanced;
mod random_families;
mod scale_free;
mod structured;

pub use balanced::balanced;
pub use random_families::{erdos_renyi, erdos_renyi_mean_degree, k_out, random_regular};
pub use scale_free::barabasi_albert;
pub use structured::{
    complete, complete_bipartite, grid, hypercube, path, regular_bipartite, ring, star, torus,
};

//! Deterministic structured families with known spectra.
//!
//! These are the reference topologies the spectral test-suite validates
//! [`crate::spectral`] against (their Laplacian eigenvalues are closed
//! form), the low-expansion counterexamples for the ablation benches
//! (rings and tori mix slowly), and the regular bipartite family used by
//! the paper's Remark 1 counterexample.

use rand::Rng;

use crate::{Graph, NodeId};

/// A path graph `0 - 1 - ... - n-1`.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn path(n: usize) -> Graph {
    assert!(n > 0, "graph must have at least one node");
    let mut g = Graph::with_capacity(n);
    let ids = g.add_nodes(n);
    for w in ids.windows(2) {
        g.add_edge(w[0], w[1]).expect("fresh path edge");
    }
    g
}

/// A cycle on `n` nodes. Laplacian gap `2 - 2cos(2π/n)`: the canonical
/// *bad* expander the paper's bounds degrade on.
///
/// # Panics
///
/// Panics if `n < 3`.
#[must_use]
pub fn ring(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least three nodes");
    let mut g = path(n);
    g.add_edge(NodeId::new(n - 1), NodeId::new(0))
        .expect("closing edge is fresh");
    g
}

/// The complete graph `K_n`. Laplacian gap `n`: the best possible
/// expander.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn complete(n: usize) -> Graph {
    assert!(n > 0, "graph must have at least one node");
    let mut g = Graph::with_capacity(n);
    let ids = g.add_nodes(n);
    for i in 0..n {
        for j in (i + 1)..n {
            g.add_edge(ids[i], ids[j]).expect("fresh complete edge");
        }
    }
    g
}

/// A star: node 0 joined to nodes `1..n`. Laplacian gap 1.
///
/// # Panics
///
/// Panics if `n < 2`.
#[must_use]
pub fn star(n: usize) -> Graph {
    assert!(n >= 2, "a star needs a centre and at least one leaf");
    let mut g = Graph::with_capacity(n);
    let ids = g.add_nodes(n);
    for &leaf in &ids[1..] {
        g.add_edge(ids[0], leaf).expect("fresh star edge");
    }
    g
}

/// A `rows × cols` grid with 4-neighbour connectivity (no wraparound).
///
/// # Panics
///
/// Panics if either dimension is zero.
#[must_use]
pub fn grid(rows: usize, cols: usize) -> Graph {
    assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
    let mut g = Graph::with_capacity(rows * cols);
    let ids = g.add_nodes(rows * cols);
    let at = |r: usize, c: usize| ids[r * cols + c];
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(at(r, c), at(r, c + 1)).expect("fresh grid edge");
            }
            if r + 1 < rows {
                g.add_edge(at(r, c), at(r + 1, c)).expect("fresh grid edge");
            }
        }
    }
    g
}

/// A `rows × cols` torus (grid with wraparound): the d-dimensional
/// geometric family whose gossip cost the related-work section quotes.
///
/// # Panics
///
/// Panics if either dimension is below 3 (wraparound would create
/// parallel edges).
#[must_use]
pub fn torus(rows: usize, cols: usize) -> Graph {
    assert!(
        rows >= 3 && cols >= 3,
        "torus dimensions must be at least 3"
    );
    let mut g = Graph::with_capacity(rows * cols);
    let ids = g.add_nodes(rows * cols);
    let at = |r: usize, c: usize| ids[r * cols + c];
    for r in 0..rows {
        for c in 0..cols {
            g.add_edge(at(r, c), at(r, (c + 1) % cols))
                .expect("fresh torus edge");
            g.add_edge(at(r, c), at((r + 1) % rows, c))
                .expect("fresh torus edge");
        }
    }
    g
}

/// The `dim`-dimensional hypercube on `2^dim` nodes. Laplacian gap 2.
///
/// # Panics
///
/// Panics if `dim == 0` or `dim > 20`.
#[must_use]
pub fn hypercube(dim: usize) -> Graph {
    assert!(dim > 0, "hypercube dimension must be positive");
    assert!(
        dim <= 20,
        "hypercube beyond 2^20 nodes is outside the design envelope"
    );
    let n = 1usize << dim;
    let mut g = Graph::with_capacity(n);
    let ids = g.add_nodes(n);
    for v in 0..n {
        for b in 0..dim {
            let u = v ^ (1 << b);
            if v < u {
                g.add_edge(ids[v], ids[u]).expect("fresh hypercube edge");
            }
        }
    }
    g
}

/// The complete bipartite graph `K_{a,b}`. Laplacian gap `min(a, b)`.
///
/// # Panics
///
/// Panics if either side is empty.
#[must_use]
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    assert!(a > 0 && b > 0, "both sides must be non-empty");
    let mut g = Graph::with_capacity(a + b);
    let ids = g.add_nodes(a + b);
    for i in 0..a {
        for j in 0..b {
            g.add_edge(ids[i], ids[a + j])
                .expect("fresh bipartite edge");
        }
    }
    g
}

/// A random `d`-regular bipartite graph on `2 * half` nodes, built as the
/// union of `d` random perfect matchings between the two sides
/// (swap-repaired until the union is simple).
///
/// This is the family of the paper's Remark 1 counterexample: with
/// *deterministic* sojourn times, a CTRW on such a graph never mixes
/// across the bipartition, whereas exponential sojourns do.
///
/// # Errors
///
/// Returns an error if a matching cannot be repaired into the union
/// within the pass budget (only plausible when `d` is close to `half`).
///
/// # Panics
///
/// Panics if `half == 0`, `d == 0`, or `d > half`.
pub fn regular_bipartite<R: Rng + ?Sized>(
    half: usize,
    d: usize,
    rng: &mut R,
) -> Result<Graph, String> {
    assert!(half > 0, "sides must be non-empty");
    assert!(d > 0, "degree must be positive");
    assert!(d <= half, "degree cannot exceed the opposite side's size");

    let mut g = Graph::with_capacity(2 * half);
    let ids = g.add_nodes(2 * half);
    for matching in 0..d {
        // A uniform permutation of the right side, then swap-repair any
        // assignment that duplicates an earlier matching's edge. (Full
        // rejection of the whole union succeeds with probability
        // ~exp(-d(d-1)/2) and is hopeless beyond small d.)
        let mut perm: Vec<usize> = (0..half).collect();
        for i in (1..half).rev() {
            perm.swap(i, rng.random_range(0..=i));
        }
        let mut passes = 0;
        loop {
            let bad: Vec<usize> = (0..half)
                .filter(|&l| g.has_edge(ids[l], ids[half + perm[l]]))
                .collect();
            if bad.is_empty() {
                break;
            }
            passes += 1;
            if passes > 200 {
                return Err(format!(
                    "could not repair matching {matching} of {d} on 2x{half} nodes"
                ));
            }
            for &l in &bad {
                let other = rng.random_range(0..half);
                perm.swap(l, other);
            }
        }
        for (left, &right) in perm.iter().enumerate() {
            g.add_edge(ids[left], ids[half + right])
                .expect("repair pass cleared duplicates");
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn path_and_ring_shapes() {
        let p = path(5);
        assert_eq!(p.num_edges(), 4);
        assert_eq!(p.degree(NodeId::new(0)), 1);
        assert_eq!(p.degree(NodeId::new(2)), 2);
        let r = ring(5);
        assert_eq!(r.num_edges(), 5);
        assert!(r.nodes().all(|v| r.degree(v) == 2));
    }

    #[test]
    fn complete_shape() {
        let g = complete(6);
        assert_eq!(g.num_edges(), 15);
        assert!(g.nodes().all(|v| g.degree(v) == 5));
    }

    #[test]
    fn single_node_complete() {
        let g = complete(1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn star_shape() {
        let g = star(7);
        assert_eq!(g.degree(NodeId::new(0)), 6);
        assert_eq!(g.num_edges(), 6);
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.num_nodes(), 12);
        // Edges: 3 rows x 3 horizontal + 2 x 4 vertical = 9 + 8.
        assert_eq!(g.num_edges(), 17);
        assert!(algo::is_connected(&g));
    }

    #[test]
    fn degenerate_grid_is_path() {
        let g = grid(1, 6);
        assert_eq!(g.num_edges(), 5);
    }

    #[test]
    fn torus_is_4_regular() {
        let g = torus(4, 5);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert_eq!(g.num_edges(), 2 * 20);
        assert!(algo::is_connected(&g));
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(4);
        assert_eq!(g.num_nodes(), 16);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert_eq!(algo::diameter_lower_bound(&g, NodeId::new(0)), 4);
    }

    #[test]
    fn complete_bipartite_shape() {
        let g = complete_bipartite(2, 3);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.degree(NodeId::new(0)), 3);
        assert_eq!(g.degree(NodeId::new(4)), 2);
    }

    #[test]
    fn regular_bipartite_is_regular_and_bipartite() {
        let mut rng = SmallRng::seed_from_u64(8);
        let half = 20;
        let g = regular_bipartite(half, 3, &mut rng).expect("simple union found");
        assert!(g.nodes().all(|v| g.degree(v) == 3));
        // No edge inside either side.
        for (a, b) in g.edges() {
            assert!(
                (a.index() < half) != (b.index() < half),
                "edge {a}-{b} stays within one side"
            );
        }
    }

    #[test]
    fn regular_bipartite_full_degree_is_complete_bipartite() {
        let mut rng = SmallRng::seed_from_u64(9);
        let g = regular_bipartite(3, 3, &mut rng).expect("K_{3,3} is the only option");
        assert_eq!(g.num_edges(), 9);
    }

    #[test]
    #[should_panic(expected = "at least three nodes")]
    fn tiny_ring_panics() {
        let _ = ring(2);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_torus_panics() {
        let _ = torus(2, 5);
    }
}

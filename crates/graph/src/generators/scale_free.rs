//! Barabási–Albert preferential attachment (§5.1, scale-free topology).

use rand::Rng;

use crate::{Graph, NodeId};

/// Generates a scale-free random graph by Barabási–Albert preferential
/// attachment: each arriving node attaches `m` edges to existing nodes
/// chosen with probability proportional to their current degree, giving
/// the power-law degree distribution (`P(degree = k) ∝ k^-3`) the paper
/// uses as its heterogeneous-topology benchmark.
///
/// The seed graph is a star on `m + 1` nodes (so every early node already
/// has positive degree); attachment uses the standard repeated-endpoints
/// list, and each new node's `m` targets are distinct.
///
/// # Panics
///
/// Panics if `m == 0` or `n <= m`.
///
/// # Examples
///
/// ```
/// use census_graph::generators::barabasi_albert;
/// use rand::SeedableRng;
/// use rand::rngs::SmallRng;
///
/// let g = barabasi_albert(500, 3, &mut SmallRng::seed_from_u64(9));
/// assert_eq!(g.num_nodes(), 500);
/// // Every non-seed node contributed exactly m = 3 edges.
/// assert_eq!(g.num_edges(), 3 + (500 - 4) * 3);
/// ```
pub fn barabasi_albert<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Graph {
    assert!(m > 0, "attachment count m must be positive");
    assert!(n > m, "need more nodes than attachment edges");
    let mut g = Graph::with_capacity(n);
    let ids = g.add_nodes(n);

    // Seed: star on the first m + 1 nodes.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * n * m);
    for &leaf in &ids[1..=m] {
        g.add_edge(ids[0], leaf).expect("fresh star edge");
        endpoints.push(ids[0]);
        endpoints.push(leaf);
    }

    let mut targets: Vec<NodeId> = Vec::with_capacity(m);
    for &v in &ids[m + 1..] {
        targets.clear();
        // Draw m distinct degree-proportional targets.
        while targets.len() < m {
            let t = endpoints[rng.random_range(0..endpoints.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            g.add_edge(v, t).expect("new node has no prior edges");
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn node_and_edge_counts() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = barabasi_albert(1_000, 3, &mut rng);
        assert_eq!(g.num_nodes(), 1_000);
        assert_eq!(g.num_edges(), 3 + (1_000 - 4) * 3);
    }

    #[test]
    fn is_connected() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = barabasi_albert(2_000, 2, &mut rng);
        assert!(algo::is_connected(&g));
    }

    #[test]
    fn hubs_emerge() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = barabasi_albert(5_000, 3, &mut rng);
        // Scale-free graphs have hubs with degree far above the mean.
        assert!(g.max_degree() > 10 * g.average_degree() as usize);
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let mut rng = SmallRng::seed_from_u64(4);
        let g = barabasi_albert(20_000, 3, &mut rng);
        let hist = algo::degree_histogram(&g);
        let frac = |k: usize| hist.get(k).copied().unwrap_or(0) as f64 / g.num_nodes() as f64;
        // P(k) ~ 2 m^2 / k^3: the ratio P(3)/P(6) should be near 8.
        let ratio = frac(3) / frac(6).max(1e-9);
        assert!(
            (4.0..16.0).contains(&ratio),
            "power-law tail ratio {ratio} outside plausible band"
        );
    }

    #[test]
    fn minimum_degree_is_m() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = barabasi_albert(500, 4, &mut rng);
        assert!(g.nodes().all(|v| g.degree(v) >= 4));
    }

    #[test]
    fn smallest_valid_instance() {
        let mut rng = SmallRng::seed_from_u64(6);
        let g = barabasi_albert(2, 1, &mut rng);
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    #[should_panic(expected = "more nodes than attachment")]
    fn n_not_above_m_panics() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = barabasi_albert(3, 3, &mut rng);
    }

    #[test]
    #[should_panic(expected = "m must be positive")]
    fn zero_m_panics() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = barabasi_albert(3, 0, &mut rng);
    }
}

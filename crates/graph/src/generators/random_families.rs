//! Classical random graph families referenced by the paper's analysis.

use rand::Rng;

use crate::{Graph, NodeId};

/// Generates an Erdős–Rényi graph `G(n, p)`: each of the `n(n-1)/2`
/// possible edges is present independently with probability `p`.
///
/// Uses geometric edge skipping, so generation is `O(n + |E|)` rather than
/// `O(n²)` — the paper's analysis cites ER graphs with mean degree
/// `d ≫ log n` as having expansion `Ω(d)` (\[17\], Thm 5.4), and the
/// spectral tests exercise that regime at non-trivial sizes.
///
/// # Panics
///
/// Panics if `n == 0` or `p` is not in `[0, 1]`.
///
/// # Examples
///
/// ```
/// use census_graph::generators::erdos_renyi;
/// use rand::SeedableRng;
/// use rand::rngs::SmallRng;
///
/// let g = erdos_renyi(100, 0.1, &mut SmallRng::seed_from_u64(3));
/// assert_eq!(g.num_nodes(), 100);
/// ```
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!(n > 0, "graph must have at least one node");
    assert!(
        (0.0..=1.0).contains(&p),
        "edge probability must lie in [0, 1]"
    );
    let mut g = Graph::with_capacity(n);
    let ids = g.add_nodes(n);
    if p == 0.0 || n == 1 {
        return g;
    }
    if p == 1.0 {
        for i in 0..n {
            for j in (i + 1)..n {
                g.add_edge(ids[i], ids[j]).expect("fresh complete edge");
            }
        }
        return g;
    }
    // Batagelj–Brandes skipping over the lexicographic edge enumeration.
    let log_q = (1.0 - p).ln();
    let (mut v, mut w) = (1usize, usize::MAX);
    while v < n {
        let r: f64 = rng.random();
        let skip = ((1.0 - r).ln() / log_q).floor() as usize;
        w = w.wrapping_add(1 + skip);
        while w >= v && v < n {
            w -= v;
            v += 1;
        }
        if v < n {
            g.add_edge(ids[v], ids[w]).expect("each pair visited once");
        }
    }
    g
}

/// Generates `G(n, p)` with `p` chosen so the mean degree is `c`.
///
/// # Panics
///
/// Panics if `n < 2` or the implied probability leaves `[0, 1]`.
pub fn erdos_renyi_mean_degree<R: Rng + ?Sized>(n: usize, c: f64, rng: &mut R) -> Graph {
    assert!(n >= 2, "mean-degree form needs at least two nodes");
    erdos_renyi(n, c / (n as f64 - 1.0), rng)
}

/// Generates a k-out random graph: each node draws `k` distinct targets
/// uniformly at random and undirected edges are formed by the union of all
/// choices (mutual choices collapse to a single edge).
///
/// The paper cites \[18\] (Ganesh & Xue): for `k ≥ 2` these graphs have
/// expansion bounded away from zero with high probability, the
/// "favourable situation" for both estimators.
///
/// # Panics
///
/// Panics if `k == 0` or `k >= n`.
pub fn k_out<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Graph {
    assert!(k > 0, "k must be positive");
    assert!(
        k < n,
        "each node needs k distinct other nodes to choose from"
    );
    let mut g = Graph::with_capacity(n);
    let ids = g.add_nodes(n);
    let mut chosen: Vec<NodeId> = Vec::with_capacity(k);
    for &v in &ids {
        chosen.clear();
        while chosen.len() < k {
            let t = ids[rng.random_range(0..n)];
            if t != v && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            // A mutual choice may already have created this edge.
            match g.add_edge(v, t) {
                Ok(()) | Err(crate::GraphError::DuplicateEdge(_, _)) => {}
                Err(e) => unreachable!("k-out edge insertion cannot fail otherwise: {e}"),
            }
        }
    }
    g
}

/// Generates a random `d`-regular simple graph via the configuration
/// model: `d` stubs per node are paired uniformly at random and the
/// pairing is re-drawn until it contains no self-loop or parallel edge.
///
/// Rejection keeps the distribution uniform over simple `d`-regular
/// graphs. The expected number of restarts is `exp((d²-1)/4)` — fine for
/// the `d ≤ 8` sizes the benchmarks use. Returns an error string if no
/// simple pairing is found within the attempt budget.
///
/// # Errors
///
/// Returns an error if `1000` pairings in a row fail to be simple (only
/// plausible for large `d`).
///
/// # Panics
///
/// Panics if `n * d` is odd, `d == 0`, or `d >= n`.
pub fn random_regular<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> Result<Graph, String> {
    assert!(d > 0, "degree must be positive");
    assert!(d < n, "degree must be below node count");
    assert!(
        (n * d).is_multiple_of(2),
        "n * d must be even to pair stubs"
    );

    'attempt: for _ in 0..1_000 {
        let mut stubs: Vec<usize> = (0..n * d).map(|s| s / d).collect();
        // Fisher-Yates shuffle, then pair consecutive stubs.
        for i in (1..stubs.len()).rev() {
            stubs.swap(i, rng.random_range(0..=i));
        }
        let mut g = Graph::with_capacity(n);
        let ids = g.add_nodes(n);
        for pair in stubs.chunks_exact(2) {
            let (a, b) = (ids[pair[0]], ids[pair[1]]);
            if g.add_edge(a, b).is_err() {
                continue 'attempt;
            }
        }
        return Ok(g);
    }
    Err(format!(
        "no simple {d}-regular pairing on {n} nodes found within the attempt budget"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn er_zero_probability_is_empty() {
        let mut rng = SmallRng::seed_from_u64(0);
        let g = erdos_renyi(50, 0.0, &mut rng);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn er_probability_one_is_complete() {
        let mut rng = SmallRng::seed_from_u64(0);
        let g = erdos_renyi(10, 1.0, &mut rng);
        assert_eq!(g.num_edges(), 45);
    }

    #[test]
    fn er_edge_count_concentrates() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 400;
        let p = 0.05;
        let g = erdos_renyi(n, p, &mut rng);
        let expected = p * (n * (n - 1) / 2) as f64;
        let sd = (expected * (1.0 - p)).sqrt();
        assert!(
            (g.num_edges() as f64 - expected).abs() < 6.0 * sd,
            "edges {} vs expected {expected}",
            g.num_edges()
        );
    }

    #[test]
    fn er_mean_degree_form() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = erdos_renyi_mean_degree(2_000, 10.0, &mut rng);
        assert!((g.average_degree() - 10.0).abs() < 1.0);
    }

    #[test]
    fn er_single_node() {
        let mut rng = SmallRng::seed_from_u64(0);
        let g = erdos_renyi(1, 0.5, &mut rng);
        assert_eq!(g.num_nodes(), 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn k_out_minimum_degree() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = k_out(500, 3, &mut rng);
        assert!(g.nodes().all(|v| g.degree(v) >= 3));
        // Union of choices: at most 2k per node on average.
        assert!(g.average_degree() <= 6.0);
    }

    #[test]
    fn k_out_is_connected_for_k2() {
        let mut rng = SmallRng::seed_from_u64(4);
        let g = k_out(1_000, 2, &mut rng);
        assert!(
            crate::algo::is_connected(&g),
            "2-out graphs are whp connected"
        );
    }

    #[test]
    fn random_regular_degrees() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = random_regular(100, 4, &mut rng).expect("pairing found");
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert_eq!(g.num_edges(), 200);
    }

    #[test]
    fn random_regular_d1_is_perfect_matching() {
        let mut rng = SmallRng::seed_from_u64(6);
        let g = random_regular(10, 1, &mut rng).expect("pairing found");
        assert_eq!(g.num_edges(), 5);
        assert!(g.nodes().all(|v| g.degree(v) == 1));
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn random_regular_odd_product_panics() {
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = random_regular(5, 3, &mut rng);
    }

    #[test]
    #[should_panic(expected = "lie in [0, 1]")]
    fn er_bad_probability_panics() {
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = erdos_renyi(5, 1.5, &mut rng);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn er_simple_graph_invariants(n in 2usize..120, p in 0.0f64..0.3, seed in any::<u64>()) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let g = erdos_renyi(n, p, &mut rng);
            for v in g.nodes() {
                let mut nb = g.neighbors(v).to_vec();
                nb.sort();
                nb.dedup();
                prop_assert_eq!(nb.len(), g.degree(v));
                prop_assert!(!nb.contains(&v));
            }
            let degsum: usize = g.nodes().map(|v| g.degree(v)).sum();
            prop_assert_eq!(degsum, 2 * g.num_edges());
        }

        #[test]
        fn k_out_invariants(n in 4usize..150, k in 1usize..4, seed in any::<u64>()) {
            prop_assume!(k < n);
            let mut rng = SmallRng::seed_from_u64(seed);
            let g = k_out(n, k, &mut rng);
            prop_assert!(g.nodes().all(|v| g.degree(v) >= k));
        }
    }
}

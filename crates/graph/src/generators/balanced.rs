//! The paper's "balanced random graph" generator (§5.1).

use rand::Rng;

use crate::{Graph, NodeId};

/// Generates a balanced random graph following the procedure of §5.1:
///
/// > "Sequentially, each node *i* selects a random number *k(i)* between 1
/// > and 10. It then selects *k(i)* target nodes at random, among target
/// > nodes with a current degree less than 10. Then *k(i)* undirected edges
/// > are created between node *i* and its targets."
///
/// Degrees therefore lie in `1..=max_degree`, and the resulting average
/// degree is between 7 and 8 for `max_degree = 10`, as the paper reports.
/// We interpret *k(i)* as the degree node *i* tops itself up to (it adds
/// edges until its degree reaches *k(i)*, counting edges received earlier
/// as a target) — this is the reading that reproduces the paper's average
/// degree; creating *k(i)* edges unconditionally would saturate nearly
/// every node at the cap (average ≈ 9.3). Targets are drawn without
/// replacement from the eligible pool (degree `< max_degree`, excluding
/// the selecting node and its existing neighbours); when the pool runs
/// short, the node simply creates fewer edges, as a real join protocol
/// would.
///
/// By the k-out expansion result the paper cites (\[18\]), these graphs are
/// good expanders with high probability.
///
/// # Panics
///
/// Panics if `n == 0` or `max_degree < 2`.
///
/// # Examples
///
/// ```
/// use census_graph::generators::balanced;
/// use rand::SeedableRng;
/// use rand::rngs::SmallRng;
///
/// let g = balanced(200, 10, &mut SmallRng::seed_from_u64(1));
/// assert!(g.nodes().all(|n| (1..=10).contains(&g.degree(n))));
/// ```
pub fn balanced<R: Rng + ?Sized>(n: usize, max_degree: usize, rng: &mut R) -> Graph {
    assert!(n > 0, "graph must have at least one node");
    assert!(
        max_degree >= 2,
        "degree cap below 2 cannot form a connected overlay"
    );
    let mut g = Graph::with_capacity(n);
    let ids = g.add_nodes(n);
    if n == 1 {
        return g;
    }

    // Pool of nodes whose degree is still below the cap, with positions for
    // O(1) removal.
    let mut pool: Vec<NodeId> = ids.clone();
    let mut pos: Vec<usize> = (0..n).collect();
    let evict = |pool: &mut Vec<NodeId>, pos: &mut Vec<usize>, node: NodeId| {
        let p = pos[node.index()];
        let last = *pool.last().expect("pool non-empty when evicting");
        pool.swap_remove(p);
        if last != node {
            pos[last.index()] = p;
        }
        pos[node.index()] = usize::MAX;
    };

    for &i in &ids {
        let want = rng.random_range(1..=max_degree);
        let mut attempts = 0usize;
        // Rejection sampling over the pool; the pool only contains nodes
        // with spare degree, so rejections are due to self-selection or
        // existing adjacency and stay rare.
        let max_attempts = 20 * max_degree + 100;
        while g.degree(i) < want && attempts < max_attempts {
            attempts += 1;
            if pool.is_empty() || (pool.len() == 1 && pool[0] == i) {
                break;
            }
            let t = pool[rng.random_range(0..pool.len())];
            if t == i || g.has_edge(i, t) {
                continue;
            }
            g.add_edge(i, t)
                .expect("pool nodes are alive with spare degree");
            if g.degree(t) >= max_degree {
                evict(&mut pool, &mut pos, t);
            }
            if g.degree(i) >= max_degree && pos[i.index()] != usize::MAX {
                evict(&mut pool, &mut pos, i);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn respects_degree_cap() {
        let mut rng = SmallRng::seed_from_u64(42);
        let g = balanced(2_000, 10, &mut rng);
        assert_eq!(g.num_nodes(), 2_000);
        assert!(g.nodes().all(|v| g.degree(v) <= 10));
    }

    #[test]
    fn average_degree_matches_paper() {
        let mut rng = SmallRng::seed_from_u64(7);
        let g = balanced(10_000, 10, &mut rng);
        let avg = g.average_degree();
        assert!(
            (6.5..8.5).contains(&avg),
            "paper reports average degree between 7 and 8, got {avg}"
        );
    }

    #[test]
    fn no_isolated_nodes() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = balanced(1_000, 10, &mut rng);
        assert!(g.nodes().all(|v| g.degree(v) >= 1));
    }

    #[test]
    fn giant_component_dominates() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = balanced(3_000, 10, &mut rng);
        let sizes = algo::component_sizes(&g);
        assert!(sizes[0] as f64 > 0.99 * g.num_nodes() as f64, "{sizes:?}");
    }

    #[test]
    fn single_node_graph() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = balanced(1, 10, &mut rng);
        assert_eq!(g.num_nodes(), 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn two_node_graph_connects() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = balanced(2, 10, &mut rng);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = balanced(0, 10, &mut rng);
    }

    #[test]
    #[should_panic(expected = "degree cap below 2")]
    fn tiny_cap_panics() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = balanced(10, 1, &mut rng);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn invariants_hold(n in 1usize..400, cap in 2usize..12, seed in any::<u64>()) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let g = balanced(n, cap, &mut rng);
            prop_assert_eq!(g.num_nodes(), n);
            // Degree cap respected and handshake lemma holds.
            let degsum: usize = g.nodes().map(|v| g.degree(v)).sum();
            prop_assert_eq!(degsum, 2 * g.num_edges());
            prop_assert!(g.nodes().all(|v| g.degree(v) <= cap));
            // No duplicate edges or self-loops by construction.
            for v in g.nodes() {
                let mut nb: Vec<_> = g.neighbors(v).to_vec();
                nb.sort();
                nb.dedup();
                prop_assert_eq!(nb.len(), g.degree(v));
                prop_assert!(!nb.contains(&v));
            }
        }
    }
}

//! Sharded CSR snapshots: a [`FrozenView`] partitioned into per-shard
//! slabs joined by cut-edge connector tables.
//!
//! Das Sarma et al.'s distributed walk line (PAPERS.md) decomposes a long
//! random walk into short shard-local *segments* stitched together at the
//! edges that cross shard boundaries. [`ShardedFrozenView`] is the
//! topology side of that decomposition: the slot space of a frozen
//! snapshot is split into `S` contiguous, balanced vertex ranges,
//! each materialised as its own CSR slab, and every adjacency entry is
//! annotated with a *route* — either the target's local slot in the same
//! slab, or an index into the slab's connector table giving the target's
//! `(shard, local)` address on the far side of the cut.
//!
//! # Determinism contract
//!
//! Partitioning is a pure layout transformation. Every slab stores its
//! nodes' neighbour lists with the *same global identifiers in the same
//! per-node order* as the source [`FrozenView`], so the [`Topology`]
//! implementation is bit-compatible with the unsharded snapshot: a walk
//! driven by the same RNG visits the identical node sequence on either
//! representation, and [`ShardedFrozenView::random_node`] consumes
//! exactly one draw to pick exactly the node the unsharded
//! [`FrozenView::random_node`] would pick. `shards = 1` therefore
//! reproduces today's `FrozenView` behaviour exactly (and cheaply: one
//! slab, an empty connector table, every route local).
//!
//! Slots are split as evenly as possible: with `q = slot_count / S` and
//! `r = slot_count % S`, the first `r` shards take `q + 1` slots and the
//! rest take `q`, so slab sizes never differ by more than one and — the
//! historical failure mode of the ceil-stride split — no shard ends up
//! silently empty while slots remain (`10` slots over `8` shards used to
//! yield stride `2` and five non-empty slabs; now every shard holds at
//! least one slot whenever `slot_count >= S`). When `S > slot_count`
//! there are simply not enough slots to go around: the first
//! `slot_count` shards hold one slot each and the rest are empty *by
//! construction* — the slab count always equals the requested shard
//! count, an invariant the service layer relies on to diff slabs
//! per-shard across epochs while churn grows the slot space. The shard
//! of a slot remains a pure O(1) function of `(slot_count, S)`, so two
//! freezes of the same topology always partition identically (see
//! `census-service`'s shard-vector refreeze).

use crate::{FrozenView, NodeId, Topology};

/// Marks a route as crossing a shard boundary; the low bits index the
/// slab's connector table instead of naming a local slot.
const CUT_BIT: u32 = 1 << 31;

/// The far side of a cut edge: where a walk leaving this shard lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Connector {
    /// Index of the destination shard.
    pub shard: u32,
    /// The destination node's local slot within that shard's slab.
    pub local: u32,
}

/// A decoded adjacency route: where one neighbour entry leads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// The neighbour lives in the same shard, at this local slot.
    Local(u32),
    /// The neighbour lives across a cut edge; the [`Connector`] carries
    /// its `(shard, local)` address.
    Cut(Connector),
}

/// One shard's CSR slab: a contiguous vertex range of the source
/// snapshot with its own offsets, neighbour lists, liveness bitmap,
/// live-node index, and per-edge routes into the connector table.
///
/// Equality is structural (derived), so a slab can be compared across
/// re-freezes to detect whether its shard's topology actually changed —
/// the basis of per-shard epoch vectors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSlab {
    /// First global slot of this shard's vertex range.
    start_slot: usize,
    /// Local CSR offsets: `offsets[l]..offsets[l + 1]` indexes the
    /// neighbour list of local slot `l` (empty for dead slots).
    offsets: Vec<u32>,
    /// Neighbour lists, global [`NodeId`]s in source per-node order.
    neighbors: Vec<NodeId>,
    /// One route per `neighbors` entry: the target's local slot, or
    /// `CUT_BIT | connector_index` for a boundary hop.
    routes: Vec<u32>,
    /// Connector table: one entry per cut-edge adjacency entry.
    connectors: Vec<Connector>,
    /// Per-local-slot liveness bitmap.
    alive: Vec<bool>,
    /// Live nodes of this shard, global ids in increasing order.
    live: Vec<NodeId>,
}

impl ShardSlab {
    /// First global slot of this shard's vertex range.
    #[must_use]
    pub fn start_slot(&self) -> usize {
        self.start_slot
    }

    /// Number of slots (live or dead) in this shard's range.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.alive.len()
    }

    /// Whether the local slot held a live node at freeze time.
    #[must_use]
    pub fn is_alive(&self, local: u32) -> bool {
        self.alive.get(local as usize).copied().unwrap_or(false)
    }

    /// The global identifier of a local slot.
    #[must_use]
    #[inline]
    pub fn global(&self, local: u32) -> NodeId {
        NodeId::new(self.start_slot + local as usize)
    }

    /// Degree of a live local slot.
    #[must_use]
    #[inline]
    pub fn degree(&self, local: u32) -> usize {
        let l = local as usize;
        (self.offsets[l + 1] - self.offsets[l]) as usize
    }

    /// Neighbour list of a local slot, global ids in source order.
    #[must_use]
    #[inline]
    pub fn neighbors(&self, local: u32) -> &[NodeId] {
        let l = local as usize;
        &self.neighbors[self.offsets[l] as usize..self.offsets[l + 1] as usize]
    }

    /// The routes parallel to [`ShardSlab::neighbors`]: one encoded route
    /// per neighbour entry, decodable with [`ShardSlab::decode`].
    #[must_use]
    #[inline]
    pub fn routes(&self, local: u32) -> &[u32] {
        let l = local as usize;
        &self.routes[self.offsets[l] as usize..self.offsets[l + 1] as usize]
    }

    /// Decodes one raw route word.
    #[must_use]
    #[inline]
    pub fn decode(&self, raw: u32) -> Route {
        if raw & CUT_BIT == 0 {
            Route::Local(raw)
        } else {
            Route::Cut(self.connectors[(raw & !CUT_BIT) as usize])
        }
    }

    /// Live nodes of this shard, global ids in increasing order.
    #[must_use]
    pub fn live(&self) -> &[NodeId] {
        &self.live
    }

    /// Number of cut-edge adjacency entries leaving this shard.
    #[must_use]
    pub fn cut_edges(&self) -> usize {
        self.connectors.len()
    }
}

/// A [`FrozenView`] partitioned into `S` vertex-range shards.
///
/// Implements [`Topology`] bit-compatibly with the source snapshot (see
/// the module docs), so every existing walk engine and estimator runs on
/// it unchanged and produces identical results; the per-shard slabs and
/// connector tables additionally support shard-local segment execution
/// (`census_walk::segment`).
///
/// # Examples
///
/// ```
/// use census_graph::{generators, ShardedFrozenView, Topology};
/// use rand::SeedableRng;
/// use rand::rngs::SmallRng;
///
/// let mut rng = SmallRng::seed_from_u64(7);
/// let frozen = generators::balanced(100, 6, &mut rng).freeze();
/// let sharded = ShardedFrozenView::partition(&frozen, 4);
/// assert_eq!(sharded.shards(), 4);
/// assert_eq!(sharded.num_nodes(), frozen.num_nodes());
/// for v in frozen.nodes() {
///     assert_eq!(sharded.neighbors_of(v), frozen.neighbors(v));
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedFrozenView {
    slabs: Vec<ShardSlab>,
    /// Base slots per shard: `slot_count / shards`.
    base: usize,
    /// Shards holding one extra slot: `slot_count % shards`. The first
    /// `extra` shards have `base + 1` slots, the rest `base`.
    extra: usize,
    slot_count: usize,
    num_nodes: usize,
    num_edges: usize,
    epoch: u64,
    /// Cumulative live-node counts per shard (`len = shards + 1`): the
    /// global live index `k` lives in the shard `s` with
    /// `live_prefix[s] <= k < live_prefix[s + 1]`.
    live_prefix: Vec<usize>,
}

impl ShardedFrozenView {
    /// Partitions `frozen` into `shards` contiguous vertex ranges of
    /// balanced size (differing by at most one slot; see the module
    /// docs). Whenever `slot_count >= shards` every slab is non-empty;
    /// with more shards than slots the trailing `shards - slot_count`
    /// slabs are empty by construction, and the slab count still equals
    /// `shards` so per-shard epoch diffing stays well-defined.
    ///
    /// Cost is `O(slots + edges)`. The partition is a pure function of
    /// the snapshot's slot space and `shards`, so re-freezing an
    /// unchanged topology yields byte-identical slabs.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    #[must_use]
    pub fn partition(frozen: &FrozenView, shards: usize) -> Self {
        assert!(shards > 0, "a sharded view needs at least one shard");
        let slot_count = frozen.slot_count();
        let base = slot_count / shards;
        let extra = slot_count % shards;
        let mut slabs = Vec::with_capacity(shards);
        let mut live_prefix = Vec::with_capacity(shards + 1);
        live_prefix.push(0usize);
        let mut start_slot = 0usize;
        for s in 0..shards {
            let slots = base + usize::from(s < extra);
            let end_slot = start_slot + slots;
            let mut offsets = Vec::with_capacity(slots + 1);
            let mut neighbors = Vec::new();
            let mut routes = Vec::new();
            let mut connectors = Vec::new();
            let mut alive = vec![false; slots];
            let mut live = Vec::new();
            offsets.push(0u32);
            for (l, slot_alive) in alive.iter_mut().enumerate() {
                let id = NodeId::new(start_slot + l);
                if frozen.is_alive(id) {
                    *slot_alive = true;
                    live.push(id);
                    for &v in frozen.neighbors(id) {
                        let (target_shard, local) = Self::address(base, extra, v.index());
                        let target_local = u32::try_from(local).expect("local slot fits in u32");
                        let route = if target_shard == s {
                            debug_assert!(target_local & CUT_BIT == 0);
                            target_local
                        } else {
                            let idx = u32::try_from(connectors.len())
                                .expect("connector index fits in 31 bits");
                            connectors.push(Connector {
                                shard: u32::try_from(target_shard).expect("shard fits in u32"),
                                local: target_local,
                            });
                            CUT_BIT | idx
                        };
                        neighbors.push(v);
                        routes.push(route);
                    }
                }
                offsets.push(u32::try_from(neighbors.len()).expect("adjacency entries fit in u32"));
            }
            live_prefix.push(live_prefix[s] + live.len());
            slabs.push(ShardSlab {
                start_slot,
                offsets,
                neighbors,
                routes,
                connectors,
                alive,
                live,
            });
            start_slot = end_slot;
        }
        debug_assert_eq!(start_slot, slot_count, "slabs must tile the slot space");
        Self {
            slabs,
            base,
            extra,
            slot_count,
            num_nodes: frozen.num_nodes(),
            num_edges: frozen.num_edges(),
            epoch: frozen.epoch(),
            live_prefix,
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.slabs.len()
    }

    /// One shard's slab.
    #[must_use]
    pub fn slab(&self, shard: u32) -> &ShardSlab {
        &self.slabs[shard as usize]
    }

    /// Number of live nodes in the snapshot.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of edges between live nodes in the snapshot.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Total node slots of the source graph, including dead ones.
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.slot_count
    }

    /// Which freeze of the source graph produced this snapshot (the
    /// stamp of the underlying [`FrozenView`]).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Total cut-edge adjacency entries across all shards (each
    /// undirected cut edge contributes two: one per direction).
    #[must_use]
    pub fn cut_edges(&self) -> usize {
        self.slabs.iter().map(ShardSlab::cut_edges).sum()
    }

    /// The `(shard, local)` address of a slot under the balanced split:
    /// the first `extra` shards hold `base + 1` slots, the rest `base`.
    /// O(1) and a pure function of `(slot_count, shards)`. The `base ==
    /// 0` case (more shards than slots) never reaches the second branch
    /// for an in-range slot — every such slot sits in a width-one shard
    /// below the boundary — so the `max(1)` guard only keeps the
    /// arithmetic total for out-of-range inputs.
    #[inline]
    fn address(base: usize, extra: usize, slot: usize) -> (usize, usize) {
        let boundary = extra * (base + 1);
        if slot < boundary {
            (slot / (base + 1), slot % (base + 1))
        } else {
            let past = slot - boundary;
            (extra + past / base.max(1), past % base.max(1))
        }
    }

    /// The shard owning a slot.
    #[must_use]
    #[inline]
    pub fn shard_of(&self, node: NodeId) -> u32 {
        let (shard, _) = Self::address(self.base, self.extra, node.index());
        u32::try_from(shard).expect("shard fits in u32")
    }

    /// The `(shard, local)` address of a slot.
    #[must_use]
    #[inline]
    pub fn locate(&self, node: NodeId) -> (u32, u32) {
        let (shard, local) = Self::address(self.base, self.extra, node.index());
        (
            u32::try_from(shard).expect("shard fits in u32"),
            u32::try_from(local).expect("local slot fits in u32"),
        )
    }

    /// The global identifier at a `(shard, local)` address.
    #[must_use]
    #[inline]
    pub fn global(&self, shard: u32, local: u32) -> NodeId {
        self.slabs[shard as usize].global(local)
    }

    /// Whether `node` was alive when the snapshot was taken.
    #[must_use]
    pub fn is_alive(&self, node: NodeId) -> bool {
        if node.index() >= self.slot_count {
            return false;
        }
        let (shard, local) = self.locate(node);
        self.slabs[shard as usize].is_alive(local)
    }

    /// Degree of a live node.
    ///
    /// # Panics
    ///
    /// Panics if the node is not alive in the snapshot.
    #[must_use]
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        assert!(self.is_alive(node), "degree of dead node {node}");
        let (shard, local) = self.locate(node);
        self.slabs[shard as usize].degree(local)
    }

    /// Neighbour list of a live node — the same global ids in the same
    /// order as the source [`FrozenView`].
    ///
    /// # Panics
    ///
    /// Panics if the node is not alive in the snapshot.
    #[must_use]
    #[inline]
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        assert!(self.is_alive(node), "neighbors of dead node {node}");
        let (shard, local) = self.locate(node);
        self.slabs[shard as usize].neighbors(local)
    }

    /// Picks a live node uniformly at random in O(1 + log S): one RNG
    /// draw into the global live index, then a prefix-sum lookup. The
    /// draw count *and* the chosen node are identical to
    /// [`FrozenView::random_node`] on the source snapshot.
    pub fn random_node<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeId> {
        if self.num_nodes == 0 {
            return None;
        }
        let k = rng.random_range(0..self.num_nodes);
        // The shard whose cumulative range contains k: partition_point
        // returns the first shard boundary strictly beyond k.
        let shard = self.live_prefix.partition_point(|&p| p <= k) - 1;
        Some(self.slabs[shard].live[k - self.live_prefix[shard]])
    }

    /// Iterates over live node identifiers in increasing order (shard by
    /// shard, which *is* global order for a vertex-range partition).
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.slabs.iter().flat_map(|slab| slab.live.iter().copied())
    }
}

impl Topology for ShardedFrozenView {
    fn peer_count(&self) -> usize {
        self.num_nodes
    }

    fn contains(&self, node: NodeId) -> bool {
        self.is_alive(node)
    }

    #[inline]
    fn neighbors_of(&self, node: NodeId) -> &[NodeId] {
        self.neighbors(node)
    }

    #[inline]
    fn degree_of(&self, node: NodeId) -> usize {
        self.degree(node)
    }

    fn any_peer<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeId> {
        self.random_node(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn churned_frozen(n: usize, kills: usize, seed: u64) -> FrozenView {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut g = generators::balanced(n, 6, &mut rng);
        for _ in 0..kills {
            let victim = g.random_node(&mut rng).expect("non-empty");
            let _ = g.remove_node(victim);
        }
        g.freeze()
    }

    #[test]
    fn single_shard_reproduces_the_frozen_view_exactly() {
        let frozen = churned_frozen(300, 40, 1);
        let sharded = ShardedFrozenView::partition(&frozen, 1);
        assert_eq!(sharded.shards(), 1);
        assert_eq!(sharded.num_nodes(), frozen.num_nodes());
        assert_eq!(sharded.num_edges(), frozen.num_edges());
        assert_eq!(sharded.slot_count(), frozen.slot_count());
        assert_eq!(sharded.epoch(), frozen.epoch());
        assert_eq!(sharded.cut_edges(), 0, "one shard has no cut edges");
        for slot in 0..frozen.slot_count() {
            let id = NodeId::new(slot);
            assert_eq!(sharded.is_alive(id), frozen.is_alive(id));
            if frozen.is_alive(id) {
                assert_eq!(sharded.neighbors(id), frozen.neighbors(id));
                assert_eq!(sharded.degree(id), frozen.degree(id));
            }
        }
        // Identical RNG consumption and identical picks.
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        for _ in 0..200 {
            assert_eq!(sharded.random_node(&mut a), frozen.random_node(&mut b));
        }
    }

    #[test]
    fn partition_is_bit_compatible_for_every_shard_count() {
        let frozen = churned_frozen(250, 60, 2);
        for shards in [1usize, 2, 3, 5, 8, 16] {
            let sharded = ShardedFrozenView::partition(&frozen, shards);
            assert_eq!(sharded.shards(), shards);
            for v in frozen.nodes() {
                assert_eq!(
                    sharded.neighbors_of(v),
                    frozen.neighbors(v),
                    "neighbour list diverged at S={shards}"
                );
            }
            assert_eq!(
                sharded.nodes().collect::<Vec<_>>(),
                frozen.nodes().collect::<Vec<_>>(),
                "live-node order diverged at S={shards}"
            );
            let mut a = SmallRng::seed_from_u64(31);
            let mut b = SmallRng::seed_from_u64(31);
            for _ in 0..100 {
                assert_eq!(
                    sharded.random_node(&mut a),
                    frozen.random_node(&mut b),
                    "random_node diverged at S={shards}"
                );
            }
        }
    }

    #[test]
    fn routes_and_connectors_address_exactly_the_neighbour_entries() {
        let frozen = churned_frozen(200, 30, 3);
        for shards in [2usize, 4, 8] {
            let sharded = ShardedFrozenView::partition(&frozen, shards);
            let mut cut_total = 0usize;
            for s in 0..shards {
                let slab = sharded.slab(u32::try_from(s).expect("small"));
                for l in 0..slab.slots() {
                    let local = u32::try_from(l).expect("small");
                    if !slab.is_alive(local) {
                        continue;
                    }
                    let neighbors = slab.neighbors(local);
                    let routes = slab.routes(local);
                    assert_eq!(neighbors.len(), routes.len());
                    for (&v, &raw) in neighbors.iter().zip(routes) {
                        match slab.decode(raw) {
                            Route::Local(tl) => {
                                assert_eq!(slab.global(tl), v, "local route mismatch");
                                assert_eq!(sharded.shard_of(v) as usize, s);
                            }
                            Route::Cut(c) => {
                                cut_total += 1;
                                assert_ne!(c.shard as usize, s, "cut route within shard");
                                assert_eq!(sharded.global(c.shard, c.local), v);
                                assert_eq!(sharded.locate(v), (c.shard, c.local));
                            }
                        }
                    }
                }
            }
            assert_eq!(cut_total, sharded.cut_edges());
            assert!(cut_total > 0, "a multi-shard random graph has cut edges");
        }
    }

    #[test]
    fn walk_stepping_consumes_identical_rng_on_both_views() {
        let frozen = churned_frozen(150, 0, 4);
        let sharded = ShardedFrozenView::partition(&frozen, 8);
        let start = frozen.nodes().next().expect("non-empty");
        let mut a = SmallRng::seed_from_u64(77);
        let mut b = SmallRng::seed_from_u64(77);
        let mut u = start;
        let mut v = start;
        for _ in 0..500 {
            u = frozen.neighbor_of(u, &mut a).expect("connected enough");
            v = sharded.neighbor_of(v, &mut b).expect("connected enough");
            assert_eq!(u, v, "trajectories must coincide");
        }
    }

    #[test]
    fn empty_graph_partitions_to_empty_slabs() {
        let frozen = crate::Graph::new().freeze();
        let sharded = ShardedFrozenView::partition(&frozen, 4);
        assert_eq!(sharded.shards(), 4);
        assert_eq!(sharded.num_nodes(), 0);
        assert_eq!(sharded.cut_edges(), 0);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(sharded.random_node(&mut rng), None);
        assert_eq!(sharded.nodes().count(), 0);
    }

    #[test]
    fn more_shards_than_slots_fills_one_slot_per_leading_slab() {
        // With S > slot_count there are not enough slots to go around:
        // the first slot_count shards take one slot each, the rest stay
        // empty by construction, and the slab count still equals the
        // requested shard count (the service's per-shard epoch diffing
        // depends on that).
        let mut g = crate::Graph::new();
        let ids = g.add_nodes(3);
        g.add_edge(ids[0], ids[1]).expect("fresh edge");
        let frozen = g.freeze();
        let sharded = ShardedFrozenView::partition(&frozen, 8);
        assert_eq!(sharded.shards(), 8);
        assert_eq!(sharded.num_nodes(), 3);
        for s in 0..3 {
            assert_eq!(sharded.slab(s).slots(), 1, "slab {s} should hold one slot");
        }
        for s in 3..8 {
            assert_eq!(sharded.slab(s).slots(), 0, "slab {s} should be empty");
        }
        assert_eq!(sharded.neighbors(ids[0]), &[ids[1]]);
        assert_eq!(sharded.locate(ids[2]), (2, 0));
        assert_eq!(sharded.global(2, 0), ids[2]);
        // The lone cross-shard edge routes as a cut in both directions.
        assert_eq!(sharded.cut_edges(), 2);
    }

    #[test]
    fn no_slab_is_empty_when_slots_cover_the_shards() {
        // The ceil-stride split used to strand trailing shards with zero
        // slots even when slots outnumbered shards (10 slots over 8
        // shards: stride 2, five non-empty slabs). The balanced split
        // sizes every slab within one slot of its peers.
        for (slots, shards) in [(10usize, 8usize), (9, 8), (17, 4), (5, 5), (100, 7)] {
            let mut g = crate::Graph::new();
            g.add_nodes(slots);
            let sharded = ShardedFrozenView::partition(&g.freeze(), shards);
            assert_eq!(sharded.shards(), shards);
            let sizes: Vec<usize> = (0..shards)
                .map(|s| sharded.slab(u32::try_from(s).expect("small")).slots())
                .collect();
            assert!(
                sizes.iter().all(|&n| n >= 1),
                "{slots} slots over {shards} shards left an empty slab: {sizes:?}"
            );
            let (min, max) = (
                *sizes.iter().min().expect("non-empty"),
                *sizes.iter().max().expect("non-empty"),
            );
            assert!(max - min <= 1, "slab sizes must be balanced, got {sizes:?}");
            assert_eq!(sizes.iter().sum::<usize>(), slots, "slabs must tile");
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let frozen = crate::Graph::new().freeze();
        let _ = ShardedFrozenView::partition(&frozen, 0);
    }

    #[test]
    #[should_panic(expected = "dead node")]
    fn neighbors_of_dead_slot_panics() {
        let mut g = crate::Graph::new();
        let a = g.add_node();
        g.add_node();
        g.remove_node(a).expect("alive");
        let sharded = ShardedFrozenView::partition(&g.freeze(), 2);
        let _ = sharded.neighbors(a);
    }

    #[test]
    fn slab_equality_detects_which_shards_changed() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut g = generators::balanced(64, 4, &mut rng);
        let before = ShardedFrozenView::partition(&g.freeze(), 4);
        // Mutate one node in the last shard's range only: pick the
        // highest-slot live node and remove it.
        let victim = g.nodes().max_by_key(|n| n.index()).expect("non-empty");
        g.remove_node(victim).expect("alive");
        let after = ShardedFrozenView::partition(&g.freeze(), 4);
        let changed: Vec<usize> = (0..4)
            .filter(|&s| {
                let s = u32::try_from(s).expect("small");
                before.slab(s) != after.slab(s)
            })
            .collect();
        let victim_shard = before.shard_of(victim) as usize;
        assert!(
            changed.contains(&victim_shard),
            "the victim's own shard must differ"
        );
        // Shards holding none of the victim's neighbours are untouched.
        let neighbour_shards: std::collections::HashSet<usize> = before
            .neighbors(victim)
            .iter()
            .map(|&v| before.shard_of(v) as usize)
            .collect();
        for s in 0..4 {
            if s != victim_shard && !neighbour_shards.contains(&s) {
                let su = u32::try_from(s).expect("small");
                assert_eq!(before.slab(su), after.slab(su), "shard {s} changed");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Structural invariants over random graphs, churn, and shard
        /// counts: slabs tile the slot space, per-node lists round-trip,
        /// live prefix sums close, and every route resolves.
        #[test]
        fn partition_invariants_hold(
            n in 2usize..120,
            kills in 0usize..40,
            shards in 1usize..12,
            seed in any::<u64>(),
        ) {
            let frozen = churned_frozen(n, kills.min(n / 2), seed);
            let sharded = ShardedFrozenView::partition(&frozen, shards);
            prop_assert_eq!(sharded.shards(), shards);
            // Slabs tile the slot space contiguously.
            let mut covered = 0usize;
            for s in 0..shards {
                let slab = sharded.slab(u32::try_from(s).expect("small"));
                prop_assert_eq!(slab.start_slot(), covered.min(frozen.slot_count()));
                covered = slab.start_slot() + slab.slots();
            }
            prop_assert_eq!(covered, frozen.slot_count());
            // Balanced split: no slab sits empty while slots remain, and
            // sizes stay within one slot of each other.
            let sizes: Vec<usize> = (0..shards)
                .map(|s| sharded.slab(u32::try_from(s).expect("small")).slots())
                .collect();
            if frozen.slot_count() >= shards {
                prop_assert!(sizes.iter().all(|&c| c >= 1), "empty slab in {:?}", sizes);
            }
            let min = sizes.iter().min().copied().expect("non-empty");
            let max = sizes.iter().max().copied().expect("non-empty");
            prop_assert!(max - min <= 1, "unbalanced slabs {:?}", sizes);
            // Per-node data round-trips and routes resolve.
            let mut live_total = 0usize;
            for slot in 0..frozen.slot_count() {
                let id = NodeId::new(slot);
                prop_assert_eq!(sharded.is_alive(id), frozen.is_alive(id));
                if frozen.is_alive(id) {
                    live_total += 1;
                    prop_assert_eq!(sharded.neighbors(id), frozen.neighbors(id));
                    let (s, l) = sharded.locate(id);
                    prop_assert_eq!(sharded.global(s, l), id);
                    let slab = sharded.slab(s);
                    for (&v, &raw) in slab.neighbors(l).iter().zip(slab.routes(l)) {
                        let resolved = match slab.decode(raw) {
                            Route::Local(tl) => slab.global(tl),
                            Route::Cut(c) => sharded.global(c.shard, c.local),
                        };
                        prop_assert_eq!(resolved, v);
                    }
                }
            }
            prop_assert_eq!(live_total, sharded.num_nodes());
            prop_assert_eq!(
                *sharded.live_prefix.last().expect("non-empty"),
                sharded.num_nodes()
            );
        }
    }
}

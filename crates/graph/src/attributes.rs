//! Per-node attribute storage for aggregate estimation.
//!
//! §3 of the paper generalises peer counting to estimating `Σ_j f(j)` for
//! arbitrary node functions `f` — e.g. counting peers with degree above a
//! threshold, or summing upload capacities. [`NodeAttributes`] is the
//! sparse side table experiments use to attach such per-peer values.

use crate::NodeId;

/// A side table mapping node identifiers to values of type `T`.
///
/// Backed by a dense vector indexed by [`NodeId::index`]; absent entries
/// cost one `Option` discriminant each, which is the right trade-off for
/// the simulator's dense, never-recycled identifier space.
///
/// # Examples
///
/// ```
/// use census_graph::{attributes::NodeAttributes, NodeId};
///
/// let mut caps: NodeAttributes<f64> = NodeAttributes::new();
/// caps.insert(NodeId::new(3), 12.5);
/// assert_eq!(caps.get(NodeId::new(3)), Some(&12.5));
/// assert_eq!(caps.get(NodeId::new(0)), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NodeAttributes<T> {
    slots: Vec<Option<T>>,
}

impl<T> NodeAttributes<T> {
    /// Creates an empty attribute table.
    #[must_use]
    pub fn new() -> Self {
        Self { slots: Vec::new() }
    }

    /// Sets the attribute for a node, returning the previous value if any.
    pub fn insert(&mut self, node: NodeId, value: T) -> Option<T> {
        let idx = node.index();
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        self.slots[idx].replace(value)
    }

    /// The attribute of a node, if set.
    #[must_use]
    pub fn get(&self, node: NodeId) -> Option<&T> {
        self.slots.get(node.index()).and_then(Option::as_ref)
    }

    /// Removes and returns the attribute of a node.
    pub fn remove(&mut self, node: NodeId) -> Option<T> {
        self.slots.get_mut(node.index()).and_then(Option::take)
    }

    /// Number of nodes with an attribute set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Whether no node has an attribute set.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(Option::is_none)
    }

    /// Iterates over `(node, value)` pairs in identifier order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &T)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_ref().map(|v| (NodeId::new(i), v)))
    }
}

impl<T> FromIterator<(NodeId, T)> for NodeAttributes<T> {
    fn from_iter<I: IntoIterator<Item = (NodeId, T)>>(iter: I) -> Self {
        let mut attrs = Self::new();
        for (node, value) in iter {
            attrs.insert(node, value);
        }
        attrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut a = NodeAttributes::new();
        assert!(a.is_empty());
        assert_eq!(a.insert(NodeId::new(2), "x"), None);
        assert_eq!(a.insert(NodeId::new(2), "y"), Some("x"));
        assert_eq!(a.get(NodeId::new(2)), Some(&"y"));
        assert_eq!(a.len(), 1);
        assert_eq!(a.remove(NodeId::new(2)), Some("y"));
        assert!(a.is_empty());
        assert_eq!(a.remove(NodeId::new(100)), None);
    }

    #[test]
    fn iter_in_order() {
        let a: NodeAttributes<i32> = [(NodeId::new(5), 50), (NodeId::new(1), 10)]
            .into_iter()
            .collect();
        let pairs: Vec<_> = a.iter().map(|(n, &v)| (n.index(), v)).collect();
        assert_eq!(pairs, vec![(1, 10), (5, 50)]);
    }

    #[test]
    fn get_beyond_capacity_is_none() {
        let a: NodeAttributes<u8> = NodeAttributes::new();
        assert_eq!(a.get(NodeId::new(9)), None);
    }
}

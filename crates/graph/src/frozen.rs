//! Frozen CSR snapshots of an overlay graph.
//!
//! The walk engines spend their whole budget asking "give me the
//! neighbour list of node `j`" — once per overlay hop, millions of times
//! per figure. On the live [`Graph`] that read chases a pointer into a
//! separately allocated `Vec` per node. [`FrozenView`] is the same
//! adjacency structure flattened into compressed sparse row (CSR) form:
//! one contiguous `neighbors` array indexed by a per-slot `offsets`
//! array, so a walk step is two array reads from (mostly) hot cache
//! lines.
//!
//! A `FrozenView` is an immutable snapshot: freeze once, walk it for as
//! long as membership does not change, re-freeze after churn. See the
//! "Execution engine" section of `DESIGN.md` for when freezing pays off
//! under churn.

use crate::{Graph, NodeId};

/// An immutable, flat CSR snapshot of a [`Graph`].
///
/// Layout:
///
/// - `offsets[i]..offsets[i + 1]` indexes the neighbour list of slot `i`
///   within `neighbors` (empty for dead slots and isolated nodes);
/// - `neighbors` stores every live node's adjacency list back-to-back,
///   *in the same per-node order* as the source graph — so a random walk
///   driven by the same RNG visits the identical node sequence on either
///   representation;
/// - `live` lists the live [`NodeId`]s in increasing order (the live-node
///   index used for O(1) uniform peer choice and iteration);
/// - `alive` is the per-slot liveness bitmap (needed because an isolated
///   live node and a dead slot both have an empty CSR row).
///
/// # Examples
///
/// ```
/// use census_graph::{Graph, Topology};
///
/// let mut g = Graph::new();
/// let a = g.add_node();
/// let b = g.add_node();
/// g.add_edge(a, b)?;
/// let f = g.freeze();
/// assert_eq!(f.num_nodes(), 2);
/// assert_eq!(f.neighbors(a), &[b]);
/// assert_eq!(f.degree(a), g.degree(a));
/// # Ok::<(), census_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FrozenView {
    offsets: Vec<u32>,
    neighbors: Vec<NodeId>,
    live: Vec<NodeId>,
    alive: Vec<bool>,
    num_edges: usize,
    epoch: u64,
}

/// Structural equality: two snapshots are equal when they freeze the same
/// topology, regardless of *when* they were taken — the [`epoch`] stamp
/// does not participate, so re-freezing an unchanged graph yields a view
/// equal to its predecessor.
///
/// [`epoch`]: FrozenView::epoch
impl PartialEq for FrozenView {
    fn eq(&self, other: &Self) -> bool {
        self.offsets == other.offsets
            && self.neighbors == other.neighbors
            && self.live == other.live
            && self.alive == other.alive
            && self.num_edges == other.num_edges
    }
}

impl Eq for FrozenView {}

impl Graph {
    /// Builds a flat CSR snapshot of the current live topology.
    ///
    /// Cost is `O(slots + edges)`. The snapshot preserves per-node
    /// neighbour-list order, so walks driven by the same RNG stream are
    /// bit-identical on the graph and on its frozen view.
    ///
    /// # Panics
    ///
    /// Panics if the graph has more than `u32::MAX` directed adjacency
    /// entries (an overlay far beyond the simulator's design envelope).
    #[must_use]
    pub fn freeze(&self) -> FrozenView {
        let slots = self.slot_count();
        let mut offsets = Vec::with_capacity(slots + 1);
        let mut neighbors = Vec::with_capacity(2 * self.num_edges());
        let mut live = Vec::with_capacity(self.num_nodes());
        let mut alive = vec![false; slots];
        offsets.push(0u32);
        for (i, slot_alive) in alive.iter_mut().enumerate() {
            let id = NodeId::new(i);
            if self.is_alive(id) {
                *slot_alive = true;
                live.push(id);
                neighbors.extend_from_slice(self.neighbors(id));
            }
            offsets.push(u32::try_from(neighbors.len()).expect("adjacency entries fit in u32"));
        }
        FrozenView {
            offsets,
            neighbors,
            live,
            alive,
            num_edges: self.num_edges(),
            epoch: self.next_freeze_epoch(),
        }
    }
}

impl FrozenView {
    /// Number of live nodes in the snapshot.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.live.len()
    }

    /// Number of edges between live nodes in the snapshot.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Total node slots of the source graph, including dead ones.
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.alive.len()
    }

    /// Whether `node` was alive when the snapshot was taken.
    #[must_use]
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive.get(node.index()).copied().unwrap_or(false)
    }

    /// Degree of a live node.
    ///
    /// # Panics
    ///
    /// Panics if the node is not alive in the snapshot.
    #[must_use]
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        assert!(self.is_alive(node), "degree of dead node {node}");
        let i = node.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Neighbour list of a live node, as a contiguous CSR slice.
    ///
    /// # Panics
    ///
    /// Panics if the node is not alive in the snapshot.
    #[must_use]
    #[inline]
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        assert!(self.is_alive(node), "neighbors of dead node {node}");
        let i = node.index();
        &self.neighbors[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Iterates over live node identifiers in increasing order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.live.iter().copied()
    }

    /// Picks a live node uniformly at random in O(1) via the live-node
    /// index. Returns `None` on an empty snapshot.
    ///
    /// Unlike [`Graph::random_node`] (rejection over slots) this consumes
    /// exactly one RNG draw, so the two are *not* stream-compatible; walk
    /// equivalence concerns `neighbors`/`degree` only.
    pub fn random_node<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeId> {
        if self.live.is_empty() {
            None
        } else {
            Some(self.live[rng.random_range(0..self.live.len())])
        }
    }

    /// Sum of degrees over live nodes (equals `2 * num_edges`).
    #[must_use]
    pub fn degree_sum(&self) -> usize {
        self.neighbors.len()
    }

    /// Best-effort cache hint for `node`'s CSR neighbour row; see
    /// [`crate::prefetch_read`].
    ///
    /// Hints both ends of the row: at mean degree 10 a row spans 40
    /// bytes, so about half of all rows straddle a cache-line boundary
    /// and a first-byte-only hint would still miss on the far half when
    /// the walk's neighbour draw lands there.
    ///
    /// Safe for *any* id — dead slots and out-of-range indices simply do
    /// nothing (or warm an adjacent row's line, which is equally
    /// harmless). No RNG, no fault draws, no panics: kernels prefetch
    /// speculatively ahead of walks that may never take their next step.
    #[inline]
    pub fn prefetch_row(&self, node: NodeId) {
        let i = node.index();
        let (Some(&off), Some(&end)) = (self.offsets.get(i), self.offsets.get(i + 1)) else {
            return;
        };
        if let Some(first) = self.neighbors.get(off as usize) {
            crate::prefetch_read(first);
        }
        if end > off {
            if let Some(last) = self.neighbors.get(end as usize - 1) {
                crate::prefetch_read(last);
            }
        }
    }

    /// Builds Walker/Vose [`AliasTables`](crate::AliasTables) over the
    /// snapshot's live nodes weighted by degree — O(1) draws from the
    /// DTRW stationary law `π_j = d_j / Σ d` (Eq. (1)).
    ///
    /// An opt-in side structure: `O(n)` to build and two `Vec`s of extra
    /// memory, so callers that sample the degree law repeatedly
    /// (stationary-start walk launches, the degree-law oracle sampler)
    /// build it once per snapshot; one-off consumers should not bother.
    /// Isolated live nodes carry zero mass; a snapshot with no edges
    /// yields empty tables (`sample` returns `None`).
    #[must_use]
    pub fn alias_tables(&self) -> crate::AliasTables {
        let weights: Vec<f64> = self.live.iter().map(|&n| self.degree(n) as f64).collect();
        crate::AliasTables::from_weights(self.live.clone(), &weights)
    }

    /// Which freeze of the source graph produced this snapshot.
    ///
    /// The first [`Graph::freeze`] stamps epoch 0 and every subsequent
    /// freeze of the *same* graph instance stamps the next integer, so a
    /// consumer holding several snapshots can order them and measure
    /// staleness (`latest.epoch() - pinned.epoch()`). Equality ignores
    /// the stamp; see the [`PartialEq`] impl.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The raw CSR arrays, for the binary snapshot codec
    /// (`crate::io`): `(offsets, neighbors, alive)`. The `live` index and
    /// `num_edges` are derivable and re-derived on load.
    pub(crate) fn csr_parts(&self) -> (&[u32], &[NodeId], &[bool]) {
        (&self.offsets, &self.neighbors, &self.alive)
    }

    /// Reassembles a view from decoded CSR arrays.
    ///
    /// The caller (the snapshot loader) is responsible for having
    /// validated every CSR invariant — offsets monotone and spanning,
    /// neighbour ids in-range and alive, `live` sorted and consistent
    /// with `alive` — because a view violating them panics on use.
    pub(crate) fn from_csr_parts(
        offsets: Vec<u32>,
        neighbors: Vec<NodeId>,
        live: Vec<NodeId>,
        alive: Vec<bool>,
        num_edges: usize,
        epoch: u64,
    ) -> Self {
        Self {
            offsets,
            neighbors,
            live,
            alive,
            num_edges,
            epoch,
        }
    }
}

impl Graph {
    /// Reconstructs a live, mutable graph from a frozen snapshot — the
    /// inverse of [`Graph::freeze`] up to the freeze counter.
    ///
    /// The thawed graph reproduces the snapshot's slot space, liveness,
    /// and *per-node neighbour order* exactly, so `Graph::thaw(&v).freeze()
    /// == v` and walks driven by the same RNG visit identical node
    /// sequences on either. Cost is `O(slots + edges)` with no per-edge
    /// duplicate checking (the snapshot already guarantees the overlay
    /// invariants).
    ///
    /// The freeze counter restarts at zero: a thawed graph is a *new*
    /// graph instance whose first freeze stamps epoch 0, regardless of
    /// which epoch the source snapshot carried.
    #[must_use]
    pub fn thaw(view: &FrozenView) -> Self {
        let adjacency = (0..view.slot_count())
            .map(|i| {
                let id = NodeId::new(i);
                if view.is_alive(id) {
                    view.neighbors(id).to_vec()
                } else {
                    Vec::new()
                }
            })
            .collect();
        let alive = (0..view.slot_count())
            .map(|i| view.is_alive(NodeId::new(i)))
            .collect();
        Self::from_thawed_parts(adjacency, alive, view.num_nodes(), view.num_edges())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn empty_graph_freezes_to_empty_view() {
        let f = Graph::new().freeze();
        assert_eq!(f.num_nodes(), 0);
        assert_eq!(f.num_edges(), 0);
        assert_eq!(f.nodes().count(), 0);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(f.random_node(&mut rng), None);
    }

    #[test]
    fn freeze_preserves_structure_and_order() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = generators::balanced(500, 10, &mut rng);
        let f = g.freeze();
        assert_eq!(f.num_nodes(), g.num_nodes());
        assert_eq!(f.num_edges(), g.num_edges());
        assert_eq!(f.degree_sum(), g.degree_sum());
        for v in g.nodes() {
            // Same list, same order: the walk-equivalence invariant.
            assert_eq!(f.neighbors(v), g.neighbors(v));
        }
    }

    #[test]
    fn dead_slots_are_excluded_after_churn() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut g = generators::balanced(200, 10, &mut rng);
        for _ in 0..80 {
            let victim = g.random_node(&mut rng).expect("non-empty");
            g.remove_node(victim).expect("alive");
        }
        let f = g.freeze();
        assert_eq!(f.num_nodes(), 120);
        assert_eq!(f.slot_count(), 200);
        for i in 0..f.slot_count() {
            let id = NodeId::new(i);
            assert_eq!(f.is_alive(id), g.is_alive(id));
            if g.is_alive(id) {
                assert_eq!(f.neighbors(id), g.neighbors(id));
                assert!(f.neighbors(id).iter().all(|&n| f.is_alive(n)));
            }
        }
    }

    #[test]
    fn random_node_is_uniform_over_live_nodes() {
        let mut g = Graph::new();
        let ids = g.add_nodes(4);
        g.remove_node(ids[1]).expect("alive");
        let f = g.freeze();
        let mut rng = SmallRng::seed_from_u64(4);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..30_000 {
            let n = f.random_node(&mut rng).expect("non-empty");
            assert!(f.is_alive(n));
            *counts.entry(n).or_insert(0u32) += 1;
        }
        assert_eq!(counts.len(), 3);
        for &c in counts.values() {
            let frac = f64::from(c) / 30_000.0;
            assert!((frac - 1.0 / 3.0).abs() < 0.02, "frequency {frac}");
        }
    }

    #[test]
    fn epoch_advances_per_freeze_and_is_ignored_by_equality() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = generators::balanced(64, 4, &mut rng);
        assert_eq!(g.freeze_count(), 0);
        let first = g.freeze();
        let second = g.freeze();
        assert_eq!(first.epoch(), 0);
        assert_eq!(second.epoch(), 1);
        assert_eq!(g.freeze_count(), 2);
        // Same topology, different stamp: still equal snapshots.
        assert_eq!(first, second);
        // A clone starts from the source's counter, not from zero.
        let cloned = g.clone();
        assert_eq!(cloned.freeze().epoch(), 2);
        // ... and the original is unaffected by the clone's freezes.
        assert_eq!(g.freeze().epoch(), 2);
    }

    #[test]
    #[should_panic(expected = "dead node")]
    fn neighbors_of_dead_slot_panics() {
        let mut g = Graph::new();
        let a = g.add_node();
        g.add_node();
        g.remove_node(a).expect("alive");
        let _ = g.freeze().neighbors(a);
    }

    /// A random graph mutated by a random join/leave/rewire script — the
    /// churn regime the CSR must stay faithful under.
    fn churned_graph(n: usize, script: &[u8]) -> Graph {
        let mut rng = SmallRng::seed_from_u64(99);
        let mut g = generators::balanced(n, 6, &mut rng);
        for &op in script {
            match op % 3 {
                0 => {
                    let a = g.add_node();
                    if let Some(b) = g.random_node(&mut rng) {
                        if a != b {
                            let _ = g.add_edge(a, b);
                        }
                    }
                }
                1 => {
                    if let Some(v) = g.random_node(&mut rng) {
                        let _ = g.remove_node(v);
                    }
                }
                _ => {
                    if let (Some(a), Some(b)) = (g.random_node(&mut rng), g.random_node(&mut rng)) {
                        if a != b {
                            let _ = g.add_edge(a, b);
                        }
                    }
                }
            }
        }
        g
    }

    proptest! {
        /// CSR invariants: offsets monotone and spanning, degree sums
        /// match, dead slots empty, per-node lists identical to the
        /// source — after arbitrary churn.
        #[test]
        fn csr_invariants_hold_after_churn(
            n in 2usize..60,
            script in proptest::collection::vec(any::<u8>(), 0..120),
        ) {
            let g = churned_graph(n, &script);
            let f = g.freeze();

            // offsets: one entry per slot plus the terminator, monotone,
            // spanning the whole neighbour array.
            prop_assert_eq!(f.offsets.len(), g.slot_count() + 1);
            prop_assert!(f.offsets.windows(2).all(|w| w[0] <= w[1]));
            prop_assert_eq!(*f.offsets.last().expect("non-empty") as usize, f.neighbors.len());

            // Degree sums match on both representations.
            prop_assert_eq!(f.degree_sum(), g.degree_sum());
            prop_assert_eq!(f.num_edges(), g.num_edges());
            prop_assert_eq!(f.num_nodes(), g.num_nodes());

            // Dead slots contribute empty rows; live rows round-trip.
            for i in 0..g.slot_count() {
                let id = NodeId::new(i);
                prop_assert_eq!(f.is_alive(id), g.is_alive(id));
                if g.is_alive(id) {
                    prop_assert_eq!(f.neighbors(id), g.neighbors(id));
                } else {
                    prop_assert_eq!(f.offsets[i], f.offsets[i + 1]);
                }
            }

            // The live index is exactly the graph's node iteration.
            prop_assert_eq!(f.nodes().collect::<Vec<_>>(), g.nodes().collect::<Vec<_>>());
        }

        /// Re-freezing after further churn tracks the live graph.
        #[test]
        fn refreeze_round_trips(
            script_a in proptest::collection::vec(any::<u8>(), 0..60),
            script_b in proptest::collection::vec(any::<u8>(), 0..60),
        ) {
            let mut g = churned_graph(20, &script_a);
            let before = g.freeze();
            let mut rng = SmallRng::seed_from_u64(7);
            for &op in &script_b {
                if op % 2 == 0 {
                    g.add_node();
                } else if let Some(v) = g.random_node(&mut rng) {
                    let _ = g.remove_node(v);
                }
            }
            let after = g.freeze();
            prop_assert_eq!(after.num_nodes(), g.num_nodes());
            prop_assert_eq!(after.num_edges(), g.num_edges());
            // The stale snapshot is untouched by the mutations: only the
            // join ops (even bytes) grew the slot space.
            let joins = script_b.iter().filter(|&&op| op % 2 == 0).count();
            prop_assert_eq!(before.offsets.len() + joins, after.offsets.len());
        }
    }
}

//! Topology metrics beyond degrees and components.
//!
//! Standard descriptive statistics of overlay structure used throughout
//! the P2P measurement literature: the local/global clustering
//! coefficients and the degree assortativity. The test-suite uses them
//! to characterise the §5.1 generator outputs (balanced graphs are
//! locally tree-like; BA graphs are degree-disassortative), and they let
//! downstream users sanity-check their own overlays before estimating
//! over them.

use crate::{Graph, NodeId};

/// Local clustering coefficient of `node`: the fraction of its
/// neighbour pairs that are themselves adjacent. Zero for degree < 2.
///
/// # Panics
///
/// Panics if the node is not alive.
///
/// # Examples
///
/// ```
/// use census_graph::{generators, metrics, NodeId};
///
/// let g = generators::complete(4);
/// assert_eq!(metrics::local_clustering(&g, NodeId::new(0)), 1.0);
/// ```
#[must_use]
pub fn local_clustering(g: &Graph, node: NodeId) -> f64 {
    let neighbors = g.neighbors(node);
    let d = neighbors.len();
    if d < 2 {
        return 0.0;
    }
    let mut closed = 0usize;
    for (i, &a) in neighbors.iter().enumerate() {
        for &b in &neighbors[i + 1..] {
            if g.has_edge(a, b) {
                closed += 1;
            }
        }
    }
    2.0 * closed as f64 / (d * (d - 1)) as f64
}

/// Average local clustering coefficient over live nodes (the
/// Watts–Strogatz form); `NaN` on an empty graph.
#[must_use]
pub fn average_clustering(g: &Graph) -> f64 {
    if g.num_nodes() == 0 {
        return f64::NAN;
    }
    g.nodes().map(|v| local_clustering(g, v)).sum::<f64>() / g.num_nodes() as f64
}

/// Global clustering coefficient (transitivity):
/// `3 × #triangles / #connected-triples`. `NaN` when the graph has no
/// connected triple.
#[must_use]
pub fn transitivity(g: &Graph) -> f64 {
    let mut triangles3 = 0u64; // every triangle counted once per corner
    let mut triples = 0u64;
    for v in g.nodes() {
        let d = g.degree(v) as u64;
        triples += d * d.saturating_sub(1) / 2;
        let neighbors = g.neighbors(v);
        for (i, &a) in neighbors.iter().enumerate() {
            for &b in &neighbors[i + 1..] {
                if g.has_edge(a, b) {
                    triangles3 += 1;
                }
            }
        }
    }
    if triples == 0 {
        f64::NAN
    } else {
        triangles3 as f64 / triples as f64
    }
}

/// Degree assortativity: the Pearson correlation of the degrees at the
/// two ends of an edge (Newman's `r`). Positive for social-network-like
/// mixing, negative for hub-and-spoke (BA) topologies, `NaN` when all
/// degrees are equal or there are no edges.
#[must_use]
pub fn degree_assortativity(g: &Graph) -> f64 {
    if g.num_edges() == 0 {
        return f64::NAN;
    }
    // Over directed edge endpoints (each undirected edge twice, which
    // symmetrises the correlation).
    let (mut s1, mut sx, mut sxx, mut sxy) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for (a, b) in g.edges() {
        let (da, db) = (g.degree(a) as f64, g.degree(b) as f64);
        for (x, y) in [(da, db), (db, da)] {
            s1 += 1.0;
            sx += x;
            sxx += x * x;
            sxy += x * y;
        }
    }
    let mean = sx / s1;
    let var = sxx / s1 - mean * mean;
    if var <= 1e-12 {
        return f64::NAN;
    }
    (sxy / s1 - mean * mean) / var
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn complete_graph_is_fully_clustered() {
        let g = generators::complete(6);
        assert_eq!(average_clustering(&g), 1.0);
        assert_eq!(transitivity(&g), 1.0);
    }

    #[test]
    fn trees_have_zero_clustering() {
        let g = generators::star(8);
        assert_eq!(average_clustering(&g), 0.0);
        assert_eq!(transitivity(&g), 0.0);
    }

    #[test]
    fn triangle_plus_pendant() {
        // Triangle a-b-c with pendant d on a: C(a)=1/3, C(b)=C(c)=1, C(d)=0.
        let mut g = generators::complete(3);
        let d = g.add_node();
        g.add_edge(NodeId::new(0), d).expect("fresh edge");
        assert!((local_clustering(&g, NodeId::new(0)) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(local_clustering(&g, NodeId::new(1)), 1.0);
        assert_eq!(local_clustering(&g, d), 0.0);
        // Transitivity: 3 triangles-at-corner... 1 triangle => 3; triples:
        // a has d=3 -> 3, b,c have d=2 -> 1 each, d -> 0: total 5.
        assert!((transitivity(&g) - 3.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn balanced_overlays_are_locally_tree_like() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = generators::balanced(3_000, 10, &mut rng);
        let c = average_clustering(&g);
        // Random sparse graphs: clustering ~ d/n, essentially zero.
        assert!(c < 0.02, "clustering {c}");
    }

    #[test]
    fn ba_graphs_are_disassortative() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = generators::barabasi_albert(3_000, 3, &mut rng);
        let r = degree_assortativity(&g);
        assert!(r < -0.01, "BA assortativity should be negative, got {r}");
    }

    #[test]
    fn regular_graphs_have_undefined_assortativity() {
        let g = generators::ring(20);
        assert!(degree_assortativity(&g).is_nan());
    }

    #[test]
    fn star_is_maximally_disassortative() {
        let g = generators::star(10);
        let r = degree_assortativity(&g);
        assert!((r + 1.0).abs() < 1e-9, "star assortativity {r}");
    }

    #[test]
    fn empty_graph_metrics_are_nan() {
        let g = Graph::new();
        assert!(average_clustering(&g).is_nan());
        assert!(transitivity(&g).is_nan());
        assert!(degree_assortativity(&g).is_nan());
    }

    use crate::Graph;
}

//! Dynamic undirected overlay graph.

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use rand::Rng;

use crate::NodeId;

/// Error returned by fallible [`Graph`] mutations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphError {
    /// The edge would connect a node to itself.
    SelfLoop(NodeId),
    /// The edge already exists.
    DuplicateEdge(NodeId, NodeId),
    /// One endpoint does not exist or has departed.
    DeadNode(NodeId),
    /// The edge to remove does not exist.
    MissingEdge(NodeId, NodeId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::SelfLoop(n) => write!(f, "self-loop at {n} is not allowed"),
            GraphError::DuplicateEdge(a, b) => write!(f, "edge {a}-{b} already exists"),
            GraphError::DeadNode(n) => write!(f, "node {n} is not alive"),
            GraphError::MissingEdge(a, b) => write!(f, "edge {a}-{b} does not exist"),
        }
    }
}

impl Error for GraphError {}

/// An undirected graph with dynamic membership, modelling a peer-to-peer
/// overlay.
///
/// Design choices follow the needs of the paper's algorithms:
///
/// - **Adjacency lists** give the O(1) "forward to a uniformly random
///   neighbour" primitive every random walk step performs.
/// - **No self-loops or parallel edges**, matching the overlay model.
/// - **Node slots are never recycled** (see [`NodeId`]); departed nodes
///   remain as dead slots. Iteration and uniform node choice skip them.
/// - **Departures do not trigger repair**: as in §5.1 of the paper,
///   "the remaining nodes that lose neighbors do not search for new ones",
///   so churn can disconnect the overlay; size estimation then refers to
///   the probing node's connected component.
///
/// # Examples
///
/// ```
/// use census_graph::Graph;
///
/// let mut g = Graph::new();
/// let a = g.add_node();
/// let b = g.add_node();
/// g.add_edge(a, b)?;
/// assert_eq!(g.degree(a), 1);
/// assert_eq!(g.num_edges(), 1);
/// # Ok::<(), census_graph::GraphError>(())
/// ```
#[derive(Debug, Default)]
pub struct Graph {
    adjacency: Vec<Vec<NodeId>>,
    alive: Vec<bool>,
    num_alive: usize,
    num_edges: usize,
    /// Monotone freeze counter: each [`Graph::freeze`] stamps the snapshot
    /// with the current value and advances it. Interior mutability keeps
    /// `freeze(&self)` a read-only borrow; relaxed ordering suffices
    /// because the counter carries no cross-thread data dependency.
    freeze_epoch: AtomicU64,
}

impl Clone for Graph {
    fn clone(&self) -> Self {
        Self {
            adjacency: self.adjacency.clone(),
            alive: self.alive.clone(),
            num_alive: self.num_alive,
            num_edges: self.num_edges,
            freeze_epoch: AtomicU64::new(self.freeze_epoch.load(Ordering::Relaxed)),
        }
    }
}

/// Structural equality: same slot count, same live slots, same edge
/// *sets* — adjacency-list ordering (an implementation detail perturbed
/// by `swap_remove` during churn) does not participate.
impl PartialEq for Graph {
    fn eq(&self, other: &Self) -> bool {
        if self.alive != other.alive || self.num_edges != other.num_edges {
            return false;
        }
        self.nodes().all(|v| {
            let mut a = self.adjacency[v.index()].clone();
            let mut b = other.adjacency[v.index()].clone();
            a.sort_unstable();
            b.sort_unstable();
            a == b
        })
    }
}

impl Eq for Graph {}

impl Graph {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with capacity reserved for `n` nodes.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        Self {
            adjacency: Vec::with_capacity(n),
            alive: Vec::with_capacity(n),
            num_alive: 0,
            num_edges: 0,
            freeze_epoch: AtomicU64::new(0),
        }
    }

    /// Number of snapshots taken so far; the next [`Graph::freeze`] stamps
    /// its [`crate::FrozenView::epoch`] with exactly this value.
    #[must_use]
    pub fn freeze_count(&self) -> u64 {
        self.freeze_epoch.load(Ordering::Relaxed)
    }

    /// Assembles a graph directly from adjacency lists that already
    /// satisfy every overlay invariant (no self-loops, no duplicates,
    /// symmetric, live endpoints) — the `Graph::thaw` fast path, which
    /// must not pay [`Graph::add_edge`]'s per-edge duplicate scan.
    pub(crate) fn from_thawed_parts(
        adjacency: Vec<Vec<NodeId>>,
        alive: Vec<bool>,
        num_alive: usize,
        num_edges: usize,
    ) -> Self {
        debug_assert_eq!(adjacency.len(), alive.len());
        debug_assert_eq!(alive.iter().filter(|&&a| a).count(), num_alive);
        debug_assert_eq!(adjacency.iter().map(Vec::len).sum::<usize>(), 2 * num_edges);
        Self {
            adjacency,
            alive,
            num_alive,
            num_edges,
            freeze_epoch: AtomicU64::new(0),
        }
    }

    /// Claims the next freeze epoch (post-incrementing the counter).
    pub(crate) fn next_freeze_epoch(&self) -> u64 {
        self.freeze_epoch.fetch_add(1, Ordering::Relaxed)
    }

    /// Adds an isolated node and returns its identifier.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::new(self.adjacency.len());
        self.adjacency.push(Vec::new());
        self.alive.push(true);
        self.num_alive += 1;
        id
    }

    /// Adds `n` isolated nodes, returning their identifiers.
    pub fn add_nodes(&mut self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.add_node()).collect()
    }

    /// Whether `node` exists and has not departed.
    #[must_use]
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive.get(node.index()).copied().unwrap_or(false)
    }

    /// Number of live nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.num_alive
    }

    /// Number of edges between live nodes.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Total node slots ever allocated, including departed ones. This is
    /// the exclusive upper bound on [`NodeId::index`] values.
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Degree of a live node.
    ///
    /// # Panics
    ///
    /// Panics if the node is not alive.
    #[must_use]
    pub fn degree(&self, node: NodeId) -> usize {
        assert!(self.is_alive(node), "degree of dead node {node}");
        self.adjacency[node.index()].len()
    }

    /// Neighbour list of a live node.
    ///
    /// # Panics
    ///
    /// Panics if the node is not alive.
    #[must_use]
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        assert!(self.is_alive(node), "neighbors of dead node {node}");
        &self.adjacency[node.index()]
    }

    /// Whether the edge `a`-`b` exists between live nodes.
    #[must_use]
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        if !self.is_alive(a) || !self.is_alive(b) {
            return false;
        }
        // Scan the shorter list.
        let (u, v) = if self.adjacency[a.index()].len() <= self.adjacency[b.index()].len() {
            (a, b)
        } else {
            (b, a)
        };
        self.adjacency[u.index()].contains(&v)
    }

    /// Inserts the undirected edge `a`-`b`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SelfLoop`] if `a == b`,
    /// [`GraphError::DeadNode`] if either endpoint is not alive, and
    /// [`GraphError::DuplicateEdge`] if the edge already exists.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> Result<(), GraphError> {
        if a == b {
            return Err(GraphError::SelfLoop(a));
        }
        if !self.is_alive(a) {
            return Err(GraphError::DeadNode(a));
        }
        if !self.is_alive(b) {
            return Err(GraphError::DeadNode(b));
        }
        if self.has_edge(a, b) {
            return Err(GraphError::DuplicateEdge(a, b));
        }
        self.adjacency[a.index()].push(b);
        self.adjacency[b.index()].push(a);
        self.num_edges += 1;
        Ok(())
    }

    /// Removes the undirected edge `a`-`b`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DeadNode`] if either endpoint is not alive and
    /// [`GraphError::MissingEdge`] if the edge does not exist.
    pub fn remove_edge(&mut self, a: NodeId, b: NodeId) -> Result<(), GraphError> {
        if !self.is_alive(a) {
            return Err(GraphError::DeadNode(a));
        }
        if !self.is_alive(b) {
            return Err(GraphError::DeadNode(b));
        }
        if !self.has_edge(a, b) {
            return Err(GraphError::MissingEdge(a, b));
        }
        Self::detach(&mut self.adjacency, a, b);
        Self::detach(&mut self.adjacency, b, a);
        self.num_edges -= 1;
        Ok(())
    }

    fn detach(adjacency: &mut [Vec<NodeId>], from: NodeId, target: NodeId) {
        let list = &mut adjacency[from.index()];
        let pos = list
            .iter()
            .position(|&n| n == target)
            .expect("edge presence was checked");
        list.swap_remove(pos);
    }

    /// Removes a node and all its incident edges. The identifier becomes
    /// permanently dead. Neighbours are *not* rewired (§5.1 of the paper).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DeadNode`] if the node is not alive.
    pub fn remove_node(&mut self, node: NodeId) -> Result<(), GraphError> {
        if !self.is_alive(node) {
            return Err(GraphError::DeadNode(node));
        }
        let neighbors = std::mem::take(&mut self.adjacency[node.index()]);
        self.num_edges -= neighbors.len();
        for n in neighbors {
            Self::detach(&mut self.adjacency, n, node);
        }
        self.alive[node.index()] = false;
        self.num_alive -= 1;
        Ok(())
    }

    /// Iterates over the identifiers of live nodes in increasing order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.alive
            .iter()
            .enumerate()
            .filter(|&(_, &alive)| alive)
            .map(|(i, _)| NodeId::new(i))
    }

    /// Iterates over edges as `(a, b)` pairs with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(move |a| {
            self.adjacency[a.index()]
                .iter()
                .copied()
                .filter(move |&b| a < b)
                .map(move |b| (a, b))
        })
    }

    /// Picks a live node uniformly at random.
    ///
    /// Returns `None` on an empty graph. Uses rejection over slots, falling
    /// back to a linear scan when fewer than one slot in 64 is alive, so it
    /// stays O(1) expected in all the simulation regimes.
    pub fn random_node<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeId> {
        if self.num_alive == 0 {
            return None;
        }
        let slots = self.adjacency.len();
        if self.num_alive * 64 >= slots {
            loop {
                let i = rng.random_range(0..slots);
                if self.alive[i] {
                    return Some(NodeId::new(i));
                }
            }
        }
        let k = rng.random_range(0..self.num_alive);
        self.nodes().nth(k)
    }

    /// Picks a uniformly random neighbour of a live node, or `None` for an
    /// isolated node.
    ///
    /// # Panics
    ///
    /// Panics if the node is not alive.
    pub fn random_neighbor<R: Rng + ?Sized>(&self, node: NodeId, rng: &mut R) -> Option<NodeId> {
        assert!(self.is_alive(node), "random neighbor of dead node {node}");
        let list = &self.adjacency[node.index()];
        if list.is_empty() {
            None
        } else {
            Some(list[rng.random_range(0..list.len())])
        }
    }

    /// Sum of degrees over live nodes (equals `2 * num_edges`).
    #[must_use]
    pub fn degree_sum(&self) -> usize {
        2 * self.num_edges
    }

    /// Average degree over live nodes; `NaN` on an empty graph.
    #[must_use]
    pub fn average_degree(&self) -> f64 {
        if self.num_alive == 0 {
            f64::NAN
        } else {
            self.degree_sum() as f64 / self.num_alive as f64
        }
    }

    /// Largest degree over live nodes; zero on an empty graph.
    #[must_use]
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|n| self.degree(n)).max().unwrap_or(0)
    }
}

/// Stable on-disk shape of a [`Graph`] snapshot: total slot count, dead
/// slot indices, and edges. Used by the serde impls so the wire format is
/// independent of the in-memory adjacency layout.
#[derive(serde::Serialize, serde::Deserialize)]
struct GraphSnapshot {
    slots: usize,
    dead: Vec<u32>,
    edges: Vec<(u32, u32)>,
}

impl serde::Serialize for Graph {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let snapshot = GraphSnapshot {
            slots: self.slot_count(),
            dead: (0..self.slot_count() as u32)
                .filter(|&i| !self.is_alive(NodeId::new(i as usize)))
                .collect(),
            edges: self
                .edges()
                .map(|(a, b)| (a.index() as u32, b.index() as u32))
                .collect(),
        };
        snapshot.serialize(serializer)
    }
}

impl<'de> serde::Deserialize<'de> for Graph {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use serde::de::Error as _;
        let snapshot = GraphSnapshot::deserialize(deserializer)?;
        let mut g = Graph::with_capacity(snapshot.slots);
        g.add_nodes(snapshot.slots);
        for i in snapshot.dead {
            let node = NodeId::new(i as usize);
            if !g.is_alive(node) {
                return Err(D::Error::custom(format!("invalid dead slot {i}")));
            }
            g.remove_node(node).expect("liveness was just checked");
        }
        for (a, b) in snapshot.edges {
            g.add_edge(NodeId::new(a as usize), NodeId::new(b as usize))
                .map_err(|e| D::Error::custom(format!("invalid edge {a}-{b}: {e}")))?;
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn triangle() -> (Graph, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        g.add_edge(a, b).expect("fresh edge");
        g.add_edge(b, c).expect("fresh edge");
        g.add_edge(c, a).expect("fresh edge");
        (g, a, b, c)
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert!(g.average_degree().is_nan());
        assert_eq!(g.nodes().count(), 0);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(g.random_node(&mut rng), None);
    }

    #[test]
    fn add_and_query() {
        let (g, a, b, c) = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(a), 2);
        assert!(g.has_edge(a, b));
        assert!(g.has_edge(b, a));
        assert!(!g.has_edge(a, a));
        assert_eq!(g.degree_sum(), 6);
        assert_eq!(g.average_degree(), 2.0);
        assert_eq!(g.max_degree(), 2);
        let mut edges: Vec<_> = g.edges().collect();
        edges.sort();
        assert_eq!(edges, vec![(a, b), (a, c), (b, c)]);
    }

    #[test]
    fn rejects_self_loop_and_duplicates() {
        let (mut g, a, b, _) = triangle();
        assert_eq!(g.add_edge(a, a), Err(GraphError::SelfLoop(a)));
        assert_eq!(g.add_edge(a, b), Err(GraphError::DuplicateEdge(a, b)));
        assert_eq!(g.add_edge(b, a), Err(GraphError::DuplicateEdge(b, a)));
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn rejects_dead_endpoints() {
        let (mut g, a, b, c) = triangle();
        g.remove_node(c).expect("alive");
        assert_eq!(g.add_edge(a, c), Err(GraphError::DeadNode(c)));
        assert_eq!(g.remove_edge(c, a), Err(GraphError::DeadNode(c)));
        assert_eq!(g.remove_node(c), Err(GraphError::DeadNode(c)));
        assert!(g.has_edge(a, b));
        assert!(!g.has_edge(a, c));
    }

    #[test]
    fn remove_edge() {
        let (mut g, a, b, c) = triangle();
        g.remove_edge(a, b).expect("edge exists");
        assert!(!g.has_edge(a, b));
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(a), 1);
        assert_eq!(
            g.remove_edge(a, b),
            Err(GraphError::MissingEdge(a, b)),
            "double removal fails"
        );
        assert!(g.has_edge(b, c));
    }

    #[test]
    fn remove_node_clears_incident_edges() {
        let (mut g, a, b, c) = triangle();
        g.remove_node(a).expect("alive");
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_edges(), 1);
        assert!(!g.is_alive(a));
        assert_eq!(g.degree(b), 1);
        assert_eq!(g.neighbors(b), &[c]);
        // Slot is not recycled.
        let d = g.add_node();
        assert_ne!(d, a);
        assert_eq!(g.slot_count(), 4);
    }

    #[test]
    #[should_panic(expected = "dead node")]
    fn degree_of_dead_node_panics() {
        let (mut g, a, _, _) = triangle();
        g.remove_node(a).expect("alive");
        let _ = g.degree(a);
    }

    #[test]
    fn random_node_is_alive_and_covers_all() {
        let (mut g, a, _, _) = triangle();
        g.remove_node(a).expect("alive");
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let n = g.random_node(&mut rng).expect("non-empty");
            assert!(g.is_alive(n));
            seen.insert(n);
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn random_node_sparse_alive_fallback() {
        let mut g = Graph::new();
        let ids = g.add_nodes(1000);
        for &n in &ids[..990] {
            g.remove_node(n).expect("alive");
        }
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            let n = g.random_node(&mut rng).expect("ten nodes remain");
            assert!(g.is_alive(n));
        }
    }

    #[test]
    fn random_neighbor_none_for_isolated() {
        let mut g = Graph::new();
        let a = g.add_node();
        let mut rng = SmallRng::seed_from_u64(4);
        assert_eq!(g.random_neighbor(a, &mut rng), None);
    }

    #[test]
    fn random_neighbor_uniform_over_list() {
        let mut g = Graph::new();
        let hub = g.add_node();
        let leaves = g.add_nodes(4);
        for &l in &leaves {
            g.add_edge(hub, l).expect("fresh edge");
        }
        let mut rng = SmallRng::seed_from_u64(5);
        let mut counts = std::collections::HashMap::new();
        let trials = 40_000;
        for _ in 0..trials {
            let n = g.random_neighbor(hub, &mut rng).expect("has neighbors");
            *counts.entry(n).or_insert(0u32) += 1;
        }
        for &l in &leaves {
            let f = f64::from(counts[&l]) / f64::from(trials);
            assert!((f - 0.25).abs() < 0.02, "leaf frequency {f} far from 1/4");
        }
    }
}

//! The Inverted Birthday Paradox baseline (Bawa et al. \[7\]).

use census_graph::{NodeId, Topology};
use census_metrics::{Recorder, RunCtx};
use census_sampling::Sampler;
use rand::Rng;

use crate::sample_collide::SampleCollide;
use crate::{Estimate, EstimateError, SizeEstimator, StepBudgeted};

/// The "Inverted Birthday Paradox" estimator of Bawa et al. — the method
/// §4 of the paper builds on and improves.
///
/// Sample uniform peers until the *first* repeated peer, at sample count
/// `C₁`; since `E[C₁] ≈ √(πN/2)`, the moment-matching estimate is
/// `N̂ = 2·C₁²/π`. A single run has relative standard deviation ≈ 52%
/// (`C₁/√N` is Rayleigh), so `runs` independent repetitions are averaged.
///
/// The paper's improvement (Sample & Collide with `l` collisions in *one*
/// run) reaches the same variance with `√l`-fold fewer samples: averaging
/// `l` birthday runs costs `l·E[C₁] = Θ(l√N)` samples, against
/// `E[C_l] = Θ(√(lN))`. The `bench_sc_vs_ibp` ablation measures exactly
/// this.
///
/// # Examples
///
/// ```
/// use census_core::birthday::InvertedBirthdayParadox;
/// use census_core::SizeEstimator;
/// use census_metrics::RunCtx;
/// use census_sampling::OracleSampler;
/// use census_graph::generators;
/// use rand::SeedableRng;
/// use rand::rngs::SmallRng;
///
/// let g = generators::complete(500);
/// let mut rng = SmallRng::seed_from_u64(8);
/// let mut ctx = RunCtx::new(&g, &mut rng);
/// let ibp = InvertedBirthdayParadox::new(OracleSampler::new(), 20);
/// let est = ibp.estimate_with(&mut ctx, g.nodes().next().unwrap())?;
/// // The moment-matched estimator carries \[7\]'s documented ~27% bias.
/// assert!((est.value / 500.0 - 1.0).abs() < 1.0);
/// # Ok::<(), census_core::EstimateError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvertedBirthdayParadox<S> {
    sampler: S,
    runs: u32,
}

impl<S: Sampler> InvertedBirthdayParadox<S> {
    /// Creates the estimator averaging `runs` independent first-collision
    /// experiments.
    ///
    /// # Panics
    ///
    /// Panics if `runs` is zero.
    #[must_use]
    pub fn new(sampler: S, runs: u32) -> Self {
        assert!(runs > 0, "need at least one birthday run");
        Self { sampler, runs }
    }

    /// The configured number of averaged runs.
    #[must_use]
    pub fn runs(&self) -> u32 {
        self.runs
    }

    /// One first-collision experiment through a context: returns
    /// `(C₁, messages)`, charging the sampling walks to the context's
    /// recorder.
    ///
    /// # Errors
    ///
    /// Propagates sampler failures.
    pub fn single_run_with<T, R, Rec>(
        &self,
        ctx: &mut RunCtx<'_, T, R, Rec>,
        initiator: NodeId,
    ) -> Result<(u64, u64), EstimateError>
    where
        T: Topology + ?Sized,
        R: Rng,
        Rec: Recorder + ?Sized,
    {
        // A Sample & Collide run with l = 1 is exactly the birthday
        // experiment; reuse its collision bookkeeping.
        let sc = SampleCollide::new(&self.sampler, 1);
        let report = sc.collect_with(ctx, initiator)?;
        Ok((report.c_l, report.messages))
    }
}

impl<S: Sampler + Clone> StepBudgeted for InvertedBirthdayParadox<S> {
    /// Identity: like Sample & Collide, every sample is a timer-bounded
    /// walk, so the per-walk step budget is already enforced by the
    /// underlying sampler.
    fn with_step_budget(&self, _max_steps: u64) -> Self {
        self.clone()
    }
}

impl<S: Sampler> SizeEstimator for InvertedBirthdayParadox<S> {
    fn estimate_with<T, R, Rec>(
        &self,
        ctx: &mut RunCtx<'_, T, R, Rec>,
        initiator: NodeId,
    ) -> Result<Estimate, EstimateError>
    where
        T: Topology + ?Sized,
        R: Rng,
        Rec: Recorder + ?Sized,
    {
        let mut total_estimate = 0.0;
        let mut messages = 0u64;
        for _ in 0..self.runs {
            let (c1, msgs) = self.single_run_with(ctx, initiator)?;
            let c = c1 as f64;
            total_estimate += 2.0 * c * c / std::f64::consts::PI;
            messages += msgs;
        }
        Ok(Estimate {
            value: total_estimate / f64::from(self.runs),
            messages,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use census_graph::generators;
    use census_sampling::OracleSampler;
    use census_stats::OnlineMoments;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn moment_matched_estimate_is_unbiased_in_the_mean() {
        // E[C_1^2] = ... the 2/pi moment matching targets E[C_1]^2, so the
        // averaged estimator has a known positive bias of (4-pi)/pi ~ 27%
        // on E[C_1^2]*2/pi; with Rayleigh C_1/sqrt(N), E[2 C_1^2/pi] =
        // 2*(2N)/pi = 4N/pi ~ 1.27 N. We assert the measured mean sits at
        // that documented bias, matching [7]'s behaviour.
        let n = 2_000.0;
        let g = generators::complete(2_000);
        let ibp = InvertedBirthdayParadox::new(OracleSampler::new(), 50);
        let mut rng = SmallRng::seed_from_u64(1);
        let m: OnlineMoments = (0..60)
            .map(|_| {
                ibp.estimate_with(&mut RunCtx::new(&g, &mut rng), NodeId::new(0))
                    .expect("oracle cannot fail")
                    .value
            })
            .collect();
        let expected = 4.0 * n / std::f64::consts::PI;
        let rel = (m.mean() - expected).abs() / expected;
        assert!(rel < 0.1, "mean {} vs E-value {expected}", m.mean());
    }

    #[test]
    fn averaging_runs_reduces_variance() {
        let g = generators::complete(1_000);
        let mut rng = SmallRng::seed_from_u64(2);
        let spread = |runs: u32, rng: &mut SmallRng| {
            let ibp = InvertedBirthdayParadox::new(OracleSampler::new(), runs);
            let m: OnlineMoments = (0..80)
                .map(|_| {
                    ibp.estimate_with(&mut RunCtx::new(&g, &mut *rng), NodeId::new(0))
                        .expect("oracle cannot fail")
                        .value
                })
                .collect();
            m.sample_variance()
        };
        let v1 = spread(1, &mut rng);
        let v16 = spread(16, &mut rng);
        assert!(
            v16 < v1 / 6.0,
            "16-run averaging should cut variance ~16x: {v1} vs {v16}"
        );
    }

    #[test]
    fn single_run_matches_first_collision_definition() {
        let g = generators::complete(50);
        let ibp = InvertedBirthdayParadox::new(OracleSampler::new(), 1);
        let mut rng = SmallRng::seed_from_u64(3);
        let (c1, msgs) = ibp
            .single_run_with(&mut RunCtx::new(&g, &mut rng), NodeId::new(0))
            .expect("oracle cannot fail");
        assert!(c1 >= 2, "a collision needs at least two samples");
        assert!(c1 <= 51, "pigeonhole: at most N+1 samples");
        assert_eq!(msgs, 0, "oracle sampling is free");
    }

    #[test]
    #[should_panic(expected = "at least one birthday run")]
    fn zero_runs_panics() {
        let _ = InvertedBirthdayParadox::new(OracleSampler::new(), 0);
    }
}

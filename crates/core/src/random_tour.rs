//! The Random Tour estimator (§3).

use census_graph::{NodeId, Topology};
use census_metrics::{Recorder, RunCtx};
use census_walk::discrete::random_tour_ctx;
use rand::Rng;

use crate::{Estimate, EstimateError, SizeEstimator, StepBudgeted};

/// The Random Tour estimator of §3.
///
/// A probe message starts at the initiator `i` with counter
/// `Φ = f(i)/d_i`, performs a discrete-time random walk, and every node
/// `j` it enters adds `f(j)/d_j`; when it first returns to `i`, the
/// estimate is `X̂ = d_i · Φ`.
///
/// Properties proved in the paper and verified by this crate's tests:
///
/// - **Unbiased** (Prop. 1): `E[X̂] = Σ_j f(j)` on any connected overlay,
///   via the cycle formula for regenerative processes.
/// - **Variance** (Prop. 2): for `f ≡ 1`,
///   `N²(1−1/N)² − N ≤ Var(X̂) ≲ N²(1 + 2·d̄/λ₂)` — the relative standard
///   deviation of one tour is of order 1, so estimates must be averaged
///   (the paper uses sliding windows of 200–700 tours).
/// - **Cost**: one tour costs `(Σ_j d_j)/d_i` messages in expectation —
///   linear in the system size.
///
/// The optional step budget models the initiator-side timeout of §5.3.1
/// for lost probe messages.
///
/// # Examples
///
/// ```
/// use census_core::{RandomTour, SizeEstimator};
/// use census_graph::generators;
/// use census_metrics::RunCtx;
/// use rand::SeedableRng;
/// use rand::rngs::SmallRng;
///
/// let g = generators::complete(100);
/// let mut rng = SmallRng::seed_from_u64(3);
/// let initiator = g.nodes().next().expect("non-empty");
/// let mut ctx = RunCtx::new(&g, &mut rng);
/// let est = RandomTour::new().estimate_with(&mut ctx, initiator)?;
/// assert!(est.value > 0.0);
/// assert_eq!(est.messages, ctx.messages_total());
/// # Ok::<(), census_core::EstimateError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RandomTour {
    max_steps: Option<u64>,
}

impl RandomTour {
    /// Creates the estimator with no step budget (tours always complete
    /// on a connected overlay).
    #[must_use]
    pub fn new() -> Self {
        Self { max_steps: None }
    }

    /// Creates the estimator with a step budget after which the probe is
    /// declared lost (§5.3.1's timeout; the estimate attempt then fails
    /// with [`EstimateError::Walk`]).
    ///
    /// # Panics
    ///
    /// Panics if `max_steps` is zero.
    #[must_use]
    pub fn with_timeout(max_steps: u64) -> Self {
        assert!(max_steps > 0, "a zero-step budget cannot complete any tour");
        Self {
            max_steps: Some(max_steps),
        }
    }

    /// The configured step budget, if any.
    #[must_use]
    pub fn max_steps(&self) -> Option<u64> {
        self.max_steps
    }

    /// Estimates the aggregate `Σ_j f(j)` over the initiator's connected
    /// component (§3: "our techniques also apply to the estimation of
    /// sums of functions of the nodes"), charging the tour's hops to the
    /// context's recorder.
    ///
    /// `f` is evaluated once per *visit* (a node walked through twice
    /// contributes twice, with the `1/d_j` weight correcting for it).
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::Walk`] if the initiator is isolated or
    /// the step budget is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if the initiator is not alive.
    pub fn estimate_sum_with<T, R, Rec, F>(
        &self,
        ctx: &mut RunCtx<'_, T, R, Rec>,
        initiator: NodeId,
        mut f: F,
    ) -> Result<Estimate, EstimateError>
    where
        T: Topology + ?Sized,
        R: Rng,
        Rec: Recorder + ?Sized,
        F: FnMut(NodeId) -> f64,
    {
        let topology = ctx.topology;
        let mark = ctx.message_mark();
        let mut counter = 0.0f64;
        random_tour_ctx(ctx, initiator, self.max_steps, |node| {
            counter += f(node) / topology.degree_of(node) as f64;
        })?;
        let value = topology.degree_of(initiator) as f64 * counter;
        Ok(Estimate {
            value,
            messages: ctx.messages_since(mark),
        })
    }
}

impl StepBudgeted for RandomTour {
    /// A copy of this estimator whose tour is declared lost after
    /// `max_steps` hops — the §5.3.1 timeout, as set by a supervision
    /// loop.
    ///
    /// # Panics
    ///
    /// Panics if `max_steps` is zero.
    fn with_step_budget(&self, max_steps: u64) -> Self {
        Self::with_timeout(max_steps)
    }
}

impl SizeEstimator for RandomTour {
    fn estimate_with<T, R, Rec>(
        &self,
        ctx: &mut RunCtx<'_, T, R, Rec>,
        initiator: NodeId,
    ) -> Result<Estimate, EstimateError>
    where
        T: Topology + ?Sized,
        R: Rng,
        Rec: Recorder + ?Sized,
    {
        self.estimate_sum_with(ctx, initiator, |_| 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use census_graph::{algo, generators, Graph};
    use census_stats::OnlineMoments;
    use census_walk::WalkError;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Recorder-less estimate, spelled short for the statistical tests
    /// below.
    fn estimate(
        rt: &RandomTour,
        g: &Graph,
        initiator: NodeId,
        rng: &mut SmallRng,
    ) -> Result<Estimate, EstimateError> {
        rt.estimate_with(&mut RunCtx::new(g, rng), initiator)
    }

    /// Empirical mean of `runs` Random Tour estimates from a fixed node.
    fn mean_estimate(g: &Graph, initiator: NodeId, runs: u32, seed: u64) -> OnlineMoments {
        let mut rng = SmallRng::seed_from_u64(seed);
        let rt = RandomTour::new();
        (0..runs)
            .map(|_| {
                estimate(&rt, g, initiator, &mut rng)
                    .expect("connected overlay")
                    .value
            })
            .collect()
    }

    #[test]
    fn exact_on_two_nodes() {
        // On K_2 every tour returns in exactly 2 steps with X = 1*(1/1+1/1) = 2.
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b).expect("fresh edge");
        let mut rng = SmallRng::seed_from_u64(1);
        let est = estimate(&RandomTour::new(), &g, a, &mut rng).expect("completes");
        assert_eq!(est.value, 2.0);
        assert_eq!(est.messages, 2);
    }

    #[test]
    fn unbiased_on_balanced_graph() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = generators::balanced(300, 10, &mut rng);
        let n = algo::component_size(&g, NodeId::new(0)) as f64;
        let m = mean_estimate(&g, NodeId::new(0), 4_000, 3);
        // Unbiasedness: empirical mean within 4 standard errors of N.
        let err = (m.mean() - n).abs() / m.standard_error();
        assert!(err < 4.0, "mean {} vs true {n}: {err} SEs off", m.mean());
    }

    #[test]
    fn unbiased_on_scale_free_graph() {
        let mut rng = SmallRng::seed_from_u64(4);
        let g = generators::barabasi_albert(300, 3, &mut rng);
        let m = mean_estimate(&g, NodeId::new(7), 4_000, 5);
        let err = (m.mean() - 300.0).abs() / m.standard_error();
        assert!(err < 4.0, "mean {} vs true 300: {err} SEs off", m.mean());
    }

    #[test]
    fn unbiased_from_low_and_high_degree_initiators() {
        // Prop 1 holds for every initiator; check a hub and a leaf.
        let g = generators::star(30);
        // From the hub every tour is hub -> leaf -> hub, so the estimate
        // is *exactly* N with zero variance.
        let hub = mean_estimate(&g, NodeId::new(0), 500, 6);
        assert!((hub.mean() - 30.0).abs() < 1e-9, "hub mean {}", hub.mean());
        assert!(hub.sample_variance() < 1e-18);
        let leaf = mean_estimate(&g, NodeId::new(5), 6_000, 7);
        let err = (leaf.mean() - 30.0).abs() / leaf.standard_error();
        assert!(err < 4.0, "leaf: mean {} is {err} SEs from 30", leaf.mean());
    }

    #[test]
    fn estimates_component_size_not_graph_size() {
        let mut g = generators::complete(10);
        // A disjoint clique the walk can never reach.
        let others = g.add_nodes(5);
        for i in 0..5 {
            for j in (i + 1)..5 {
                g.add_edge(others[i], others[j]).expect("fresh edge");
            }
        }
        let m = mean_estimate(&g, NodeId::new(0), 3_000, 8);
        let err = (m.mean() - 10.0).abs() / m.standard_error();
        assert!(
            err < 4.0,
            "mean {} should match the component (10)",
            m.mean()
        );
    }

    #[test]
    fn aggregate_sum_of_degrees() {
        // f(j) = d_j: the estimator targets sum of degrees = 2|E|.
        let mut rng = SmallRng::seed_from_u64(9);
        let g = generators::balanced(200, 10, &mut rng);
        let target = g.degree_sum() as f64;
        let rt = RandomTour::new();
        let mut est_rng = SmallRng::seed_from_u64(10);
        let m: OnlineMoments = (0..4_000)
            .map(|_| {
                rt.estimate_sum_with(&mut RunCtx::new(&g, &mut est_rng), NodeId::new(0), |j| {
                    g.degree(j) as f64
                })
                .expect("connected")
                .value
            })
            .collect();
        let err = (m.mean() - target).abs() / m.standard_error();
        assert!(err < 4.0, "mean {} vs 2|E| = {target}", m.mean());
    }

    #[test]
    fn aggregate_degree_threshold_count() {
        // The paper's example: count nodes with degree above a threshold.
        let mut rng = SmallRng::seed_from_u64(11);
        let g = generators::barabasi_albert(200, 3, &mut rng);
        let threshold = 8;
        let target = algo::count_degree_above(&g, threshold) as f64;
        assert!(target > 0.0, "test graph should have high-degree nodes");
        let rt = RandomTour::new();
        let mut est_rng = SmallRng::seed_from_u64(12);
        let m: OnlineMoments = (0..6_000)
            .map(|_| {
                rt.estimate_sum_with(&mut RunCtx::new(&g, &mut est_rng), NodeId::new(0), |j| {
                    if g.degree(j) > threshold {
                        1.0
                    } else {
                        0.0
                    }
                })
                .expect("connected")
                .value
            })
            .collect();
        let err = (m.mean() - target).abs() / m.standard_error();
        assert!(err < 4.0, "mean {} vs target {target}", m.mean());
    }

    #[test]
    fn variance_within_proposition_2_bounds() {
        use census_graph::spectral::spectral_gap;
        for (g, seed) in [
            (generators::complete(40), 13u64),
            (generators::hypercube(5), 14),
            (
                generators::k_out(60, 3, &mut SmallRng::seed_from_u64(15)),
                16,
            ),
        ] {
            if !algo::is_connected(&g) {
                continue;
            }
            let n = g.num_nodes() as f64;
            let initiator = g.nodes().next().expect("non-empty");
            let mut rng = SmallRng::seed_from_u64(seed);
            let rt = RandomTour::new();
            let m: OnlineMoments = (0..20_000)
                .map(|_| {
                    estimate(&rt, &g, initiator, &mut rng)
                        .expect("connected")
                        .value
                })
                .collect();
            let var = m.sample_variance();
            let (lo, hi) =
                crate::theory::rt_variance_bounds(n, g.average_degree(), spectral_gap(&g));
            assert!(
                var >= lo * 0.8 && var <= hi * 1.2,
                "n={n}: variance {var} outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn timeout_fails_cleanly() {
        let g = generators::ring(1000);
        let mut rng = SmallRng::seed_from_u64(17);
        // The shortest possible tour is 2 steps, so a 1-step budget
        // always times out.
        let rt = RandomTour::with_timeout(1);
        let res = estimate(&rt, &g, NodeId::new(0), &mut rng);
        assert_eq!(res, Err(EstimateError::Walk(WalkError::Timeout(1))));
    }

    #[test]
    fn isolated_initiator_fails() {
        let mut g = Graph::new();
        let a = g.add_node();
        let mut rng = SmallRng::seed_from_u64(18);
        assert!(matches!(
            estimate(&RandomTour::new(), &g, a, &mut rng),
            Err(EstimateError::Walk(WalkError::Stuck(_)))
        ));
    }

    #[test]
    fn recorder_less_and_recorded_runs_produce_identical_estimates() {
        use census_metrics::{Metric, Registry};
        let mut rng = SmallRng::seed_from_u64(21);
        let g = generators::balanced(200, 6, &mut rng);
        let rt = RandomTour::new();
        let old =
            estimate(&rt, &g, NodeId::new(0), &mut SmallRng::seed_from_u64(22)).expect("connected");
        let reg = Registry::new();
        let mut ctx_rng = SmallRng::seed_from_u64(22);
        let mut ctx = RunCtx::with_recorder(&g, &mut ctx_rng, &reg);
        let new = rt
            .estimate_with(&mut ctx, NodeId::new(0))
            .expect("connected");
        assert_eq!(old, new, "recording must not perturb the walk");
        assert_eq!(reg.counter(Metric::TourHops), new.messages);
        assert_eq!(reg.counter(Metric::ToursCompleted), 1);
        assert_eq!(reg.message_total(), new.messages);
    }

    #[test]
    fn cost_matches_cycle_formula() {
        // E[messages] = degree_sum / d_i.
        let mut rng = SmallRng::seed_from_u64(19);
        let g = generators::balanced(200, 10, &mut rng);
        let initiator = NodeId::new(0);
        let d_i = g.degree(initiator) as f64;
        let rt = RandomTour::new();
        let mut est_rng = SmallRng::seed_from_u64(20);
        let m: OnlineMoments = (0..5_000)
            .map(|_| {
                estimate(&rt, &g, initiator, &mut est_rng)
                    .expect("connected")
                    .messages as f64
            })
            .collect();
        let expected = g.degree_sum() as f64 / d_i;
        let err = (m.mean() - expected).abs() / m.standard_error();
        assert!(err < 4.0, "mean cost {} vs {expected}", m.mean());
    }
}

//! The Sample & Collide estimator (§4).

use std::collections::HashSet;
use std::ops::ControlFlow;

use census_graph::{NodeId, Topology};
use census_metrics::{Metric, Recorder, RunCtx};
use census_sampling::{quality, CtrwSampler, Sampler};
use census_walk::continuous::Sojourn;
use rand::Rng;

use crate::{Estimate, EstimateError, SizeEstimator, StepBudgeted};

/// Which point estimate a [`SampleCollide`] instance reports.
///
/// All four are asymptotically equivalent (they differ by `O(√N)`,
/// Remark 2 of the paper) and hence all asymptotically efficient.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum PointEstimator {
    /// The maximum likelihood estimate, solved by bisection on the score
    /// function (Eq. (9)).
    #[default]
    MaximumLikelihood,
    /// `C_l² / (2l)` — the estimator the paper's own experiments use
    /// ("for ease of computation", Remark 2).
    Asymptotic,
    /// The lower bisection bracket `N_min` of Eq. (10).
    LowerBound,
    /// The upper bisection bracket `N_max` of Eq. (10).
    UpperBound,
}

/// Everything observed by one Sample & Collide run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CollisionReport {
    /// Total number of samples drawn when the `l`-th redundant sample
    /// appeared (the sufficient statistic `C_l`).
    pub c_l: u64,
    /// The configured number of collisions `l`.
    pub l: u32,
    /// Number of distinct peers observed (`C_l − l`).
    pub distinct: u64,
    /// Maximum likelihood estimate of `N`.
    pub ml: f64,
    /// The asymptotic estimate `C_l²/(2l)`.
    pub asymptotic: f64,
    /// Lower bracket `N_min` (Eq. (10)).
    pub n_min: f64,
    /// Upper bracket `N_max` (Eq. (10)).
    pub n_max: f64,
    /// Overlay messages spent across all sampling walks.
    pub messages: u64,
}

impl CollisionReport {
    /// The estimate selected by `which`.
    #[must_use]
    pub fn value(&self, which: PointEstimator) -> f64 {
        match which {
            PointEstimator::MaximumLikelihood => self.ml,
            PointEstimator::Asymptotic => self.asymptotic,
            PointEstimator::LowerBound => self.n_min,
            PointEstimator::UpperBound => self.n_max,
        }
    }
}

/// The Sample & Collide estimator of §4.2.
///
/// Draws (approximately) uniform peer samples from the configured
/// [`Sampler`] until `l` *redundant* samples — samples equal to some
/// previously seen peer — have occurred, at total sample count `C_l`.
/// `C_l` is a sufficient statistic for `N` (the likelihood factorises,
/// Eq. (7)); the maximum likelihood estimate solves
///
/// ```text
/// G(N) = Σ_{j=0}^{C_l−l−1} 1/(N−j) − C_l/N = 0
/// ```
///
/// which this implementation brackets by the paper's Eq. (10) bounds and
/// solves by bisection. Corollary 1: the relative mean squared error
/// tends to `1/l`; Lemma 2 (Cramér–Rao) shows no unbiased estimator
/// can do better. Expected cost is `E[C_l] = √(2N)·Γ(l+½)/Γ(l) ≈ √(2lN)`
/// samples, each costing `T·d̄` messages — `O(√(lN))` overall, a `√l`
/// factor cheaper than repeating the birthday-paradox method `l` times.
///
/// # Examples
///
/// ```
/// use census_core::{SampleCollide, SizeEstimator};
/// use census_metrics::RunCtx;
/// use census_sampling::OracleSampler;
/// use census_graph::generators;
/// use rand::SeedableRng;
/// use rand::rngs::SmallRng;
///
/// let g = generators::complete(1_000);
/// let mut rng = SmallRng::seed_from_u64(4);
/// let mut ctx = RunCtx::new(&g, &mut rng);
/// let sc = SampleCollide::new(OracleSampler::new(), 10);
/// let est = sc.estimate_with(&mut ctx, g.nodes().next().unwrap())?;
/// assert!((est.value / 1_000.0 - 1.0).abs() < 1.0);
/// # Ok::<(), census_core::EstimateError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleCollide<S> {
    sampler: S,
    l: u32,
    point: PointEstimator,
}

impl<S: Sampler> SampleCollide<S> {
    /// Creates the estimator stopping at the `l`-th collision, reporting
    /// the maximum likelihood estimate.
    ///
    /// # Panics
    ///
    /// Panics if `l` is zero.
    #[must_use]
    pub fn new(sampler: S, l: u32) -> Self {
        assert!(l > 0, "Sample & Collide needs at least one collision");
        Self {
            sampler,
            l,
            point: PointEstimator::MaximumLikelihood,
        }
    }

    /// Selects which point estimate [`SizeEstimator::estimate_with`]
    /// reports.
    #[must_use]
    pub fn with_point_estimator(mut self, point: PointEstimator) -> Self {
        self.point = point;
        self
    }

    /// The configured collision target `l`.
    #[must_use]
    pub fn collisions(&self) -> u32 {
        self.l
    }

    /// The configured sampler.
    #[must_use]
    pub fn sampler(&self) -> &S {
        &self.sampler
    }

    /// Runs the full sampling process and reports every statistic of the
    /// run (the sufficient statistic, all four point estimates, and the
    /// message cost), charging every sampling walk to the context's
    /// recorder and counting each redundant sample as a
    /// [`Metric::Collisions`] event.
    ///
    /// The sampling loop rides [`Sampler::sample_many`], breaking at the
    /// `l`-th collision.
    ///
    /// # Errors
    ///
    /// Propagates sampler failures as [`EstimateError::Walk`].
    ///
    /// # Panics
    ///
    /// Panics if the initiator is not alive.
    pub fn collect_with<T, R, Rec>(
        &self,
        ctx: &mut RunCtx<'_, T, R, Rec>,
        initiator: NodeId,
    ) -> Result<CollisionReport, EstimateError>
    where
        T: Topology + ?Sized,
        R: Rng,
        Rec: Recorder + ?Sized,
    {
        assert!(ctx.topology.contains(initiator), "initiator must be alive");
        let mut seen: HashSet<NodeId> = HashSet::new();
        let mut collisions = 0u32;
        let target = self.l;
        // The collision check is initiator-local bookkeeping, but the
        // protocol has the sampled peer confirm the probe — so the check
        // routes through `Topology::reports_collision`, giving adversarial
        // wrappers their forgery surface. Honest topologies echo
        // `locally_marked` and the behaviour is unchanged.
        let topology = ctx.topology;
        let batch = self
            .sampler
            .sample_many(ctx, initiator, u64::MAX, |s, _cost| {
                let locally_marked = !seen.insert(s.node);
                if topology.reports_collision(s.node, locally_marked) {
                    collisions += 1;
                    if collisions == target {
                        return ControlFlow::Break(());
                    }
                }
                ControlFlow::Continue(())
            })?;
        ctx.on_event(Metric::Collisions, u64::from(collisions));
        let c_l = batch.samples;
        let l = self.l;
        Ok(CollisionReport {
            c_l,
            l,
            distinct: c_l - u64::from(l),
            ml: ml_estimate(c_l, l),
            asymptotic: asymptotic_estimate(c_l, l),
            n_min: n_min(c_l, l),
            n_max: n_max(c_l, l),
            messages: batch.messages,
        })
    }
}

impl<S: Sampler + Clone> StepBudgeted for SampleCollide<S> {
    /// Identity: Sample & Collide is intrinsically step-bounded — each
    /// sample is one timer-driven CTRW walk whose cost the timer `T`
    /// caps, so the §5.3.1 per-walk budget has nothing further to cut.
    fn with_step_budget(&self, _max_steps: u64) -> Self {
        self.clone()
    }
}

impl<S: Sampler> SizeEstimator for SampleCollide<S> {
    fn estimate_with<T, R, Rec>(
        &self,
        ctx: &mut RunCtx<'_, T, R, Rec>,
        initiator: NodeId,
    ) -> Result<Estimate, EstimateError>
    where
        T: Topology + ?Sized,
        R: Rng,
        Rec: Recorder + ?Sized,
    {
        let report = self.collect_with(ctx, initiator)?;
        Ok(Estimate {
            value: report.value(self.point),
            messages: report.messages,
        })
    }
}

/// The lower bracket of Eq. (10): with `K = C_l − l`,
/// `N_min = K(K−1)/(2l)`, clamped to at least `K` (the number of distinct
/// peers actually observed).
///
/// # Panics
///
/// Panics if `l` is zero or `c_l < l`.
#[must_use]
pub fn n_min(c_l: u64, l: u32) -> f64 {
    assert!(l > 0, "l must be positive");
    assert!(c_l >= u64::from(l), "C_l counts the collisions themselves");
    let k = (c_l - u64::from(l)) as f64;
    (k * (k - 1.0) / (2.0 * f64::from(l))).max(k.max(1.0))
}

/// The upper bracket of Eq. (10): `N_max = K(K−1)/(2l) + K − 1`, clamped
/// like [`n_min`].
///
/// # Panics
///
/// Panics if `l` is zero or `c_l < l`.
#[must_use]
pub fn n_max(c_l: u64, l: u32) -> f64 {
    assert!(l > 0, "l must be positive");
    assert!(c_l >= u64::from(l), "C_l counts the collisions themselves");
    let k = (c_l - u64::from(l)) as f64;
    (k * (k - 1.0) / (2.0 * f64::from(l)) + (k - 1.0)).max(k.max(1.0))
}

/// The asymptotic estimator `Ñ = C_l²/(2l)` the paper's experiments use.
///
/// # Panics
///
/// Panics if `l` is zero.
#[must_use]
pub fn asymptotic_estimate(c_l: u64, l: u32) -> f64 {
    assert!(l > 0, "l must be positive");
    let c = c_l as f64;
    c * c / (2.0 * f64::from(l))
}

/// Score function `G(N)` of Eq. (9) whose root is the ML estimate.
fn score(n: f64, c_l: u64, l: u32) -> f64 {
    let k = c_l - u64::from(l);
    let mut sum = 0.0;
    for j in 0..k {
        sum += 1.0 / (n - j as f64);
    }
    sum - c_l as f64 / n
}

/// Maximum likelihood estimate of `N` from the `l`-th collision time
/// `C_l`, by bisection of the score function over the Eq. (10) bracket.
///
/// Degenerate observations (fewer than two distinct peers seen) return
/// the number of distinct peers, the boundary ML solution.
///
/// # Panics
///
/// Panics if `l` is zero or `c_l < l`.
#[must_use]
pub fn ml_estimate(c_l: u64, l: u32) -> f64 {
    assert!(l > 0, "l must be positive");
    assert!(c_l >= u64::from(l), "C_l counts the collisions themselves");
    let k = c_l - u64::from(l);
    if k <= 1 {
        return k.max(1) as f64;
    }
    // The score is positive at N slightly above K−1 (the harmonic sum
    // diverges) and negative as N → ∞ (it behaves as −l/N), so the root
    // is bracketed by [K, N_max]; Eq. (10) tightens the lower end.
    let mut lo = n_min(c_l, l).max(k as f64);
    let mut hi = n_max(c_l, l) + 1.0;
    // Degenerate brackets: when the Eq. (10) bounds clamp to the distinct
    // count (small K, large l) the root sits at — or below — `lo`, where
    // the score is already non-positive. Bisection would only shrink the
    // interval back onto `lo`, so return it directly. `<=` (not `<`)
    // matters: at N_min == N_max the score can vanish exactly at `lo`.
    if score(lo, c_l, l) <= 0.0 {
        return lo;
    }
    // The +1 margin above N_max covers rounding, but on clamped brackets
    // the root can still sit above `hi`. Expand geometrically until the
    // score turns non-positive — it behaves as −l/N for large N, so a few
    // doublings always suffice; the cap only bounds the loop formally.
    let mut widen = 0;
    while score(hi, c_l, l) > 0.0 && widen < 128 {
        hi = (hi * 2.0).max(hi + 1.0);
        widen += 1;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if score(mid, c_l, l) > 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-9 * hi.max(1.0) {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// One round of the adaptive timer search (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AdaptiveStep {
    /// The CTRW timer used this round.
    pub timer: f64,
    /// The resulting size estimate.
    pub estimate: f64,
    /// Messages spent this round.
    pub messages: u64,
}

/// The adaptive-timer Sample & Collide procedure suggested in §4.1.
///
/// Since neither `N` nor the spectral gap is known a priori, the paper
/// proposes: run Sample & Collide with some timer `T`, re-run with `2T`,
/// and repeat until the estimates stabilise ("they should increase with
/// `T` until `T` is sufficiently large" — under-mixing makes samples
/// collide early and biases the estimate *downwards*).
///
/// # Examples
///
/// ```
/// use census_core::AdaptiveSampleCollide;
///
/// let adaptive = AdaptiveSampleCollide::new(10, 1.0)
///     .with_tolerance(0.2)
///     .with_max_rounds(6);
/// assert_eq!(adaptive.initial_timer(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveSampleCollide {
    l: u32,
    initial_timer: f64,
    tolerance: f64,
    max_rounds: u32,
    point: PointEstimator,
    sojourn: Sojourn,
}

impl AdaptiveSampleCollide {
    /// Creates the adaptive procedure with relative-stability tolerance
    /// 0.1 and at most 10 doubling rounds.
    ///
    /// # Panics
    ///
    /// Panics if `l` is zero or `initial_timer` is not positive/finite.
    #[must_use]
    pub fn new(l: u32, initial_timer: f64) -> Self {
        assert!(l > 0, "Sample & Collide needs at least one collision");
        assert!(
            initial_timer.is_finite() && initial_timer > 0.0,
            "initial timer must be positive and finite"
        );
        Self {
            l,
            initial_timer,
            tolerance: 0.1,
            max_rounds: 10,
            point: PointEstimator::MaximumLikelihood,
            sojourn: Sojourn::Exponential,
        }
    }

    /// Selects the sojourn law of the underlying CTRW sampler.
    ///
    /// Only [`Sojourn::Exponential`] passes the soundness audit;
    /// configuring [`Sojourn::Deterministic`] makes [`Self::run_with`]
    /// refuse with [`EstimateError::UnsoundSampler`] instead of quietly
    /// producing the biased Remark-1 law. The knob exists so harnesses
    /// can demonstrate the refusal path.
    #[must_use]
    pub fn with_sojourn(mut self, sojourn: Sojourn) -> Self {
        self.sojourn = sojourn;
        self
    }

    /// The configured sojourn law.
    #[must_use]
    pub fn sojourn(&self) -> Sojourn {
        self.sojourn
    }

    /// Sets the relative change below which two successive estimates are
    /// considered stable.
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is not in `(0, 1)`.
    #[must_use]
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        assert!(
            tolerance > 0.0 && tolerance < 1.0,
            "tolerance must lie in (0, 1)"
        );
        self.tolerance = tolerance;
        self
    }

    /// Caps the number of timer-doubling rounds.
    ///
    /// # Panics
    ///
    /// Panics if `max_rounds < 2` (stability needs two estimates).
    #[must_use]
    pub fn with_max_rounds(mut self, max_rounds: u32) -> Self {
        assert!(max_rounds >= 2, "stability requires at least two rounds");
        self.max_rounds = max_rounds;
        self
    }

    /// Selects the reported point estimate.
    #[must_use]
    pub fn with_point_estimator(mut self, point: PointEstimator) -> Self {
        self.point = point;
        self
    }

    /// The starting timer value.
    #[must_use]
    pub fn initial_timer(&self) -> f64 {
        self.initial_timer
    }

    fn sampler_for(&self, timer: f64) -> CtrwSampler {
        match self.sojourn {
            Sojourn::Exponential => CtrwSampler::new(timer),
            Sojourn::Deterministic => CtrwSampler::with_deterministic_sojourns(timer),
        }
    }

    /// Runs the doubling procedure and returns each round's step; the
    /// last step holds the accepted estimate. Each round is counted as a
    /// [`Metric::ScRounds`] event on the context's recorder.
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::UnsoundSampler`] — before any walk is
    /// launched or any round charged — when the configured sojourn law
    /// fails [`quality::audit_ctrw`]; otherwise propagates sampler
    /// failures.
    pub fn run_with<T, R, Rec>(
        &self,
        ctx: &mut RunCtx<'_, T, R, Rec>,
        initiator: NodeId,
    ) -> Result<Vec<AdaptiveStep>, EstimateError>
    where
        T: Topology + ?Sized,
        R: Rng,
        Rec: Recorder + ?Sized,
    {
        quality::audit_ctrw(&self.sampler_for(self.initial_timer))?;
        let mut steps: Vec<AdaptiveStep> = Vec::new();
        let mut timer = self.initial_timer;
        for _ in 0..self.max_rounds {
            let sc = SampleCollide::new(self.sampler_for(timer), self.l)
                .with_point_estimator(self.point);
            ctx.on_event(Metric::ScRounds, 1);
            let report = sc.collect_with(ctx, initiator)?;
            let estimate = report.value(self.point);
            let step = AdaptiveStep {
                timer,
                estimate,
                messages: report.messages,
            };
            if let Some(prev) = steps.last() {
                let rel = (estimate - prev.estimate).abs() / estimate.max(1.0);
                steps.push(step);
                if rel < self.tolerance {
                    return Ok(steps);
                }
            } else {
                steps.push(step);
            }
            timer *= 2.0;
        }
        Ok(steps)
    }
}

impl StepBudgeted for AdaptiveSampleCollide {
    /// Identity: the adaptive procedure's walks are bounded by its own
    /// timer-doubling schedule (§4.4), which already caps every walk.
    fn with_step_budget(&self, _max_steps: u64) -> Self {
        *self
    }
}

impl SizeEstimator for AdaptiveSampleCollide {
    fn estimate_with<T, R, Rec>(
        &self,
        ctx: &mut RunCtx<'_, T, R, Rec>,
        initiator: NodeId,
    ) -> Result<Estimate, EstimateError>
    where
        T: Topology + ?Sized,
        R: Rng,
        Rec: Recorder + ?Sized,
    {
        let steps = self.run_with(ctx, initiator)?;
        let messages = steps.iter().map(|s| s.messages).sum();
        let last = steps.last().expect("at least one round always runs");
        Ok(Estimate {
            value: last.estimate,
            messages,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use census_graph::{generators, Graph, NodeId};
    use census_sampling::{OracleSampler, Sample};
    use census_stats::{ks_statistic, OnlineMoments};
    use census_walk::WalkError;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// A sampler replaying a scripted sequence of node indices.
    struct Scripted(std::cell::RefCell<std::vec::IntoIter<usize>>);

    impl Scripted {
        fn new(seq: Vec<usize>) -> Self {
            Self(std::cell::RefCell::new(seq.into_iter()))
        }
    }

    impl Sampler for Scripted {
        fn sample<T, R>(
            &self,
            _topology: &T,
            _initiator: NodeId,
            _rng: &mut R,
        ) -> Result<Sample, WalkError>
        where
            T: Topology + ?Sized,
            R: Rng,
        {
            let idx = self.0.borrow_mut().next().expect("script long enough");
            Ok(Sample {
                node: NodeId::new(idx),
                hops: 1,
            })
        }
    }

    fn line(n: usize) -> Graph {
        generators::path(n)
    }

    /// Recorder-less [`SampleCollide::collect_with`], spelled short for
    /// the statistical tests below.
    fn collect<S: Sampler>(
        sc: &SampleCollide<S>,
        g: &Graph,
        initiator: NodeId,
        rng: &mut SmallRng,
    ) -> Result<CollisionReport, EstimateError> {
        sc.collect_with(&mut RunCtx::new(g, rng), initiator)
    }

    /// Recorder-less [`SizeEstimator::estimate_with`], spelled short for
    /// the statistical tests below.
    fn estimate<S: Sampler>(
        sc: &SampleCollide<S>,
        g: &Graph,
        initiator: NodeId,
        rng: &mut SmallRng,
    ) -> Result<Estimate, EstimateError> {
        sc.estimate_with(&mut RunCtx::new(g, rng), initiator)
    }

    #[test]
    fn collision_counting_follows_definition() {
        // Sequence a b a c b: first collision at sample 3, second at 5.
        let g = line(5);
        let sc = SampleCollide::new(Scripted::new(vec![0, 1, 0, 2, 1]), 2);
        let mut rng = SmallRng::seed_from_u64(1);
        let report = collect(&sc, &g, NodeId::new(0), &mut rng).expect("scripted");
        assert_eq!(report.c_l, 5);
        assert_eq!(report.distinct, 3);
        assert_eq!(report.messages, 5);
    }

    #[test]
    fn repeated_collisions_with_same_node_count() {
        // a a a: collisions at samples 2 and 3.
        let g = line(3);
        let sc = SampleCollide::new(Scripted::new(vec![0, 0, 0]), 2);
        let mut rng = SmallRng::seed_from_u64(2);
        let report = collect(&sc, &g, NodeId::new(0), &mut rng).expect("scripted");
        assert_eq!(report.c_l, 3);
        assert_eq!(report.distinct, 1);
        // Degenerate: one distinct peer -> boundary ML.
        assert_eq!(report.ml, 1.0);
    }

    #[test]
    fn ml_root_lies_in_eq10_bracket() {
        for (c_l, l) in [(50u64, 3u32), (500, 10), (4_500, 100), (20, 1)] {
            let ml = ml_estimate(c_l, l);
            assert!(
                ml >= n_min(c_l, l) - 1e-6 && ml <= n_max(c_l, l) + 1.0 + 1e-6,
                "ml {ml} outside [{}, {}] for C={c_l}, l={l}",
                n_min(c_l, l),
                n_max(c_l, l)
            );
            // The score actually vanishes at the reported root.
            let k = c_l - u64::from(l);
            if k > 1 {
                let g = super::score(ml, c_l, l);
                assert!(g.abs() < 1e-6, "score at root is {g}");
            }
        }
    }

    #[test]
    fn ml_estimate_converges_on_degenerate_brackets() {
        // C_l = l: every sample collided, zero distinct peers observed.
        // The boundary ML solution is one peer (the initiator itself).
        for l in [1u32, 2, 7, 100] {
            let ml = ml_estimate(u64::from(l), l);
            assert_eq!(ml, 1.0, "C_l = l = {l} must report the boundary");
        }
        // l = 1 at the smallest informative observations: the first
        // collision on the second and third sample.
        assert_eq!(ml_estimate(2, 1), 1.0, "K = 1 boundary");
        let ml = ml_estimate(3, 1);
        assert!(ml.is_finite() && ml >= 2.0 - 1e-9, "K = 2, l = 1 gave {ml}");
        // N_min == N_max: both Eq. (10) brackets clamp to the distinct
        // count K when K(K−1)/(2l) ≤ 1 — e.g. K = 2, l = 2. The root sits
        // at the collapsed bracket; bisection must return it rather than
        // loop or trip the bracket assertion.
        let (c_l, l) = (4u64, 2u32);
        assert_eq!(n_min(c_l, l), n_max(c_l, l), "bracket must collapse");
        let ml = ml_estimate(c_l, l);
        assert!(
            (ml - n_min(c_l, l)).abs() < 1e-6,
            "collapsed bracket: ml {ml} vs bound {}",
            n_min(c_l, l)
        );
        // Heavily clamped brackets across a small-K sweep: always finite,
        // positive, and inside the (widened) bracket.
        for l in 1u32..=12 {
            for k in 0u64..=6 {
                let c_l = u64::from(l) + k;
                let ml = ml_estimate(c_l, l);
                assert!(ml.is_finite() && ml >= 1.0, "C={c_l} l={l} gave {ml}");
            }
        }
    }

    #[test]
    fn estimators_agree_asymptotically() {
        // For C_l >> l all four point estimates agree to O(sqrt(N)).
        let (c_l, l) = (14_142u64, 100u32); // N ~ 1e6
        let ml = ml_estimate(c_l, l);
        let asym = asymptotic_estimate(c_l, l);
        assert!(
            (ml - asym).abs() / ml < 0.02,
            "ml {ml} vs asymptotic {asym}"
        );
        assert!(
            n_max(c_l, l) - n_min(c_l, l) < 2.0 * (c_l as f64),
            "brackets differ by O(C_l)"
        );
    }

    #[test]
    fn recovers_known_size_with_oracle_sampling() {
        let g = generators::complete(800);
        let sc = SampleCollide::new(OracleSampler::new(), 20);
        let mut rng = SmallRng::seed_from_u64(3);
        let m: OnlineMoments = (0..300)
            .map(|_| {
                estimate(&sc, &g, NodeId::new(0), &mut rng)
                    .expect("oracle cannot fail")
                    .value
            })
            .collect();
        let rel = (m.mean() - 800.0).abs() / 800.0;
        assert!(rel < 0.05, "mean {} vs 800", m.mean());
    }

    #[test]
    fn corollary_1_relative_mse_is_one_over_l() {
        let g = generators::complete(2_000);
        let mut rng = SmallRng::seed_from_u64(4);
        for l in [10u32, 50] {
            let sc = SampleCollide::new(OracleSampler::new(), l);
            let runs = 400;
            let mse: f64 = (0..runs)
                .map(|_| {
                    let v = estimate(&sc, &g, NodeId::new(0), &mut rng)
                        .expect("oracle cannot fail")
                        .value;
                    let r = v / 2_000.0 - 1.0;
                    r * r
                })
                .sum::<f64>()
                / f64::from(runs);
            let predicted = 1.0 / f64::from(l);
            assert!(
                (mse / predicted - 1.0).abs() < 0.45,
                "l={l}: relative MSE {mse} vs predicted {predicted}"
            );
        }
    }

    #[test]
    fn proposition_3_first_moment() {
        // E[C_l] -> sqrt(2N) * Gamma(l + 1/2)/Gamma(l).
        let n = 3_000usize;
        let l = 5u32;
        let g = generators::complete(n);
        let sc = SampleCollide::new(OracleSampler::new(), l);
        let mut rng = SmallRng::seed_from_u64(5);
        let m: OnlineMoments = (0..600)
            .map(|_| {
                collect(&sc, &g, NodeId::new(0), &mut rng)
                    .expect("oracle cannot fail")
                    .c_l as f64
            })
            .collect();
        let predicted = crate::theory::expected_collision_time(n as f64, l);
        let err = (m.mean() - predicted).abs() / m.standard_error();
        assert!(err < 4.0, "E[C_l] {} vs predicted {predicted}", m.mean());
    }

    #[test]
    fn proposition_3_limit_law_for_l_1_is_rayleigh() {
        // C_1/sqrt(N) => Rayleigh: F(x) = 1 - exp(-x^2/2).
        let n = 5_000usize;
        let g = generators::complete(n);
        let sc = SampleCollide::new(OracleSampler::new(), 1);
        let mut rng = SmallRng::seed_from_u64(6);
        let sample: Vec<f64> = (0..2_000)
            .map(|_| {
                collect(&sc, &g, NodeId::new(0), &mut rng)
                    .expect("oracle cannot fail")
                    .c_l as f64
                    / (n as f64).sqrt()
            })
            .collect();
        let d = ks_statistic(&sample, |x| {
            if x <= 0.0 {
                0.0
            } else {
                1.0 - (-x * x / 2.0).exp()
            }
        });
        // KS 1% critical value ~ 1.63/sqrt(2000) = 0.036; allow finite-N bias.
        assert!(d < 0.05, "KS distance {d} from Rayleigh");
    }

    #[test]
    fn works_on_singleton_overlay() {
        let mut g = Graph::new();
        let a = g.add_node();
        let sc = SampleCollide::new(OracleSampler::new(), 3);
        let mut rng = SmallRng::seed_from_u64(7);
        let report = collect(&sc, &g, a, &mut rng).expect("oracle cannot fail");
        assert_eq!(report.c_l, 4);
        assert_eq!(report.ml, 1.0);
    }

    #[test]
    fn ctrw_backed_estimates_are_accurate_on_balanced_graph() {
        let mut rng = SmallRng::seed_from_u64(8);
        let g = generators::balanced(1_000, 10, &mut rng);
        let sc = SampleCollide::new(CtrwSampler::new(10.0), 30)
            .with_point_estimator(PointEstimator::Asymptotic);
        let m: OnlineMoments = (0..40)
            .map(|_| {
                estimate(&sc, &g, NodeId::new(0), &mut rng)
                    .expect("connected")
                    .value
            })
            .collect();
        let rel = (m.mean() - 1_000.0).abs() / 1_000.0;
        assert!(rel < 0.15, "mean {} vs 1000", m.mean());
    }

    #[test]
    fn adaptive_timer_stabilises_and_grows() {
        let mut rng = SmallRng::seed_from_u64(9);
        let g = generators::balanced(800, 10, &mut rng);
        let adaptive = AdaptiveSampleCollide::new(20, 0.25).with_tolerance(0.25);
        let steps = adaptive
            .run_with(&mut RunCtx::new(&g, &mut rng), NodeId::new(0))
            .expect("connected");
        assert!(steps.len() >= 2, "at least two rounds");
        for w in steps.windows(2) {
            assert_eq!(w[1].timer, w[0].timer * 2.0);
        }
        let last = steps.last().expect("non-empty");
        assert!(
            (last.estimate / 800.0 - 1.0).abs() < 0.5,
            "final estimate {} vs 800",
            last.estimate
        );
    }

    #[test]
    fn undermixed_sampling_biases_downwards() {
        // §4.1: estimates "should increase with T until T is sufficiently
        // large" — a tiny timer resamples the initiator's neighbourhood,
        // collides early, and underestimates.
        let mut rng = SmallRng::seed_from_u64(10);
        let g = generators::balanced(2_000, 10, &mut rng);
        let mean_with_timer = |t: f64, rng: &mut SmallRng| {
            let sc = SampleCollide::new(CtrwSampler::new(t), 10);
            let m: OnlineMoments = (0..30)
                .map(|_| {
                    estimate(&sc, &g, NodeId::new(0), rng)
                        .expect("connected")
                        .value
                })
                .collect();
            m.mean()
        };
        let small = mean_with_timer(0.05, &mut rng);
        let large = mean_with_timer(10.0, &mut rng);
        assert!(
            small < 0.6 * large,
            "undermixed {small} should undershoot mixed {large}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one collision")]
    fn zero_l_panics() {
        let _ = SampleCollide::new(OracleSampler::new(), 0);
    }

    #[test]
    fn ctx_records_collisions_samples_and_messages() {
        use census_metrics::{Registry, RunCtx};
        let g = line(5);
        // Sequence a b a c b: C_2 = 5 with unit-cost samples.
        let sc = SampleCollide::new(Scripted::new(vec![0, 1, 0, 2, 1]), 2);
        let reg = Registry::new();
        let mut rng = SmallRng::seed_from_u64(30);
        let mut ctx = RunCtx::with_recorder(&g, &mut rng, &reg);
        let report = sc.collect_with(&mut ctx, NodeId::new(0)).expect("scripted");
        assert_eq!(report.c_l, 5);
        assert_eq!(report.messages, 5);
        assert_eq!(reg.counter(Metric::Collisions), 2);
        assert_eq!(reg.counter(Metric::SamplesDrawn), 5);
        assert_eq!(reg.counter(Metric::SampleHops), 5);
        assert_eq!(reg.message_total(), report.messages);
        assert_eq!(ctx.messages_total(), report.messages);
    }

    #[test]
    fn recorded_and_recorderless_runs_produce_identical_reports() {
        let mut rng = SmallRng::seed_from_u64(31);
        let g = generators::balanced(400, 8, &mut rng);
        let sc = SampleCollide::new(CtrwSampler::new(4.0), 5);
        let mut bare_rng = SmallRng::seed_from_u64(32);
        let bare = sc
            .collect_with(&mut RunCtx::new(&g, &mut bare_rng), NodeId::new(0))
            .expect("connected");
        let reg = census_metrics::Registry::new();
        let mut rec_rng = SmallRng::seed_from_u64(32);
        let mut ctx = census_metrics::RunCtx::with_recorder(&g, &mut rec_rng, &reg);
        let recorded = sc
            .collect_with(&mut ctx, NodeId::new(0))
            .expect("connected");
        assert_eq!(bare, recorded, "recording must not perturb the draws");
        assert_eq!(reg.message_total(), recorded.messages);
    }

    #[test]
    fn adaptive_ctx_counts_rounds() {
        use census_metrics::{Registry, RunCtx};
        let mut rng = SmallRng::seed_from_u64(33);
        let g = generators::balanced(300, 8, &mut rng);
        let adaptive = AdaptiveSampleCollide::new(10, 0.5).with_tolerance(0.3);
        let reg = Registry::new();
        let mut ctx = RunCtx::with_recorder(&g, &mut rng, &reg);
        let steps = adaptive
            .run_with(&mut ctx, NodeId::new(0))
            .expect("connected");
        assert_eq!(reg.counter(Metric::ScRounds), steps.len() as u64);
        let reported: u64 = steps.iter().map(|s| s.messages).sum();
        assert_eq!(reg.message_total(), reported);
    }

    #[test]
    fn adaptive_refuses_deterministic_sojourns_with_typed_error() {
        use census_metrics::Registry;
        use census_sampling::quality::SamplerFlaw;
        let mut rng = SmallRng::seed_from_u64(34);
        let g = generators::balanced(200, 6, &mut rng);
        let adaptive = AdaptiveSampleCollide::new(5, 1.0).with_sojourn(Sojourn::Deterministic);
        assert_eq!(adaptive.sojourn(), Sojourn::Deterministic);
        let reg = Registry::new();
        let mut ctx = census_metrics::RunCtx::with_recorder(&g, &mut rng, &reg);
        let err = adaptive
            .run_with(&mut ctx, NodeId::new(0))
            .expect_err("deterministic sojourns must be refused");
        assert_eq!(
            err,
            crate::EstimateError::UnsoundSampler(SamplerFlaw::DeterministicSojourns)
        );
        // Refused before anything ran: no rounds charged, no messages sent.
        assert_eq!(reg.counter(Metric::ScRounds), 0);
        assert_eq!(reg.message_total(), 0);
        // The default exponential configuration still passes the audit.
        let ok = AdaptiveSampleCollide::new(5, 1.0)
            .with_tolerance(0.3)
            .run_with(
                &mut census_metrics::RunCtx::new(&g, &mut rng),
                NodeId::new(0),
            );
        assert!(ok.is_ok(), "exponential sojourns are sound: {ok:?}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ml_estimate_is_finite_positive_and_bracketed(
            l in 1u32..50,
            k_extra in 2u64..5_000,
        ) {
            let c_l = u64::from(l) + k_extra;
            let ml = ml_estimate(c_l, l);
            prop_assert!(ml.is_finite());
            prop_assert!(ml >= 1.0);
            prop_assert!(ml >= n_min(c_l, l) - 1e-6);
            prop_assert!(ml <= n_max(c_l, l) + 1.0 + 1e-6);
        }

        #[test]
        fn asymptotic_estimate_monotone_in_cl(l in 1u32..20, c in 2u64..1_000) {
            let c_l = u64::from(l) + c;
            prop_assert!(asymptotic_estimate(c_l + 1, l) > asymptotic_estimate(c_l, l));
        }
    }
}

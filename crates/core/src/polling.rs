//! Probabilistic polling baseline (\[15, 33, 24\] in the paper).

use census_graph::{algo, Graph, NodeId};
use census_metrics::{Metric, Recorder, RunCtx};
use rand::Rng;

/// The probabilistic polling estimator of §2.2's related work.
///
/// The initiator floods a query through the overlay; every reached peer
/// replies with probability `p`, and the initiator reports `R/p` where
/// `R` is the number of replies. The estimate is unbiased over the
/// flooded component, but the method has two structural drawbacks the
/// paper highlights:
///
/// - **cost linear in `N`** — the flood traverses every edge;
/// - **ACK implosion** — all `≈ pN` replies converge on the initiator
///   (exposed here as [`PollingOutcome::replies`], the instantaneous
///   reply load).
///
/// # Examples
///
/// ```
/// use census_core::polling::ProbabilisticPolling;
/// use census_graph::generators;
/// use census_metrics::RunCtx;
/// use rand::SeedableRng;
/// use rand::rngs::SmallRng;
///
/// let g = generators::complete(100);
/// let mut rng = SmallRng::seed_from_u64(6);
/// let mut ctx = RunCtx::new(&g, &mut rng);
/// let poll = ProbabilisticPolling::new(0.25);
/// let out = poll.run_with(&mut ctx, g.nodes().next().unwrap());
/// assert!((out.estimate / 100.0 - 1.0).abs() < 0.8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbabilisticPolling {
    reply_probability: f64,
}

/// Result of one polling execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PollingOutcome {
    /// The size estimate `R / p`.
    pub estimate: f64,
    /// Number of replies that converged on the initiator (the ACK
    /// implosion load).
    pub replies: u64,
    /// Peers reached by the flood.
    pub reached: u64,
    /// Total messages: flood transmissions (one per edge per direction
    /// of first coverage, i.e. `2|E|` worst case) plus replies.
    pub messages: u64,
}

impl ProbabilisticPolling {
    /// Creates the estimator with per-peer reply probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 1]`.
    #[must_use]
    pub fn new(reply_probability: f64) -> Self {
        assert!(
            reply_probability > 0.0 && reply_probability <= 1.0,
            "reply probability must lie in (0, 1]"
        );
        Self { reply_probability }
    }

    /// The configured reply probability.
    #[must_use]
    pub fn reply_probability(&self) -> f64 {
        self.reply_probability
    }

    /// Floods from `initiator` and returns the estimate, charging the
    /// flood transmissions to [`Metric::PollFloodMessages`] and the
    /// replies to [`Metric::PollReplyMessages`].
    ///
    /// # Panics
    ///
    /// Panics if `initiator` is not alive.
    pub fn run_with<R, Rec>(
        &self,
        ctx: &mut RunCtx<'_, Graph, R, Rec>,
        initiator: NodeId,
    ) -> PollingOutcome
    where
        R: Rng,
        Rec: Recorder + ?Sized,
    {
        let g = ctx.topology;
        let component = algo::connected_component(g, initiator);
        // Flood cost: every edge within the component carries the query
        // in both directions in the worst case; we charge the standard
        // flooding bound of one message per directed edge.
        let flood_messages: u64 = component.iter().map(|&v| g.degree(v) as u64).sum();
        let mut replies = 0u64;
        for _ in &component {
            if ctx.rng.random::<f64>() < self.reply_probability {
                replies += 1;
            }
        }
        ctx.on_message(Metric::PollFloodMessages, flood_messages);
        ctx.on_message(Metric::PollReplyMessages, replies);
        PollingOutcome {
            estimate: replies as f64 / self.reply_probability,
            replies,
            reached: component.len() as u64,
            messages: flood_messages + replies,
        }
    }
}

/// Hop-limited polling: the flood carries a TTL of `max_hops`, and a
/// peer at BFS distance `h` replies with probability `p(h)` — the actual
/// mechanism of Friedman & Towsley \[15\], where the reply probability is
/// "a function of node characteristics, such as distance (in number of
/// hops) from the initial requestor".
///
/// The estimator corrects each stratum by its own probability:
/// `N̂ = 1 + Σ_h R_h / p(h)` over reached strata (the initiator counts
/// itself), unbiased for the peers within `max_hops`; peers beyond the
/// horizon are simply not counted, so the estimate targets the
/// `max_hops`-ball around the initiator.
///
/// # Examples
///
/// ```
/// use census_core::polling::HopLimitedPolling;
/// use census_graph::generators;
/// use census_metrics::RunCtx;
/// use rand::SeedableRng;
/// use rand::rngs::SmallRng;
///
/// let g = generators::ring(100);
/// let mut rng = SmallRng::seed_from_u64(9);
/// let poll = HopLimitedPolling::new(3, |h| 1.0 / (h + 1) as f64);
/// let me = g.nodes().next().unwrap();
/// let mut ctx = RunCtx::new(&g, &mut rng);
/// let out = poll.run_with(&mut ctx, me);
/// assert_eq!(out.reached, 6, "ring: 3 peers on each side");
/// ```
#[derive(Clone, Copy)]
pub struct HopLimitedPolling<P> {
    max_hops: usize,
    reply_probability: P,
}

impl<P: Fn(usize) -> f64> HopLimitedPolling<P> {
    /// Creates the estimator with flood radius `max_hops` and per-hop
    /// reply probability function `reply_probability(hops)`.
    ///
    /// # Panics
    ///
    /// Panics if `max_hops` is zero.
    #[must_use]
    pub fn new(max_hops: usize, reply_probability: P) -> Self {
        assert!(max_hops > 0, "a zero-hop poll reaches nobody");
        Self {
            max_hops,
            reply_probability,
        }
    }

    /// Floods up to `max_hops` from `initiator`, charging the flood
    /// transmissions to [`Metric::PollFloodMessages`] and the replies to
    /// [`Metric::PollReplyMessages`].
    ///
    /// # Panics
    ///
    /// Panics if `initiator` is not alive, or if the probability
    /// function returns a value outside `(0, 1]` for a reached stratum.
    pub fn run_with<R, Rec>(
        &self,
        ctx: &mut RunCtx<'_, Graph, R, Rec>,
        initiator: NodeId,
    ) -> PollingOutcome
    where
        R: Rng,
        Rec: Recorder + ?Sized,
    {
        let g = ctx.topology;
        let distances = algo::bfs_distances(g, initiator);
        let mut estimate = 1.0f64; // the initiator counts itself
        let mut replies = 0u64;
        let mut reached = 0u64;
        let mut flood_messages = 0u64;
        for node in g.nodes() {
            let Some(h) = distances[node.index()] else {
                continue;
            };
            if h == 0 || h > self.max_hops {
                continue;
            }
            reached += 1;
            // Flood transmissions: each node within the ball forwards to
            // its neighbours unless it sits on the boundary.
            if h < self.max_hops {
                flood_messages += g.degree(node) as u64;
            }
            let p = (self.reply_probability)(h);
            assert!(
                p > 0.0 && p <= 1.0,
                "reply probability at hop {h} must lie in (0, 1], got {p}"
            );
            if ctx.rng.random::<f64>() < p {
                replies += 1;
                estimate += 1.0 / p;
            }
        }
        flood_messages += g.degree(initiator) as u64;
        ctx.on_message(Metric::PollFloodMessages, flood_messages);
        ctx.on_message(Metric::PollReplyMessages, replies);
        PollingOutcome {
            estimate,
            replies,
            reached,
            messages: flood_messages + replies,
        }
    }
}

impl<P> std::fmt::Debug for HopLimitedPolling<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HopLimitedPolling")
            .field("max_hops", &self.max_hops)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use census_graph::generators;
    use census_stats::OnlineMoments;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn ctx_splits_flood_and_reply_costs() {
        use census_metrics::Registry;
        let g = generators::ring(30);
        let reg = Registry::new();
        let mut rng = SmallRng::seed_from_u64(40);
        let mut ctx = RunCtx::with_recorder(&g, &mut rng, &reg);
        let out = ProbabilisticPolling::new(1.0).run_with(&mut ctx, NodeId::new(0));
        assert_eq!(
            reg.counter(Metric::PollFloodMessages),
            g.degree_sum() as u64
        );
        assert_eq!(reg.counter(Metric::PollReplyMessages), 30);
        assert_eq!(reg.message_total(), out.messages);
        assert_eq!(ctx.messages_total(), out.messages);
    }

    #[test]
    fn hop_limited_ctx_reconciles_messages() {
        use census_metrics::Registry;
        let g = generators::ring(50);
        let reg = Registry::new();
        let mut rng = SmallRng::seed_from_u64(41);
        let mut ctx = RunCtx::with_recorder(&g, &mut rng, &reg);
        let out = HopLimitedPolling::new(5, |_| 1.0).run_with(&mut ctx, NodeId::new(0));
        assert_eq!(
            reg.counter(Metric::PollFloodMessages) + reg.counter(Metric::PollReplyMessages),
            out.messages
        );
        assert_eq!(reg.counter(Metric::PollReplyMessages), out.replies);
    }

    #[test]
    fn hop_limited_counts_the_ball_unbiasedly() {
        // Torus: the 2-hop ball around any node has 13 nodes (1+4+8).
        let g = generators::torus(20, 20);
        let me = g.nodes().next().expect("non-empty");
        let mut rng = SmallRng::seed_from_u64(11);
        let poll = HopLimitedPolling::new(2, |h| if h == 1 { 0.9 } else { 0.4 });
        let m: OnlineMoments = (0..4_000)
            .map(|_| poll.run_with(&mut RunCtx::new(&g, &mut rng), me).estimate)
            .collect();
        let err = (m.mean() - 13.0).abs() / m.standard_error();
        assert!(err < 4.0, "ball estimate {} vs 13", m.mean());
    }

    #[test]
    fn hop_limited_certain_replies_count_exactly() {
        let g = generators::ring(50);
        let me = g.nodes().next().expect("non-empty");
        let mut rng = SmallRng::seed_from_u64(12);
        let poll = HopLimitedPolling::new(5, |_| 1.0);
        let out = poll.run_with(&mut RunCtx::new(&g, &mut rng), me);
        assert_eq!(out.estimate, 11.0); // self + 5 on each side
        assert_eq!(out.replies, 10);
        assert_eq!(out.reached, 10);
    }

    #[test]
    fn hop_limited_messages_scale_with_ball_not_graph() {
        let g = generators::ring(10_000);
        let me = g.nodes().next().expect("non-empty");
        let mut rng = SmallRng::seed_from_u64(13);
        let out = HopLimitedPolling::new(4, |_| 0.5).run_with(&mut RunCtx::new(&g, &mut rng), me);
        assert!(out.messages < 40, "ball-local cost, got {}", out.messages);
    }

    #[test]
    #[should_panic(expected = "zero-hop poll")]
    fn zero_hops_panics() {
        let _ = HopLimitedPolling::new(0, |_| 0.5);
    }

    #[test]
    fn unbiased_over_component() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = generators::balanced(500, 10, &mut rng);
        let n = algo::component_size(&g, NodeId::new(0)) as f64;
        let poll = ProbabilisticPolling::new(0.1);
        let m: OnlineMoments = (0..2_000)
            .map(|_| {
                poll.run_with(&mut RunCtx::new(&g, &mut rng), NodeId::new(0))
                    .estimate
            })
            .collect();
        let err = (m.mean() - n).abs() / m.standard_error();
        assert!(err < 4.0, "mean {} vs true {n}", m.mean());
    }

    #[test]
    fn probability_one_is_exact_count() {
        let g = generators::ring(30);
        let mut rng = SmallRng::seed_from_u64(2);
        let out =
            ProbabilisticPolling::new(1.0).run_with(&mut RunCtx::new(&g, &mut rng), NodeId::new(0));
        assert_eq!(out.estimate, 30.0);
        assert_eq!(out.replies, 30);
        assert_eq!(out.reached, 30);
    }

    #[test]
    fn cost_scales_with_edges_not_probability() {
        let g = generators::complete(40);
        let mut rng = SmallRng::seed_from_u64(3);
        let cheap = ProbabilisticPolling::new(0.01)
            .run_with(&mut RunCtx::new(&g, &mut rng), NodeId::new(0));
        // Even with almost no replies, the flood still pays ~2|E|.
        assert!(cheap.messages >= g.degree_sum() as u64);
    }

    #[test]
    fn only_counts_initiators_component() {
        let mut g = generators::complete(10);
        let others = g.add_nodes(8);
        for i in 0..7 {
            g.add_edge(others[i], others[i + 1]).expect("fresh edge");
        }
        let mut rng = SmallRng::seed_from_u64(4);
        let out =
            ProbabilisticPolling::new(1.0).run_with(&mut RunCtx::new(&g, &mut rng), others[0]);
        assert_eq!(out.estimate, 8.0);
    }

    #[test]
    fn ack_implosion_grows_linearly() {
        let mut rng = SmallRng::seed_from_u64(5);
        let small = ProbabilisticPolling::new(0.5).run_with(
            &mut RunCtx::new(&generators::complete(20), &mut rng),
            NodeId::new(0),
        );
        let large = ProbabilisticPolling::new(0.5).run_with(
            &mut RunCtx::new(&generators::complete(200), &mut rng),
            NodeId::new(0),
        );
        assert!(large.replies > 4 * small.replies);
    }

    #[test]
    #[should_panic(expected = "lie in (0, 1]")]
    fn zero_probability_panics() {
        let _ = ProbabilisticPolling::new(0.0);
    }
}

//! Gossip-based averaging baseline (Jelasity & Montresor \[20\]).

use census_graph::spectral::DenseIndex;
use census_graph::Graph;
use census_metrics::{Metric, Recorder, RunCtx};
use rand::Rng;

/// The epidemic averaging size estimator of Jelasity & Montresor, §2.2.
///
/// One distinguished node starts with counter 1, all others with 0. In
/// each round, every node contacts a uniformly random neighbour and the
/// pair resets both counters to their mean. The counters converge to
/// `1/N`, so every node's reciprocal counter converges to the system
/// size. Unlike the paper's two methods the estimate is shared by *all*
/// nodes, amortising the cost; the flip side is `Θ(N)` messages per
/// round and sensitivity to churn (mass is conserved only in stable
/// networks). The related work quotes `O(N·log N·log(ε⁻¹)·...)`-type
/// total costs on expanders.
///
/// # Examples
///
/// ```
/// use census_core::gossip::GossipAveraging;
/// use census_graph::generators;
/// use census_metrics::RunCtx;
/// use rand::SeedableRng;
/// use rand::rngs::SmallRng;
///
/// let g = generators::complete(64);
/// let mut rng = SmallRng::seed_from_u64(5);
/// let mut ctx = RunCtx::new(&g, &mut rng);
/// let outcome = GossipAveraging::new(40).run_with(&mut ctx);
/// let at_node_0 = outcome.estimates[0];
/// assert!((at_node_0 / 64.0 - 1.0).abs() < 0.2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GossipAveraging {
    rounds: u32,
}

/// Result of a gossip averaging execution.
#[derive(Debug, Clone, PartialEq)]
pub struct GossipOutcome {
    /// Per-node size estimates (reciprocal counters), in
    /// [`DenseIndex`] order.
    pub estimates: Vec<f64>,
    /// Total messages exchanged (two per pairwise contact: request and
    /// reply).
    pub messages: u64,
    /// Rounds executed.
    pub rounds: u32,
}

impl GossipOutcome {
    /// Maximum relative disagreement between node estimates — a
    /// convergence diagnostic (0 means all nodes agree exactly).
    #[must_use]
    pub fn disagreement(&self) -> f64 {
        let min = self.estimates.iter().copied().fold(f64::INFINITY, f64::min);
        let max = self.estimates.iter().copied().fold(0.0f64, f64::max);
        if min == 0.0 {
            f64::INFINITY
        } else {
            max / min - 1.0
        }
    }
}

impl GossipAveraging {
    /// Creates the protocol running for `rounds` synchronous rounds.
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is zero.
    #[must_use]
    pub fn new(rounds: u32) -> Self {
        assert!(rounds > 0, "gossip needs at least one round");
        Self { rounds }
    }

    /// The configured round count.
    #[must_use]
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// Executes the protocol on the whole overlay and returns every
    /// node's estimate, charging the pairwise exchanges to
    /// [`Metric::GossipMessages`].
    ///
    /// Mass conservation (`Σ counters = 1`) is an invariant of the
    /// pairwise averaging and is `debug_assert`ed each round.
    ///
    /// # Panics
    ///
    /// Panics if the graph is empty.
    pub fn run_with<R, Rec>(&self, ctx: &mut RunCtx<'_, Graph, R, Rec>) -> GossipOutcome
    where
        R: Rng,
        Rec: Recorder + ?Sized,
    {
        let g = ctx.topology;
        let idx = DenseIndex::new(g);
        let n = idx.len();
        assert!(n > 0, "gossip on an empty overlay");
        let mut counters = vec![0.0f64; n];
        counters[0] = 1.0;
        let mut messages = 0u64;
        for _ in 0..self.rounds {
            for d in 0..n {
                let v = idx.node(d);
                if let Some(peer) = g.random_neighbor(v, &mut *ctx.rng) {
                    let p = idx.dense(peer);
                    let mean = 0.5 * (counters[d] + counters[p]);
                    counters[d] = mean;
                    counters[p] = mean;
                    messages += 2;
                }
            }
            debug_assert!(
                (counters.iter().sum::<f64>() - 1.0).abs() < 1e-9,
                "pairwise averaging conserves mass"
            );
        }
        ctx.on_message(Metric::GossipMessages, messages);
        let estimates = counters
            .iter()
            .map(|&c| if c > 0.0 { 1.0 / c } else { f64::INFINITY })
            .collect();
        GossipOutcome {
            estimates,
            messages,
            rounds: self.rounds,
        }
    }

    /// Executes the *asynchronous* variant: instead of synchronous
    /// rounds, `rounds × N` individual pairwise exchanges fire in random
    /// order (a random node contacts a random neighbour each tick) —
    /// the model of \[20\] ("nodes communicate asynchronously") and the
    /// analysis setting of Boyd et al. \[10\]. Same mass-conservation
    /// invariant, same estimate semantics, same
    /// [`Metric::GossipMessages`] accounting.
    ///
    /// # Panics
    ///
    /// Panics if the graph is empty.
    pub fn run_async_with<R, Rec>(&self, ctx: &mut RunCtx<'_, Graph, R, Rec>) -> GossipOutcome
    where
        R: Rng,
        Rec: Recorder + ?Sized,
    {
        let g = ctx.topology;
        let idx = DenseIndex::new(g);
        let n = idx.len();
        assert!(n > 0, "gossip on an empty overlay");
        let mut counters = vec![0.0f64; n];
        counters[0] = 1.0;
        let mut messages = 0u64;
        let ticks = u64::from(self.rounds) * n as u64;
        for _ in 0..ticks {
            let v = g.random_node(&mut *ctx.rng).expect("overlay is non-empty");
            if let Some(peer) = g.random_neighbor(v, &mut *ctx.rng) {
                let (dv, dp) = (idx.dense(v), idx.dense(peer));
                let mean = 0.5 * (counters[dv] + counters[dp]);
                counters[dv] = mean;
                counters[dp] = mean;
                messages += 2;
            }
        }
        ctx.on_message(Metric::GossipMessages, messages);
        let estimates = counters
            .iter()
            .map(|&c| if c > 0.0 { 1.0 / c } else { f64::INFINITY })
            .collect();
        GossipOutcome {
            estimates,
            messages,
            rounds: self.rounds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use census_graph::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn ctx_records_the_exchange_cost() {
        use census_metrics::Registry;
        let g = generators::complete(50);
        let reg = Registry::new();
        let mut rng = SmallRng::seed_from_u64(8);
        let mut ctx = RunCtx::with_recorder(&g, &mut rng, &reg);
        let outcome = GossipAveraging::new(10).run_with(&mut ctx);
        assert_eq!(reg.counter(Metric::GossipMessages), outcome.messages);
        assert_eq!(reg.message_total(), 2 * 50 * 10);
        assert_eq!(ctx.messages_total(), outcome.messages);
    }

    #[test]
    fn converges_on_expander() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = generators::balanced(256, 10, &mut rng);
        let outcome = GossipAveraging::new(60).run_with(&mut RunCtx::new(&g, &mut rng));
        let n = g.num_nodes() as f64;
        for &e in &outcome.estimates {
            assert!((e / n - 1.0).abs() < 0.05, "estimate {e} vs {n}");
        }
        assert!(outcome.disagreement() < 0.1);
    }

    #[test]
    fn async_variant_also_converges() {
        let mut rng = SmallRng::seed_from_u64(6);
        let g = generators::balanced(256, 10, &mut rng);
        let outcome = GossipAveraging::new(80).run_async_with(&mut RunCtx::new(&g, &mut rng));
        let n = g.num_nodes() as f64;
        let me = DenseIndex::new(&g).dense(g.nodes().next().expect("non-empty"));
        assert!(
            (outcome.estimates[me] / n - 1.0).abs() < 0.15,
            "async estimate {} vs {n}",
            outcome.estimates[me]
        );
    }

    #[test]
    fn async_conserves_mass_in_the_estimates() {
        // Sum of reciprocal estimates = sum of counters = 1 exactly.
        let mut rng = SmallRng::seed_from_u64(7);
        let g = generators::complete(40);
        let outcome = GossipAveraging::new(20).run_async_with(&mut RunCtx::new(&g, &mut rng));
        let mass: f64 = outcome.estimates.iter().map(|&e| 1.0 / e).sum();
        assert!((mass - 1.0).abs() < 1e-9, "mass {mass}");
    }

    #[test]
    fn message_cost_is_two_n_per_round() {
        let g = generators::complete(50);
        let mut rng = SmallRng::seed_from_u64(2);
        let outcome = GossipAveraging::new(10).run_with(&mut RunCtx::new(&g, &mut rng));
        assert_eq!(outcome.messages, 2 * 50 * 10);
    }

    #[test]
    fn converges_slowly_on_ring() {
        // Rings are bad expanders: far nodes still disagree wildly after
        // a few rounds, unlike the expander case above.
        let g = generators::ring(256);
        let mut rng = SmallRng::seed_from_u64(3);
        let outcome = GossipAveraging::new(20).run_with(&mut RunCtx::new(&g, &mut rng));
        assert!(
            outcome.disagreement() > 1.0,
            "ring should still disagree: {}",
            outcome.disagreement()
        );
    }

    #[test]
    fn isolated_nodes_never_learn() {
        let mut g = generators::complete(5);
        let lonely = g.add_node();
        let mut rng = SmallRng::seed_from_u64(4);
        let outcome = GossipAveraging::new(30).run_with(&mut RunCtx::new(&g, &mut rng));
        let idx = DenseIndex::new(&g);
        assert!(outcome.estimates[idx.dense(lonely)].is_infinite());
    }

    #[test]
    fn singleton_overlay() {
        let mut g = census_graph::Graph::new();
        g.add_node();
        let mut rng = SmallRng::seed_from_u64(5);
        let outcome = GossipAveraging::new(3).run_with(&mut RunCtx::new(&g, &mut rng));
        assert_eq!(outcome.estimates, vec![1.0]);
        assert_eq!(outcome.messages, 0);
    }
}

//! The §5.3.1 initiator loop: adaptive timeouts, bounded retries, and
//! loss classification for any [`SizeEstimator`].
//!
//! The paper's simulations exclude message loss, but §5.3.1 sketches how
//! a deployed initiator copes with it: declare a probe lost when it has
//! not returned within a timeout "set … to the average trip time, plus a
//! few multiples of the trip time standard deviation … estimated
//! adaptively from past trip time measurements", then retry. This module
//! implements that loop as a composable wrapper:
//!
//! - [`AdaptiveTimeout`] tracks completed trip times and recommends the
//!   `mean + k·std` step budget;
//! - [`StepBudgeted`] marks estimators that can honour such a budget;
//! - [`LossClass`] names the §5.3.1 failure modes an attempt can hit;
//! - [`Supervised`] wraps an estimator with the full initiator protocol —
//!   budgeted attempts, bounded retries with multiplicative backoff, and
//!   per-attempt metric crediting through the shared [`RunCtx`].

use std::sync::Mutex;

use census_graph::{NodeId, Topology};
use census_metrics::{Metric, Recorder, RunCtx};
use census_stats::OnlineMoments;
use census_walk::WalkError;
use rand::Rng;

use crate::{Estimate, EstimateError, SizeEstimator};

/// Adaptive initiator-side timeout from past trip times (§5.3.1: "set
/// this time-out to the average trip time, plus a few multiples of the
/// trip time standard deviation ... estimated adaptively from past trip
/// time measurements").
#[derive(Debug, Clone)]
pub struct AdaptiveTimeout {
    trips: OnlineMoments,
    multiplier: f64,
    initial: u64,
    warmup: u64,
}

impl AdaptiveTimeout {
    /// Creates the tracker; until [`Self::warmup`] trips complete (two,
    /// unless raised with [`Self::with_warmup`]), [`Self::budget`]
    /// returns `initial`. `multiplier` is the "few multiples" `k`.
    ///
    /// # Panics
    ///
    /// Panics if `multiplier` is not positive or `initial` is zero.
    #[must_use]
    pub fn new(initial: u64, multiplier: f64) -> Self {
        assert!(initial > 0, "initial budget must be positive");
        assert!(multiplier > 0.0, "multiplier must be positive");
        Self {
            trips: OnlineMoments::new(),
            multiplier,
            initial,
            warmup: 2,
        }
    }

    /// Requires `min_observations` completed trips before the learned
    /// budget replaces the initial one. Two observations are the bare
    /// minimum for a standard deviation, but a budget learned from so few
    /// trips can collapse (two similar quick trips give `std ≈ 0`, and
    /// every longer walk then times out); supervision loops should warm
    /// up over a few tens of trips.
    ///
    /// # Panics
    ///
    /// Panics if `min_observations < 2` (a standard deviation needs two
    /// points).
    #[must_use]
    pub fn with_warmup(mut self, min_observations: u64) -> Self {
        assert!(min_observations >= 2, "warmup needs at least two trips");
        self.warmup = min_observations;
        self
    }

    /// Records a completed trip's hop count.
    pub fn record(&mut self, hops: u64) {
        self.trips.push(hops as f64);
    }

    /// The recommended step budget: `mean + k·std` over recorded trips,
    /// or the initial budget before enough history exists.
    #[must_use]
    pub fn budget(&self) -> u64 {
        if self.trips.count() < self.warmup {
            return self.initial;
        }
        let b = self.trips.mean() + self.multiplier * self.trips.sample_std();
        b.ceil().max(1.0) as u64
    }

    /// Number of recorded trips.
    #[must_use]
    pub fn observations(&self) -> u64 {
        self.trips.count()
    }

    /// Observations required before the learned budget takes over.
    #[must_use]
    pub fn warmup(&self) -> u64 {
        self.warmup
    }
}

/// An estimator whose walks can be bounded by an explicit step budget —
/// the knob the §5.3.1 initiator timeout turns.
///
/// Implementations return a reconfigured copy; estimators whose cost is
/// already intrinsically bounded (the timer-driven CTRW samplers behind
/// Sample & Collide) implement this as the identity and document why.
pub trait StepBudgeted: SizeEstimator {
    /// A copy of this estimator that declares any single walk lost after
    /// `max_steps` hops.
    #[must_use]
    fn with_step_budget(&self, max_steps: u64) -> Self;
}

/// The §5.3.1 failure taxonomy of one estimation attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LossClass {
    /// The step budget expired before the probe returned — the initiator
    /// cannot distinguish a lost message from a slow tour, so this class
    /// covers both (the paper's "conservative estimate of the time-out").
    Timeout,
    /// The walk was stranded mid-flight: the current holder found no
    /// deliverable neighbour (a dropped message or an isolated peer).
    Stuck,
    /// The walk stepped onto a peer that has departed the overlay — the
    /// churn failure the paper's simulations excluded.
    ChurnBroken,
    /// The estimator's parameters cannot produce an estimate here at all;
    /// retrying the same attempt cannot help.
    Degenerate,
}

impl LossClass {
    /// Classifies an estimation error into the §5.3.1 taxonomy.
    #[must_use]
    pub fn of(error: &EstimateError) -> Self {
        match error {
            EstimateError::Walk(WalkError::Timeout(_)) => LossClass::Timeout,
            EstimateError::Walk(WalkError::Stuck(_)) => LossClass::Stuck,
            EstimateError::Walk(WalkError::Lost(_)) => LossClass::ChurnBroken,
            // An unsound sampler is a configuration defect, like a
            // degenerate parameterisation: retrying cannot fix it.
            EstimateError::Degenerate(_) | EstimateError::UnsoundSampler(_) => {
                LossClass::Degenerate
            }
        }
    }
}

/// Attempt accounting of one [`Supervised`] estimator, by outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SupervisorStats {
    /// Estimation attempts started.
    pub attempts: u64,
    /// Attempts that returned an estimate.
    pub completed: u64,
    /// Attempts lost to an expired step budget.
    pub timeouts: u64,
    /// Attempts stranded on an undeliverable hop.
    pub stuck: u64,
    /// Attempts broken by a departed peer.
    pub churn_broken: u64,
    /// Attempts that failed degenerately (never retried).
    pub degenerate: u64,
}

/// Interior state of a supervisor: the trip-time tracker plus the
/// attempt tally, updated together under one lock.
#[derive(Debug)]
struct SupervisorState {
    tracker: AdaptiveTimeout,
    stats: SupervisorStats,
}

/// The §5.3.1 initiator loop around any [`StepBudgeted`] estimator.
///
/// Each call to [`SizeEstimator::estimate_with`] makes up to
/// `1 + retries` attempts. Every attempt runs the inner estimator under
/// the [`AdaptiveTimeout`]-derived step budget, scaled by
/// `backoff^attempt` so persistent failures get progressively more
/// headroom; completed trips feed the tracker, so the budget converges on
/// the paper's `mean + k·std` rule. Failures are classified per
/// [`LossClass`]: timeouts, stuck walks and churn-broken walks are
/// retried (crediting one [`Metric::WalkRetries`] event per retry through
/// the run context — the walk engine itself credits
/// [`Metric::WalkTimeouts`]/[`Metric::ToursLost`]/
/// [`Metric::ToursCompleted`] per attempt), while degenerate failures
/// surface immediately because retrying cannot fix a parameter problem.
///
/// The wrapper is `Sync` (tracker and stats live behind a [`Mutex`]), so
/// it can be shared across replication threads — but note that a *shared*
/// tracker makes budgets depend on cross-thread interleaving; give each
/// replica its own `Supervised` when determinism matters.
#[derive(Debug)]
pub struct Supervised<E> {
    inner: E,
    retries: u32,
    backoff: f64,
    panel: u32,
    state: Mutex<SupervisorState>,
}

impl<E> Supervised<E> {
    /// Wraps `inner` with the default supervision policy: 5 retries,
    /// backoff ×2 per attempt, no outlier-rejection panel, and a
    /// `mean + 3·std` timeout learned after a 10-trip warmup (unbounded
    /// until then).
    #[must_use]
    pub fn new(inner: E) -> Self {
        Self {
            inner,
            retries: 5,
            backoff: 2.0,
            panel: 1,
            state: Mutex::new(SupervisorState {
                tracker: AdaptiveTimeout::new(u64::MAX, 3.0).with_warmup(10),
                stats: SupervisorStats::default(),
            }),
        }
    }

    /// Sets how many times a failed attempt is retried before the last
    /// error is surfaced.
    #[must_use]
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Sets the per-retry budget escalation factor (attempt `a` runs
    /// under `budget · backoff^a`).
    ///
    /// # Panics
    ///
    /// Panics if `backoff < 1.0` (shrinking budgets make every retry
    /// strictly more likely to time out).
    #[must_use]
    pub fn with_backoff(mut self, backoff: f64) -> Self {
        assert!(backoff >= 1.0, "backoff must not shrink the budget");
        self.backoff = backoff;
        self
    }

    /// Enables median-of-`panel` outlier rejection: each estimate runs
    /// `panel` independent supervised attempts and reports the one with
    /// the *median value*, summing every attempt's message bill.
    ///
    /// This is the initiator-side defence against a Byzantine minority
    /// corrupting individual runs — forged Sample & Collide collisions
    /// or a swallowed-walk survivorship skew poison single estimates,
    /// but to move the median the adversary must corrupt more than half
    /// of the panel in the *same direction*. A panel of 1 (the default)
    /// disables the rule.
    ///
    /// # Panics
    ///
    /// Panics if `panel` is even or zero — a median needs an odd count
    /// to land on an actual estimate.
    #[must_use]
    pub fn with_outlier_rejection(mut self, panel: u32) -> Self {
        assert!(panel % 2 == 1, "the panel must be odd (and non-zero)");
        self.panel = panel;
        self
    }

    /// The configured panel size (1 = no outlier rejection).
    #[must_use]
    pub fn panel(&self) -> u32 {
        self.panel
    }

    /// Replaces the timeout tracker (e.g. to choose the multiplier `k`
    /// or pre-seed it with known trip times).
    ///
    /// # Panics
    ///
    /// Panics if the supervisor lock is poisoned.
    #[must_use]
    pub fn with_timeout(self, tracker: AdaptiveTimeout) -> Self {
        self.state.lock().expect("supervisor lock").tracker = tracker;
        self
    }

    /// The wrapped estimator.
    #[must_use]
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// A snapshot of the attempt tally so far.
    ///
    /// # Panics
    ///
    /// Panics if the supervisor lock is poisoned.
    #[must_use]
    pub fn stats(&self) -> SupervisorStats {
        self.state.lock().expect("supervisor lock").stats
    }

    /// The step budget the next first attempt would run under.
    ///
    /// # Panics
    ///
    /// Panics if the supervisor lock is poisoned.
    #[must_use]
    pub fn current_budget(&self) -> u64 {
        self.state.lock().expect("supervisor lock").tracker.budget()
    }
}

/// `base · backoff^attempt`, saturating at `u64::MAX` (which estimators
/// treat as "unbounded").
fn escalated(base: u64, backoff: f64, attempt: u32) -> u64 {
    if base == u64::MAX {
        return u64::MAX;
    }
    let scaled = (base as f64 * backoff.powi(attempt as i32)).ceil();
    if scaled >= u64::MAX as f64 {
        u64::MAX
    } else {
        (scaled as u64).max(2) // the shortest possible tour is 2 hops
    }
}

impl<E: StepBudgeted> Supervised<E> {
    /// One full supervised estimate: up to `1 + retries` budgeted
    /// attempts with escalation, stats and tracker updates.
    fn estimate_once<T, R, Rec>(
        &self,
        ctx: &mut RunCtx<'_, T, R, Rec>,
        initiator: NodeId,
    ) -> Result<Estimate, EstimateError>
    where
        T: Topology + ?Sized,
        R: Rng,
        Rec: Recorder + ?Sized,
    {
        let mut last_error = None;
        for attempt in 0..=self.retries {
            let budget = {
                let state = self.state.lock().expect("supervisor lock");
                escalated(state.tracker.budget(), self.backoff, attempt)
            };
            let bounded = self.inner.with_step_budget(budget);
            let outcome = bounded.estimate_with(ctx, initiator);
            let mut state = self.state.lock().expect("supervisor lock");
            state.stats.attempts += 1;
            match outcome {
                Ok(est) => {
                    state.tracker.record(est.messages);
                    state.stats.completed += 1;
                    return Ok(est);
                }
                Err(e) => {
                    match LossClass::of(&e) {
                        LossClass::Timeout => state.stats.timeouts += 1,
                        LossClass::Stuck => state.stats.stuck += 1,
                        LossClass::ChurnBroken => state.stats.churn_broken += 1,
                        LossClass::Degenerate => {
                            state.stats.degenerate += 1;
                            return Err(e);
                        }
                    }
                    if attempt < self.retries {
                        ctx.on_event(Metric::WalkRetries, 1);
                    }
                    last_error = Some(e);
                }
            }
        }
        Err(last_error.expect("the attempt loop runs at least once"))
    }
}

impl<E: StepBudgeted> SizeEstimator for Supervised<E> {
    fn estimate_with<T, R, Rec>(
        &self,
        ctx: &mut RunCtx<'_, T, R, Rec>,
        initiator: NodeId,
    ) -> Result<Estimate, EstimateError>
    where
        T: Topology + ?Sized,
        R: Rng,
        Rec: Recorder + ?Sized,
    {
        if self.panel == 1 {
            return self.estimate_once(ctx, initiator);
        }
        // Outlier rejection: run the panel, report the median-valued
        // member. Degenerate failures abort (a parameter problem poisons
        // every member identically); other failures shrink the panel —
        // the median over the survivors is still the robust choice.
        let mut panel: Vec<Estimate> = Vec::with_capacity(self.panel as usize);
        let mut last_error = None;
        for _ in 0..self.panel {
            match self.estimate_once(ctx, initiator) {
                Ok(est) => panel.push(est),
                Err(e) => {
                    if LossClass::of(&e) == LossClass::Degenerate {
                        return Err(e);
                    }
                    last_error = Some(e);
                }
            }
        }
        if panel.is_empty() {
            return Err(last_error.expect("an empty panel saw every member fail"));
        }
        panel.sort_by(|a, b| a.value.total_cmp(&b.value));
        let median = panel[panel.len() / 2].value;
        let messages = panel.iter().map(|e| e.messages).sum();
        Ok(Estimate {
            value: median,
            messages,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RandomTour;
    use census_graph::{generators, Graph};
    use census_metrics::Registry;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn adaptive_timeout_learns_trip_scale() {
        let mut t = AdaptiveTimeout::new(1_000, 3.0);
        assert_eq!(t.budget(), 1_000);
        for hops in [10, 12, 9, 11, 10, 13, 8] {
            t.record(hops);
        }
        let b = t.budget();
        assert!(
            (10..=20).contains(&b),
            "budget {b} should be near mean+3std of ~10-hop trips"
        );
        assert_eq!(t.observations(), 7);
    }

    #[test]
    fn adaptive_timeout_warmup_delays_the_learned_budget() {
        let mut t = AdaptiveTimeout::new(1_000, 3.0).with_warmup(5);
        // Two near-identical quick trips would collapse the budget to ~2;
        // the warmup keeps the initial budget until enough history exists.
        t.record(2);
        t.record(2);
        assert_eq!(t.budget(), 1_000, "still warming up");
        for hops in [40, 45, 38] {
            t.record(hops);
        }
        assert!(t.budget() < 1_000, "learned budget took over");
        assert_eq!(t.warmup(), 5);
    }

    #[test]
    fn loss_classes_cover_every_error() {
        use census_graph::NodeId;
        let n = NodeId::new(0);
        assert_eq!(
            LossClass::of(&EstimateError::Walk(WalkError::Timeout(9))),
            LossClass::Timeout
        );
        assert_eq!(
            LossClass::of(&EstimateError::Walk(WalkError::Stuck(n))),
            LossClass::Stuck
        );
        assert_eq!(
            LossClass::of(&EstimateError::Walk(WalkError::Lost(n))),
            LossClass::ChurnBroken
        );
        assert_eq!(
            LossClass::of(&EstimateError::Degenerate("x".into())),
            LossClass::Degenerate
        );
        assert_eq!(
            LossClass::of(&EstimateError::UnsoundSampler(
                census_sampling::quality::SamplerFlaw::DeterministicSojourns
            )),
            LossClass::Degenerate
        );
    }

    #[test]
    fn supervised_estimates_match_the_plain_estimator_when_nothing_fails() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = generators::balanced(500, 10, &mut rng);
        let initiator = g.nodes().next().expect("non-empty");
        let supervised = Supervised::new(RandomTour::new());
        let mut a = SmallRng::seed_from_u64(2);
        let mut b = SmallRng::seed_from_u64(2);
        for _ in 0..50 {
            let plain = RandomTour::new()
                .estimate_with(&mut RunCtx::new(&g, &mut a), initiator)
                .expect("connected");
            let sup = supervised
                .estimate_with(&mut RunCtx::new(&g, &mut b), initiator)
                .expect("connected");
            assert_eq!(plain, sup, "supervision must not perturb clean walks");
        }
        let stats = supervised.stats();
        assert_eq!(stats.attempts, 50);
        assert_eq!(stats.completed, 50);
        assert_eq!(stats.timeouts + stats.stuck + stats.churn_broken, 0);
    }

    #[test]
    fn supervised_learns_a_budget_and_keeps_estimating() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = generators::balanced(400, 10, &mut rng);
        let initiator = g.nodes().next().expect("non-empty");
        let supervised = Supervised::new(RandomTour::new());
        assert_eq!(supervised.current_budget(), u64::MAX);
        for _ in 0..40 {
            let _ = supervised
                .estimate_with(&mut RunCtx::new(&g, &mut rng), initiator)
                .expect("connected");
        }
        let budget = supervised.current_budget();
        assert!(
            budget < u64::MAX && budget > 2,
            "budget {budget} should be learned and sane"
        );
    }

    #[test]
    fn outlier_rejection_reports_the_median_and_bills_the_whole_panel() {
        let mut rng = SmallRng::seed_from_u64(6);
        let g = generators::balanced(300, 10, &mut rng);
        let initiator = g.nodes().next().expect("non-empty");
        let paneled = Supervised::new(RandomTour::new()).with_outlier_rejection(3);
        let mut a = SmallRng::seed_from_u64(7);
        let est = paneled
            .estimate_with(&mut RunCtx::new(&g, &mut a), initiator)
            .expect("connected");
        // The same RNG stream drives three plain supervised estimates,
        // so the panel's members are exactly these three runs.
        let plain = Supervised::new(RandomTour::new());
        let mut b = SmallRng::seed_from_u64(7);
        let mut members: Vec<Estimate> = (0..3)
            .map(|_| {
                plain
                    .estimate_with(&mut RunCtx::new(&g, &mut b), initiator)
                    .expect("connected")
            })
            .collect();
        let billed: u64 = members.iter().map(|e| e.messages).sum();
        members.sort_by(|x, y| x.value.total_cmp(&y.value));
        assert_eq!(
            est.value, members[1].value,
            "the panel must report the median member"
        );
        assert_eq!(est.messages, billed, "every member's bill is charged");
        assert_eq!(paneled.stats().attempts, 3);
        assert_eq!(paneled.panel(), 3);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_panels_are_rejected() {
        let _ = Supervised::new(RandomTour::new()).with_outlier_rejection(2);
    }

    #[test]
    fn supervised_gives_up_after_bounded_retries_and_credits_the_context() {
        // An isolated initiator fails every attempt with Stuck.
        let mut g = Graph::new();
        let lone = g.add_node();
        let supervised = Supervised::new(RandomTour::new()).with_retries(3);
        let reg = Registry::new();
        let mut rng = SmallRng::seed_from_u64(4);
        let mut ctx = RunCtx::with_recorder(&g, &mut rng, &reg);
        let err = supervised
            .estimate_with(&mut ctx, lone)
            .expect_err("isolated initiator cannot be estimated");
        assert_eq!(LossClass::of(&err), LossClass::Stuck);
        let stats = supervised.stats();
        assert_eq!(stats.attempts, 4, "1 attempt + 3 retries");
        assert_eq!(stats.stuck, 4);
        assert_eq!(reg.counter(Metric::WalkRetries), 3);
        assert_eq!(
            reg.counter(Metric::ToursLost),
            4,
            "walk engine credits each attempt"
        );
    }

    #[test]
    fn supervised_timeouts_escalate_until_a_tour_fits() {
        // Pre-seed the tracker with absurdly short trips so the first
        // budget (mean + k·std ≈ 2) times out on a ring, then backoff
        // doubles it until a tour completes.
        let g = generators::ring(16);
        let initiator = g.nodes().next().expect("non-empty");
        let mut tracker = AdaptiveTimeout::new(1, 1.0);
        for _ in 0..10 {
            tracker.record(2);
        }
        let supervised = Supervised::new(RandomTour::new())
            .with_timeout(tracker)
            .with_retries(12)
            .with_backoff(2.0);
        let mut rng = SmallRng::seed_from_u64(5);
        // A 2-step budget still fits the occasional immediate-return tour,
        // so drive several walks: across 10, some must exceed it.
        for _ in 0..10 {
            let est = supervised
                .estimate_with(&mut RunCtx::new(&g, &mut rng), initiator)
                .expect("escalation eventually fits a tour");
            assert!(est.value > 0.0);
        }
        let stats = supervised.stats();
        assert!(stats.timeouts > 0, "the tiny budget must time out first");
        assert_eq!(stats.completed, 10);
        assert_eq!(
            stats.attempts,
            stats.completed + stats.timeouts,
            "every attempt is exactly one outcome"
        );
    }

    #[test]
    fn degenerate_failures_are_not_retried() {
        // A degenerate failure is a parameter problem — retrying the same
        // attempt cannot help, so the supervisor must surface it at once.
        #[derive(Clone, Copy)]
        struct AlwaysDegenerate;
        impl SizeEstimator for AlwaysDegenerate {
            fn estimate_with<T, R, Rec>(
                &self,
                _ctx: &mut RunCtx<'_, T, R, Rec>,
                _initiator: census_graph::NodeId,
            ) -> Result<Estimate, EstimateError>
            where
                T: Topology + ?Sized,
                R: Rng,
                Rec: Recorder + ?Sized,
            {
                Err(EstimateError::Degenerate("unusable parameters".into()))
            }
        }
        impl StepBudgeted for AlwaysDegenerate {
            fn with_step_budget(&self, _max_steps: u64) -> Self {
                *self
            }
        }
        let g = generators::complete(3);
        let initiator = g.nodes().next().expect("non-empty");
        let supervised = Supervised::new(AlwaysDegenerate).with_retries(5);
        let mut rng = SmallRng::seed_from_u64(6);
        let err = supervised
            .estimate_with(&mut RunCtx::new(&g, &mut rng), initiator)
            .expect_err("always degenerate");
        assert_eq!(LossClass::of(&err), LossClass::Degenerate);
        let stats = supervised.stats();
        assert_eq!(stats.attempts, 1, "no retry on Degenerate");
        assert_eq!(stats.degenerate, 1);
    }

    #[test]
    fn escalation_saturates_without_overflow() {
        assert_eq!(escalated(u64::MAX, 2.0, 5), u64::MAX);
        assert_eq!(escalated(u64::MAX - 1, 8.0, 40), u64::MAX);
        assert_eq!(escalated(100, 2.0, 3), 800);
        assert_eq!(escalated(1, 1.0, 0), 2, "floor at the shortest tour");
    }
}

//! Closed-form accuracy and cost laws from the paper's analysis.
//!
//! Each function here encodes one formula from §3–§4; the test-suites in
//! `random_tour` and `sample_collide` verify the
//! simulated estimators against them, and the benchmark harness prints
//! them next to measured values.

/// Proposition 2 variance bounds for one Random Tour size estimate on an
/// `n`-node graph with average degree `avg_degree` and Laplacian spectral
/// gap `lambda2`:
///
/// ```text
/// N²(1 − 1/N)² − N  ≤  Var(X̂)  ≤  N²·(1 + 2·d̄/λ₂)
/// ```
///
/// The upper bound shows the relative standard deviation of a single
/// tour is `O(√(d̄/λ₂))` — order one on expanders, which is why the
/// paper averages hundreds of tours.
///
/// # Panics
///
/// Panics if `n < 2`, or `lambda2`/`avg_degree` are not positive.
#[must_use]
pub fn rt_variance_bounds(n: f64, avg_degree: f64, lambda2: f64) -> (f64, f64) {
    assert!(n >= 2.0, "variance bounds need n >= 2");
    assert!(avg_degree > 0.0, "average degree must be positive");
    assert!(lambda2 > 0.0, "spectral gap must be positive");
    let lo = (n * n * (1.0 - 1.0 / n).powi(2) - n).max(0.0);
    let hi = n * n * (1.0 + 2.0 * avg_degree / lambda2);
    (lo, hi)
}

/// Number of Random Tours to average so that, by Chebyshev (§3.5), the
/// relative error exceeds `epsilon` with probability at most `delta`.
///
/// Uses the Prop. 2 upper bound on the single-tour relative variance.
///
/// # Panics
///
/// Panics if any argument is not positive or `delta >= 1`.
#[must_use]
pub fn rt_runs_for_accuracy(avg_degree: f64, lambda2: f64, epsilon: f64, delta: f64) -> u64 {
    assert!(
        avg_degree > 0.0 && lambda2 > 0.0,
        "graph constants must be positive"
    );
    assert!(epsilon > 0.0, "target error must be positive");
    assert!(delta > 0.0 && delta < 1.0, "confidence must lie in (0, 1)");
    let rel_var = 1.0 + 2.0 * avg_degree / lambda2;
    (rel_var / (epsilon * epsilon * delta)).ceil() as u64
}

/// Corollary 1: the limiting relative mean squared error of the Sample &
/// Collide ML estimate, `1/l`.
///
/// Derivation: by Proposition 3, `C_l/√N ⇒ √(2Γ_l)` with `Γ_l` a sum of
/// `l` unit exponentials, so `N̂/N = C_l²/(2lN) ⇒ Γ_l/l`, whose variance
/// is `1/l`. The paper's Table 1 confirms it empirically (variance 0.1 at
/// l = 10, 0.01 at l = 100), as does its "relative standard deviation of
/// 10%" remark for l = 100 in §5.3.
///
/// # Panics
///
/// Panics if `l` is zero.
#[must_use]
pub fn sc_relative_mse(l: u32) -> f64 {
    assert!(l > 0, "l must be positive");
    1.0 / f64::from(l)
}

/// Ratio `Γ(l + ½) / Γ(l)`, computed by the recurrence
/// `r(1) = √π / 2`, `r(l+1) = r(l) · (l + ½)/l`.
fn gamma_half_ratio(l: u32) -> f64 {
    let mut r = std::f64::consts::PI.sqrt() / 2.0;
    for i in 1..l {
        let i = f64::from(i);
        r *= (i + 0.5) / i;
    }
    r
}

/// Proposition 3's asymptotic mean of the `l`-th collision time:
/// `E[C_l] → √(2N) · Γ(l + ½)/Γ(l)` (the mean of `√(2N·Gamma(l, 1))`).
///
/// # Panics
///
/// Panics if `n` is not positive or `l` is zero.
#[must_use]
pub fn expected_collision_time(n: f64, l: u32) -> f64 {
    assert!(n > 0.0, "system size must be positive");
    assert!(l > 0, "l must be positive");
    (2.0 * n).sqrt() * gamma_half_ratio(l)
}

/// Expected message cost of one Sample & Collide run (§4.3):
/// `E[C_l] · T · d̄` — each of the `E[C_l]` samples walks for `T·d̄` hops
/// in expectation.
///
/// # Panics
///
/// Panics if any argument is not positive.
#[must_use]
pub fn sc_expected_messages(n: f64, l: u32, timer: f64, avg_degree: f64) -> f64 {
    assert!(timer > 0.0, "timer must be positive");
    assert!(avg_degree > 0.0, "average degree must be positive");
    expected_collision_time(n, l) * timer * avg_degree
}

/// Expected message cost of enough Random Tours to match Sample &
/// Collide's `1/l` relative variance (§4.3's cost comparison): each
/// tour costs `≈ d̄·N / d_i` messages (we take `d_i = d̄`, i.e. `N`
/// messages per tour from a typical initiator, times the degree-sum
/// correction), and `k = rel_var · 2l` tours are needed.
///
/// # Panics
///
/// Panics if any argument is not positive.
#[must_use]
pub fn rt_messages_to_match_sc(n: f64, l: u32, avg_degree: f64, lambda2: f64) -> f64 {
    assert!(n > 0.0, "system size must be positive");
    assert!(l > 0, "l must be positive");
    assert!(
        avg_degree > 0.0 && lambda2 > 0.0,
        "graph constants must be positive"
    );
    let rel_var = 1.0 + 2.0 * avg_degree / lambda2;
    let runs = rel_var * f64::from(l);
    runs * n
}

/// Lemma 1's total-variation bound for the CTRW sample at timer `t`:
/// `½ √N e^(−λ₂ t)`.
///
/// # Panics
///
/// Panics if `n` or `lambda2` is not positive, or `t` is negative.
#[must_use]
pub fn ctrw_tv_bound(n: f64, lambda2: f64, t: f64) -> f64 {
    assert!(n > 0.0, "system size must be positive");
    assert!(lambda2 > 0.0, "spectral gap must be positive");
    assert!(t >= 0.0, "time must be non-negative");
    0.5 * n.sqrt() * (-lambda2 * t).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rt_bounds_are_ordered_and_quadratic() {
        let (lo, hi) = rt_variance_bounds(1_000.0, 7.0, 1.0);
        assert!(lo < hi);
        assert!(lo > 900.0 * 900.0, "lower bound is ~N²");
        assert!(hi < 20.0 * 1_000.0 * 1_000.0, "upper bound is O(N²·d̄/λ₂)");
    }

    #[test]
    fn rt_runs_scale_inverse_square_epsilon() {
        let a = rt_runs_for_accuracy(7.0, 1.0, 0.2, 0.1);
        let b = rt_runs_for_accuracy(7.0, 1.0, 0.1, 0.1);
        let ratio = b as f64 / a as f64;
        assert!((ratio - 4.0).abs() < 0.1, "halving epsilon quadruples runs");
    }

    #[test]
    fn sc_mse_matches_paper_table_1() {
        assert_eq!(sc_relative_mse(1), 1.0);
        assert_eq!(sc_relative_mse(10), 0.1);
        assert_eq!(sc_relative_mse(100), 0.01);
    }

    #[test]
    fn gamma_ratio_matches_known_values() {
        // Gamma(1.5)/Gamma(1) = sqrt(pi)/2; Gamma(2.5)/Gamma(2) = 3 sqrt(pi)/4.
        assert!((gamma_half_ratio(1) - std::f64::consts::PI.sqrt() / 2.0).abs() < 1e-12);
        assert!((gamma_half_ratio(2) - 3.0 * std::f64::consts::PI.sqrt() / 4.0).abs() < 1e-12);
        // Large-l asymptotics: Gamma(l+1/2)/Gamma(l) ~ sqrt(l).
        let r = gamma_half_ratio(10_000);
        assert!((r / 100.0 - 1.0).abs() < 0.01);
    }

    #[test]
    fn expected_collision_time_scales_as_sqrt_ln() {
        // E[C_l] ~ sqrt(2 l N) for large l.
        let e = expected_collision_time(100_000.0, 100);
        let crude = (2.0_f64 * 100.0 * 100_000.0).sqrt();
        assert!((e / crude - 1.0).abs() < 0.01, "{e} vs {crude}");
        // Birthday case: E[C_1] = sqrt(pi N / 2).
        let e1 = expected_collision_time(10_000.0, 1);
        let known = (std::f64::consts::PI * 10_000.0 / 2.0).sqrt();
        assert!((e1 - known).abs() < 1e-9);
    }

    #[test]
    fn sc_beats_rt_cost_at_scale() {
        // §4.3: the cost ratio grows with N and with l.
        let (n, l, d, gap) = (100_000.0, 100u32, 7.5, 1.0);
        let sc = sc_expected_messages(n, l, 10.0, d);
        let rt = rt_messages_to_match_sc(n, l, d, gap);
        assert!(
            rt / sc > 50.0,
            "paper reports orders of magnitude: rt {rt} vs sc {sc}"
        );
    }

    #[test]
    fn tv_bound_decays() {
        let b1 = ctrw_tv_bound(100_000.0, 2.3, 5.0);
        let b2 = ctrw_tv_bound(100_000.0, 2.3, 10.0);
        assert!(b2 < b1 * 1e-4);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_gap_panics() {
        let _ = rt_variance_bounds(10.0, 5.0, 0.0);
    }
}

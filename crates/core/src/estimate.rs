//! Estimate values and failure modes.

use std::error::Error;
use std::fmt;

use census_sampling::quality::SamplerFlaw;
use census_walk::WalkError;

/// One system-size (or aggregate) estimate with its message cost.
///
/// Cost is measured in overlay messages, the unit of the paper's Figure 5
/// and Table 1 (one message per walk hop or per protocol exchange).
/// When produced through a `RunCtx`, `messages` is derived from the
/// context's accounting and reconciles exactly with the recorder's
/// message-class counters.
#[must_use]
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Estimate {
    /// The estimated quantity (system size `N̂`, or `Σ̂ f` for aggregate
    /// queries).
    pub value: f64,
    /// Overlay messages spent producing this estimate.
    pub messages: u64,
}

impl fmt::Display for Estimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} ({} msgs)", self.value, self.messages)
    }
}

/// Why an estimation attempt failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EstimateError {
    /// The underlying random walk failed (stuck, timed out, or lost).
    Walk(WalkError),
    /// The estimator's parameters cannot produce an estimate on this
    /// overlay (e.g. Sample & Collide asked for more distinct samples
    /// than there are peers in a degenerate configuration).
    Degenerate(String),
    /// The configured sampler fails a statistical soundness audit
    /// ([`census_sampling::quality::audit_ctrw`]) and would silently
    /// produce a biased estimate — e.g. deterministic sojourn times,
    /// whose sampling law the paper's Remark 1 shows is skewed on
    /// (near-)bipartite overlays. Refusing up front replaces a wrong
    /// number with a typed error.
    UnsoundSampler(SamplerFlaw),
}

impl fmt::Display for EstimateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimateError::Walk(e) => write!(f, "walk failed: {e}"),
            EstimateError::Degenerate(msg) => write!(f, "degenerate estimation: {msg}"),
            EstimateError::UnsoundSampler(flaw) => {
                write!(f, "refusing statistically unsound sampler: {flaw}")
            }
        }
    }
}

impl Error for EstimateError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EstimateError::Walk(e) => Some(e),
            EstimateError::Degenerate(_) => None,
            EstimateError::UnsoundSampler(flaw) => Some(flaw),
        }
    }
}

impl From<SamplerFlaw> for EstimateError {
    fn from(flaw: SamplerFlaw) -> Self {
        EstimateError::UnsoundSampler(flaw)
    }
}

impl From<WalkError> for EstimateError {
    fn from(e: WalkError) -> Self {
        EstimateError::Walk(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use census_graph::NodeId;

    #[test]
    fn display_formats() {
        let e = Estimate {
            value: 1234.5,
            messages: 42,
        };
        assert_eq!(format!("{e}"), "1234.5 (42 msgs)");
    }

    #[test]
    fn estimate_serde_roundtrip() {
        let e = Estimate {
            value: 99.5,
            messages: 12,
        };
        let json = serde_json::to_string(&e).expect("serialize");
        assert_eq!(
            serde_json::from_str::<Estimate>(&json).expect("deserialize"),
            e
        );
    }

    #[test]
    fn error_conversion_and_source() {
        let err: EstimateError = WalkError::Stuck(NodeId::new(1)).into();
        assert!(matches!(err, EstimateError::Walk(_)));
        assert!(Error::source(&err).is_some());
        let deg = EstimateError::Degenerate("x".into());
        assert!(Error::source(&deg).is_none());
        assert!(format!("{deg}").contains("degenerate"));
    }

    #[test]
    fn unsound_sampler_error_carries_the_flaw() {
        let err: EstimateError = SamplerFlaw::DeterministicSojourns.into();
        assert_eq!(
            err,
            EstimateError::UnsoundSampler(SamplerFlaw::DeterministicSojourns)
        );
        assert!(Error::source(&err).is_some());
        let msg = format!("{err}");
        assert!(msg.contains("unsound"), "got: {msg}");
    }
}

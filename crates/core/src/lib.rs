//! Peer counting in overlay networks by random walk methods.
//!
//! This crate is the primary contribution of the reproduced paper
//! (Massoulié, Le Merrer, Kermarrec, Ganesh — *Peer counting and sampling
//! in overlay networks: random walk methods*, PODC 2006): two generic,
//! topology-agnostic estimators of the number of peers `N` (and, more
//! generally, of sums `Σ_j f(j)` over all peers), driven purely by local
//! neighbour knowledge.
//!
//! - [`RandomTour`] (§3): launch a discrete-time random walk from the
//!   initiator and accumulate `f(j)/d_j` at every visited node until the
//!   walk returns; multiplying the total by the initiator's degree gives
//!   an *unbiased* estimate (Proposition 1) whose variance is controlled
//!   by the overlay's spectral gap (Proposition 2). Cost per tour is the
//!   return time, `(Σ_j d_j)/d_i` in expectation — linear in `N`.
//!
//! - [`SampleCollide`] (§4): draw approximately uniform peers with the
//!   CTRW sampler and stop at the `l`-th *redundant* sample, at sample
//!   count `C_l`. `C_l` is a sufficient statistic for `N`; the maximum
//!   likelihood estimate (computed by bisection) and the asymptotic
//!   estimator `C_l²/(2l)` both achieve relative mean squared error
//!   `1/l` (Corollary 1), which is optimal (Lemma 2, Cramér–Rao).
//!   Cost scales as `√(l·N)` samples — the reason the paper recommends it
//!   for large systems.
//!
//! Baselines the paper compares against are also implemented:
//! [`birthday::InvertedBirthdayParadox`] (Bawa et al., the method §4
//! improves on), [`gossip::GossipAveraging`] (Jelasity–Montresor) and
//! [`polling::ProbabilisticPolling`].
//!
//! The [`theory`] module carries the paper's closed-form accuracy and
//! cost laws, which the test-suite verifies against simulation. The
//! [`supervisor`] module implements the §5.3.1 initiator loop —
//! [`Supervised`] wraps any [`StepBudgeted`] estimator with adaptive
//! timeouts, bounded retries and loss classification.
//!
//! Every estimator runs through a [`RunCtx`] — topology, RNG, and an
//! optional [`census_metrics::Recorder`] bundled together — so message
//! costs are accounted in exactly one place and can be observed live
//! through a [`census_metrics::Registry`]. A recorder-less run is spelled
//! `estimate_with(&mut RunCtx::new(&g, &mut rng), initiator)`: the no-op
//! recorder compiles away, so it costs nothing over a bare walk.
//!
//! # Examples
//!
//! ```
//! use census_core::{RandomTour, SampleCollide, SizeEstimator};
//! use census_graph::generators;
//! use census_metrics::RunCtx;
//! use census_sampling::CtrwSampler;
//! use rand::SeedableRng;
//! use rand::rngs::SmallRng;
//!
//! let mut rng = SmallRng::seed_from_u64(1);
//! let g = generators::balanced(2_000, 10, &mut rng);
//! let initiator = g.nodes().next().expect("non-empty");
//! let mut ctx = RunCtx::new(&g, &mut rng);
//!
//! // One Random Tour estimate (noisy but unbiased).
//! let rt = RandomTour::new().estimate_with(&mut ctx, initiator)?;
//! assert!(rt.value > 0.0);
//!
//! // One Sample & Collide estimate with l = 10 (relative std ≈ 32%).
//! let sc = SampleCollide::new(CtrwSampler::new(10.0), 10);
//! let est = sc.estimate_with(&mut ctx, initiator)?;
//! assert!((est.value / 2_000.0 - 1.0).abs() < 1.0);
//! # Ok::<(), census_core::EstimateError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod birthday;
pub mod gossip;
pub mod polling;
pub mod supervisor;
pub mod theory;

mod estimate;
mod random_tour;
mod sample_collide;

pub use estimate::{Estimate, EstimateError};
pub use random_tour::RandomTour;
pub use sample_collide::{
    asymptotic_estimate, ml_estimate, n_max, n_min, AdaptiveSampleCollide, AdaptiveStep,
    CollisionReport, PointEstimator, SampleCollide,
};
pub use supervisor::{AdaptiveTimeout, LossClass, StepBudgeted, Supervised, SupervisorStats};

use census_graph::{NodeId, Topology};
use rand::Rng;

pub use census_metrics::{NoopRecorder, Recorder, RunCtx};

/// An initiator-launched system-size estimator.
///
/// Implemented by [`RandomTour`], [`SampleCollide`] and
/// [`birthday::InvertedBirthdayParadox`] — the protocols a single peer can
/// run by injecting messages into the overlay. (The gossip and polling
/// baselines are whole-system protocols and expose their own entry
/// points.)
pub trait SizeEstimator {
    /// Produces one estimate of the number of peers reachable from
    /// `initiator`, with its message cost, charging every overlay message
    /// and protocol event to the context's recorder.
    ///
    /// The returned [`Estimate::messages`] is derived from the context's
    /// message accounting, so it always reconciles exactly with the
    /// recorder's message-class counters.
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError`] if the underlying walks cannot complete
    /// (isolated initiator, timeout under the loss model).
    fn estimate_with<T, R, Rec>(
        &self,
        ctx: &mut RunCtx<'_, T, R, Rec>,
        initiator: NodeId,
    ) -> Result<Estimate, EstimateError>
    where
        T: Topology + ?Sized,
        R: Rng,
        Rec: Recorder + ?Sized;
}

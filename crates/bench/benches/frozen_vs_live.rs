//! Frozen-CSR vs live-graph walk throughput.
//!
//! The walk engines are generic over [`census_graph::Topology`], so the
//! same code path runs over the pointer-rich [`census_graph::Graph`]
//! (one `Vec` per adjacency list) and the flat CSR
//! [`census_graph::FrozenView`] (`offsets` + one `neighbors` array).
//! These benchmarks quantify what the snapshot buys at paper scale
//! (N = 100,000): identical walk semantics, contiguous memory.
//!
//! Run with `cargo bench -p census-bench --bench frozen_vs_live`.

use census_core::{RandomTour, SizeEstimator};
use census_graph::{generators, Graph};
use census_metrics::RunCtx;
use census_walk::discrete::walk_fixed_steps;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const PAPER_N: usize = 100_000;

fn balanced(n: usize, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    generators::balanced(n, 10, &mut rng)
}

/// Raw hop throughput: a fixed-length degree-biased walk, the common
/// inner loop of every estimator. `Throughput::Elements` makes Criterion
/// report hops/second directly.
fn bench_hop_throughput(c: &mut Criterion) {
    let hops = 100_000u64;
    let g = balanced(PAPER_N, 1);
    let frozen = g.freeze();
    let start = g.nodes().next().expect("non-empty");

    let mut group = c.benchmark_group("hop_throughput_n100k");
    group.sample_size(10);
    group.throughput(Throughput::Elements(hops));
    group.bench_with_input(BenchmarkId::new("live_graph", hops), &hops, |b, &hops| {
        let mut rng = SmallRng::seed_from_u64(2);
        b.iter(|| walk_fixed_steps(&g, start, hops, &mut rng).expect("connected"));
    });
    group.bench_with_input(BenchmarkId::new("frozen_csr", hops), &hops, |b, &hops| {
        let mut rng = SmallRng::seed_from_u64(2);
        b.iter(|| walk_fixed_steps(&frozen, start, hops, &mut rng).expect("connected"));
    });
    group.finish();
}

/// End-to-end: one Random Tour estimate (expected ≈ Σd/d_i hops) on each
/// representation, plus the cost of taking the snapshot itself — the
/// number that decides when re-freezing under churn pays off.
fn bench_tour_and_freeze(c: &mut Criterion) {
    let g = balanced(PAPER_N, 3);
    let frozen = g.freeze();
    let probe = g.nodes().next().expect("non-empty");
    let rt = RandomTour::new();

    let mut group = c.benchmark_group("random_tour_n100k");
    group.sample_size(10);
    group.bench_function("live_graph", |b| {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut ctx = RunCtx::new(&g, &mut rng);
        b.iter(|| rt.estimate_with(&mut ctx, probe).expect("connected").value);
    });
    group.bench_function("frozen_csr", |b| {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut ctx = RunCtx::new(&frozen, &mut rng);
        b.iter(|| rt.estimate_with(&mut ctx, probe).expect("connected").value);
    });
    group.bench_function("freeze_cost", |b| {
        b.iter(|| g.freeze().num_edges());
    });
    group.finish();
}

criterion_group!(benches, bench_hop_throughput, bench_tour_and_freeze);
criterion_main!(benches);

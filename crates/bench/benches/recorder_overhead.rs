//! Overhead of cost recording on the walk hot path.
//!
//! The observability layer promises a zero-cost default: `RunCtx`'s
//! no-op recorder is an empty inlined type, so `estimate_with` under
//! `NoopRecorder` must compile to the same inner loop as the historical
//! recorder-free API. With a live [`census_metrics::Registry`] attached,
//! every hop adds one relaxed atomic `fetch_add`; the acceptance budget
//! is ≤ 5% on paper-scale tours.
//!
//! Run with `cargo bench -p census-bench --bench recorder_overhead`.

use census_core::{RandomTour, SizeEstimator};
use census_graph::{generators, Graph};
use census_metrics::{Registry, RunCtx};
use census_sampling::{CtrwSampler, Sampler};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const PAPER_N: usize = 100_000;

fn balanced(n: usize, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    generators::balanced(n, 10, &mut rng)
}

/// One Random Tour estimate (≈ Σd/d_i ≈ N hops at paper scale) with the
/// compile-away no-op recorder vs a live atomic registry.
fn bench_tour_recording(c: &mut Criterion) {
    let g = balanced(PAPER_N, 1);
    let frozen = g.freeze();
    let probe = g.nodes().next().expect("non-empty");
    let rt = RandomTour::new();

    let mut group = c.benchmark_group("recorder_overhead_tour_n100k");
    group.sample_size(10);
    group.bench_function("noop_recorder", |b| {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut ctx = RunCtx::new(&frozen, &mut rng);
        b.iter(|| rt.estimate_with(&mut ctx, probe).expect("connected").value);
    });
    group.bench_function("registry_recorder", |b| {
        let reg = Registry::new();
        let mut rng = SmallRng::seed_from_u64(2);
        let mut ctx = RunCtx::with_recorder(&frozen, &mut rng, &reg);
        b.iter(|| rt.estimate_with(&mut ctx, probe).expect("connected").value);
    });
    group.finish();
}

/// One CTRW sample (cost ≈ T·d̄ hops plus the sojourn draws) under both
/// recorders — the sampler path adds histogram observations on top of
/// the counters.
fn bench_sample_recording(c: &mut Criterion) {
    let g = balanced(PAPER_N, 3);
    let frozen = g.freeze();
    let probe = g.nodes().next().expect("non-empty");
    let ctrw = CtrwSampler::new(10.0);

    let mut group = c.benchmark_group("recorder_overhead_ctrw_n100k");
    group.bench_function("noop_recorder", |b| {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut ctx = RunCtx::new(&frozen, &mut rng);
        b.iter(|| ctrw.sample_ctx(&mut ctx, probe).expect("connected").node);
    });
    group.bench_function("registry_recorder", |b| {
        let reg = Registry::new();
        let mut rng = SmallRng::seed_from_u64(4);
        let mut ctx = RunCtx::with_recorder(&frozen, &mut rng, &reg);
        b.iter(|| ctrw.sample_ctx(&mut ctx, probe).expect("connected").node);
    });
    group.finish();
}

criterion_group!(benches, bench_tour_recording, bench_sample_recording);
criterion_main!(benches);

//! Criterion benchmarks for the design-choice ablations of DESIGN.md.
//!
//! Wall-clock proxies for the message-cost claims: S&C vs the inverted
//! birthday paradox (the §4.3 √l claim), expansion's effect on tour
//! length (§3.4), and each figure pipeline end-to-end at reduced scale
//! (`bench_fig1_random_tour`, `bench_fig3_sample_collide`,
//! `bench_table1` of the DESIGN.md experiment index).

use census_bench::{figures, Params};
use census_core::birthday::InvertedBirthdayParadox;
use census_core::{RandomTour, SampleCollide, SizeEstimator};
use census_graph::generators;
use census_metrics::{Registry, RunCtx};
use census_sampling::CtrwSampler;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn tiny_params() -> Params {
    let mut p = Params::scaled(0.01);
    p.n = 800;
    p.rt_runs = 300;
    p.sc_runs = 40;
    p.rt_window = 50;
    p
}

/// §4.3: same target variance, S&C in one run vs l averaged birthday
/// runs — S&C should be ~√(πl)/2 faster.
fn bench_sc_vs_ibp(c: &mut Criterion) {
    let mut group = c.benchmark_group("sc_vs_ibp");
    group.sample_size(10);
    let mut rng = SmallRng::seed_from_u64(1);
    let g = generators::balanced(4_000, 10, &mut rng);
    let probe = g.nodes().next().expect("non-empty");
    for l in [4u32, 16] {
        let sc = SampleCollide::new(CtrwSampler::new(10.0), l);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut ctx = RunCtx::new(&g, &mut rng);
        group.bench_with_input(BenchmarkId::new("sample_collide", l), &l, |b, _| {
            b.iter(|| sc.estimate_with(&mut ctx, probe).expect("connected").value)
        });
        let ibp = InvertedBirthdayParadox::new(CtrwSampler::new(10.0), l);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut ctx = RunCtx::new(&g, &mut rng);
        group.bench_with_input(BenchmarkId::new("birthday_paradox", l), &l, |b, _| {
            b.iter(|| ibp.estimate_with(&mut ctx, probe).expect("connected").value)
        });
    }
    group.finish();
}

/// §3.4: tour cost is topology-independent in expectation (Σd/d_i), but
/// its *variance* explodes on poor expanders — visible as wildly uneven
/// iteration times on the ring.
fn bench_expansion(c: &mut Criterion) {
    let mut group = c.benchmark_group("expansion_tour");
    group.sample_size(20);
    let n = 1_024usize;
    let mut rng = SmallRng::seed_from_u64(4);
    let topologies = vec![
        ("balanced", generators::balanced(n, 10, &mut rng)),
        ("hypercube", generators::hypercube(10)),
        ("ring", generators::ring(n)),
    ];
    for (name, g) in &topologies {
        let probe = g.nodes().next().expect("non-empty");
        let rt = RandomTour::new();
        let mut rng = SmallRng::seed_from_u64(5);
        let mut ctx = RunCtx::new(g, &mut rng);
        group.bench_function(BenchmarkId::new("tour", *name), |b| {
            b.iter(|| rt.estimate_with(&mut ctx, probe).expect("connected").value)
        });
    }
    group.finish();
}

/// End-to-end figure pipelines at reduced scale — the DESIGN.md bench
/// targets for fig1, fig3 and table1.
fn bench_figures(c: &mut Criterion) {
    let p = tiny_params();
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("bench_fig1_random_tour", |b| {
        b.iter(|| figures::fig1(&p, &Registry::new()).table.len())
    });
    group.bench_function("bench_fig3_sample_collide", |b| {
        b.iter(|| figures::fig3(&p, &Registry::new()).table.len())
    });
    group.bench_function("bench_table1", |b| {
        b.iter(|| figures::table1(&p, &Registry::new()).table.len())
    });
    group.finish();
}

criterion_group!(benches, bench_sc_vs_ibp, bench_expansion, bench_figures);
criterion_main!(benches);

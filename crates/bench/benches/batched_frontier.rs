//! Batched frontier vs serial walk-stepping on the frozen CSR hot path.
//!
//! The frontier kernel ([`census_walk::frontier`]) advances W concurrent
//! walks in lock-step rounds, overlapping W independent CSR cache-miss
//! chains where the serial engine waits on one. These benchmarks measure
//! that memory-level parallelism directly: the same total sample count,
//! the same per-walk tagged RNG streams, only the stepping schedule
//! differs — so the ratio is pure execution-shape, not workload.
//!
//! Run with `cargo bench -p census-bench --bench batched_frontier`.

use census_graph::{generators, Graph, Topology};
use census_metrics::NoopRecorder;
use census_walk::continuous::{ctrw_walk, Sojourn};
use census_walk::frontier::{ctrw_frontier, tour_frontier, CtrwSpec, TourSpec};
use census_walk::stream::{stream_seed, SplitMix64, StreamDomain};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const PAPER_N: usize = 100_000;
const TIMER: f64 = 10.0;

fn balanced(n: usize, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    generators::balanced(n, 10, &mut rng)
}

fn walk_rng(i: u64) -> SplitMix64 {
    SplitMix64::new(stream_seed(StreamDomain::FrontierWalk, 7, i))
}

/// CTRW samples/second at several frontier widths against the serial
/// baseline. Width 1 exposes the kernel's bookkeeping floor; the wide
/// arms show what overlapping cache misses buys at paper scale.
fn bench_ctrw_frontier_widths(c: &mut Criterion) {
    let samples = 256u64;
    let g = balanced(PAPER_N, 1);
    let frozen = g.freeze();
    let start = g.nodes().next().expect("non-empty");

    let mut group = c.benchmark_group("ctrw_samples_n100k");
    group.sample_size(10);
    group.throughput(Throughput::Elements(samples));
    group.bench_function("serial", |b| {
        b.iter(|| {
            (0..samples)
                .map(|i| {
                    ctrw_walk(
                        &frozen,
                        start,
                        TIMER,
                        Sojourn::Exponential,
                        &mut walk_rng(i),
                    )
                    .expect("fault-free")
                    .hops
                })
                .sum::<u64>()
        });
    });
    for width in [1u64, 8, 64, 256] {
        group.bench_with_input(BenchmarkId::new("frontier", width), &width, |b, &width| {
            b.iter(|| {
                let mut hops = 0u64;
                let mut next = 0u64;
                while next < samples {
                    let lanes = (samples - next).min(width);
                    let mut specs: Vec<_> = (0..lanes)
                        .map(|i| CtrwSpec {
                            topology: &frozen,
                            rng: walk_rng(next + i),
                            start,
                            timer: TIMER,
                            sojourn: Sojourn::Exponential,
                        })
                        .collect();
                    for fate in ctrw_frontier(&mut specs, &NoopRecorder) {
                        hops += fate.result.expect("fault-free").hops;
                    }
                    next += lanes;
                }
                hops
            });
        });
    }
    group.finish();
}

/// Random Tour replicas through the tour frontier vs a serial loop: the
/// `census_sim::parallel::replicate_tour_frontiers` inner shape.
fn bench_tour_frontier(c: &mut Criterion) {
    let tours = 32u64;
    let cap = 2_000_000u64;
    let g = balanced(PAPER_N, 3);
    let frozen = g.freeze();
    let start = g.nodes().next().expect("non-empty");
    let f = |_n| 1.0;

    let mut group = c.benchmark_group("random_tours_n100k");
    group.sample_size(10);
    group.throughput(Throughput::Elements(tours));
    group.bench_function("serial", |b| {
        b.iter(|| {
            (0..tours)
                .map(|i| {
                    let mut weight = 0.0f64;
                    let mut rng = walk_rng(1_000 + i);
                    census_walk::discrete::random_tour(&frozen, start, Some(cap), &mut rng, |v| {
                        weight += f(v) / frozen.degree_of(v) as f64;
                    })
                    .map(|_| weight)
                    .expect("capped tour returns")
                })
                .sum::<f64>()
        });
    });
    group.bench_function("frontier", |b| {
        b.iter(|| {
            let mut specs: Vec<_> = (0..tours)
                .map(|i| TourSpec {
                    topology: &frozen,
                    rng: walk_rng(1_000 + i),
                    start,
                    max_steps: Some(cap),
                })
                .collect();
            tour_frontier(&mut specs, f, &NoopRecorder)
                .into_iter()
                .map(|fate| fate.weight)
                .sum::<f64>()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_ctrw_frontier_widths, bench_tour_frontier);
criterion_main!(benches);

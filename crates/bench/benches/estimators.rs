//! Criterion micro/meso-benchmarks of the estimators and substrates.
//!
//! One group per paper artefact: the cost drivers behind Figures 1–7 and
//! Table 1 (tour time, sample time, full estimates) plus the substrate
//! operations they are built on. Run with `cargo bench -p census-bench`.

use census_core::{
    gossip::GossipAveraging, polling::ProbabilisticPolling, PointEstimator, RandomTour,
    SampleCollide, SizeEstimator,
};
use census_graph::{generators, spectral, Graph};
use census_metrics::RunCtx;
use census_sampling::{CtrwSampler, DtrwSampler, MetropolisSampler, Sampler};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn balanced(n: usize, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    generators::balanced(n, 10, &mut rng)
}

/// Figure 1/2 cost driver: one Random Tour (expected cost Σd/d_i hops).
fn bench_random_tour(c: &mut Criterion) {
    let mut group = c.benchmark_group("random_tour");
    for n in [1_000usize, 4_000, 16_000] {
        let g = balanced(n, 1);
        let probe = g.nodes().next().expect("non-empty");
        let mut rng = SmallRng::seed_from_u64(2);
        let rt = RandomTour::new();
        let mut ctx = RunCtx::new(&g, &mut rng);
        group.bench_with_input(BenchmarkId::new("one_tour", n), &n, |b, _| {
            b.iter(|| rt.estimate_with(&mut ctx, probe).expect("connected").value)
        });
    }
    group.finish();
}

/// Figure 3 / Table 1 cost driver: one Sample & Collide estimate.
fn bench_sample_collide(c: &mut Criterion) {
    let mut group = c.benchmark_group("sample_collide");
    group.sample_size(10);
    let g = balanced(4_000, 3);
    let probe = g.nodes().next().expect("non-empty");
    for l in [10u32, 100] {
        let sc = SampleCollide::new(CtrwSampler::new(10.0), l)
            .with_point_estimator(PointEstimator::Asymptotic);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut ctx = RunCtx::new(&g, &mut rng);
        group.bench_with_input(BenchmarkId::new("estimate", l), &l, |b, _| {
            b.iter(|| sc.estimate_with(&mut ctx, probe).expect("connected").value)
        });
    }
    group.finish();
}

/// §4.1 cost driver: one uniform sample per strategy (cost T·d̄ for CTRW).
fn bench_samplers(c: &mut Criterion) {
    let mut group = c.benchmark_group("samplers");
    let g = balanced(4_000, 5);
    let probe = g.nodes().next().expect("non-empty");
    let mut rng = SmallRng::seed_from_u64(6);
    let ctrw = CtrwSampler::new(10.0);
    group.bench_function("ctrw_t10", |b| {
        b.iter(|| ctrw.sample(&g, probe, &mut rng).expect("connected").node)
    });
    let dtrw = DtrwSampler::new(75);
    group.bench_function("dtrw_75_steps", |b| {
        b.iter(|| dtrw.sample(&g, probe, &mut rng).expect("connected").node)
    });
    let mh = MetropolisSampler::new(75);
    group.bench_function("metropolis_75_steps", |b| {
        b.iter(|| mh.sample(&g, probe, &mut rng).expect("connected").node)
    });
    group.finish();
}

/// Related-work baselines (§2.2): cost of whole-system protocols.
fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    let g = balanced(4_000, 7);
    let probe = g.nodes().next().expect("non-empty");
    let mut rng = SmallRng::seed_from_u64(8);
    let mut ctx = RunCtx::new(&g, &mut rng);
    let gossip = GossipAveraging::new(30);
    group.bench_function("gossip_30_rounds", |b| {
        b.iter(|| gossip.run_with(&mut ctx).messages)
    });
    let poll = ProbabilisticPolling::new(0.1);
    group.bench_function("polling_p0.1", |b| {
        b.iter(|| poll.run_with(&mut ctx, probe).estimate)
    });
    group.finish();
}

/// Substrate costs: §5.1 generators and the λ₂ computation behind the
/// accuracy analysis.
fn bench_substrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate");
    group.sample_size(10);
    for n in [10_000usize, 100_000] {
        group.bench_with_input(BenchmarkId::new("balanced_generator", n), &n, |b, &n| {
            let mut rng = SmallRng::seed_from_u64(9);
            b.iter(|| generators::balanced(n, 10, &mut rng).num_edges())
        });
        group.bench_with_input(BenchmarkId::new("ba_generator", n), &n, |b, &n| {
            let mut rng = SmallRng::seed_from_u64(10);
            b.iter(|| generators::barabasi_albert(n, 3, &mut rng).num_edges())
        });
    }
    let g = balanced(2_000, 11);
    group.bench_function("spectral_gap_n2000", |b| {
        b.iter(|| spectral::spectral_gap_with(&g, 5_000, 1e-10).lambda2)
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_random_tour,
    bench_sample_collide,
    bench_samplers,
    bench_baselines,
    bench_substrate
);
criterion_main!(benches);

//! The census-under-adaptation experiment: estimator accuracy while the
//! overlay is still constructing itself.
//!
//! The paper's dynamic experiments (§5.2) replay *scripted* churn; this
//! experiment replaces the script with `census-overlay`'s random-walk
//! preferential-attachment protocol and asks the operational question a
//! deployment faces: if the census service keeps answering size queries
//! while the overlay underneath assembles itself, how fast does a
//! never-refrozen snapshot rot, and does coupling the refreeze to the
//! protocol's own mutation counts keep the estimates honest?
//!
//! [`overlay_convergence`] runs one construction from a small seed clique
//! to the scaled target size, checkpointing along the way:
//!
//! * the **naive arm** — Random Tours over the snapshot frozen before the
//!   construction started;
//! * the **coupled arm** — Random Tours over a snapshot refrozen at the
//!   checkpoint (what [`census_overlay::OverlayEngine::driver`] gives a
//!   live service);
//! * the **mixing structure** — the Laplacian spectral gap λ₂ at each
//!   checkpoint, tracking how well the growing overlay mixes.

use census_metrics::Registry;
use census_overlay::{
    fitted_exponent, run_scenario, OverlayEngine, ScaleFreeConfig, ScaleFreeConstruction,
    ScenarioConfig,
};
use census_stats::csv::CsvTable;
use std::fmt::Write as _;

use crate::{summary_line, FigureResult, Params};

/// Builds the scenario shape for a target overlay size: enough ticks to
/// finish the construction with slack, eight checkpoints along the way.
fn scenario_shape(target: usize, joins_per_tick: u64) -> ScenarioConfig {
    let build_ticks = (target as u64).div_ceil(joins_per_tick);
    // Walk latency (one tick per hop) delays attachments past the last
    // join wave; 25% slack covers the paper-scale TTL comfortably.
    let ticks = build_ticks + (build_ticks / 4).max(20);
    ScenarioConfig {
        ticks,
        checkpoint_every: (ticks / 8).max(1),
        tours_per_checkpoint: 16,
        spectral_iters: 1_000,
        spectral_tol: 1e-5,
    }
}

/// `overlay-convergence`: the λ₂-trajectory experiment.
///
/// Columns: `tick, truth, edges, lambda2, connected, naive_estimate,
/// coupled_estimate, naive_rel_err, coupled_rel_err`. The summary's
/// headline is the final checkpoint, where the naive arm still estimates
/// the seed clique while the coupled arm tracks the full-size overlay.
#[must_use]
pub fn overlay_convergence(p: &Params, rec: &Registry) -> FigureResult {
    let target = p.n;
    let joins_per_tick = (target / 125).max(4);
    let config = scenario_shape(target, joins_per_tick as u64);

    let seed_size = p.ba_m + 2;
    let mut g = census_graph::generators::complete(seed_size);
    let proto = ScaleFreeConstruction::new(ScaleFreeConfig {
        target_size: target,
        joins_per_tick,
        edges_per_join: p.ba_m,
        ..ScaleFreeConfig::default()
    });
    let mut engine = OverlayEngine::new(proto, p.seed ^ 0x4F56_4552);
    let checkpoints = run_scenario(&mut engine, &mut g, &config, p.seed ^ 0x51, rec);

    let mut table = CsvTable::new(&[
        "tick",
        "truth",
        "edges",
        "lambda2",
        "connected",
        "naive_estimate",
        "coupled_estimate",
        "naive_rel_err",
        "coupled_rel_err",
    ]);
    for c in &checkpoints {
        table.push_row(&[
            c.tick as f64,
            c.truth as f64,
            c.edges as f64,
            c.lambda2,
            f64::from(u8::from(c.connected)),
            c.naive_estimate,
            c.coupled_estimate,
            c.naive_rel_error(),
            c.coupled_rel_error(),
        ]);
    }

    let last = checkpoints.last().expect("scenario checkpoints");
    let gamma = fitted_exponent(&g, p.ba_m.max(2));
    let mut summary = format!(
        "overlay-convergence: Random Tour census under self-construction \
         (seed clique {seed_size} -> N = {target}, m = {}, {} ticks, \
         {} checkpoints, final overlay {}connected, λ₂ = {:.4}{}):\n",
        p.ba_m,
        config.ticks,
        checkpoints.len(),
        if last.connected { "" } else { "NOT " },
        last.lambda2,
        match gamma {
            Some(g) => format!(", fitted exponent {g:.2}"),
            None => String::new(),
        },
    );
    summary_line(
        &mut summary,
        "naive rel. error",
        1.0,
        last.naive_rel_error(),
    );
    summary_line(
        &mut summary,
        "coupled rel. error",
        0.0,
        last.coupled_rel_error(),
    );
    let _ = writeln!(
        summary,
        "  the naive arm still walks the seed clique, so its error climbs \
         towards 1 with the overlay; refreezing on the protocol's own \
         mutation counts keeps the coupled arm on the truth."
    );

    FigureResult {
        id: "overlay-convergence",
        table,
        summary,
    }
}

//! The perf-probe arm registry: every headline wall-clock probe the
//! stacked PRs promise to hold, runnable by name.
//!
//! Each arm is a dependency-free (no criterion harness) probe of one
//! claim, writing its measurements through the shared
//! [`report`](crate::report) envelope writer:
//!
//! | arm | claim | artefact |
//! |-----|-------|----------|
//! | `headline` | CSR snapshot walks beat the live graph; recorder ≤ 5% | `BENCH_2.json` |
//! | `service` | service throughput scales with workers, churn racing | `BENCH_4.json` |
//! | `batched` | exact frontier ≥ 3× serial at the memory wall (N = 1M), ≥ 2× at N = 100k | `BENCH_10.json` |
//! | `sharded` | sharded service ≥ 1.5× unsharded, bit-identical | `BENCH_6.json` |
//! | `snapshot-io` | binary snapshot reload < 1% of generate+freeze | `BENCH_7.json` |
//! | `byzantine` | hardened sampler ≥ 3× less bias at 20% subverted | `BENCH_8.json` |
//! | `overlay` | self-construction throughput; coupled census ≥ 2× less error | `BENCH_9.json` |
//!
//! Every arm re-seeds its RNG identically across variants, so ratios
//! isolate the representation / recording / scheduling cost, and medians
//! over repeated passes keep one noisy scheduler quantum from skewing
//! the headline numbers. Smoke mode shrinks each arm to a seconds-scale
//! CI check of the same code path.
//!
//! The same registry backs both `perf-probe bench <arm>` and the
//! campaign runner's [`campaign`](crate::campaign) sweeps, so a spec
//! file and a one-off probe can never drift apart on what an arm means.

use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

use census_core::{RandomTour, SizeEstimator};
use census_graph::generators;
use census_graph::io::{load_frozen, save_frozen, write_frozen};
use census_metrics::{NoopRecorder, Registry, RunCtx};
use census_overlay::{
    run_scenario, OverlayEngine, ScaleFreeConfig, ScaleFreeConstruction, ScenarioConfig,
};
use census_sampling::{CtrwSampler, HardenedMetropolisSampler, MetropolisSampler, Sampler};
use census_service::{
    CensusService, Counter, Query, QueryOutcome, ServiceConfig, ShardedCensusService,
};
use census_sim::attacks::AttackPlan;
use census_sim::{DynamicNetwork, JoinRule, MembershipDelta, Scenario};
use census_walk::continuous::{ctrw_walk, CtrwOutcome, Sojourn};
use census_walk::frontier::{ctrw_frontier_with, CtrwSpec, FrontierMode};
use census_walk::stream::{stream_seed, SplitMix64, StreamDomain};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::report::write_envelope;

const PAPER_N: usize = 100_000;
const TOURS_PER_PASS: u32 = 5;
const REPEATS: usize = 9;

/// One registered perf-probe arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeArm {
    /// CSR-vs-live walk throughput and recorder overhead (`BENCH_2.json`).
    Headline,
    /// End-to-end service queries/sec vs worker count (`BENCH_4.json`).
    Service,
    /// Batched CTRW frontier vs the serial engine, across execution
    /// modes and snapshot scales (`BENCH_10.json`).
    Batched,
    /// Sharded service scaling vs shard count (`BENCH_6.json`).
    Sharded,
    /// Binary snapshot save/reload vs regeneration (`BENCH_7.json`).
    SnapshotIo,
    /// Hardened-vs-naive Metropolis sampling under a Byzantine
    /// degree-inflation + walk-swallow adversary (`BENCH_8.json`).
    Byzantine,
    /// Overlay self-construction throughput and the naive-vs-coupled
    /// census bias gap under adaptation (`BENCH_9.json`).
    Overlay,
}

impl ProbeArm {
    /// Every arm, in registry order.
    pub const ALL: [ProbeArm; 7] = [
        ProbeArm::Headline,
        ProbeArm::Service,
        ProbeArm::Batched,
        ProbeArm::Sharded,
        ProbeArm::SnapshotIo,
        ProbeArm::Byzantine,
        ProbeArm::Overlay,
    ];

    /// The arm's registry name, as spelled on the command line.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ProbeArm::Headline => "headline",
            ProbeArm::Service => "service",
            ProbeArm::Batched => "batched",
            ProbeArm::Sharded => "sharded",
            ProbeArm::SnapshotIo => "snapshot-io",
            ProbeArm::Byzantine => "byzantine",
            ProbeArm::Overlay => "overlay",
        }
    }

    /// Resolves a registry name back to its arm.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|a| a.name() == name)
    }

    /// The artefact the arm writes when no `--out` override is given.
    #[must_use]
    pub fn default_output(self) -> &'static str {
        match self {
            ProbeArm::Headline => "BENCH_2.json",
            ProbeArm::Service => "BENCH_4.json",
            ProbeArm::Batched => "BENCH_10.json",
            ProbeArm::Sharded => "BENCH_6.json",
            ProbeArm::SnapshotIo => "BENCH_7.json",
            ProbeArm::Byzantine => "BENCH_8.json",
            ProbeArm::Overlay => "BENCH_9.json",
        }
    }
}

/// Runs one probe arm and writes its enveloped report to `out`.
///
/// # Errors
///
/// Propagates report-serialisation and I/O failures.
///
/// # Panics
///
/// Panics if the arm's correctness precondition fails (equivalence
/// assertions, the snapshot-io reload budget at full scale) — a probe
/// whose ratio is meaningless must not write a report.
pub fn run_probe(arm: ProbeArm, smoke: bool, out: &Path) -> io::Result<()> {
    match arm {
        ProbeArm::Headline => write_envelope(arm.name(), smoke, &headline_probe(smoke), out),
        ProbeArm::Service => write_envelope(arm.name(), smoke, &service_probe(smoke), out),
        ProbeArm::Batched => write_envelope(arm.name(), smoke, &batched_probe(smoke), out),
        ProbeArm::Sharded => write_envelope(arm.name(), smoke, &sharded_probe(smoke), out),
        ProbeArm::SnapshotIo => write_envelope(arm.name(), smoke, &snapshot_io_probe(smoke), out),
        ProbeArm::Byzantine => write_envelope(arm.name(), smoke, &byzantine_probe(smoke), out),
        ProbeArm::Overlay => write_envelope(arm.name(), smoke, &overlay_probe(smoke), out),
    }?;
    println!("report -> {}", out.display());
    Ok(())
}

/// `BENCH_2.json`: Random Tour throughput on the live adjacency-list
/// graph vs the frozen CSR snapshot, plus the live-registry recorder
/// overhead on the frozen path.
fn headline_probe(smoke: bool) -> Report {
    let (n, repeats) = if smoke {
        (5_000, 3)
    } else {
        (PAPER_N, REPEATS)
    };
    let mut rng = SmallRng::seed_from_u64(1);
    let g = generators::balanced(n, 10, &mut rng);
    let frozen = g.freeze();
    let probe = g.nodes().next().expect("non-empty");
    let rt = RandomTour::new();
    let registry = Registry::new();

    println!("perf probe on balanced N = {n} ({TOURS_PER_PASS} tours/pass, median of {repeats})");

    let live_s = median_secs(repeats, || {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut ctx = RunCtx::new(&g, &mut rng);
        for _ in 0..TOURS_PER_PASS {
            let _ = rt.estimate_with(&mut ctx, probe).expect("connected");
        }
    });
    let frozen_noop_s = median_secs(repeats, || {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut ctx = RunCtx::new(&frozen, &mut rng);
        for _ in 0..TOURS_PER_PASS {
            let _ = rt.estimate_with(&mut ctx, probe).expect("connected");
        }
    });
    let frozen_registry_s = median_secs(repeats, || {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut ctx = RunCtx::with_recorder(&frozen, &mut rng, &registry);
        for _ in 0..TOURS_PER_PASS {
            let _ = rt.estimate_with(&mut ctx, probe).expect("connected");
        }
    });

    let frozen_speedup = live_s / frozen_noop_s;
    let recorder_overhead_pct = (frozen_registry_s / frozen_noop_s - 1.0) * 100.0;
    println!("  live graph        : {live_s:.4} s/pass");
    println!("  frozen csr (noop) : {frozen_noop_s:.4} s/pass  ({frozen_speedup:.2}x vs live)");
    println!(
        "  frozen csr (reg)  : {frozen_registry_s:.4} s/pass  ({recorder_overhead_pct:+.2}% vs noop)"
    );

    Report {
        n,
        tours_per_pass: TOURS_PER_PASS,
        repeats,
        live_tour_pass_s: live_s,
        frozen_noop_pass_s: frozen_noop_s,
        frozen_registry_pass_s: frozen_registry_s,
        frozen_speedup_vs_live: frozen_speedup,
        recorder_overhead_pct,
        recorder_budget_pct: 5.0,
    }
}

/// `BENCH_4.json`: queries/sec through the full service stack — queue,
/// epoch pinning, worker pool — for several worker counts, with and
/// without churn racing the queries.
fn service_probe(smoke: bool) -> ServiceReport {
    let (n, queries, worker_counts, repeats): (usize, u64, &[usize], usize) = if smoke {
        (5_000, 12, &[1, 2], 1)
    } else {
        (PAPER_N, 48, &[1, 2, 4, 8], 3)
    };
    // ~2% of the overlay departs across 8 events while queries run.
    let events = Scenario::new()
        .remove_gradually(0, 8, (n / 50) as u64)
        .events(8);

    println!(
        "service probe on balanced N = {n} ({queries} tour queries/pass, median of {repeats})"
    );
    let mut arms = Vec::new();
    for &workers in worker_counts {
        let quiet_s = median_secs(repeats, || run_service_pass(n, workers, queries, &[]));
        let churn_s = median_secs(repeats, || run_service_pass(n, workers, queries, &events));
        let arm = ServiceArm {
            workers,
            no_churn_qps: queries as f64 / quiet_s,
            churn_qps: queries as f64 / churn_s,
        };
        println!(
            "  {workers} worker(s): {:.1} q/s quiet, {:.1} q/s under churn",
            arm.no_churn_qps, arm.churn_qps
        );
        arms.push(arm);
    }

    let qps_at = |w: usize| arms.iter().find(|a| a.workers == w).map(|a| a.no_churn_qps);
    let scaling_1_to_4 = match (qps_at(1), qps_at(4)) {
        (Some(one), Some(four)) => Some(four / one),
        _ => None,
    };
    if let Some(s) = scaling_1_to_4 {
        println!("  1 -> 4 workers: {s:.2}x throughput");
    }

    ServiceReport {
        n,
        queries_per_pass: queries,
        repeats,
        arms,
        scaling_1_to_4,
    }
}

/// Serves `queries` Random Tour count queries and returns the wall-clock
/// seconds from first submission to full drain.
fn run_service_pass(n: usize, workers: usize, queries: u64, events: &[MembershipDelta]) -> f64 {
    // Identical seeds per pass: every arm serves the same overlay and
    // the same query streams; only the schedule differs.
    let mut rng = SmallRng::seed_from_u64(11);
    let net = DynamicNetwork::new(
        generators::balanced(n, 10, &mut rng),
        JoinRule::Balanced { max_degree: 10 },
    );
    let config = ServiceConfig::new(33)
        .with_workers(workers)
        .with_queue_capacity(queries.max(1) as usize);
    let mut service = CensusService::new(net, config);

    let start = Instant::now();
    let ((), outcomes) = service.serve(events, |census| {
        for _ in 0..queries {
            census
                .submit(Query::Count(Counter::RandomTour(RandomTour::new())))
                .expect("queue sized to the full load");
        }
    });
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(outcomes.len() as u64, queries, "ledger must reconcile");
    secs
}

/// `BENCH_10.json`: CTRW sampling throughput on a mode × scale grid —
/// the serial engine, the exact frontier (alias starts, node bucketing,
/// prefetch; bit-identical), and the `FastStatEq` frontier (pooled block
/// RNG; statistically equivalent) — at the paper scale and 10× it.
///
/// Start nodes are drawn degree-weighted through the snapshot's
/// precomputed [`census_graph::AliasTables`] and shared verbatim by all
/// three arms, so the arms time the same workload. Before timing, the
/// exact frontier's output is asserted bit-identical to the serial walks
/// on every scale. The exact mode must clear 3× serial at the
/// memory-wall scale (N = 1M, where the 64 MB CSR defeats the last
/// cache level and the serial chain pays DRAM latency per hop) and 2×
/// at the paper scale — at N = 100k the snapshot is largely
/// L3-resident, so serial stalls bound the achievable ratio near 2.9×
/// (the in-cache serial rate over the N = 100k serial rate) and a 3×
/// demand there would assert above the hardware's ceiling.
///
/// Speedups are medians of per-repeat interleaved ratios; see the
/// measurement comment in the body.
fn batched_probe(smoke: bool) -> BatchedReport {
    let (scales, samples, repeats): (&[usize], u64, usize) = if smoke {
        (&[4_000], 512, 1)
    } else {
        (&[PAPER_N, 10 * PAPER_N], 4_096, 9)
    };
    // Much wider than `census-sampling`'s 64-walk production chunks: the
    // probe drives the kernel toward the memory wall, and a frontier's
    // drain tail (hundreds of near-empty rounds as the last walks die)
    // is a fixed cost per chunk, so fewer, wider chunks amortise it —
    // 1024 lanes are ~32 KB of walk state, still cache-resident next to
    // the CSR lines. Width is pure scheduling, so bit-identity is
    // unaffected.
    const WIDTH: u64 = 1024;
    // The paper's experimental timer setting.
    const TIMER: f64 = 10.0;
    const BASE_SEED: u64 = 7;
    // Asserted at the memory-wall scale (the largest non-smoke N).
    const TARGET_EXACT_SPEEDUP: f64 = 3.0;
    // Floor at the paper scale, whose mostly-L3-resident snapshot caps
    // the physically possible ratio below 3 (see the doc comment).
    const PAPER_SCALE_EXACT_SPEEDUP: f64 = 2.0;

    println!(
        "batched frontier probe ({samples} CTRW samples/pass, T = {TIMER}, W = {WIDTH}, \
         degree-weighted alias starts, interleaved ratio median of {repeats})"
    );
    let mut arms = Vec::new();
    for &n in scales {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = generators::balanced(n, 10, &mut rng);
        let frozen = g.freeze();
        // Degree-weighted start selection through the precomputed alias
        // tables: two RNG draws per start, O(1), identical across arms.
        let tables = frozen.alias_tables();
        let mut start_rng = SmallRng::seed_from_u64(BASE_SEED);
        let starts: Vec<census_graph::NodeId> = (0..samples)
            .map(|_| tables.sample(&mut start_rng).expect("overlay has edges"))
            .collect();
        let walk_rng =
            |i: u64| SplitMix64::new(stream_seed(StreamDomain::FrontierWalk, BASE_SEED, i));

        let serial_pass = || -> Vec<CtrwOutcome> {
            (0..samples)
                .map(|i| {
                    ctrw_walk(
                        &frozen,
                        starts[i as usize],
                        TIMER,
                        Sojourn::Exponential,
                        &mut walk_rng(i),
                    )
                    .expect("fault-free CTRW completes")
                })
                .collect()
        };
        let frontier_pass = |mode: FrontierMode| -> Vec<CtrwOutcome> {
            let mut outs = Vec::with_capacity(samples as usize);
            let mut next = 0u64;
            while next < samples {
                let width = (samples - next).min(WIDTH);
                let mut specs: Vec<CtrwSpec<&census_graph::FrozenView, SplitMix64>> = (0..width)
                    .map(|i| CtrwSpec {
                        topology: &frozen,
                        rng: walk_rng(next + i),
                        start: starts[(next + i) as usize],
                        timer: TIMER,
                        sojourn: Sojourn::Exponential,
                    })
                    .collect();
                for fate in ctrw_frontier_with(&mut specs, mode, &NoopRecorder) {
                    outs.push(fate.result.expect("fault-free CTRW completes"));
                }
                next += width;
            }
            outs
        };

        let serial_out = serial_pass();
        let exact_out = frontier_pass(FrontierMode::default());
        assert_eq!(
            serial_out, exact_out,
            "exact-mode samples must be bit-identical to the serial walks"
        );
        println!("  N = {n}: {samples} samples bit-identical across serial/exact paths");

        // Interleave the arms within each repeat and score the *median
        // of per-repeat ratios*: on shared hardware the clock available
        // to this process swings by integer factors from second to
        // second (noisy neighbours), so back-to-back serial/exact/fast
        // timings see the same machine state and their ratio is stable
        // where independent medians of each arm are not.
        let mut serial_times = Vec::with_capacity(repeats);
        let mut exact_times = Vec::with_capacity(repeats);
        let mut fast_times = Vec::with_capacity(repeats);
        for _ in 0..repeats {
            serial_times.push(median_secs(1, || {
                let _ = serial_pass();
            }));
            exact_times.push(median_secs(1, || {
                let _ = frontier_pass(FrontierMode::default());
            }));
            fast_times.push(median_secs(1, || {
                let _ = frontier_pass(FrontierMode::FastStatEq);
            }));
        }
        let ratio = |num: &[f64], den: &[f64]| {
            let mut rs: Vec<f64> = num.iter().zip(den).map(|(a, b)| a / b).collect();
            rs.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
            rs[rs.len() / 2]
        };
        let med = |xs: &[f64]| ratio(xs, &vec![1.0; xs.len()]);
        let arm = BatchedScale {
            n,
            equivalent: true,
            serial_samples_per_s: samples as f64 / med(&serial_times),
            exact_samples_per_s: samples as f64 / med(&exact_times),
            fast_samples_per_s: samples as f64 / med(&fast_times),
            exact_speedup: ratio(&serial_times, &exact_times),
            fast_speedup: ratio(&serial_times, &fast_times),
        };
        println!(
            "  N = {n}: serial {:.0}/s | exact {:.0}/s ({:.2}x) | fast {:.0}/s ({:.2}x)",
            arm.serial_samples_per_s,
            arm.exact_samples_per_s,
            arm.exact_speedup,
            arm.fast_samples_per_s,
            arm.fast_speedup
        );
        if !smoke {
            let floor = if n == PAPER_N {
                PAPER_SCALE_EXACT_SPEEDUP
            } else {
                TARGET_EXACT_SPEEDUP
            };
            assert!(
                arm.exact_speedup >= floor,
                "exact frontier speedup {:.2}x below the {floor}x target at N = {n}",
                arm.exact_speedup
            );
        }
        arms.push(arm);
    }

    BatchedReport {
        samples,
        frontier_width: WIDTH,
        timer: TIMER,
        repeats,
        target_exact_speedup: TARGET_EXACT_SPEEDUP,
        paper_scale_exact_speedup: PAPER_SCALE_EXACT_SPEEDUP,
        scales: arms,
    }
}

/// `BENCH_6.json`: queries/sec and CTRW samples/sec through the sharded
/// service — partitioned snapshot, per-shard worker pools, cross-shard
/// walk stitching — vs shard count, on a mixed count + sample workload.
///
/// Every arm runs one worker per shard, so added throughput comes from
/// the partition, not from extra threads on one snapshot. Before any arm
/// is timed, its outcomes are asserted byte-identical to the unsharded
/// [`CensusService`] on the same seed and workload: the scaling below is
/// only meaningful because every arm computes the same random variable.
fn sharded_probe(smoke: bool) -> ShardedReport {
    let (n, samples, counts, shard_counts, repeats): (usize, u64, u64, &[usize], usize) = if smoke {
        (5_000, 12, 4, &[1, 2], 1)
    } else {
        (PAPER_N, 40, 8, &[1, 2, 4, 8], 3)
    };
    // The paper's experimental timer setting: long walks cross shard
    // boundaries many times, exercising the handoff path the probe is
    // pricing.
    const TIMER: f64 = 10.0;
    let queries = samples + counts;

    println!(
        "sharded probe on balanced N = {n} ({samples} CTRW samples + {counts} tour counts/pass, \
         T = {TIMER}, 1 worker/shard, median of {repeats})"
    );

    let (_, expected) = run_sharded_pass(n, None, samples, counts, TIMER, queries);
    println!("  unsharded baseline: {} outcomes", expected.len());

    let mut arms = Vec::new();
    for &shards in shard_counts {
        let (_, outcomes) = run_sharded_pass(n, Some(shards), samples, counts, TIMER, queries);
        assert_eq!(
            outcomes, expected,
            "sharded outcomes must be byte-identical to the unsharded service"
        );
        let secs = median_secs(repeats, || {
            run_sharded_pass(n, Some(shards), samples, counts, TIMER, queries).0
        });
        let arm = ShardArm {
            shards,
            queries_per_s: queries as f64 / secs,
            samples_per_s: samples as f64 / secs,
        };
        println!(
            "  {shards} shard(s): {:.1} q/s, {:.1} samples/s (outcomes bit-identical)",
            arm.queries_per_s, arm.samples_per_s
        );
        arms.push(arm);
    }

    let qps_at = |s: usize| arms.iter().find(|a| a.shards == s).map(|a| a.queries_per_s);
    let best_multi = arms
        .iter()
        .filter(|a| a.shards > 1)
        .map(|a| a.queries_per_s)
        .fold(f64::NAN, f64::max);
    let multi_shard_speedup = qps_at(1).map(|one| best_multi / one);
    if let Some(s) = multi_shard_speedup {
        println!("  best multi-shard vs 1 shard: {s:.2}x (target >= 1.5x at N = {PAPER_N})");
    }

    ShardedReport {
        n,
        samples_per_pass: samples,
        counts_per_pass: counts,
        timer: TIMER,
        repeats,
        equivalent: true,
        arms,
        multi_shard_speedup,
        target_speedup: 1.5,
    }
}

/// Serves the mixed workload on a fresh overlay — through the unsharded
/// service when `shards` is `None`, else through the sharded service with
/// one worker per shard — returning the serve-window seconds and the
/// outcomes (for the equivalence assertion).
fn run_sharded_pass(
    n: usize,
    shards: Option<usize>,
    samples: u64,
    counts: u64,
    timer: f64,
    queries: u64,
) -> (f64, Vec<QueryOutcome>) {
    assert_eq!(
        samples + counts,
        queries,
        "workload quotas must reconcile with the total query count"
    );
    // Identical seeds per pass: every arm serves the same overlay and
    // the same query streams; only the partition differs.
    let mut rng = SmallRng::seed_from_u64(11);
    let net = DynamicNetwork::new(
        generators::balanced(n, 10, &mut rng),
        JoinRule::Balanced { max_degree: 10 },
    );
    let config = ServiceConfig::new(33)
        .with_workers(1)
        .with_queue_capacity(queries.max(1) as usize);
    let workload: Vec<Query> = {
        let mut qs = Vec::with_capacity(queries as usize);
        let mut sampled = 0u64;
        for i in 0..queries {
            // Alternate, front-loading samples until their quota is met.
            if sampled < samples && (i % 2 == 0 || queries - i <= samples - sampled) {
                qs.push(Query::Sample(CtrwSampler::new(timer)));
                sampled += 1;
            } else {
                qs.push(Query::Count(Counter::RandomTour(RandomTour::new())));
            }
        }
        qs
    };
    match shards {
        None => {
            let mut service = CensusService::new(net, config);
            let start = Instant::now();
            let ((), outcomes) = service.serve(&[], |census| {
                for q in &workload {
                    census.submit(*q).expect("queue sized to the full load");
                }
            });
            let secs = start.elapsed().as_secs_f64();
            assert_eq!(outcomes.len() as u64, queries, "ledger must reconcile");
            (secs, outcomes)
        }
        Some(shards) => {
            let mut service = ShardedCensusService::new(net, config.with_shards(shards));
            let start = Instant::now();
            let ((), outcomes) = service.serve(&[], |census| {
                for q in &workload {
                    census.submit(*q).expect("queue sized to the full load");
                }
            });
            let secs = start.elapsed().as_secs_f64();
            assert_eq!(outcomes.len() as u64, queries, "ledger must reconcile");
            (secs, outcomes)
        }
    }
}

/// `BENCH_7.json`: binary snapshot reload vs regeneration.
///
/// Generating and freezing a paper-scale overlay is the price every cold
/// process pays before it can serve a single query; the binary snapshot
/// exists so that price is paid once. The probe times generate+freeze,
/// saves the frozen view with [`save_frozen`], then times
/// [`load_frozen`] reloads of the artefact. At full scale (N = 1M) it
/// *asserts* the claim the campaign harness relies on: the median reload
/// costs under 1% of generate+freeze. Smoke mode only checks the
/// byte-identity of the round trip.
fn snapshot_io_probe(smoke: bool) -> SnapshotIoReport {
    let (n, repeats) = if smoke { (50_000, 3) } else { (1_000_000, 5) };
    const TARGET_RATIO: f64 = 0.01;

    println!("snapshot-io probe on balanced N = {n} (median of {repeats} reloads)");

    let build_start = Instant::now();
    let mut rng = SmallRng::seed_from_u64(1);
    let g = generators::balanced(n, 10, &mut rng);
    let frozen = g.freeze();
    let build_s = build_start.elapsed().as_secs_f64();
    println!("  generate + freeze : {build_s:.4} s");

    let path = std::env::temp_dir().join(format!("overlay-census-snapshot-io-{n}.snap"));
    let save_start = Instant::now();
    save_frozen(&frozen, &path).expect("snapshot saves");
    let save_s = save_start.elapsed().as_secs_f64();
    let snapshot_bytes = std::fs::metadata(&path).expect("snapshot exists").len();
    println!("  save              : {save_s:.4} s ({snapshot_bytes} bytes)");

    let load_s = median_secs(repeats, || {
        let view = load_frozen(&path).expect("snapshot loads");
        std::hint::black_box(view.num_edges());
    });
    let ratio = load_s / build_s;
    println!(
        "  load              : {load_s:.4} s  ({:.2}% of generate+freeze)",
        ratio * 100.0
    );

    // Byte-identity: re-encoding the loaded view must reproduce the
    // original encoding bit for bit.
    let reloaded = load_frozen(&path).expect("snapshot loads");
    let mut original = Vec::new();
    write_frozen(&frozen, &mut original).expect("in-memory encode");
    let mut round_tripped = Vec::new();
    write_frozen(&reloaded, &mut round_tripped).expect("in-memory encode");
    assert_eq!(
        original, round_tripped,
        "reloaded snapshot must re-encode byte-identically"
    );
    println!(
        "  round trip        : {} bytes bit-identical",
        original.len()
    );
    let _ = std::fs::remove_file(&path);

    if !smoke {
        assert!(
            ratio < TARGET_RATIO,
            "snapshot reload took {:.2}% of generate+freeze (budget {:.0}%)",
            ratio * 100.0,
            TARGET_RATIO * 100.0
        );
    }

    SnapshotIoReport {
        n,
        repeats,
        snapshot_bytes,
        build_pass_s: build_s,
        save_pass_s: save_s,
        load_pass_s: load_s,
        load_over_build_ratio: ratio,
        target_ratio: TARGET_RATIO,
        byte_identical: true,
    }
}

/// `BENCH_8.json`: the price and the payoff of Byzantine hardening.
///
/// Two measurements on the same balanced overlay:
///
/// 1. **honest overhead** — wall-clock of a naive Metropolis sampling
///    pass vs the audited [`HardenedMetropolisSampler`] pass on the
///    attack-free overlay, identical seeds. The audit spends extra
///    messages but no extra RNG draws, so the percentage is the pure
///    cost of hardening when nobody attacks.
/// 2. **attacked bias** — with 20% of peers subverted (10× degree
///    inflation + 15% walk swallowing, the `byzantine-sweep` headline
///    cell), the relative error of each sampler's subverted-peer share
///    vs the population share. At full scale the probe *asserts* the
///    acceptance claim: the hardened error is at least 3× smaller.
fn byzantine_probe(smoke: bool) -> ByzantineReport {
    let (n, samples, repeats) = if smoke {
        (5_000, 96, 1)
    } else {
        (50_000, 512, 5)
    };
    const FRACTION: f64 = 0.20;
    const INFLATION: f64 = 10.0;
    const SWALLOW: f64 = 0.15;
    const RETRIES: u32 = 50;
    const TARGET_ADVANTAGE: f64 = 3.0;
    let steps = (((n as f64).ln() * 10.0).ceil() as u64).max(40);

    let mut rng = SmallRng::seed_from_u64(1);
    let frozen = generators::balanced(n, 10, &mut rng).freeze();
    let start = frozen.nodes().next().expect("non-empty");
    let naive = MetropolisSampler::new(steps).with_retries(RETRIES);
    let hardened = HardenedMetropolisSampler::new(steps).with_retries(RETRIES);

    println!(
        "byzantine probe on balanced N = {n} ({samples} Metropolis samples x {steps} steps, \
         {:.0}% subverted, {INFLATION:.0}x inflation, {:.0}% swallow, median of {repeats})",
        100.0 * FRACTION,
        100.0 * SWALLOW
    );

    // 1. Honest-overlay wall clock: what the audit costs when every
    // degree claim checks out.
    let naive_s = median_secs(repeats, || {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..samples {
            let _ = naive.sample(&frozen, start, &mut rng).expect("connected");
        }
    });
    let hardened_s = median_secs(repeats, || {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..samples {
            let _ = hardened
                .sample(&frozen, start, &mut rng)
                .expect("connected");
        }
    });
    let overhead_pct = (hardened_s / naive_s - 1.0) * 100.0;
    println!("  naive (honest)    : {naive_s:.4} s/pass");
    println!("  hardened (honest) : {hardened_s:.4} s/pass  ({overhead_pct:+.2}% vs naive)");

    // 2. Attacked bias: subverted-peer share of each output law,
    // scored exactly like the sweep — the median over `repeats`
    // replications, each arm pair sharing a replication seed so the
    // comparison is paired.
    let plan = AttackPlan::new()
        .with_byzantine(FRACTION, 0xB12)
        .with_degree_inflation(INFLATION)
        .with_walk_swallow(SWALLOW);
    let truth = frozen.nodes().filter(|&v| plan.is_byzantine(v)).count() as f64 / n as f64;
    let rel_err = |sampler: &dyn SampleOnce| -> f64 {
        let mut errs: Vec<f64> = (0..repeats as u64)
            .map(|r| {
                let hostile = plan.apply(&frozen);
                let mut rng = SmallRng::seed_from_u64(3 ^ (0x9E37 * (r + 1)));
                let mut completed = 0u64;
                let mut hits = 0u64;
                for _ in 0..samples {
                    if let Some(node) = sampler.sample_once(&hostile, start, &mut rng) {
                        completed += 1;
                        if plan.is_byzantine(node) {
                            hits += 1;
                        }
                    }
                }
                assert!(
                    completed > 0,
                    "the restart budget must keep some samples alive"
                );
                (hits as f64 / completed as f64 - truth).abs() / truth
            })
            .collect();
        errs.sort_by(f64::total_cmp);
        errs[errs.len() / 2]
    };
    let naive_err = rel_err(&naive);
    let hardened_err = rel_err(&hardened);
    let advantage = naive_err / hardened_err.max(1e-6);
    println!("  naive rel. error  : {naive_err:.3} (truth {truth:.3})");
    println!("  hardened rel. err : {hardened_err:.3}");
    println!("  advantage         : {advantage:.2}x (target >= {TARGET_ADVANTAGE}x at full scale)");
    if !smoke {
        assert!(
            advantage >= TARGET_ADVANTAGE,
            "hardening bought only {advantage:.2}x bias reduction (target {TARGET_ADVANTAGE}x)"
        );
    }

    ByzantineReport {
        n,
        samples,
        steps,
        repeats,
        byzantine_fraction: FRACTION,
        degree_inflation: INFLATION,
        walk_swallow: SWALLOW,
        naive_honest_pass_s: naive_s,
        hardened_honest_pass_s: hardened_s,
        hardening_overhead_pct: overhead_pct,
        naive_rel_err: naive_err,
        hardened_rel_err: hardened_err,
        hardened_advantage: advantage,
        target_advantage: TARGET_ADVANTAGE,
    }
}

/// `BENCH_9.json`: the cost of self-construction and the payoff of
/// coupling the census to it.
///
/// Before timing anything the probe replays the construction and asserts
/// the rebuilt overlay is bit-identical — the throughput below is only
/// meaningful because the workload is a pure function of the seed. Then:
///
/// 1. **construction throughput** — median wall-clock of growing a
///    scale-free overlay from a seed clique to the target size through
///    the synchronous-round engine (ticks/s, joins/s).
/// 2. **census bias under adaptation** — one `run_scenario` pass scoring
///    Random Tours over the stale pre-construction snapshot (naive)
///    against tours over a checkpoint-refrozen snapshot (coupled). At
///    full scale the probe *asserts* the headline claim: the coupled
///    arm's relative error is at least 2× smaller.
fn overlay_probe(smoke: bool) -> OverlayReport {
    let (target, repeats) = if smoke { (2_000, 1) } else { (20_000, 5) };
    const JOINS_PER_TICK: usize = 16;
    const TARGET_GAP: f64 = 2.0;
    let config = ScaleFreeConfig {
        target_size: target,
        joins_per_tick: JOINS_PER_TICK,
        adapt_every: 0,
        ..ScaleFreeConfig::default()
    };
    let seed_size = config.edges_per_join + 2;
    let ticks = (target as u64).div_ceil(JOINS_PER_TICK as u64) + 40;

    let build = || {
        let mut g = generators::complete(seed_size);
        let mut engine = OverlayEngine::new(ScaleFreeConstruction::new(config), 1);
        engine.run(&mut g, ticks, &NoopRecorder);
        g
    };

    println!(
        "overlay probe: clique {seed_size} -> scale-free N = {target} \
         ({JOINS_PER_TICK} joins/tick, {ticks} ticks, median of {repeats})"
    );
    let first = build().freeze();
    assert_eq!(
        first,
        build().freeze(),
        "replaying the construction must reproduce the overlay bit for bit"
    );
    println!(
        "  determinism       : {} nodes / {} edges bit-identical across replays",
        first.num_nodes(),
        first.num_edges()
    );

    let construct_s = median_secs(repeats, || {
        std::hint::black_box(build().num_edges());
    });
    let ticks_per_s = ticks as f64 / construct_s;
    let joins_per_s = (target - seed_size) as f64 / construct_s;
    println!("  construction      : {construct_s:.4} s/pass  ({ticks_per_s:.0} ticks/s, {joins_per_s:.0} joins/s)");

    // The census-under-adaptation pass: a single final checkpoint keeps
    // the probe about the gap, not about λ₂ tracing (that is the
    // `overlay-convergence` figure's job).
    let mut g = generators::complete(seed_size);
    let mut engine = OverlayEngine::new(ScaleFreeConstruction::new(config), 1);
    let scenario = ScenarioConfig {
        ticks,
        checkpoint_every: ticks,
        tours_per_checkpoint: 32,
        spectral_iters: 500,
        spectral_tol: 1e-4,
    };
    let checkpoints = run_scenario(&mut engine, &mut g, &scenario, 17, &NoopRecorder);
    let last = checkpoints.last().expect("final checkpoint");
    let naive_err = last.naive_rel_error();
    let coupled_err = last.coupled_rel_error();
    let gap = naive_err / coupled_err.max(1e-6);
    println!("  naive rel. error  : {naive_err:.3} (stale pre-construction snapshot)");
    println!("  coupled rel. err  : {coupled_err:.3} (checkpoint-refrozen snapshot)");
    println!("  coupling gap      : {gap:.2}x (target >= {TARGET_GAP}x at full scale)");
    if !smoke {
        assert!(
            gap >= TARGET_GAP,
            "refreeze coupling bought only {gap:.2}x error reduction (target {TARGET_GAP}x)"
        );
    }

    OverlayReport {
        n: target,
        seed_size,
        joins_per_tick: JOINS_PER_TICK,
        ticks,
        repeats,
        deterministic: true,
        construct_pass_s: construct_s,
        ticks_per_s,
        joins_per_s,
        lambda2_final: last.lambda2,
        connected_final: last.connected,
        naive_rel_err: naive_err,
        coupled_rel_err: coupled_err,
        coupling_gap: gap,
        target_gap: TARGET_GAP,
    }
}

/// Object-safe sampling shim for the probe's two arms (the [`Sampler`]
/// trait itself is not object safe — generic over topology and RNG).
trait SampleOnce {
    fn sample_once(
        &self,
        topology: &census_sim::attacks::AdversarialTopology<&census_graph::FrozenView>,
        start: census_graph::NodeId,
        rng: &mut SmallRng,
    ) -> Option<census_graph::NodeId>;
}

impl SampleOnce for MetropolisSampler {
    fn sample_once(
        &self,
        topology: &census_sim::attacks::AdversarialTopology<&census_graph::FrozenView>,
        start: census_graph::NodeId,
        rng: &mut SmallRng,
    ) -> Option<census_graph::NodeId> {
        self.sample(topology, start, rng).ok().map(|s| s.node)
    }
}

impl SampleOnce for HardenedMetropolisSampler {
    fn sample_once(
        &self,
        topology: &census_sim::attacks::AdversarialTopology<&census_graph::FrozenView>,
        start: census_graph::NodeId,
        rng: &mut SmallRng,
    ) -> Option<census_graph::NodeId> {
        self.sample(topology, start, rng).ok().map(|s| s.node)
    }
}

/// Median wall-clock seconds of `repeats` timed invocations of `f` —
/// unless `f` itself returns the duration to score (the service pass
/// times only the serve window, excluding overlay construction).
pub(crate) fn median_secs<F: FnMut() -> R, R: IntoSecs>(repeats: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..repeats)
        .map(|_| {
            let start = Instant::now();
            let r = f();
            r.into_secs(start.elapsed().as_secs_f64())
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    samples[samples.len() / 2]
}

/// What a timed pass scores: `()` passes score their own wall time, `f64`
/// passes score the duration they measured internally.
pub(crate) trait IntoSecs {
    fn into_secs(self, elapsed: f64) -> f64;
}

impl IntoSecs for () {
    fn into_secs(self, elapsed: f64) -> f64 {
        elapsed
    }
}

impl IntoSecs for f64 {
    fn into_secs(self, _elapsed: f64) -> f64 {
        self
    }
}

/// `BENCH_2.json` payload.
#[derive(serde::Serialize)]
struct Report {
    n: usize,
    tours_per_pass: u32,
    repeats: usize,
    live_tour_pass_s: f64,
    frozen_noop_pass_s: f64,
    frozen_registry_pass_s: f64,
    frozen_speedup_vs_live: f64,
    recorder_overhead_pct: f64,
    recorder_budget_pct: f64,
}

/// `BENCH_4.json` payload.
#[derive(serde::Serialize)]
struct ServiceReport {
    n: usize,
    queries_per_pass: u64,
    repeats: usize,
    arms: Vec<ServiceArm>,
    /// Quiet-overlay throughput ratio of the 4-worker arm over the
    /// 1-worker arm; absent when either arm was not measured (smoke).
    scaling_1_to_4: Option<f64>,
}

#[derive(serde::Serialize)]
struct ServiceArm {
    workers: usize,
    no_churn_qps: f64,
    churn_qps: f64,
}

/// `BENCH_10.json` payload.
#[derive(serde::Serialize)]
struct BatchedReport {
    samples: u64,
    frontier_width: u64,
    timer: f64,
    repeats: usize,
    /// Asserted at the memory-wall scale (the largest non-smoke `n`).
    target_exact_speedup: f64,
    /// Floor asserted at the paper scale, where the mostly-L3-resident
    /// snapshot caps the physically achievable ratio below 3×.
    paper_scale_exact_speedup: f64,
    scales: Vec<BatchedScale>,
}

/// One snapshot scale of the batched probe's mode grid.
#[derive(serde::Serialize)]
struct BatchedScale {
    n: usize,
    /// Always `true` when the report exists at all: the probe aborts if
    /// the exact-mode samples are not bit-identical to the serial walks.
    equivalent: bool,
    serial_samples_per_s: f64,
    exact_samples_per_s: f64,
    fast_samples_per_s: f64,
    exact_speedup: f64,
    fast_speedup: f64,
}

/// `BENCH_6.json` payload.
#[derive(serde::Serialize)]
struct ShardedReport {
    n: usize,
    samples_per_pass: u64,
    counts_per_pass: u64,
    timer: f64,
    repeats: usize,
    /// Always `true` when the report exists at all: the probe aborts if
    /// any sharded arm's outcomes differ from the unsharded service's.
    equivalent: bool,
    arms: Vec<ShardArm>,
    /// Best multi-shard queries/sec over the single-shard arm; absent
    /// when the single-shard arm was not measured.
    multi_shard_speedup: Option<f64>,
    target_speedup: f64,
}

#[derive(serde::Serialize)]
struct ShardArm {
    shards: usize,
    queries_per_s: f64,
    samples_per_s: f64,
}

/// `BENCH_7.json` payload.
#[derive(serde::Serialize)]
struct SnapshotIoReport {
    n: usize,
    repeats: usize,
    snapshot_bytes: u64,
    build_pass_s: f64,
    save_pass_s: f64,
    load_pass_s: f64,
    load_over_build_ratio: f64,
    target_ratio: f64,
    /// Always `true` when the report exists at all: the probe aborts if
    /// the reloaded view does not re-encode byte-identically.
    byte_identical: bool,
}

/// `BENCH_8.json` payload.
#[derive(serde::Serialize)]
struct ByzantineReport {
    n: usize,
    samples: u64,
    steps: u64,
    repeats: usize,
    byzantine_fraction: f64,
    degree_inflation: f64,
    walk_swallow: f64,
    naive_honest_pass_s: f64,
    hardened_honest_pass_s: f64,
    hardening_overhead_pct: f64,
    naive_rel_err: f64,
    hardened_rel_err: f64,
    /// Naive relative error over hardened relative error at the attacked
    /// cell; at full scale the probe aborts below `target_advantage`.
    hardened_advantage: f64,
    target_advantage: f64,
}

/// `BENCH_9.json` payload.
#[derive(serde::Serialize)]
struct OverlayReport {
    n: usize,
    seed_size: usize,
    joins_per_tick: usize,
    ticks: u64,
    repeats: usize,
    /// Always `true` when the report exists at all: the probe aborts if
    /// replaying the construction does not reproduce the overlay.
    deterministic: bool,
    construct_pass_s: f64,
    ticks_per_s: f64,
    joins_per_s: f64,
    lambda2_final: f64,
    connected_final: bool,
    naive_rel_err: f64,
    coupled_rel_err: f64,
    /// Naive relative error over coupled relative error at the final
    /// checkpoint; at full scale the probe aborts below `target_gap`.
    coupling_gap: f64,
    target_gap: f64,
}

/// Keeps `PathBuf` in the public signature story for the binary without
/// re-importing it everywhere.
#[must_use]
pub fn default_output_path(arm: ProbeArm) -> PathBuf {
    PathBuf::from(arm.default_output())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_round_trip() {
        for arm in ProbeArm::ALL {
            assert_eq!(ProbeArm::from_name(arm.name()), Some(arm));
        }
        assert_eq!(ProbeArm::from_name("no-such-arm"), None);
    }

    #[test]
    fn default_outputs_are_distinct() {
        let mut outs: Vec<&str> = ProbeArm::ALL.iter().map(|a| a.default_output()).collect();
        outs.sort_unstable();
        outs.dedup();
        assert_eq!(outs.len(), ProbeArm::ALL.len());
    }
}

//! Ablation experiments beyond the paper's figures.
//!
//! These quantify the design choices the paper argues for:
//! CTRW-vs-DTRW sampling bias (the reason §4.1 exists), the role of
//! expansion (§3.4), the √l cost advantage over the inverted birthday
//! paradox (§4.3), and the cost/accuracy position of the related-work
//! baselines (§2.2).

use census_core::birthday::InvertedBirthdayParadox;
use census_core::gossip::GossipAveraging;
use census_core::polling::ProbabilisticPolling;
use census_core::{theory, PointEstimator, RandomTour, SampleCollide, SizeEstimator};
use census_graph::{generators, spectral, Graph};
use census_metrics::{Metric, Registry, RunCtx};
use census_sampling::{quality, CtrwSampler, DtrwSampler, MetropolisSampler, Sampler};
use census_stats::csv::CsvTable;
use census_stats::{OnlineMoments, Summary};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::{summary_line, FigureResult, Params};

/// A boxed probe measuring one sampler: returns `(tv_to_uniform, mean_hops)`.
type SamplerProbe<'g> = Box<dyn Fn(&mut SmallRng) -> (f64, f64) + 'g>;

fn ablation_n(p: &Params, cap: usize) -> usize {
    p.n.min(cap).max(200)
}

/// Sampler-bias ablation: total-variation distance to uniform and hop
/// cost for the CTRW sampler (exponential and deterministic sojourns),
/// the fixed-step DTRW, and Metropolis–Hastings, across three
/// topologies. Columns: `topo (0=balanced, 1=scale_free, 2=ring),
/// sampler (0=ctrw, 1=ctrw_det, 2=dtrw, 3=metropolis), tv, avg_hops`.
/// Sampling starts from a fixed initiator (averaging over initiators
/// hides bias by symmetry).
#[must_use]
pub fn sampler_bias(p: &Params, rec: &Registry) -> FigureResult {
    let n = ablation_n(p, 1_500);
    let runs = (n * 30) as u32;
    let mut rng = SmallRng::seed_from_u64(p.seed ^ 0xAB1);
    let topologies: Vec<(&str, Graph)> = vec![
        ("balanced", generators::balanced(n, p.max_degree, &mut rng)),
        (
            "scale_free",
            generators::barabasi_albert(n, p.ba_m, &mut rng),
        ),
        // 6-regular bipartite: fast-mixing (so T=10 suffices for the
        // exponential CTRW) yet parity-locked for deterministic sojourns
        // -- the Remark 1 counterexample.
        (
            "bipartite",
            generators::regular_bipartite(n / 2, 6, &mut rng).expect("simple union exists"),
        ),
    ];
    let mut table = CsvTable::new(&["topo", "sampler", "tv", "avg_hops"]);
    let mut summary = String::from(
        "ablation-sampler-bias: TV distance to uniform from a fixed initiator\n\
         samplers: 0=CTRW(exp) 1=CTRW(det) 2=DTRW 3=Metropolis\n",
    );
    for (ti, (tname, g)) in topologies.iter().enumerate() {
        let d_avg = g.average_degree();
        let dtrw_steps = (p.timer * d_avg).ceil() as u64 + 1; // comparable budget, odd-ended
        let samplers: Vec<(&str, SamplerProbe<'_>)> = vec![
            sampler_probe(g, CtrwSampler::new(p.timer), runs, rec),
            sampler_probe(
                g,
                CtrwSampler::with_deterministic_sojourns(p.timer),
                runs,
                rec,
            ),
            sampler_probe(g, DtrwSampler::new(dtrw_steps), runs, rec),
            sampler_probe(g, MetropolisSampler::new(dtrw_steps), runs, rec),
        ]
        .into_iter()
        .zip(["ctrw", "ctrw_det", "dtrw", "metropolis"])
        .map(|(f, name)| (name, f))
        .collect();
        for (si, (sname, probe)) in samplers.into_iter().enumerate() {
            let (tv, hops) = probe(&mut rng);
            table.push_row(&[ti as f64, si as f64, tv, hops]);
            summary.push_str(&format!("  {tname}/{sname}: tv={tv:.4} hops={hops:.1}\n"));
        }
    }
    summary.push_str(
        "  expectation: CTRW(exp) uniform everywhere; DTRW biased off regular\n\
         topologies; CTRW(det) fails on bipartite structure (Remark 1).\n",
    );
    FigureResult {
        id: "ablation-sampler-bias",
        table,
        summary,
    }
}

fn sampler_probe<'g, S: Sampler + 'g>(
    g: &'g Graph,
    sampler: S,
    runs: u32,
    rec: &'g Registry,
) -> SamplerProbe<'g> {
    Box::new(move |rng: &mut SmallRng| {
        let initiator = g.nodes().next().expect("non-empty");
        let idx = census_graph::spectral::DenseIndex::new(g);
        let mut counts = vec![0u64; idx.len()];
        let mut cost = OnlineMoments::new();
        let mut ctx = RunCtx::with_recorder(g, rng, rec);
        for _ in 0..runs {
            let s = sampler.sample_ctx(&mut ctx, initiator).expect("connected");
            counts[idx.dense(s.node)] += 1;
            cost.push(s.hops as f64);
        }
        let nn = counts.len();
        let empirical: Vec<f64> = counts.iter().map(|&c| c as f64 / f64::from(runs)).collect();
        let uniform = vec![1.0 / nn as f64; nn];
        let tv = census_stats::total_variation(&empirical, &uniform);
        (tv, cost.mean())
    })
}

/// Expansion ablation: spectral gap, Random Tour relative variance, and
/// exact CTRW TV at the paper's timer, on four same-size topologies.
/// Columns: `topo (0=balanced, 1=hypercube, 2=torus, 3=ring), lambda2,
/// rt_rel_var, ctrw_tv`.
#[must_use]
pub fn expansion(p: &Params, rec: &Registry) -> FigureResult {
    let mut rng = SmallRng::seed_from_u64(p.seed ^ 0xAB2);
    let dim = 10usize; // 1024 nodes everywhere
    let n = 1usize << dim;
    let side = 1usize << (dim / 2);
    let topologies: Vec<(&str, Graph)> = vec![
        ("balanced", generators::balanced(n, p.max_degree, &mut rng)),
        ("hypercube", generators::hypercube(dim)),
        ("torus", generators::torus(side, side)),
        ("ring", generators::ring(n)),
    ];
    let mut table = CsvTable::new(&["topo", "lambda2", "rt_rel_var", "ctrw_tv"]);
    let mut summary =
        String::from("ablation-expansion: estimator quality degrades as the spectral gap closes\n");
    for (ti, (name, g)) in topologies.iter().enumerate() {
        let gap = spectral::spectral_gap_with(g, 300_000, 1e-13).lambda2;
        let probe = g.nodes().next().expect("non-empty");
        let rt = RandomTour::new();
        let mut ctx = RunCtx::with_recorder(g, &mut rng, rec);
        let m: OnlineMoments = (0..4_000)
            .map(|_| {
                let e = rt.estimate_with(&mut ctx, probe).expect("connected");
                ctx.on_event(Metric::ReportedMessages, e.messages);
                e.value
            })
            .collect();
        let rel_var = m.sample_variance() / (g.num_nodes() as f64).powi(2);
        let tv = quality::exact_ctrw_tv_to_uniform(g, probe, p.timer);
        table.push_row(&[ti as f64, gap, rel_var, tv]);
        summary.push_str(&format!(
            "  {name}: lambda2={gap:.4} rt_rel_var={rel_var:.2} ctrw_tv(T={})={tv:.4}\n",
            p.timer
        ));
    }
    summary.push_str("  expectation: ring/torus (vanishing gap) show inflated variance and TV.\n");
    FigureResult {
        id: "ablation-expansion",
        table,
        summary,
    }
}

/// Sample & Collide vs the inverted birthday paradox: message cost to
/// reach the same target variance `1/l`, using the CTRW sampler for
/// both. Columns: `l, sc_messages, ibp_messages, measured_ratio,
/// theory_ratio` (theory: `√(πl)/2`).
#[must_use]
pub fn sc_vs_ibp(p: &Params, rec: &Registry) -> FigureResult {
    let n = ablation_n(p, 20_000);
    let mut rng = SmallRng::seed_from_u64(p.seed ^ 0xAB3);
    let g = generators::balanced(n, p.max_degree, &mut rng);
    let probe = g.nodes().next().expect("non-empty");
    let mut table = CsvTable::new(&[
        "l",
        "sc_messages",
        "ibp_messages",
        "measured_ratio",
        "theory_ratio",
    ]);
    let mut summary = String::from(
        "ablation-sc-vs-ibp: cost to reach relative variance 1/l (same CTRW sampler)\n",
    );
    for l in [4u32, 16, 64] {
        let reps = 12u32;
        let sc = SampleCollide::new(CtrwSampler::new(p.timer), l);
        let ibp = InvertedBirthdayParadox::new(CtrwSampler::new(p.timer), l);
        let sc_cost: OnlineMoments = (0..reps)
            .map(|_| {
                let mut ctx = RunCtx::with_recorder(&g, &mut rng, rec);
                let e = sc.estimate_with(&mut ctx, probe).expect("connected");
                ctx.on_event(Metric::ReportedMessages, e.messages);
                e.messages as f64
            })
            .collect();
        let ibp_cost: OnlineMoments = (0..reps)
            .map(|_| {
                let mut ctx = RunCtx::with_recorder(&g, &mut rng, rec);
                let e = ibp.estimate_with(&mut ctx, probe).expect("connected");
                ctx.on_event(Metric::ReportedMessages, e.messages);
                e.messages as f64
            })
            .collect();
        let ratio = ibp_cost.mean() / sc_cost.mean();
        let theory = (std::f64::consts::PI * f64::from(l)).sqrt() / 2.0;
        table.push_row(&[f64::from(l), sc_cost.mean(), ibp_cost.mean(), ratio, theory]);
        summary_line(
            &mut summary,
            &format!("cost ratio IBP/S&C at l={l}"),
            theory,
            ratio,
        );
    }
    summary.push_str("  expectation: ratio grows as sqrt(l) — the paper's §4.3 claim.\n");
    FigureResult {
        id: "ablation-sc-vs-ibp",
        table,
        summary,
    }
}

/// Baseline zoo: relative RMSE and message cost of one estimate from
/// each method on the same overlay. Columns: `method (0=rt, 1=sc_l10,
/// 2=sc_l100, 3=gossip, 4=polling), rel_rmse, avg_messages`.
#[must_use]
pub fn baselines(p: &Params, rec: &Registry) -> FigureResult {
    let n = ablation_n(p, 5_000);
    let mut rng = SmallRng::seed_from_u64(p.seed ^ 0xAB4);
    let g = generators::balanced(n, p.max_degree, &mut rng);
    let truth = n as f64;
    let probe = g.nodes().next().expect("non-empty");
    let reps = 25u32;

    let mut table = CsvTable::new(&["method", "rel_rmse", "avg_messages"]);
    let mut summary = String::from("ablation-baselines: accuracy vs cost of one estimate\n");

    let mut push = |mi: f64, name: &str, vals: &[f64], costs: &[f64]| {
        let rmse = (vals.iter().map(|v| (v / truth - 1.0).powi(2)).sum::<f64>()
            / vals.len() as f64)
            .sqrt();
        let cost = Summary::from_slice(costs).mean;
        table.push_row(&[mi, rmse, cost]);
        summary.push_str(&format!(
            "  {name}: rel_rmse={rmse:.3} messages={cost:.0}\n"
        ));
    };

    let collect = |est: &dyn Fn(&mut SmallRng) -> (f64, u64), rng: &mut SmallRng| {
        let mut vals = Vec::new();
        let mut costs = Vec::new();
        for _ in 0..reps {
            let (v, c) = est(rng);
            vals.push(v);
            costs.push(c as f64);
        }
        (vals, costs)
    };

    let rt = RandomTour::new();
    let (v, c) = collect(
        &|rng| {
            let mut ctx = RunCtx::with_recorder(&g, rng, rec);
            let e = rt.estimate_with(&mut ctx, probe).expect("connected");
            ctx.on_event(Metric::ReportedMessages, e.messages);
            (e.value, e.messages)
        },
        &mut rng,
    );
    push(0.0, "random tour (1 tour)", &v, &c);

    for (mi, l) in [(1.0, 10u32), (2.0, 100)] {
        let sc = SampleCollide::new(CtrwSampler::new(p.timer), l)
            .with_point_estimator(PointEstimator::Asymptotic);
        let (v, c) = collect(
            &|rng| {
                let mut ctx = RunCtx::with_recorder(&g, rng, rec);
                let e = sc.estimate_with(&mut ctx, probe).expect("connected");
                ctx.on_event(Metric::ReportedMessages, e.messages);
                (e.value, e.messages)
            },
            &mut rng,
        );
        push(mi, &format!("sample&collide l={l}"), &v, &c);
    }

    let rounds = (truth.log2().ceil() as u32) * 3;
    let gossip = GossipAveraging::new(rounds);
    let (v, c) = collect(
        &|rng| {
            let mut ctx = RunCtx::with_recorder(&g, rng, rec);
            let out = gossip.run_with(&mut ctx);
            ctx.on_event(Metric::ReportedMessages, out.messages);
            let idx = census_graph::spectral::DenseIndex::new(&g);
            (out.estimates[idx.dense(probe)], out.messages)
        },
        &mut rng,
    );
    push(3.0, &format!("gossip averaging ({rounds} rounds)"), &v, &c);

    let polling = ProbabilisticPolling::new(0.1);
    let (v, c) = collect(
        &|rng| {
            let mut ctx = RunCtx::with_recorder(&g, rng, rec);
            let out = polling.run_with(&mut ctx, probe);
            ctx.on_event(Metric::ReportedMessages, out.messages);
            (out.estimate, out.messages)
        },
        &mut rng,
    );
    push(4.0, "probabilistic polling (p=0.1)", &v, &c);

    summary.push_str(&format!(
        "  theory: S&C l=100 messages ≈ {:.0} (E[C_l]·T·d̄), RT tour ≈ {:.0} (Σd/d_i)\n",
        theory::sc_expected_messages(truth, 100, p.timer, g.average_degree()),
        g.degree_sum() as f64 / g.degree(probe) as f64,
    ));
    FigureResult {
        id: "ablation-baselines",
        table,
        summary,
    }
}

/// Churn-timer ablation: Sample & Collide tracking quality on the
/// *shrinking* overlay (Figure 11's scenario) as a function of the CTRW
/// timer `T`. Uniform departures without repair degrade the overlay's
/// expansion, so the fixed `T = 10` of the static experiments
/// under-mixes on the degraded graph and biases estimates low — §4.1's
/// "estimates should increase with T until T is sufficiently large",
/// observed under churn. Columns: `timer, final_quality_percent`.
#[must_use]
pub fn churn_timer(p: &Params, rec: &Registry) -> FigureResult {
    use census_sim::runner::{run_dynamic_rec, RunConfig};
    use census_sim::{DynamicNetwork, JoinRule, Scenario};

    let n = ablation_n(p, 20_000);
    let horizon = p.sc_dynamic_runs.max(60);
    let mut table = CsvTable::new(&["timer", "final_quality_percent"]);
    let mut summary = String::from(
        "ablation-churn-timer: S&C (l=100) tracking on a shrinking overlay vs timer T
",
    );
    for (i, timer) in [5.0f64, 10.0, 20.0, 30.0].into_iter().enumerate() {
        let mut rng = SmallRng::seed_from_u64(p.seed ^ (0xC7 + i as u64));
        let g = generators::balanced(n, p.max_degree, &mut rng);
        let mut net = DynamicNetwork::new(
            g,
            JoinRule::Balanced {
                max_degree: p.max_degree,
            },
        );
        let scenario = Scenario::new().remove_gradually(
            (horizon as f64 * 0.3) as u64,
            (horizon as f64 * 0.8) as u64,
            (n / 2) as u64,
        );
        let sc = SampleCollide::new(CtrwSampler::new(timer), 100)
            .with_point_estimator(PointEstimator::Asymptotic);
        let records = run_dynamic_rec(
            &mut net,
            &sc,
            &RunConfig::new(horizon),
            &scenario,
            &mut rng,
            rec,
        );
        let tail = &records[records.len() - records.len() / 4..];
        let quality =
            100.0 * tail.iter().map(|r| r.estimate / r.true_size).sum::<f64>() / tail.len() as f64;
        table.push_row(&[timer, quality]);
        summary_line(
            &mut summary,
            &format!("final quality % at T={timer}"),
            100.0,
            quality,
        );
    }
    summary.push_str(
        "  expectation: quality climbs towards 100% as T grows past the degraded
         overlay's mixing time; T=10 (tuned for the intact overlay) reads low.
",
    );
    FigureResult {
        id: "ablation-churn-timer",
        table,
        summary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Params {
        let mut p = Params::scaled(0.01);
        p.n = 400;
        p
    }

    #[test]
    fn sampler_bias_orders_ctrw_before_dtrw() {
        let r = sampler_bias(&tiny(), &Registry::new());
        let rows: Vec<Vec<f64>> = r
            .table
            .to_csv_string()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(|c| c.parse().expect("numeric")).collect())
            .collect();
        // On the scale-free topology (topo=1) the CTRW (sampler=0) must
        // beat the DTRW (sampler=2) on TV distance.
        let tv = |topo: f64, sampler: f64| {
            rows.iter()
                .find(|r| r[0] == topo && r[1] == sampler)
                .expect("row present")[2]
        };
        assert!(tv(1.0, 0.0) < tv(1.0, 2.0));
        // On the bipartite topology the deterministic-sojourn variant is
        // parity-locked (TV >= 1/2) while the exponential variant mixes.
        assert!(tv(2.0, 1.0) > 0.4, "det sojourns must be parity-locked");
        assert!(tv(2.0, 1.0) > 2.0 * tv(2.0, 0.0));
    }

    #[test]
    fn churn_timer_quality_improves_with_t() {
        // Needs N large enough that the under-mixing bias (downward)
        // dominates the asymptotic estimator's +sqrt(2l/N) bias; at tiny
        // N the latter swamps everything.
        let mut p = tiny();
        p.n = 8_000;
        p.sc_dynamic_runs = 60;
        let r = churn_timer(&p, &Registry::new());
        let rows: Vec<Vec<f64>> = r
            .table
            .to_csv_string()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(|c| c.parse().expect("numeric")).collect())
            .collect();
        let q_small = rows[0][1];
        let q_large = rows.last().expect("rows")[1];
        assert!(
            q_large > q_small,
            "larger timers must track better on the degraded overlay: {q_small} vs {q_large}"
        );
        assert!(
            q_small < 95.0,
            "T=5 must show the under-mixing bias, got {q_small}"
        );
        assert!((q_large - 100.0).abs() < 35.0, "T=30 quality {q_large}");
    }

    #[test]
    fn sc_vs_ibp_ratio_grows() {
        let r = sc_vs_ibp(&tiny(), &Registry::new());
        let rows: Vec<Vec<f64>> = r
            .table
            .to_csv_string()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(|c| c.parse().expect("numeric")).collect())
            .collect();
        assert!(
            rows.last().expect("rows")[3] > rows[0][3] * 1.5,
            "IBP/S&C cost ratio should grow with l"
        );
    }

    #[test]
    fn baselines_rank_costs_sanely() {
        let r = baselines(&tiny(), &Registry::new());
        let reg = Registry::new();
        let again = baselines(&tiny(), &reg);
        assert_eq!(
            r.table.to_csv_string(),
            again.table.to_csv_string(),
            "recording must be passive"
        );
        // Every baseline charges its own message class and reports what
        // it consumed, so the partition reconciles.
        assert_eq!(reg.message_total(), reg.counter(Metric::ReportedMessages));
        assert!(reg.counter(Metric::GossipMessages) > 0);
        assert!(reg.counter(Metric::PollFloodMessages) > 0);
        assert!(reg.counter(Metric::PollReplyMessages) > 0);
        assert!(reg.counter(Metric::TourHops) > 0);
        assert!(reg.counter(Metric::CtrwHops) > 0);
        let rows: Vec<Vec<f64>> = r
            .table
            .to_csv_string()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(|c| c.parse().expect("numeric")).collect())
            .collect();
        let cost = |m: f64| rows.iter().find(|r| r[0] == m).expect("row")[2];
        let rmse = |m: f64| rows.iter().find(|r| r[0] == m).expect("row")[1];
        // Scale-invariant shapes: S&C cost grows ~sqrt(l) between l=10
        // and l=100, and l=100 is far more accurate than one RT tour.
        // (The RT-vs-S&C cost crossover is a large-N effect; see
        // integration tests for the two-scale comparison.)
        assert!(cost(1.0) < cost(2.0), "S&C l=10 cheaper than l=100");
        assert!(
            rmse(2.0) < rmse(0.0),
            "S&C l=100 beats one RT tour on accuracy"
        );
    }
}

//! Regeneration of every figure and table in the paper's §5.
//!
//! Conventions shared by all figures:
//!
//! - "quality %" is `100 · estimate / true_size`, the paper's y-axis for
//!   Figures 1–3, 6 and 7;
//! - estimate and cost CDFs (Figures 4 and 5) are normalised by the true
//!   system size;
//! - dynamic experiments (Figures 8–13) plot the true component size of
//!   the probing node next to the estimates, and run the paper's exact
//!   churn schedules scaled to the configured horizon.

use census_core::{PointEstimator, RandomTour, SampleCollide};
use census_graph::{generators, Graph, NodeId};
use census_metrics::Registry;
use census_sampling::CtrwSampler;
use census_sim::parallel::replicate_recorded;
use census_sim::runner::{
    cumulative_quality_percent, run_dynamic_rec, run_static_rec, RunConfig, RunRecord,
};
use census_sim::{DynamicNetwork, JoinRule, Scenario};
use census_stats::csv::CsvTable;
use census_stats::{Ecdf, SlidingWindow, Summary};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::{summary_line, FigureResult, Params};

/// Which §5.1 topology an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Topo {
    Balanced,
    ScaleFree,
}

fn build(p: &Params, topo: Topo, seed: u64) -> DynamicNetwork {
    let mut rng = SmallRng::seed_from_u64(seed);
    match topo {
        Topo::Balanced => DynamicNetwork::new(
            generators::balanced(p.n, p.max_degree, &mut rng),
            JoinRule::Balanced {
                max_degree: p.max_degree,
            },
        ),
        Topo::ScaleFree => DynamicNetwork::new(
            generators::barabasi_albert(p.n, p.ba_m, &mut rng),
            JoinRule::PreferentialAttachment { m: p.ba_m },
        ),
    }
}

fn pick_probe(g: &Graph, rng: &mut SmallRng) -> NodeId {
    g.random_node(rng).expect("overlay is non-empty")
}

/// Runs `f(replication_index, replica_registry)` for `p.replications`
/// independent replications in parallel (the paper plots "Estimation
/// #1..#3") via the deterministic engine in [`census_sim::parallel`],
/// folding the per-replica registries into `rec` in replica order.
///
/// The closures here derive their sub-seeds from the replication *index*
/// with the harness's historical XOR derivations, not from the engine's
/// SplitMix64 stream — that keeps every figure CSV bit-identical to the
/// serial harness this replaces, for any replication count. Recording is
/// passive, so the CSVs are also independent of the registry handed in.
fn replications<F>(p: &Params, rec: &Registry, f: F) -> Vec<Vec<RunRecord>>
where
    F: Fn(u64, &Registry) -> Vec<RunRecord> + Sync + Send,
{
    let (series, merged) = replicate_recorded(p.replications, p.seed, |r, local| f(r.index, local));
    rec.absorb(&merged);
    series
}

/// Header `fixed..., estimation1, ..., estimationR` as owned strings
/// (column counts now follow the [`Params::replications`] dial).
fn estimation_header(fixed: &[&str], replications: u64) -> Vec<String> {
    let mut cols: Vec<String> = fixed.iter().map(|&s| s.to_string()).collect();
    cols.extend((1..=replications).map(|i| format!("estimation{i}")));
    cols
}

fn table_with_header(cols: &[String]) -> CsvTable {
    let refs: Vec<&str> = cols.iter().map(String::as_str).collect();
    CsvTable::new(&refs)
}

fn rt_static_series(p: &Params, topo: Topo, replication: u64, rec: &Registry) -> Vec<RunRecord> {
    let net = build(p, topo, p.seed.wrapping_add(replication));
    let mut rng = SmallRng::seed_from_u64(p.seed ^ (0xA5A5 + replication));
    let probe = pick_probe(net.graph(), &mut rng);
    run_static_rec(&net, &RandomTour::new(), probe, p.rt_runs, &mut rng, rec)
}

fn sc_estimator(p: &Params, l: u32) -> SampleCollide<CtrwSampler> {
    SampleCollide::new(CtrwSampler::new(p.timer), l)
        .with_point_estimator(PointEstimator::Asymptotic)
}

fn sc_static_series(
    p: &Params,
    topo: Topo,
    l: u32,
    runs: u64,
    replication: u64,
    rec: &Registry,
) -> Vec<RunRecord> {
    let net = build(p, topo, p.seed.wrapping_add(replication));
    let mut rng = SmallRng::seed_from_u64(p.seed ^ (0x5A5A + replication));
    let probe = pick_probe(net.graph(), &mut rng);
    run_static_rec(&net, &sc_estimator(p, l), probe, runs, &mut rng, rec)
}

/// Figure 1: cumulative averages of Random Tour estimates (as % of system
/// size) over 1..rt_runs estimates, independent graphs per replication.
/// Columns: `run, estimation1, ..., estimationR`.
#[must_use]
pub fn fig1(p: &Params, rec: &Registry) -> FigureResult {
    let series = replications(p, rec, |i, local| {
        rt_static_series(p, Topo::Balanced, i, local)
    });
    let quality: Vec<Vec<f64>> = series
        .iter()
        .map(|s| cumulative_quality_percent(s))
        .collect();
    let mut table = table_with_header(&estimation_header(&["run"], p.replications));
    for run in 0..quality[0].len() {
        let mut row = vec![(run + 1) as f64];
        row.extend(quality.iter().map(|q| q[run]));
        table.push_row(&row);
    }
    let mut summary = String::from("fig1: Random Tour cumulative averages converge to 100%\n");
    for (i, q) in quality.iter().enumerate() {
        summary_line(
            &mut summary,
            &format!("final cumulative quality %, estimation #{}", i + 1),
            100.0,
            *q.last().expect("non-empty"),
        );
    }
    FigureResult {
        id: "fig1",
        table,
        summary,
    }
}

fn windowed_quality_figure(
    p: &Params,
    topo: Topo,
    id: &'static str,
    rec: &Registry,
) -> FigureResult {
    let series = replications(p, rec, |i, local| rt_static_series(p, topo, i, local));
    let window = p.rt_window;
    let smoothed: Vec<Vec<f64>> = series
        .iter()
        .map(|s| {
            let mut w = SlidingWindow::new(window);
            s.iter()
                .map(|r| {
                    w.push(r.estimate);
                    100.0 * w.mean() / r.true_size
                })
                .collect()
        })
        .collect();
    let mut table = table_with_header(&estimation_header(&["run"], p.replications));
    for run in window..p.rt_runs as usize {
        let mut row = vec![(run + 1) as f64];
        row.extend(smoothed.iter().map(|s| s[run]));
        table.push_row(&row);
    }
    let mut summary =
        format!("{id}: Random Tour sliding-window({window}) quality stays within ±20% of 100%\n");
    for (i, s) in smoothed.iter().enumerate() {
        let tail = Summary::from_slice(&s[window..]);
        summary_line(
            &mut summary,
            &format!("windowed quality %, estimation #{}: mean", i + 1),
            100.0,
            tail.mean,
        );
        summary_line(
            &mut summary,
            &format!("windowed quality %, estimation #{}: std", i + 1),
            // Single-tour relative std ~ sqrt(1.3) (Table 1), so the
            // window mean has std ~ sqrt(1.3/window) * 100%.
            100.0 * (1.3f64 / window as f64).sqrt(),
            tail.std,
        );
    }
    FigureResult { id, table, summary }
}

/// Figure 2: Random Tour estimates smoothed over a sliding window of
/// `rt_window` (paper: 200), balanced graph.
/// Columns: `run, estimation1, estimation2, estimation3` (quality %).
#[must_use]
pub fn fig2(p: &Params, rec: &Registry) -> FigureResult {
    windowed_quality_figure(p, Topo::Balanced, "fig2", rec)
}

fn sc_quality_figure(p: &Params, topo: Topo, id: &'static str, rec: &Registry) -> FigureResult {
    let series = sc_static_series(p, topo, 100, p.sc_runs, 0, rec);
    let mut table = CsvTable::new(&["run", "quality"]);
    let quality: Vec<f64> = series
        .iter()
        .map(|r| 100.0 * r.estimate / r.true_size)
        .collect();
    for (run, q) in quality.iter().enumerate() {
        table.push_row(&[(run + 1) as f64, *q]);
    }
    let s = Summary::from_slice(&quality);
    let mut summary = format!("{id}: Sample & Collide (l=100, T=10) individual estimates\n");
    summary_line(&mut summary, "mean quality %", 100.0, s.mean);
    // Corollary 1: relative std = 1/sqrt(l) = 10%.
    summary_line(&mut summary, "std of quality % (1/√l law)", 10.0, s.std);
    FigureResult { id, table, summary }
}

/// Figure 3: Sample & Collide `l = 100` raw estimates on the balanced
/// graph, no smoothing. Columns: `run, quality`.
#[must_use]
pub fn fig3(p: &Params, rec: &Registry) -> FigureResult {
    sc_quality_figure(p, Topo::Balanced, "fig3", rec)
}

/// The shared dataset behind Figures 4, 5 and Table 1: normalised values
/// and costs of RT, S&C(l=10) and S&C(l=100) on one balanced overlay.
struct ComparisonData {
    rt: Vec<(f64, f64)>,
    sc10: Vec<(f64, f64)>,
    sc100: Vec<(f64, f64)>,
}

fn comparison_data(p: &Params, rec: &Registry) -> ComparisonData {
    let runs_rt = p.rt_runs.min(1_000);
    let runs_sc10 = (p.sc_runs * 3).min(300);
    let runs_sc100 = p.sc_runs;
    let normalise = |records: Vec<RunRecord>| {
        records
            .into_iter()
            .map(|r| (r.estimate / r.true_size, r.messages as f64 / r.true_size))
            .collect::<Vec<_>>()
    };
    // Three *methods* (not replications) run concurrently; the engine's
    // index-ordered merge keeps the destructuring below — and the
    // registry absorption order — deterministic. Sub-seeds keep the
    // historical XOR derivations for bit-compatible CSVs; the engine's
    // own seed stream is unused here.
    let (results, merged) = replicate_recorded(3, p.seed, |r, local| {
        let net = build(p, Topo::Balanced, p.seed);
        match r.index {
            0 => {
                let mut rng = SmallRng::seed_from_u64(p.seed ^ 0xF1);
                let probe = pick_probe(net.graph(), &mut rng);
                run_static_rec(&net, &RandomTour::new(), probe, runs_rt, &mut rng, local)
            }
            1 => {
                let mut rng = SmallRng::seed_from_u64(p.seed ^ 0xF2);
                let probe = pick_probe(net.graph(), &mut rng);
                run_static_rec(
                    &net,
                    &sc_estimator(p, 10),
                    probe,
                    runs_sc10,
                    &mut rng,
                    local,
                )
            }
            _ => {
                let mut rng = SmallRng::seed_from_u64(p.seed ^ 0xF3);
                let probe = pick_probe(net.graph(), &mut rng);
                run_static_rec(
                    &net,
                    &sc_estimator(p, 100),
                    probe,
                    runs_sc100,
                    &mut rng,
                    local,
                )
            }
        }
    });
    rec.absorb(&merged);
    let mut results = results.into_iter();
    ComparisonData {
        rt: normalise(results.next().expect("three method tasks")),
        sc10: normalise(results.next().expect("three method tasks")),
        sc100: normalise(results.next().expect("three method tasks")),
    }
}

fn cdf_figure(
    id: &'static str,
    data: &ComparisonData,
    pick: impl Fn(&(f64, f64)) -> f64,
    x_max: f64,
    what: &str,
) -> FigureResult {
    let cdf_rt = Ecdf::new(data.rt.iter().map(&pick).collect());
    let cdf_sc10 = Ecdf::new(data.sc10.iter().map(&pick).collect());
    let cdf_sc100 = Ecdf::new(data.sc100.iter().map(&pick).collect());
    let mut table = CsvTable::new(&["value", "rt", "sc_l10", "sc_l100"]);
    let steps = 240;
    for i in 0..=steps {
        let x = x_max * i as f64 / steps as f64;
        table.push_row(&[x, cdf_rt.eval(x), cdf_sc10.eval(x), cdf_sc100.eval(x)]);
    }
    let mut summary = format!("{id}: CDFs of normalised {what} (steeper = less dispersed)\n");
    for (name, cdf) in [
        ("RT", &cdf_rt),
        ("S&C l=10", &cdf_sc10),
        ("S&C l=100", &cdf_sc100),
    ] {
        summary.push_str(&format!(
            "  {name}: median {:.3}, 10%-90% spread {:.3}\n",
            cdf.median(),
            cdf.quantile(0.9) - cdf.quantile(0.1)
        ));
    }
    FigureResult { id, table, summary }
}

/// Figure 4: CDF of estimate values normalised by system size, for RT,
/// S&C `l = 10` and S&C `l = 100`.
/// Columns: `value, rt, sc_l10, sc_l100`.
#[must_use]
pub fn fig4(p: &Params, rec: &Registry) -> FigureResult {
    let data = comparison_data(p, rec);
    cdf_figure("fig4", &data, |&(v, _)| v, 6.0, "estimate values")
}

/// Figure 5: CDF of estimation costs (messages) normalised by system
/// size. Columns: `value, rt, sc_l10, sc_l100`.
#[must_use]
pub fn fig5(p: &Params, rec: &Registry) -> FigureResult {
    let data = comparison_data(p, rec);
    cdf_figure("fig5", &data, |&(_, c)| c, 20.0, "costs")
}

/// Table 1: mean and variance of normalised estimate values and costs for
/// the three methods. Columns: `method (0=RT, 1=S&C l10, 2=S&C l100),
/// avg_value, var_value, avg_cost, var_cost`.
#[must_use]
pub fn table1(p: &Params, rec: &Registry) -> FigureResult {
    let data = comparison_data(p, rec);
    let mut table = CsvTable::new(&["method", "avg_value", "var_value", "avg_cost", "var_cost"]);
    let mut summary = String::from("table1: summary statistics of the three methods\n");
    // Paper's Table 1 reference values.
    let reference = [
        ("RT", &data.rt, 1.01, 1.3, 7.16, 8.06),
        ("S&C l=10", &data.sc10, 1.08, 0.1, 1.08, 0.1),
        ("S&C l=100", &data.sc100, 1.01, 0.01, 3.27, 0.02),
    ];
    for (m, (name, rows, pv, pvv, pc, pcv)) in reference.into_iter().enumerate() {
        let values = Summary::from_slice(&rows.iter().map(|&(v, _)| v).collect::<Vec<_>>());
        let costs = Summary::from_slice(&rows.iter().map(|&(_, c)| c).collect::<Vec<_>>());
        table.push_row(&[
            m as f64,
            values.mean,
            values.variance,
            costs.mean,
            costs.variance,
        ]);
        summary_line(&mut summary, &format!("{name} avg value"), pv, values.mean);
        summary_line(
            &mut summary,
            &format!("{name} var value"),
            pvv,
            values.variance,
        );
        summary_line(&mut summary, &format!("{name} avg cost"), pc, costs.mean);
        summary_line(
            &mut summary,
            &format!("{name} var cost"),
            pcv,
            costs.variance,
        );
    }
    FigureResult {
        id: "table1",
        table,
        summary,
    }
}

/// Figure 6: Random Tour with sliding window on the scale-free graph.
/// Columns as Figure 2.
#[must_use]
pub fn fig6(p: &Params, rec: &Registry) -> FigureResult {
    let mut r = windowed_quality_figure(p, Topo::ScaleFree, "fig6", rec);
    r.summary
        .push_str("  (scale-free topology: accuracy comparable to balanced, §5.2.2)\n");
    r
}

/// Figure 7: Sample & Collide `l = 100` on the scale-free graph.
/// Columns as Figure 3.
#[must_use]
pub fn fig7(p: &Params, rec: &Registry) -> FigureResult {
    let mut r = sc_quality_figure(p, Topo::ScaleFree, "fig7", rec);
    r.summary
        .push_str("  (scale-free topology: accuracy comparable to balanced, §5.2.2)\n");
    r
}

/// The three dynamic schedules of §5.3, scaled to a run horizon.
fn dynamic_scenario(kind: &str, horizon: u64, n: usize) -> Scenario {
    let half = (n / 2) as u64;
    let quarter = (n / 4) as u64;
    // The paper's event positions as fractions of its 10,000 (RT) or 100
    // (S&C) run horizons.
    let at = |frac: f64| (horizon as f64 * frac) as u64;
    match kind {
        "shrink" => Scenario::new().remove_gradually(at(0.3), at(0.8), half),
        "grow" => Scenario::new().add_gradually(at(0.3), at(0.8), half),
        "catastrophe" => Scenario::new()
            .remove_suddenly(at(0.1), quarter)
            .remove_suddenly(at(0.5), quarter)
            .add_suddenly(at(0.7), quarter),
        other => panic!("unknown scenario kind {other:?}"),
    }
}

fn rt_dynamic_figure(p: &Params, kind: &str, id: &'static str, rec: &Registry) -> FigureResult {
    let horizon = p.rt_dynamic_runs;
    let window = p.rt_dynamic_window;
    let runs = replications(p, rec, |i, local| {
        let mut net = build(p, Topo::Balanced, p.seed.wrapping_add(i));
        let mut rng = SmallRng::seed_from_u64(p.seed ^ (0xD0 + i));
        let scenario = dynamic_scenario(kind, horizon, p.n);
        run_dynamic_rec(
            &mut net,
            &RandomTour::new(),
            &RunConfig::new(horizon).with_window(window),
            &scenario,
            &mut rng,
            local,
        )
    });
    let mut table = table_with_header(&estimation_header(&["run", "real_size"], p.replications));
    for (k, r0) in runs[0].iter().enumerate() {
        let mut row = vec![k as f64, r0.true_size];
        row.extend(runs.iter().map(|r| r[k].smoothed));
        table.push_row(&row);
    }
    let summary = dynamic_summary(id, &runs[0], window, kind, "Random Tour");
    FigureResult { id, table, summary }
}

fn sc_dynamic_figure(p: &Params, kind: &str, id: &'static str, rec: &Registry) -> FigureResult {
    let horizon = p.sc_dynamic_runs;
    let mut net = build(p, Topo::Balanced, p.seed);
    let mut rng = SmallRng::seed_from_u64(p.seed ^ 0xE0);
    let scenario = dynamic_scenario(kind, horizon, p.n);
    let records = run_dynamic_rec(
        &mut net,
        &sc_estimator(p, 100),
        &RunConfig::new(horizon),
        &scenario,
        &mut rng,
        rec,
    );
    let mut table = CsvTable::new(&["run", "real_size", "estimate"]);
    for r in &records {
        table.push_row(&[r.run as f64, r.true_size, r.estimate]);
    }
    let summary = dynamic_summary(id, &records, 1, kind, "Sample & Collide (l=100)");
    FigureResult { id, table, summary }
}

fn dynamic_summary(
    id: &str,
    records: &[RunRecord],
    window: usize,
    kind: &str,
    method: &str,
) -> String {
    // Tracking error over the final quarter (after the window has
    // refilled post-churn).
    let tail = &records[records.len() - records.len() / 4..];
    let rel: Vec<f64> = tail
        .iter()
        .map(|r| 100.0 * r.smoothed / r.true_size)
        .collect();
    let s = Summary::from_slice(&rel);
    let mut out = format!("{id}: {method} under the '{kind}' churn schedule (window {window})\n");
    summary_line(&mut out, "final-quarter tracking quality %", 100.0, s.mean);
    let _ = &mut out;
    out.push_str(&format!(
        "  start size {:.0}, end size {:.0}\n",
        records.first().expect("non-empty").true_size,
        records.last().expect("non-empty").true_size,
    ));
    out
}

/// Figure 8: Random Tour on a shrinking network (−50% between 30% and 80%
/// of the horizon), window 700.
/// Columns: `run, real_size, estimation1..3`.
#[must_use]
pub fn fig8(p: &Params, rec: &Registry) -> FigureResult {
    rt_dynamic_figure(p, "shrink", "fig8", rec)
}

/// Figure 9: Random Tour on a growing network (+50%), window 700.
#[must_use]
pub fn fig9(p: &Params, rec: &Registry) -> FigureResult {
    rt_dynamic_figure(p, "grow", "fig9", rec)
}

/// Figure 10: Random Tour under catastrophic churn (−25% at 10%, −25% at
/// 50%, +25% at 70% of the horizon), window 700.
#[must_use]
pub fn fig10(p: &Params, rec: &Registry) -> FigureResult {
    rt_dynamic_figure(p, "catastrophe", "fig10", rec)
}

/// Figure 11: Sample & Collide `l = 100` on a shrinking network, no
/// window. Columns: `run, real_size, estimate`.
#[must_use]
pub fn fig11(p: &Params, rec: &Registry) -> FigureResult {
    sc_dynamic_figure(p, "shrink", "fig11", rec)
}

/// Figure 12: Sample & Collide `l = 100` on a growing network.
#[must_use]
pub fn fig12(p: &Params, rec: &Registry) -> FigureResult {
    sc_dynamic_figure(p, "grow", "fig12", rec)
}

/// Figure 13: Sample & Collide `l = 100` under catastrophic churn.
#[must_use]
pub fn fig13(p: &Params, rec: &Registry) -> FigureResult {
    sc_dynamic_figure(p, "catastrophe", "fig13", rec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Params {
        let mut p = Params::scaled(0.01);
        p.n = 600;
        p.rt_runs = 400;
        p.sc_runs = 30;
        p.rt_window = 50;
        p.rt_dynamic_runs = 400;
        p.rt_dynamic_window = 60;
        p.sc_dynamic_runs = 40;
        p
    }

    #[test]
    fn fig1_converges_to_full_quality() {
        let r = fig1(&tiny(), &Registry::new());
        assert_eq!(r.table.len(), 400);
        // Parse the last row's three qualities from the CSV text.
        let body = r.table.to_csv_string();
        let last = body.lines().last().expect("rows exist");
        let cells: Vec<f64> = last
            .split(',')
            .map(|c| c.parse().expect("numeric"))
            .collect();
        for &q in &cells[1..] {
            assert!((q - 100.0).abs() < 40.0, "cumulative quality {q}");
        }
    }

    #[test]
    fn fig1_is_bit_identical_to_serial_replications() {
        // The parallel engine must not change the published CSVs: each
        // replication's seeds derive from its index exactly as the old
        // serial harness derived them, and rows merge in index order.
        let p = tiny();
        let parallel = fig1(&p, &Registry::new()).table.to_csv_string();
        let series: Vec<Vec<RunRecord>> = (0..p.replications)
            .map(|i| rt_static_series(&p, Topo::Balanced, i, &Registry::new()))
            .collect();
        let quality: Vec<Vec<f64>> = series
            .iter()
            .map(|s| cumulative_quality_percent(s))
            .collect();
        let mut expected = table_with_header(&estimation_header(&["run"], p.replications));
        for run in 0..quality[0].len() {
            let mut row = vec![(run + 1) as f64];
            row.extend(quality.iter().map(|q| q[run]));
            expected.push_row(&row);
        }
        assert_eq!(parallel, expected.to_csv_string());
    }

    #[test]
    fn fig1_is_deterministic_across_invocations() {
        let p = tiny();
        assert_eq!(
            fig1(&p, &Registry::new()).table.to_csv_string(),
            fig1(&p, &Registry::new()).table.to_csv_string()
        );
    }

    #[test]
    fn recording_is_passive_and_reconciles_for_fig1() {
        // The issue's acceptance bar: the CSV must be bit-identical with
        // and without a live registry, and the registry's message-class
        // total must reconcile exactly with the Estimate.messages values
        // the runner consumed.
        use census_metrics::Metric;
        let p = tiny();
        let reg = Registry::new();
        let recorded = fig1(&p, &reg).table.to_csv_string();
        let plain = crate::run_experiment("fig1", &p).table.to_csv_string();
        assert_eq!(recorded, plain, "recording must not perturb the CSV");
        assert_eq!(
            reg.message_total(),
            reg.counter(Metric::ReportedMessages),
            "every recorded message must flow through a consumed Estimate"
        );
        assert_eq!(
            reg.counter(Metric::EstimatesCompleted),
            p.replications * p.rt_runs
        );
        assert_eq!(reg.message_total(), reg.counter(Metric::TourHops));
        assert_eq!(
            reg.counter(Metric::ToursCompleted),
            p.replications * p.rt_runs
        );
    }

    #[test]
    fn fig5_cost_cdf_is_independent_of_the_recorder() {
        let p = tiny();
        let reg = Registry::new();
        assert_eq!(
            fig5(&p, &reg).table.to_csv_string(),
            fig5(&p, &Registry::new()).table.to_csv_string()
        );
        // fig5 mixes tour hops and CTRW sample hops; both classes land
        // in the registry and nothing else does.
        use census_metrics::Metric;
        assert_eq!(
            reg.message_total(),
            reg.counter(Metric::TourHops) + reg.counter(Metric::CtrwHops)
        );
        assert_eq!(reg.message_total(), reg.counter(Metric::ReportedMessages));
    }

    #[test]
    fn replication_count_is_a_dial() {
        let mut p = tiny();
        p.rt_runs = 50;
        p.replications = 5;
        let r = fig1(&p, &Registry::new());
        let header = r.table.to_csv_string();
        let header = header.lines().next().expect("header row");
        assert_eq!(
            header,
            "run,estimation1,estimation2,estimation3,estimation4,estimation5"
        );
        assert_eq!(r.table.len(), 50);
    }

    #[test]
    fn fig3_spread_matches_corollary_1() {
        // l = 100 needs N >> l for the asymptotic estimator's bias
        // ~sqrt(2l/N) to stay small; use a larger overlay here.
        let mut p = tiny();
        p.n = 4_000;
        let r = fig3(&p, &Registry::new());
        let body = r.table.to_csv_string();
        let qualities: Vec<f64> = body
            .lines()
            .skip(1)
            .map(|l| {
                l.split(',')
                    .nth(1)
                    .expect("2 columns")
                    .parse()
                    .expect("numeric")
            })
            .collect();
        let s = Summary::from_slice(&qualities);
        // Positive finite-N bias of C^2/(2l) is ~sqrt(2l/N) ~ 22% here.
        assert!((-5.0..30.0).contains(&(s.mean - 100.0)), "mean {}", s.mean);
        assert!(s.std < 25.0, "std {} should be near the 10% law", s.std);
    }

    #[test]
    fn table1_shape_holds_at_small_scale() {
        let r = table1(&tiny(), &Registry::new());
        let body = r.table.to_csv_string();
        let rows: Vec<Vec<f64>> = body
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(|c| c.parse().expect("numeric")).collect())
            .collect();
        let (rt, sc10, sc100) = (&rows[0], &rows[1], &rows[2]);
        // Value means all ~1.
        for row in [rt, sc10, sc100] {
            assert!((row[1] - 1.0).abs() < 0.4, "avg value {}", row[1]);
        }
        // Variance ordering: RT >> SC10 > SC100 (scale-invariant).
        assert!(rt[2] > sc10[2]);
        assert!(sc10[2] > sc100[2]);
        // Cost ordering between the S&C variants is the scale-invariant
        // sqrt(l) law; RT-vs-S&C cost ordering flips below the ~N crossover
        // and is asserted at two scales in the integration tests.
        assert!(sc100[3] > sc10[3]);
        // RT's normalised cost is d-bar/d_i, O(1) at any scale.
        assert!((0.2..30.0).contains(&rt[3]), "rt cost/N {}", rt[3]);
    }

    #[test]
    fn fig11_tracks_shrinkage() {
        let r = fig11(&tiny(), &Registry::new());
        let body = r.table.to_csv_string();
        let rows: Vec<Vec<f64>> = body
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(|c| c.parse().expect("numeric")).collect())
            .collect();
        let first = &rows[0];
        let last = rows.last().expect("rows exist");
        assert!(last[1] < first[1] * 0.7, "true size must shrink");
        // The estimate tracks the final size within generous noise.
        assert!((last[2] / last[1] - 1.0).abs() < 0.6);
    }

    #[test]
    fn scenario_kinds_are_exhaustive() {
        let s = dynamic_scenario("shrink", 100, 1000);
        assert!(!s.is_static(100));
    }

    #[test]
    #[should_panic(expected = "unknown scenario kind")]
    fn bad_scenario_kind_panics() {
        let _ = dynamic_scenario("meteor", 100, 1000);
    }
}

//! Declarative campaign sweeps: one spec file in, one resumable
//! manifest of latency-percentile records out.
//!
//! The figure harness regenerates the paper's plots and the perf probes
//! price individual claims, but neither answers the deployment question
//! the service crate raises: *what query latency does a census service
//! actually deliver across topologies, estimators, shard counts, fault
//! plans, arrival processes, and Byzantine attack plans?* Answering it
//! by hand means dozens of
//! near-identical runs — exactly the work a machine should schedule.
//!
//! A [`CampaignSpec`] declares one axis per dimension; [`expand`] takes
//! their cartesian product in a fixed order, assigning every mix a
//! stable, filesystem-safe [`RunPoint::run_id`]. [`run_campaign`]
//! executes the points **resumably**: the manifest at
//! `results/<campaign>/manifest.json` is reloaded on startup, any point
//! whose `run_id` already has a record is skipped, and the manifest is
//! atomically rewritten after *every* completed run — kill the process
//! anywhere and the next invocation picks up where it stopped without
//! re-executing finished work.
//!
//! Each run serves `queries_per_run` queries through the real
//! [`CensusService`] / [`ShardedCensusService`] stack with a live
//! metrics [`Registry`], paced by the spec's deterministic
//! [`ArrivalProcess`] trace, and distils the query-latency histogram
//! into p50/p99/p999 microsecond percentiles (the bucket-interpolated
//! quantiles of `census_metrics`). Per-run records also land as
//! `results/<campaign>/runs/<run_id>.json` for tooling that wants one
//! file per point.

use std::collections::BTreeSet;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use census_core::{RandomTour, SampleCollide};
use census_graph::generators;
use census_metrics::{HistogramMetric, Registry};
use census_overlay::{
    GradientConfig, GradientOverlay, OverlayEngine, ScaleFreeConfig, ScaleFreeConstruction,
};
use census_sampling::CtrwSampler;
use census_service::{
    ArrivalProcess, CensusService, Counter, Query, ServiceConfig, ShardedCensusService, SubmitError,
};
use census_sim::attacks::AttackPlan;
use census_sim::faults::FaultPlan;
use census_sim::{DynamicNetwork, JoinRule, MembershipDelta, Scenario};
use census_walk::stream::splitmix64;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::report::write_json_atomic;

/// Schema tag stamped on every campaign manifest.
pub const MANIFEST_SCHEMA: &str = "overlay-census/campaign-v1";

fn default_timer() -> f64 {
    10.0
}

fn default_sc_l() -> u32 {
    2
}

/// A declarative sweep: one axis per dimension, expanded to the full
/// cartesian product by [`expand`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CampaignSpec {
    /// Campaign name; also the results subdirectory.
    pub campaign: String,
    /// Base RNG seed. Topology generation, query streams, and arrival
    /// traces all derive from it, so a spec replays bit-compatibly.
    pub seed: u64,
    /// Queries served per run point.
    pub queries_per_run: u64,
    /// CTRW sampling timer for sample and Sample & Collide queries
    /// (paper: `T = 10`).
    #[serde(default = "default_timer")]
    pub timer: f64,
    /// Sample & Collide collision budget `l`.
    #[serde(default = "default_sc_l")]
    pub sc_l: u32,
    /// Topology axis.
    pub topologies: Vec<TopologySpec>,
    /// Estimator axis.
    pub estimators: Vec<EstimatorKind>,
    /// Shard-count axis; `0` means the unsharded service.
    pub shards: Vec<usize>,
    /// Worker-count axis (per shard when sharded).
    pub workers: Vec<usize>,
    /// Fault-plan axis.
    pub faults: Vec<FaultSpec>,
    /// Arrival-process axis.
    pub arrivals: Vec<ArrivalSpec>,
    /// Attack-plan axis. Absent in pre-adversary specs and manifests,
    /// where it defaults to the single no-adversary point — old
    /// campaigns keep their run ids and resume untouched.
    #[serde(default = "default_attacks")]
    pub attacks: Vec<AttackSpec>,
    /// Overlay-protocol axis: a self-constructing overlay driving the
    /// topology while queries run. Absent in pre-overlay specs and
    /// manifests, where it defaults to the single static point — old
    /// campaigns keep their run ids and resume untouched.
    #[serde(default = "default_overlays")]
    pub overlays: Vec<OverlaySpec>,
}

fn default_attacks() -> Vec<AttackSpec> {
    vec![AttackSpec::None]
}

fn default_overlays() -> Vec<OverlaySpec> {
    vec![OverlaySpec::None]
}

/// One topology family at one size.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
#[serde(tag = "family", rename_all = "kebab-case")]
pub enum TopologySpec {
    /// The paper's balanced random graph (degree cap `max_degree`).
    Balanced {
        /// Overlay size.
        n: usize,
        /// Degree cap (the paper uses 10).
        max_degree: usize,
    },
    /// Barabási–Albert scale-free graph with attachment count `m`.
    ScaleFree {
        /// Overlay size.
        n: usize,
        /// Edges per joining node.
        m: usize,
    },
    /// A ring — the worst mixer; a stress case for walk-based counting.
    Ring {
        /// Overlay size.
        n: usize,
    },
}

impl TopologySpec {
    fn slug(&self) -> String {
        match *self {
            TopologySpec::Balanced { n, max_degree } => format!("balanced-n{n}-d{max_degree}"),
            TopologySpec::ScaleFree { n, m } => format!("scale-free-n{n}-m{m}"),
            TopologySpec::Ring { n } => format!("ring-n{n}"),
        }
    }

    /// Builds the overlay and the join rule churn will replay.
    fn build(&self, seed: u64) -> DynamicNetwork {
        let mut rng = SmallRng::seed_from_u64(seed);
        match *self {
            TopologySpec::Balanced { n, max_degree } => DynamicNetwork::new(
                generators::balanced(n, max_degree, &mut rng),
                JoinRule::Balanced { max_degree },
            ),
            TopologySpec::ScaleFree { n, m } => DynamicNetwork::new(
                generators::barabasi_albert(n, m, &mut rng),
                JoinRule::PreferentialAttachment { m },
            ),
            TopologySpec::Ring { n } => {
                DynamicNetwork::new(generators::ring(n), JoinRule::Balanced { max_degree: 2 })
            }
        }
    }
}

/// Which estimator each query of a run invokes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum EstimatorKind {
    /// Random Tour counting (§3.1).
    RandomTour,
    /// Sample & Collide counting over the CTRW sampler (§4.2).
    SampleCollide,
    /// Bare CTRW uniform sampling (§4.1).
    CtrwSample,
}

impl EstimatorKind {
    fn slug(self) -> &'static str {
        match self {
            EstimatorKind::RandomTour => "random-tour",
            EstimatorKind::SampleCollide => "sample-collide",
            EstimatorKind::CtrwSample => "ctrw-sample",
        }
    }

    fn query(self, timer: f64, sc_l: u32) -> Query {
        match self {
            EstimatorKind::RandomTour => Query::Count(Counter::RandomTour(RandomTour::new())),
            EstimatorKind::SampleCollide => Query::Count(Counter::SampleCollide(
                SampleCollide::new(CtrwSampler::new(timer), sc_l),
            )),
            EstimatorKind::CtrwSample => Query::Sample(CtrwSampler::new(timer)),
        }
    }
}

/// One fault regime the run executes under.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
#[serde(tag = "plan", rename_all = "kebab-case")]
pub enum FaultSpec {
    /// Fault-free, static overlay.
    None,
    /// Each delivery attempt drops with probability `p`; walks retry up
    /// to `retransmits` times (the paper's recoverable loss mode).
    Loss {
        /// Per-attempt loss probability.
        p: f64,
        /// Retransmission budget per hop.
        retransmits: u32,
    },
    /// `departures` peers leave gradually across `events` churn events
    /// racing the queries.
    Churn {
        /// Total peers departing during the run.
        departures: u64,
        /// Number of membership events the departures spread over.
        events: u64,
    },
}

impl FaultSpec {
    fn slug(&self) -> String {
        match *self {
            FaultSpec::None => "fault-none".to_owned(),
            FaultSpec::Loss { p, retransmits } => format!("loss-p{p}-r{retransmits}"),
            FaultSpec::Churn { departures, events } => format!("churn-{departures}x{events}"),
        }
    }

    fn plan(&self, seed: u64) -> Option<FaultPlan> {
        match *self {
            FaultSpec::Loss { p, retransmits } => Some(
                FaultPlan::new()
                    .with_message_loss(p, seed)
                    .with_retransmits(retransmits),
            ),
            _ => None,
        }
    }

    fn events(&self) -> Vec<MembershipDelta> {
        match *self {
            FaultSpec::Churn { departures, events } => Scenario::new()
                .remove_gradually(0, events, departures)
                .events(events),
            _ => Vec::new(),
        }
    }
}

/// One Byzantine regime the run executes under. Mirrors
/// [`AttackPlan`] with serde plumbing attached; the `none` variant is
/// the default the axis takes when a spec predates adversaries.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
#[serde(tag = "plan", rename_all = "kebab-case")]
pub enum AttackSpec {
    /// No adversary: the service runs exactly as before the attack
    /// layer existed (the inert [`AttackPlan::default`]).
    #[default]
    None,
    /// `fraction` of peers is subverted (selected from `seed`), with the
    /// optional behaviours switched on per field.
    Byzantine {
        /// Subverted fraction of the overlay.
        fraction: f64,
        /// Attack-stream seed (selects *which* peers are subverted).
        seed: u64,
        /// Degree-inflation factor (> 1), if degree lies are on.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        inflation: Option<f64>,
        /// Degree-deflation factor (> 1), if degree lies are on.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        deflation: Option<f64>,
        /// Per-delivery walk-swallow probability.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        swallow: Option<f64>,
        /// Sample & Collide collision-forgery probability.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        forgery: Option<f64>,
        /// Junk queries flooded against the admission queue.
        #[serde(default)]
        flood: u32,
    },
}

impl AttackSpec {
    fn slug(&self) -> String {
        match *self {
            AttackSpec::None => "attack-none".to_owned(),
            AttackSpec::Byzantine {
                fraction,
                seed,
                inflation,
                deflation,
                swallow,
                forgery,
                flood,
            } => {
                let mut s = format!("byz-f{fraction}-s{seed}");
                if let Some(x) = inflation {
                    s.push_str(&format!("-i{x}"));
                }
                if let Some(x) = deflation {
                    s.push_str(&format!("-d{x}"));
                }
                if let Some(x) = swallow {
                    s.push_str(&format!("-w{x}"));
                }
                if let Some(x) = forgery {
                    s.push_str(&format!("-c{x}"));
                }
                if flood > 0 {
                    s.push_str(&format!("-q{flood}"));
                }
                s.replace('.', "p")
            }
        }
    }

    fn plan(&self) -> Option<AttackPlan> {
        match *self {
            AttackSpec::None => None,
            AttackSpec::Byzantine {
                fraction,
                seed,
                inflation,
                deflation,
                swallow,
                forgery,
                flood,
            } => {
                let mut plan = AttackPlan::new()
                    .with_byzantine(fraction, seed)
                    .with_queue_flood(flood);
                if let Some(x) = inflation {
                    plan = plan.with_degree_inflation(x);
                }
                if let Some(x) = deflation {
                    plan = plan.with_degree_deflation(x);
                }
                if let Some(x) = swallow {
                    plan = plan.with_walk_swallow(x);
                }
                if let Some(x) = forgery {
                    plan = plan.with_collision_forgery(x);
                }
                Some(plan)
            }
        }
    }
}

/// One self-constructing overlay protocol, as spelled in a spec file.
/// A non-`None` value replaces the run's churn applier with a
/// `census-overlay` engine: each service step executes one protocol
/// tick against the live overlay through
/// [`census_overlay::OverlayEngine::driver`], so the refreeze policy
/// sees self-assembly exactly as it sees churn. The `none` variant is
/// the static default (and what the axis becomes when a spec predates
/// self-construction).
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
#[serde(tag = "protocol", rename_all = "kebab-case")]
pub enum OverlaySpec {
    /// No protocol: the topology axis's overlay serves as built.
    #[default]
    None,
    /// Random-walk preferential attachment growing the overlay towards
    /// `target` live nodes while queries run.
    ScaleFree {
        /// Construction target size.
        target: usize,
        /// Service steps — one engine tick each — in the serve window.
        steps: u64,
    },
    /// Utility-gradient rewiring of the topology axis's overlay.
    Gradient {
        /// Service steps — one engine tick each — in the serve window.
        steps: u64,
    },
}

impl OverlaySpec {
    fn slug(&self) -> String {
        match *self {
            OverlaySpec::None => "overlay-none".to_owned(),
            OverlaySpec::ScaleFree { target, steps } => format!("grow-sf-n{target}-t{steps}"),
            OverlaySpec::Gradient { steps } => format!("gradient-t{steps}"),
        }
    }
}

/// One arrival process, as spelled in a spec file. Mirrors
/// [`ArrivalProcess`] with serde plumbing attached.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
#[serde(tag = "process", rename_all = "kebab-case")]
pub enum ArrivalSpec {
    /// Memoryless open-loop arrivals.
    Poisson {
        /// Mean arrivals per second.
        rate_hz: f64,
    },
    /// Heavy-tailed open-loop arrivals.
    Pareto {
        /// Mean arrivals per second.
        rate_hz: f64,
        /// Tail index (must exceed 1).
        alpha: f64,
    },
    /// Closed-loop arrivals keeping `concurrency` queries in flight.
    Closed {
        /// In-flight query budget.
        concurrency: usize,
    },
}

impl ArrivalSpec {
    fn slug(&self) -> String {
        match *self {
            ArrivalSpec::Poisson { rate_hz } => format!("poisson-r{rate_hz}"),
            ArrivalSpec::Pareto { rate_hz, alpha } => format!("pareto-r{rate_hz}-a{alpha}"),
            ArrivalSpec::Closed { concurrency } => format!("closed-c{concurrency}"),
        }
    }

    fn process(&self) -> ArrivalProcess {
        match *self {
            ArrivalSpec::Poisson { rate_hz } => ArrivalProcess::Poisson { rate_hz },
            ArrivalSpec::Pareto { rate_hz, alpha } => ArrivalProcess::Pareto { rate_hz, alpha },
            ArrivalSpec::Closed { concurrency } => ArrivalProcess::Closed { concurrency },
        }
    }
}

/// One point of the expanded mix space.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RunPoint {
    /// Position in expansion order (stable across resumes).
    pub index: usize,
    /// Topology axis value.
    pub topology: TopologySpec,
    /// Estimator axis value.
    pub estimator: EstimatorKind,
    /// Shard count (`0` = unsharded).
    pub shards: usize,
    /// Worker count (per shard when sharded).
    pub workers: usize,
    /// Fault-plan axis value.
    pub fault: FaultSpec,
    /// Arrival-process axis value.
    pub arrival: ArrivalSpec,
    /// Attack-plan axis value (defaults to no adversary, so records
    /// written before the axis existed still deserialise).
    #[serde(default)]
    pub attack: AttackSpec,
    /// Overlay-protocol axis value (defaults to the static overlay, so
    /// records written before the axis existed still deserialise).
    #[serde(default)]
    pub overlay: OverlaySpec,
}

impl RunPoint {
    /// The point's stable, filesystem-safe identifier — the resume key.
    ///
    /// The attack and overlay slugs are appended only for a real
    /// adversary / a real protocol: static no-adversary points keep the
    /// exact ids they had before either axis existed, so old manifests
    /// resume without re-execution.
    #[must_use]
    pub fn run_id(&self) -> String {
        let mut id = format!(
            "{}-{}-s{}-w{}-{}-{}",
            self.topology.slug(),
            self.estimator.slug(),
            self.shards,
            self.workers,
            self.fault.slug(),
            self.arrival.slug()
        );
        if self.attack != AttackSpec::None {
            id.push('-');
            id.push_str(&self.attack.slug());
        }
        if self.overlay != OverlaySpec::None {
            id.push('-');
            id.push_str(&self.overlay.slug());
        }
        id
    }
}

/// Expands the spec's axes to the full mix space, in a fixed nesting
/// order (topology, estimator, shards, workers, fault, arrival, attack,
/// overlay) so run indices are stable across invocations. Each new axis
/// sits innermost at introduction: a pre-adversary or pre-overlay spec's
/// single default point leaves every older index untouched.
#[must_use]
pub fn expand(spec: &CampaignSpec) -> Vec<RunPoint> {
    let mut points = Vec::new();
    for &topology in &spec.topologies {
        for &estimator in &spec.estimators {
            for &shards in &spec.shards {
                for &workers in &spec.workers {
                    for &fault in &spec.faults {
                        for &arrival in &spec.arrivals {
                            // An absent/empty attack (or overlay) axis
                            // means "no adversary" / "static overlay",
                            // never "no points": older specs keep their
                            // exact expansion.
                            let attacks = if spec.attacks.is_empty() {
                                &[AttackSpec::None][..]
                            } else {
                                &spec.attacks
                            };
                            let overlays = if spec.overlays.is_empty() {
                                &[OverlaySpec::None][..]
                            } else {
                                &spec.overlays
                            };
                            for &attack in attacks {
                                for &overlay in overlays {
                                    points.push(RunPoint {
                                        index: points.len(),
                                        topology,
                                        estimator,
                                        shards,
                                        workers,
                                        fault,
                                        arrival,
                                        attack,
                                        overlay,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    points
}

/// The record one executed run leaves in the manifest.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RunRecord {
    /// The point's [`RunPoint::run_id`].
    pub run_id: String,
    /// The point itself, echoed back for tooling.
    pub point: RunPoint,
    /// Queries submitted (always the spec's `queries_per_run`).
    pub queries: u64,
    /// Queries that produced an answer.
    pub completed: u64,
    /// Queries that expired (faults, churn, degenerate configs).
    pub expired: u64,
    /// Median query latency in microseconds, `None` when the latency
    /// histogram is empty.
    pub p50_us: Option<f64>,
    /// 99th-percentile query latency in microseconds.
    pub p99_us: Option<f64>,
    /// 99.9th-percentile query latency in microseconds.
    pub p999_us: Option<f64>,
    /// Wall-clock seconds of the serve window.
    pub wall_s: f64,
}

/// The campaign manifest: spec echo plus every completed run record.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Manifest {
    /// Always [`MANIFEST_SCHEMA`].
    pub schema: String,
    /// The campaign name, echoed from the spec.
    pub campaign: String,
    /// The spec that produced the records; a resume refuses to run if
    /// the spec on disk no longer matches.
    pub spec: CampaignSpec,
    /// Completed run records, sorted by expansion index.
    pub runs: Vec<RunRecord>,
}

/// What [`run_campaign`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignOutcome {
    /// Size of the expanded mix space.
    pub total: usize,
    /// Points executed by this invocation.
    pub executed: usize,
    /// Points skipped because the manifest already recorded them.
    pub skipped: usize,
    /// Where the manifest lives.
    pub manifest_path: PathBuf,
}

/// Why a campaign could not run (to completion).
#[derive(Debug)]
pub enum CampaignError {
    /// Filesystem trouble reading the spec or writing results.
    Io(io::Error),
    /// The spec or an existing manifest failed to parse.
    Parse(String),
    /// The spec is structurally unusable (empty axis, zero queries) or
    /// conflicts with the manifest already on disk.
    Spec(String),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Io(e) => write!(f, "campaign I/O error: {e}"),
            CampaignError::Parse(e) => write!(f, "campaign parse error: {e}"),
            CampaignError::Spec(e) => write!(f, "campaign spec error: {e}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<io::Error> for CampaignError {
    fn from(e: io::Error) -> Self {
        CampaignError::Io(e)
    }
}

/// Parses a spec file.
///
/// # Errors
///
/// Returns [`CampaignError::Io`] if the file is unreadable and
/// [`CampaignError::Parse`] if it is not a valid spec.
pub fn load_spec(path: &Path) -> Result<CampaignSpec, CampaignError> {
    let body = std::fs::read_to_string(path)?;
    serde_json::from_str(&body)
        .map_err(|e| CampaignError::Parse(format!("{}: {e}", path.display())))
}

fn validate(spec: &CampaignSpec) -> Result<(), CampaignError> {
    let axis = |name: &str, len: usize| {
        if len == 0 {
            Err(CampaignError::Spec(format!("axis {name:?} is empty")))
        } else {
            Ok(())
        }
    };
    axis("topologies", spec.topologies.len())?;
    axis("estimators", spec.estimators.len())?;
    axis("shards", spec.shards.len())?;
    axis("workers", spec.workers.len())?;
    axis("faults", spec.faults.len())?;
    axis("arrivals", spec.arrivals.len())?;
    // `attacks` and `overlays` are deliberately exempt: an empty axis is
    // the older spelling and expands to the no-adversary / static point.
    let driven = spec.overlays.iter().any(|o| *o != OverlaySpec::None);
    if driven && spec.shards.iter().any(|&s| s > 0) {
        return Err(CampaignError::Spec(
            "self-constructing overlay points cannot run sharded \
             (the sharded service has no step driver); drop the non-zero \
             shard counts or split the campaign"
                .into(),
        ));
    }
    if driven
        && spec
            .faults
            .iter()
            .any(|f| matches!(f, FaultSpec::Churn { .. }))
    {
        return Err(CampaignError::Spec(
            "a self-constructing overlay replaces the churn applier; \
             combine it with loss faults, not churn faults"
                .into(),
        ));
    }
    if spec.queries_per_run == 0 {
        return Err(CampaignError::Spec(
            "queries_per_run must be positive".into(),
        ));
    }
    if spec.campaign.is_empty()
        || !spec
            .campaign
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
    {
        return Err(CampaignError::Spec(format!(
            "campaign name {:?} must be a non-empty [A-Za-z0-9_-]+ slug",
            spec.campaign
        )));
    }
    Ok(())
}

/// Runs (or resumes) a campaign, writing `manifest.json` and per-run
/// records under `<results_dir>/<campaign>/`.
///
/// Points already recorded in the manifest are skipped without
/// re-execution; the manifest is atomically rewritten after every run,
/// so an interrupt loses at most the run in flight. `max_runs` bounds
/// how many points this *invocation* executes (skips don't count) —
/// `None` runs the campaign to completion.
///
/// # Errors
///
/// Fails on unreadable/invalid specs, on a manifest that belongs to a
/// different spec, and on filesystem trouble.
pub fn run_campaign(
    spec: &CampaignSpec,
    results_dir: &Path,
    max_runs: Option<usize>,
) -> Result<CampaignOutcome, CampaignError> {
    validate(spec)?;
    let dir = results_dir.join(&spec.campaign);
    let runs_dir = dir.join("runs");
    std::fs::create_dir_all(&runs_dir)?;
    let manifest_path = dir.join("manifest.json");

    let mut manifest = if manifest_path.exists() {
        let body = std::fs::read_to_string(&manifest_path)?;
        let found: Manifest = serde_json::from_str(&body)
            .map_err(|e| CampaignError::Parse(format!("{}: {e}", manifest_path.display())))?;
        if found.spec != *spec {
            return Err(CampaignError::Spec(format!(
                "manifest at {} was produced by a different spec; \
                 rename the campaign or clear its results directory",
                manifest_path.display()
            )));
        }
        found
    } else {
        Manifest {
            schema: MANIFEST_SCHEMA.to_owned(),
            campaign: spec.campaign.clone(),
            spec: spec.clone(),
            runs: Vec::new(),
        }
    };

    let done: BTreeSet<String> = manifest.runs.iter().map(|r| r.run_id.clone()).collect();
    let points = expand(spec);
    let total = points.len();
    let mut executed = 0usize;
    let mut skipped = 0usize;

    for point in &points {
        let run_id = point.run_id();
        if done.contains(&run_id) {
            skipped += 1;
            continue;
        }
        if let Some(cap) = max_runs {
            if executed >= cap {
                break;
            }
        }
        println!("[{}/{}] {run_id}", manifest.runs.len() + 1, total);
        let record = execute_run(spec, point);
        println!(
            "  {}/{} completed, p50 {} µs, p99 {} µs, p999 {} µs, {:.2}s",
            record.completed,
            record.queries,
            fmt_us(record.p50_us),
            fmt_us(record.p99_us),
            fmt_us(record.p999_us),
            record.wall_s
        );
        write_json_atomic(&record, &runs_dir.join(format!("{run_id}.json")))?;
        manifest.runs.push(record);
        manifest.runs.sort_by_key(|r| r.point.index);
        write_json_atomic(&manifest, &manifest_path)?;
        executed += 1;
    }

    Ok(CampaignOutcome {
        total,
        executed,
        skipped,
        manifest_path,
    })
}

fn fmt_us(v: Option<f64>) -> String {
    v.map_or_else(|| "-".to_owned(), |x| format!("{x:.0}"))
}

/// Executes one run point: builds the overlay, serves the paced
/// workload through the (possibly sharded) service with a live metrics
/// registry, and distils the latency histogram.
fn execute_run(spec: &CampaignSpec, point: &RunPoint) -> RunRecord {
    // Every run gets its own deterministic topology stream; the service
    // seed stays the spec seed so query streams match across points.
    let topo_seed = splitmix64(spec.seed ^ point.index as u64);
    let net = point.topology.build(topo_seed);
    let queries = spec.queries_per_run;
    let arrival = point.arrival.process();
    // Open-loop arrivals need room for the full trace; closed-loop runs
    // bound the queue at the in-flight budget and lean on backpressure.
    let capacity = arrival
        .concurrency()
        .unwrap_or(queries.max(1) as usize)
        .max(1);
    let mut config = ServiceConfig::new(spec.seed)
        .with_workers(point.workers.max(1))
        .with_queue_capacity(capacity);
    if let Some(plan) = point.fault.plan(splitmix64(spec.seed ^ 0x4641_554C_5453)) {
        config = config.with_faults(plan);
    }
    if let Some(plan) = point.attack.plan() {
        config = config.with_attacks(plan);
    }
    let events = point.fault.events();
    let query = point.estimator.query(spec.timer, spec.sc_l);
    let schedule = arrival.schedule_micros(spec.seed, queries as usize);

    let registry = Registry::new();
    let start = Instant::now();
    let submit_all = |census: &dyn Fn(Query) -> Result<u64, SubmitError>| {
        for &at in &schedule {
            let elapsed = start.elapsed().as_micros() as u64;
            if at > elapsed {
                std::thread::sleep(Duration::from_micros(at - elapsed));
            }
            // Closed-loop (and a briefly full open-loop queue) park here
            // until the workers free a slot — that *is* the backpressure
            // the process models.
            while census(query) == Err(SubmitError::Overloaded) {
                std::thread::yield_now();
            }
        }
    };
    let (wall_s, outcomes) = if point.shards == 0 && point.overlay != OverlaySpec::None {
        // A self-constructing point: the overlay engine replaces the
        // churn applier, one protocol tick per service step, from its
        // own deterministic seed stream.
        let engine_seed = splitmix64(spec.seed ^ 0x004F_5645_524C_4159);
        let mut service = CensusService::new(net, config);
        match point.overlay {
            OverlaySpec::None => unreachable!("guarded by the branch condition"),
            OverlaySpec::ScaleFree { target, steps } => {
                let proto = ScaleFreeConstruction::new(ScaleFreeConfig {
                    target_size: target,
                    ..ScaleFreeConfig::default()
                });
                let mut engine = OverlayEngine::new(proto, engine_seed);
                service.serve_driven_rec(steps, &registry, engine.driver(&registry), |census| {
                    submit_all(&|q| census.submit(q));
                    start.elapsed().as_secs_f64()
                })
            }
            OverlaySpec::Gradient { steps } => {
                let proto = GradientOverlay::new(GradientConfig::default());
                let mut engine = OverlayEngine::new(proto, engine_seed);
                service.serve_driven_rec(steps, &registry, engine.driver(&registry), |census| {
                    submit_all(&|q| census.submit(q));
                    start.elapsed().as_secs_f64()
                })
            }
        }
    } else if point.shards == 0 {
        let mut service = CensusService::new(net, config);
        let (wall, outcomes) = service.serve_rec(&events, &registry, |census| {
            submit_all(&|q| census.submit(q));
            start.elapsed().as_secs_f64()
        });
        (wall, outcomes)
    } else {
        let mut service = ShardedCensusService::new(net, config.with_shards(point.shards));
        let (wall, outcomes) = service.serve_rec(&events, &registry, |census| {
            submit_all(&|q| census.submit(q));
            start.elapsed().as_secs_f64()
        });
        (wall, outcomes)
    };

    let completed = outcomes.iter().filter(|o| o.result.is_ok()).count() as u64;
    RunRecord {
        run_id: point.run_id(),
        point: point.clone(),
        queries,
        completed,
        expired: outcomes.len() as u64 - completed,
        p50_us: registry.histogram_quantile(HistogramMetric::QueryLatency, 0.50),
        p99_us: registry.histogram_quantile(HistogramMetric::QueryLatency, 0.99),
        p999_us: registry.histogram_quantile(HistogramMetric::QueryLatency, 0.999),
        wall_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec {
            campaign: "unit".to_owned(),
            seed: 9,
            queries_per_run: 4,
            timer: 4.0,
            sc_l: 2,
            topologies: vec![
                TopologySpec::Balanced {
                    n: 600,
                    max_degree: 10,
                },
                TopologySpec::Ring { n: 600 },
            ],
            estimators: vec![EstimatorKind::RandomTour, EstimatorKind::CtrwSample],
            shards: vec![0, 2],
            workers: vec![2],
            faults: vec![FaultSpec::None],
            arrivals: vec![ArrivalSpec::Closed { concurrency: 4 }],
            attacks: vec![AttackSpec::None],
            overlays: vec![OverlaySpec::None],
        }
    }

    #[test]
    fn expansion_is_the_ordered_cartesian_product() {
        let points = expand(&tiny_spec());
        assert_eq!(points.len(), 2 * 2 * 2);
        for (i, p) in points.iter().enumerate() {
            assert_eq!(p.index, i);
        }
        // Innermost axis varies fastest: consecutive points at equal
        // topology/estimator differ in shards before workers.
        assert_eq!(points[0].shards, 0);
        assert_eq!(points[1].shards, 2);
    }

    #[test]
    fn run_ids_are_unique_and_filesystem_safe() {
        let points = expand(&tiny_spec());
        let ids: BTreeSet<String> = points.iter().map(RunPoint::run_id).collect();
        assert_eq!(ids.len(), points.len(), "run ids must be unique");
        for id in &ids {
            assert!(
                id.bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.'),
                "run id {id:?} has a filesystem-hostile byte"
            );
        }
    }

    #[test]
    fn empty_axes_are_rejected() {
        let mut spec = tiny_spec();
        spec.estimators.clear();
        let err = validate(&spec).expect_err("empty axis must fail");
        assert!(matches!(err, CampaignError::Spec(_)));
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = tiny_spec();
        let json = serde_json::to_string(&spec).expect("serialises");
        let back: CampaignSpec = serde_json::from_str(&json).expect("deserialises");
        assert_eq!(back, spec);
    }

    #[test]
    fn pre_adversary_specs_parse_and_keep_their_run_ids() {
        // A spec spelled before the attack axis existed: no "attacks"
        // key anywhere. Rather than hard-coding one JSON dialect, the
        // test serialises mirror structs that *lack* the new fields —
        // whatever the active serialiser writes is exactly what an old
        // binary would have written on this toolchain.
        #[derive(serde::Serialize)]
        struct PreAdversarySpec {
            campaign: String,
            seed: u64,
            queries_per_run: u64,
            timer: f64,
            sc_l: u32,
            topologies: Vec<TopologySpec>,
            estimators: Vec<EstimatorKind>,
            shards: Vec<usize>,
            workers: Vec<usize>,
            faults: Vec<FaultSpec>,
            arrivals: Vec<ArrivalSpec>,
        }
        let new = tiny_spec();
        let old_json = serde_json::to_string(&PreAdversarySpec {
            campaign: new.campaign.clone(),
            seed: new.seed,
            queries_per_run: new.queries_per_run,
            timer: new.timer,
            sc_l: new.sc_l,
            topologies: new.topologies.clone(),
            estimators: new.estimators.clone(),
            shards: new.shards.clone(),
            workers: new.workers.clone(),
            faults: new.faults.clone(),
            arrivals: new.arrivals.clone(),
        })
        .expect("serialises");
        assert!(
            !old_json.contains("attacks"),
            "the mirror must predate the axis"
        );
        let spec: CampaignSpec = serde_json::from_str(&old_json).expect("old specs still parse");
        assert!(
            spec.attacks.is_empty() || spec.attacks == vec![AttackSpec::None],
            "a missing attack axis must mean no adversary, got {:?}",
            spec.attacks
        );
        let points = expand(&spec);
        assert_eq!(
            points,
            expand(&new),
            "pre- and post-axis spellings must expand identically"
        );
        assert_eq!(
            points[0].run_id(),
            "balanced-n600-d10-random-tour-s0-w2-fault-none-closed-c4",
            "no-adversary points must keep the pre-attack id format"
        );
        // An old manifest's RunPoint (no "attack" field) deserialises
        // to the same point, so the resume key matches.
        #[derive(serde::Serialize)]
        struct PreAdversaryPoint {
            index: usize,
            topology: TopologySpec,
            estimator: EstimatorKind,
            shards: usize,
            workers: usize,
            fault: FaultSpec,
            arrival: ArrivalSpec,
        }
        let old_point = serde_json::to_string(&PreAdversaryPoint {
            index: points[0].index,
            topology: points[0].topology,
            estimator: points[0].estimator,
            shards: points[0].shards,
            workers: points[0].workers,
            fault: points[0].fault,
            arrival: points[0].arrival,
        })
        .expect("serialises");
        assert!(!old_point.contains("attack"));
        let point: RunPoint = serde_json::from_str(&old_point).expect("old points still parse");
        assert_eq!(point, points[0]);
    }

    #[test]
    fn attack_axis_expands_innermost_with_distinct_slugged_ids() {
        let mut spec = tiny_spec();
        spec.attacks.push(AttackSpec::Byzantine {
            fraction: 0.2,
            seed: 7,
            inflation: Some(10.0),
            deflation: None,
            swallow: Some(0.15),
            forgery: None,
            flood: 16,
        });
        let points = expand(&spec);
        assert_eq!(points.len(), 2 * 2 * 2 * 2);
        // Innermost axis: consecutive points differ in attack first.
        assert_eq!(points[0].attack, AttackSpec::None);
        assert_ne!(points[1].attack, AttackSpec::None);
        let id = points[1].run_id();
        assert!(
            id.ends_with("byz-f0p2-s7-i10-w0p15-q16"),
            "attack slug missing or malformed in {id:?}"
        );
        assert!(
            id.bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.'),
            "run id {id:?} has a filesystem-hostile byte"
        );
        // The spelled plan reaches a real AttackPlan.
        let plan = points[1]
            .attack
            .plan()
            .expect("a byzantine point has a plan");
        assert!((plan.byzantine_fraction() - 0.2).abs() < 1e-12);
        assert_eq!(plan.queue_flood(), 16);
    }

    #[test]
    fn pre_overlay_specs_parse_and_keep_their_run_ids() {
        // A spec spelled before the overlay axis existed: it has the
        // attack axis but no "overlays" key. Same mirror-struct trick as
        // the pre-adversary test.
        #[derive(serde::Serialize)]
        struct PreOverlaySpec {
            campaign: String,
            seed: u64,
            queries_per_run: u64,
            timer: f64,
            sc_l: u32,
            topologies: Vec<TopologySpec>,
            estimators: Vec<EstimatorKind>,
            shards: Vec<usize>,
            workers: Vec<usize>,
            faults: Vec<FaultSpec>,
            arrivals: Vec<ArrivalSpec>,
            attacks: Vec<AttackSpec>,
        }
        let new = tiny_spec();
        let old_json = serde_json::to_string(&PreOverlaySpec {
            campaign: new.campaign.clone(),
            seed: new.seed,
            queries_per_run: new.queries_per_run,
            timer: new.timer,
            sc_l: new.sc_l,
            topologies: new.topologies.clone(),
            estimators: new.estimators.clone(),
            shards: new.shards.clone(),
            workers: new.workers.clone(),
            faults: new.faults.clone(),
            arrivals: new.arrivals.clone(),
            attacks: new.attacks.clone(),
        })
        .expect("serialises");
        assert!(
            !old_json.contains("overlays"),
            "the mirror must predate the axis"
        );
        let spec: CampaignSpec = serde_json::from_str(&old_json).expect("old specs still parse");
        // The serde default fills `[None]`; expand() also normalises an
        // empty axis to the same, so either way the point set below is
        // what proves a missing axis means a static overlay.
        let points = expand(&spec);
        assert_eq!(
            points,
            expand(&new),
            "pre- and post-axis spellings must expand identically"
        );
        assert_eq!(
            points[0].run_id(),
            "balanced-n600-d10-random-tour-s0-w2-fault-none-closed-c4",
            "static points must keep the pre-overlay id format"
        );
        // An old manifest's RunPoint (no "overlay" field) deserialises
        // to the same point, so the resume key matches.
        #[derive(serde::Serialize)]
        struct PreOverlayPoint {
            index: usize,
            topology: TopologySpec,
            estimator: EstimatorKind,
            shards: usize,
            workers: usize,
            fault: FaultSpec,
            arrival: ArrivalSpec,
            attack: AttackSpec,
        }
        let old_point = serde_json::to_string(&PreOverlayPoint {
            index: points[0].index,
            topology: points[0].topology,
            estimator: points[0].estimator,
            shards: points[0].shards,
            workers: points[0].workers,
            fault: points[0].fault,
            arrival: points[0].arrival,
            attack: points[0].attack,
        })
        .expect("serialises");
        assert!(!old_point.contains("overlay"));
        let point: RunPoint = serde_json::from_str(&old_point).expect("old points still parse");
        assert_eq!(point, points[0]);
    }

    #[test]
    fn overlay_axis_expands_innermost_with_distinct_slugged_ids() {
        let mut spec = tiny_spec();
        spec.shards = vec![0];
        spec.overlays.push(OverlaySpec::ScaleFree {
            target: 900,
            steps: 64,
        });
        spec.overlays.push(OverlaySpec::Gradient { steps: 32 });
        let points = expand(&spec);
        assert_eq!(points.len(), 2 * 2 * 3);
        // Innermost axis: consecutive points differ in overlay first.
        assert_eq!(points[0].overlay, OverlaySpec::None);
        assert_ne!(points[1].overlay, OverlaySpec::None);
        assert!(points[1].run_id().ends_with("grow-sf-n900-t64"));
        assert!(points[2].run_id().ends_with("gradient-t32"));
        let ids: BTreeSet<String> = points.iter().map(RunPoint::run_id).collect();
        assert_eq!(ids.len(), points.len(), "run ids must stay unique");
    }

    #[test]
    fn driven_overlays_reject_sharded_and_churned_points() {
        let mut spec = tiny_spec();
        spec.overlays.push(OverlaySpec::Gradient { steps: 16 });
        // tiny_spec's shard axis includes 2: driven points cannot shard.
        let err = validate(&spec).expect_err("sharded driven points must fail");
        assert!(matches!(err, CampaignError::Spec(_)));
        spec.shards = vec![0];
        validate(&spec).expect("unsharded driven points are fine");
        spec.faults.push(FaultSpec::Churn {
            departures: 5,
            events: 2,
        });
        let err = validate(&spec).expect_err("churn + driver must fail");
        assert!(matches!(err, CampaignError::Spec(_)));
    }
}

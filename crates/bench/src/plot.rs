//! Minimal SVG line-chart rendering for the figure harness.
//!
//! The paper's figures are simple line and step plots; this module turns
//! a [`FigureResult`]'s CSV series into a self-contained SVG so the
//! regenerated evaluation can be *looked at*, not just diffed. No
//! external dependencies: the SVG is assembled as a string.
//!
//! [`FigureResult`]: crate::FigureResult

use std::fmt::Write as _;

use census_stats::csv::CsvTable;

/// Palette for up to six series (colour-blind-safe Okabe–Ito subset).
const COLORS: &[&str] = &[
    "#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9",
];

const WIDTH: f64 = 760.0;
const HEIGHT: f64 = 420.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 20.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 55.0;

/// A rendered chart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Svg(String);

impl Svg {
    /// The SVG document text.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Writes the SVG to a file, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, &self.0)
    }
}

fn nice_ticks(lo: f64, hi: f64, target: usize) -> Vec<f64> {
    if !(hi - lo).is_finite() || hi <= lo {
        return vec![lo];
    }
    let raw_step = (hi - lo) / target as f64;
    let mag = 10f64.powf(raw_step.log10().floor());
    let norm = raw_step / mag;
    let step = mag
        * if norm <= 1.0 {
            1.0
        } else if norm <= 2.0 {
            2.0
        } else if norm <= 5.0 {
            5.0
        } else {
            10.0
        };
    let first = (lo / step).ceil() * step;
    let mut ticks = Vec::new();
    let mut t = first;
    while t <= hi + step * 1e-9 {
        ticks.push(t);
        t += step;
    }
    ticks
}

fn fmt_tick(v: f64) -> String {
    if v.abs() >= 10_000.0 {
        format!("{:.0}k", v / 1_000.0)
    } else if v.fract().abs() < 1e-9 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

/// Renders a [`CsvTable`] as a line chart: the first column is the
/// x-axis, every further column is one series (named by its header).
///
/// # Panics
///
/// Panics if the table has no rows or fewer than two columns.
#[must_use]
pub fn line_chart(table: &CsvTable, title: &str, x_label: &str, y_label: &str) -> Svg {
    let csv = table.to_csv_string();
    let mut lines = csv.lines();
    let header: Vec<&str> = lines
        .next()
        .expect("tables have headers")
        .split(',')
        .collect();
    assert!(
        header.len() >= 2,
        "a chart needs an x column and one series"
    );
    let rows: Vec<Vec<f64>> = lines
        .map(|l| {
            l.split(',')
                .map(|c| c.parse().expect("CsvTable cells are numeric"))
                .collect()
        })
        .collect();
    assert!(!rows.is_empty(), "cannot chart an empty table");

    let (mut x_lo, mut x_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_lo, mut y_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for r in &rows {
        x_lo = x_lo.min(r[0]);
        x_hi = x_hi.max(r[0]);
        for &v in &r[1..] {
            if v.is_finite() {
                y_lo = y_lo.min(v);
                y_hi = y_hi.max(v);
            }
        }
    }
    if y_hi <= y_lo {
        y_hi = y_lo + 1.0;
    }
    if x_hi <= x_lo {
        x_hi = x_lo + 1.0;
    }
    // A little headroom.
    let pad = (y_hi - y_lo) * 0.06;
    let (y_lo, y_hi) = (y_lo - pad, y_hi + pad);

    let plot_w = WIDTH - MARGIN_L - MARGIN_R;
    let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
    let sx = move |x: f64| MARGIN_L + (x - x_lo) / (x_hi - x_lo) * plot_w;
    let sy = move |y: f64| MARGIN_T + (1.0 - (y - y_lo) / (y_hi - y_lo)) * plot_h;

    let mut s = String::new();
    let _ = write!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif">"#
    );
    let _ = write!(
        s,
        r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#
    );
    let _ = write!(
        s,
        r#"<text x="{}" y="22" text-anchor="middle" font-size="15" font-weight="bold">{}</text>"#,
        WIDTH / 2.0,
        xml_escape(title)
    );

    // Axes and grid.
    for t in nice_ticks(y_lo, y_hi, 6) {
        let y = sy(t);
        let _ = write!(
            s,
            r#"<line x1="{MARGIN_L}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="gainsboro"/>"#,
            WIDTH - MARGIN_R
        );
        let _ = write!(
            s,
            r#"<text x="{:.1}" y="{:.1}" text-anchor="end" font-size="11">{}</text>"#,
            MARGIN_L - 6.0,
            y + 4.0,
            fmt_tick(t)
        );
    }
    for t in nice_ticks(x_lo, x_hi, 8) {
        let x = sx(t);
        let _ = write!(
            s,
            r#"<line x1="{x:.1}" y1="{MARGIN_T}" x2="{x:.1}" y2="{:.1}" stroke="whitesmoke"/>"#,
            HEIGHT - MARGIN_B
        );
        let _ = write!(
            s,
            r#"<text x="{x:.1}" y="{:.1}" text-anchor="middle" font-size="11">{}</text>"#,
            HEIGHT - MARGIN_B + 16.0,
            fmt_tick(t)
        );
    }
    let _ = write!(
        s,
        r#"<rect x="{MARGIN_L}" y="{MARGIN_T}" width="{plot_w}" height="{plot_h}" fill="none" stroke="dimgray"/>"#
    );
    let _ = write!(
        s,
        r#"<text x="{}" y="{}" text-anchor="middle" font-size="12">{}</text>"#,
        MARGIN_L + plot_w / 2.0,
        HEIGHT - 14.0,
        xml_escape(x_label)
    );
    let _ = write!(
        s,
        r#"<text x="16" y="{}" text-anchor="middle" font-size="12" transform="rotate(-90 16 {})">{}</text>"#,
        MARGIN_T + plot_h / 2.0,
        MARGIN_T + plot_h / 2.0,
        xml_escape(y_label)
    );

    // Series.
    for (si, name) in header[1..].iter().enumerate() {
        let color = COLORS[si % COLORS.len()];
        let mut path = String::new();
        let mut pen_down = false;
        for r in &rows {
            let v = r[si + 1];
            if !v.is_finite() {
                pen_down = false;
                continue;
            }
            let cmd = if pen_down { 'L' } else { 'M' };
            let _ = write!(path, "{cmd}{:.1} {:.1} ", sx(r[0]), sy(v));
            pen_down = true;
        }
        let _ = write!(
            s,
            r#"<path d="{path}" fill="none" stroke="{color}" stroke-width="1.6"/>"#
        );
        // Legend.
        let lx = MARGIN_L + 12.0;
        let ly = MARGIN_T + 14.0 + 16.0 * si as f64;
        let _ = write!(
            s,
            r#"<line x1="{lx}" y1="{ly}" x2="{}" y2="{ly}" stroke="{color}" stroke-width="2.5"/>"#,
            lx + 22.0
        );
        let _ = write!(
            s,
            r#"<text x="{}" y="{}" font-size="11">{}</text>"#,
            lx + 28.0,
            ly + 4.0,
            xml_escape(name)
        );
    }
    s.push_str("</svg>");
    Svg(s)
}

fn xml_escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> CsvTable {
        let mut t = CsvTable::new(&["run", "alpha", "beta"]);
        for i in 0..50 {
            let x = f64::from(i);
            t.push_row(&[x, (x / 5.0).sin() * 10.0 + 100.0, x * 2.0]);
        }
        t
    }

    #[test]
    fn renders_well_formed_svg() {
        let svg = line_chart(&sample_table(), "demo", "runs", "value");
        let body = svg.as_str();
        assert!(body.starts_with("<svg"));
        assert!(body.ends_with("</svg>"));
        assert_eq!(body.matches("<path").count(), 2, "one path per series");
        assert!(body.contains("alpha") && body.contains("beta"));
        assert!(body.contains("demo"));
    }

    #[test]
    fn escapes_xml_in_labels() {
        let svg = line_chart(&sample_table(), "a < b & c", "x", "y");
        assert!(svg.as_str().contains("a &lt; b &amp; c"));
        assert!(!svg.as_str().contains("a < b"));
    }

    #[test]
    fn handles_constant_series() {
        let mut t = CsvTable::new(&["x", "flat"]);
        t.push_row(&[0.0, 5.0]);
        t.push_row(&[1.0, 5.0]);
        let svg = line_chart(&t, "flat", "x", "y");
        assert!(svg.as_str().contains("<path"));
    }

    #[test]
    fn nice_ticks_are_round_and_cover() {
        let ticks = nice_ticks(0.0, 100.0, 6);
        assert!(ticks.len() >= 4);
        assert!(ticks.windows(2).all(|w| w[1] > w[0]));
        assert!(*ticks.first().expect("non-empty") >= 0.0);
        assert!(*ticks.last().expect("non-empty") <= 100.0 + 1e-9);
        // Steps are "nice": multiples of 1/2/5 powers of ten.
        let step = ticks[1] - ticks[0];
        let mag = 10f64.powf(step.log10().floor());
        let norm = step / mag;
        assert!([1.0, 2.0, 5.0, 10.0]
            .iter()
            .any(|&n| (norm - n).abs() < 1e-9));
    }

    #[test]
    #[should_panic(expected = "empty table")]
    fn empty_table_panics() {
        let t = CsvTable::new(&["x", "y"]);
        let _ = line_chart(&t, "t", "x", "y");
    }

    #[test]
    fn writes_file() {
        let dir = std::env::temp_dir().join("census-bench-svg-test");
        let path = dir.join("chart.svg");
        line_chart(&sample_table(), "demo", "x", "y")
            .write_to(&path)
            .expect("write succeeds");
        assert!(std::fs::read_to_string(&path)
            .expect("file exists")
            .contains("<svg"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Robustness experiments beyond the paper's §5: estimation under the
//! §5.3.1 fault model and under Byzantine adversaries.
//!
//! The paper's simulations exclude message-losing departures; §5.3.1
//! argues a deployment should detect them with an adaptive trip-time
//! timeout and retry. [`loss_sweep`] quantifies that advice: it sweeps
//! per-hop drop probability × timeout multiplier and compares the
//! supervised initiator loop ([`census_core::Supervised`] over a
//! retransmitting transport) against the naive strategy of re-launching
//! unsupervised tours until one happens to survive — which completes
//! runs, but returns catastrophically low estimates, because loss
//! truncates long tours preferentially and the short survivors carry
//! tiny Random Tour estimates.
//!
//! [`byzantine_sweep`] goes past faults to *adversaries*
//! ([`census_sim::attacks`]): a swept fraction of peers inflates its
//! reported degree and swallows traversing walks, and the naive
//! Metropolis sampler — whose acceptance ratio trusts the claimed
//! degrees — is compared against the audited, min-degree-clamped
//! [`HardenedMetropolisSampler`] on how badly each misrepresents the
//! subverted population in its "uniform" samples.

use census_core::{AdaptiveTimeout, RandomTour, SizeEstimator, Supervised};
use census_graph::{NodeId, Topology};
use census_metrics::{Registry, RunCtx};
use census_sampling::{HardenedMetropolisSampler, MetropolisSampler, Sampler};
use census_sim::attacks::AttackPlan;
use census_sim::faults::{FaultPlan, FaultyTopology};
use census_sim::DynamicNetwork;
use census_stats::csv::CsvTable;
use census_stats::OnlineMoments;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt::Write as _;

use crate::{summary_line, FigureResult, Params};

/// Expected drops per mean-length tour; each λ maps to a per-hop drop
/// probability of `λ / N` (a Random Tour costs ≈ N hops on a balanced
/// overlay, so λ is the scale-free knob).
const LAMBDAS: &[f64] = &[0.5, 1.0, 2.0];

/// §5.3.1 "few multiples of the trip time standard deviation".
const TIMEOUT_KS: &[f64] = &[2.0, 4.0, 6.0];

/// Per-hop retransmission budget of the supervised arm's transport.
const RETRANSMITS: u32 = 2;

/// Attempt cap of the naive retry-until-success arm.
const NAIVE_ATTEMPTS: u32 = 40;

#[derive(Clone, Copy)]
struct Arm {
    completion_pct: f64,
    quality_pct: f64,
    hops_per_run: f64,
}

fn supervised_arm(
    faulty: &FaultyTopology<&census_graph::FrozenView>,
    probe: NodeId,
    truth: f64,
    k: f64,
    runs: u64,
    seed: u64,
    rec: &Registry,
) -> Arm {
    let supervised = Supervised::new(RandomTour::new())
        .with_timeout(AdaptiveTimeout::new(u64::MAX, k).with_warmup(10))
        .with_retries(5);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut survivors = OnlineMoments::new();
    let mut hops = 0.0;
    for _ in 0..runs {
        let mut ctx = RunCtx::with_recorder(faulty, &mut rng, rec);
        if let Ok(e) = supervised.estimate_with(&mut ctx, probe) {
            survivors.push(e.value);
            hops += e.messages as f64;
        }
    }
    Arm {
        completion_pct: 100.0 * survivors.count() as f64 / runs as f64,
        quality_pct: 100.0 * survivors.mean() / truth,
        hops_per_run: hops / runs as f64,
    }
}

fn naive_arm(
    faulty: &FaultyTopology<&census_graph::FrozenView>,
    probe: NodeId,
    truth: f64,
    runs: u64,
    seed: u64,
    rec: &Registry,
) -> Arm {
    let rt = RandomTour::new();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut survivors = OnlineMoments::new();
    let mut hops = 0.0;
    for _ in 0..runs {
        for _ in 0..NAIVE_ATTEMPTS {
            let mut ctx = RunCtx::with_recorder(faulty, &mut rng, rec);
            match rt.estimate_with(&mut ctx, probe) {
                Ok(e) => {
                    survivors.push(e.value);
                    hops += e.messages as f64;
                    break;
                }
                Err(_) => continue,
            }
        }
    }
    Arm {
        completion_pct: 100.0 * survivors.count() as f64 / runs as f64,
        quality_pct: 100.0 * survivors.mean() / truth,
        hops_per_run: hops / runs as f64,
    }
}

/// The loss sweep: per-hop drop probability (`λ/N` for λ in
/// [`LAMBDAS`]) × adaptive-timeout multiplier `k` → completion rate,
/// estimate bias and message overhead of the supervised Random Tour,
/// next to the naive retry-until-success baseline at the same loss rate.
///
/// Columns: `lambda, drop_p, timeout_k, sup_completion_pct,
/// sup_quality_pct, sup_retransmits_per_run, sup_hops_per_run,
/// naive_completion_pct, naive_quality_pct` (the naive arm ignores `k`,
/// so its columns repeat across a λ's rows).
#[must_use]
pub fn loss_sweep(p: &Params, rec: &Registry) -> FigureResult {
    let mut rng = SmallRng::seed_from_u64(p.seed ^ 0x10555);
    let net = DynamicNetwork::new(
        census_graph::generators::balanced(p.n, p.max_degree, &mut rng),
        census_sim::JoinRule::Balanced {
            max_degree: p.max_degree,
        },
    );
    let probe = net.graph().random_node(&mut rng).expect("non-empty");
    let truth = net.component_size_of(probe) as f64;
    let frozen = net.freeze();
    let runs = p.sc_runs;

    let mut table = CsvTable::new(&[
        "lambda",
        "drop_p",
        "timeout_k",
        "sup_completion_pct",
        "sup_quality_pct",
        "sup_retransmits_per_run",
        "sup_hops_per_run",
        "naive_completion_pct",
        "naive_quality_pct",
    ]);
    // The worst-loss, largest-k cell, for the summary.
    let mut headline_sup: Option<Arm> = None;
    let mut headline_naive: Option<Arm> = None;

    for (li, &lambda) in LAMBDAS.iter().enumerate() {
        let drop_p = lambda / p.n as f64;
        let fault_seed = p.seed ^ (0xFA0017 + 7 * li as u64);
        // The naive arm gets no retransmitting transport: the first drop
        // loses the probe, as in the bare §5.3.1 setting.
        let naive_topology = FaultPlan::new()
            .with_message_loss(drop_p, fault_seed)
            .apply(&frozen);
        let naive = naive_arm(
            &naive_topology,
            probe,
            truth,
            runs,
            p.seed ^ (0xBEEF + 31 * li as u64),
            rec,
        );
        for (ki, &k) in TIMEOUT_KS.iter().enumerate() {
            let sup_topology = FaultPlan::new()
                .with_message_loss(drop_p, fault_seed)
                .with_retransmits(RETRANSMITS)
                .apply(&frozen);
            let sup = supervised_arm(
                &sup_topology,
                probe,
                truth,
                k,
                runs,
                p.seed ^ (0xC0DE + 97 * li as u64 + 13 * ki as u64),
                rec,
            );
            let retransmits_per_run =
                sup_topology.fault_snapshot().retransmits as f64 / runs as f64;
            table.push_row(&[
                lambda,
                drop_p,
                k,
                sup.completion_pct,
                sup.quality_pct,
                retransmits_per_run,
                sup.hops_per_run,
                naive.completion_pct,
                naive.quality_pct,
            ]);
            if li == LAMBDAS.len() - 1 && ki == TIMEOUT_KS.len() - 1 {
                headline_sup = Some(sup);
                headline_naive = Some(naive);
            }
        }
    }

    let sup = headline_sup.expect("grids are non-empty");
    let naive = headline_naive.expect("grids are non-empty");
    let mut summary = format!(
        "loss-sweep: supervised Random Tour vs naive retry-until-success \
         under per-hop message loss (N = {}, {} runs/cell, retransmits = {}, \
         worst cell λ = {}, k = {}):\n",
        p.n,
        runs,
        RETRANSMITS,
        LAMBDAS.last().expect("non-empty"),
        TIMEOUT_KS.last().expect("non-empty"),
    );
    summary_line(
        &mut summary,
        "supervised completion %",
        100.0,
        sup.completion_pct,
    );
    summary_line(&mut summary, "supervised quality %", 100.0, sup.quality_pct);
    summary_line(
        &mut summary,
        "naive completion %",
        100.0,
        naive.completion_pct,
    );
    summary_line(&mut summary, "naive quality %", 100.0, naive.quality_pct);
    let _ = writeln!(
        summary,
        "  naive survivors are short tours, so its quality collapses while \
         the retransmitting supervised loop stays near 100%."
    );

    FigureResult {
        id: "loss-sweep",
        table,
        summary,
    }
}

/// Byzantine fractions swept by [`byzantine_sweep`].
const BYZ_FRACTIONS: &[f64] = &[0.0, 0.05, 0.10, 0.20, 0.30, 0.40];

/// Degree-inflation factor of the swept adversary: subverted peers claim
/// 10× their true degree, so a trusting Metropolis acceptance ratio
/// `min(1, d_u/d_v)` bounces honest walks off them.
const BYZ_INFLATION: f64 = 10.0;

/// Per-delivery walk-swallow probability of the swept adversary.
const BYZ_SWALLOW: f64 = 0.15;

/// Stranded-walk restart budget granted to *both* arms: liveness must
/// not be the discriminator — only bias resistance is under test.
const SAMPLER_RETRIES: u32 = 50;

/// The headline cell of the sweep (the ROADMAP's acceptance point).
const HEADLINE_FRACTION: f64 = 0.20;

/// One sampler's showing at one Byzantine fraction.
#[derive(Clone, Copy)]
struct BiasArm {
    /// Median (over replications) relative error of the subverted-peer
    /// share among returned samples vs the true subverted share.
    median_rel_err: f64,
    /// Samples completed within the restart budget, in percent.
    completion_pct: f64,
}

/// Draws `samples` per replication through `sampler` on a fresh
/// adversarial wrapper, and scores how far the subverted-peer share of
/// the returned samples sits from the population share `truth_frac`.
#[allow(clippy::too_many_arguments)]
fn bias_arm<S: Sampler>(
    sampler: &S,
    frozen: &census_graph::FrozenView,
    plan: AttackPlan,
    start: NodeId,
    truth_frac: f64,
    samples: u64,
    replications: u64,
    seed: u64,
    rec: &Registry,
) -> BiasArm {
    let mut errs = Vec::with_capacity(replications as usize);
    let mut completed_total = 0u64;
    for r in 0..replications.max(1) {
        // A fresh wrapper per replication: the attack-decision stream of
        // one arm never leaks into another, so each cell is a pure
        // function of (plan, sampler, seed, replication).
        let hostile = plan.apply(frozen);
        let mut rng = SmallRng::seed_from_u64(seed ^ (0x5A17 + 0x9E37 * r));
        let mut completed = 0u64;
        let mut byz_hits = 0u64;
        for _ in 0..samples {
            let mut ctx = RunCtx::with_recorder(&hostile, &mut rng, rec);
            if let Ok(s) = sampler.sample_ctx(&mut ctx, start) {
                completed += 1;
                if plan.is_byzantine(s.node) {
                    byz_hits += 1;
                }
            }
        }
        hostile.attack_snapshot().charge(rec);
        completed_total += completed;
        let observed = if completed == 0 {
            0.0
        } else {
            byz_hits as f64 / completed as f64
        };
        errs.push(if truth_frac > 0.0 {
            (observed - truth_frac).abs() / truth_frac
        } else {
            observed
        });
    }
    errs.sort_by(f64::total_cmp);
    BiasArm {
        median_rel_err: errs[errs.len() / 2],
        completion_pct: 100.0 * completed_total as f64 / (samples * replications.max(1)) as f64,
    }
}

/// The Byzantine bias sweep: subverted fraction (0–40%) under degree
/// inflation + walk swallowing → how strongly each Metropolis variant
/// misrepresents the subverted population in its output law.
///
/// Both arms restart stranded walks up to [`SAMPLER_RETRIES`] times, so
/// they face the same swallow-survivorship pressure; the naive arm
/// additionally *trusts* the inflated degree claims, which repel its
/// walks from every subverted peer, while the hardened arm's
/// neighbours-of-neighbours audit discards the lies. The gap between
/// their relative errors is therefore the value of the audit alone.
///
/// Columns: `byzantine_pct, truth_pct, naive_rel_err, hardened_rel_err,
/// naive_completion_pct, hardened_completion_pct, hardened_advantage`
/// (naive error over hardened error, clamped away from 0/0).
#[must_use]
pub fn byzantine_sweep(p: &Params, rec: &Registry) -> FigureResult {
    let mut rng = SmallRng::seed_from_u64(p.seed ^ 0x00B1_2542);
    let frozen = census_graph::generators::balanced(p.n, p.max_degree, &mut rng).freeze();
    let start = frozen.nodes().next().expect("non-empty");
    let steps = (((p.n as f64).ln() * 10.0).ceil() as u64).max(40);
    let samples = (p.sc_runs * 4).max(200);
    let replications = p.replications.max(3);
    let naive = MetropolisSampler::new(steps).with_retries(SAMPLER_RETRIES);
    let hardened = HardenedMetropolisSampler::new(steps).with_retries(SAMPLER_RETRIES);

    let mut table = CsvTable::new(&[
        "byzantine_pct",
        "truth_pct",
        "naive_rel_err",
        "hardened_rel_err",
        "naive_completion_pct",
        "hardened_completion_pct",
        "hardened_advantage",
    ]);
    let mut headline: Option<(BiasArm, BiasArm)> = None;

    for (fi, &fraction) in BYZ_FRACTIONS.iter().enumerate() {
        let plan = AttackPlan::new()
            .with_byzantine(fraction, p.seed ^ (0xA77 + 3 * fi as u64))
            .with_degree_inflation(BYZ_INFLATION)
            .with_walk_swallow(BYZ_SWALLOW);
        let truth_frac = frozen.nodes().filter(|&v| plan.is_byzantine(v)).count() as f64
            / frozen.peer_count() as f64;
        let arm_seed = p.seed ^ (0xB1A5 + 101 * fi as u64);
        let naive_arm = bias_arm(
            &naive,
            &frozen,
            plan,
            start,
            truth_frac,
            samples,
            replications,
            arm_seed,
            rec,
        );
        let hardened_arm = bias_arm(
            &hardened,
            &frozen,
            plan,
            start,
            truth_frac,
            samples,
            replications,
            arm_seed,
            rec,
        );
        let advantage = naive_arm.median_rel_err / hardened_arm.median_rel_err.max(1e-6);
        table.push_row(&[
            100.0 * fraction,
            100.0 * truth_frac,
            naive_arm.median_rel_err,
            hardened_arm.median_rel_err,
            naive_arm.completion_pct,
            hardened_arm.completion_pct,
            advantage,
        ]);
        if (fraction - HEADLINE_FRACTION).abs() < 1e-9 {
            headline = Some((naive_arm, hardened_arm));
        }
    }

    let (naive_h, hardened_h) = headline.expect("the sweep includes the 20% cell");
    let advantage = naive_h.median_rel_err / hardened_h.median_rel_err.max(1e-6);
    let mut summary = format!(
        "byzantine-sweep: naive vs hardened Metropolis sampling under \
         {:.0}x degree inflation + {:.0}% walk swallowing (N = {}, \
         {} steps/walk, {} samples x {} replications/cell, headline at \
         {:.0}% subverted):\n",
        BYZ_INFLATION,
        100.0 * BYZ_SWALLOW,
        p.n,
        steps,
        samples,
        replications,
        100.0 * HEADLINE_FRACTION,
    );
    summary_line(
        &mut summary,
        "naive median rel. error",
        0.0,
        naive_h.median_rel_err,
    );
    summary_line(
        &mut summary,
        "hardened median rel. error",
        0.0,
        hardened_h.median_rel_err,
    );
    summary_line(
        &mut summary,
        "hardened advantage (target >= 3)",
        3.0,
        advantage,
    );
    let _ = writeln!(
        summary,
        "  inflated degree claims repel the trusting acceptance ratio from \
         every subverted peer; the audit believes only the mutually-verified \
         adjacency, so the hardened output law stays near the population."
    );

    FigureResult {
        id: "byzantine-sweep",
        table,
        summary,
    }
}

//! Robustness experiments beyond the paper's §5: estimation under the
//! §5.3.1 fault model.
//!
//! The paper's simulations exclude message-losing departures; §5.3.1
//! argues a deployment should detect them with an adaptive trip-time
//! timeout and retry. [`loss_sweep`] quantifies that advice: it sweeps
//! per-hop drop probability × timeout multiplier and compares the
//! supervised initiator loop ([`census_core::Supervised`] over a
//! retransmitting transport) against the naive strategy of re-launching
//! unsupervised tours until one happens to survive — which completes
//! runs, but returns catastrophically low estimates, because loss
//! truncates long tours preferentially and the short survivors carry
//! tiny Random Tour estimates.

use census_core::{AdaptiveTimeout, RandomTour, SizeEstimator, Supervised};
use census_graph::NodeId;
use census_metrics::{Registry, RunCtx};
use census_sim::faults::{FaultPlan, FaultyTopology};
use census_sim::DynamicNetwork;
use census_stats::csv::CsvTable;
use census_stats::OnlineMoments;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt::Write as _;

use crate::{summary_line, FigureResult, Params};

/// Expected drops per mean-length tour; each λ maps to a per-hop drop
/// probability of `λ / N` (a Random Tour costs ≈ N hops on a balanced
/// overlay, so λ is the scale-free knob).
const LAMBDAS: &[f64] = &[0.5, 1.0, 2.0];

/// §5.3.1 "few multiples of the trip time standard deviation".
const TIMEOUT_KS: &[f64] = &[2.0, 4.0, 6.0];

/// Per-hop retransmission budget of the supervised arm's transport.
const RETRANSMITS: u32 = 2;

/// Attempt cap of the naive retry-until-success arm.
const NAIVE_ATTEMPTS: u32 = 40;

#[derive(Clone, Copy)]
struct Arm {
    completion_pct: f64,
    quality_pct: f64,
    hops_per_run: f64,
}

fn supervised_arm(
    faulty: &FaultyTopology<&census_graph::FrozenView>,
    probe: NodeId,
    truth: f64,
    k: f64,
    runs: u64,
    seed: u64,
    rec: &Registry,
) -> Arm {
    let supervised = Supervised::new(RandomTour::new())
        .with_timeout(AdaptiveTimeout::new(u64::MAX, k).with_warmup(10))
        .with_retries(5);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut survivors = OnlineMoments::new();
    let mut hops = 0.0;
    for _ in 0..runs {
        let mut ctx = RunCtx::with_recorder(faulty, &mut rng, rec);
        if let Ok(e) = supervised.estimate_with(&mut ctx, probe) {
            survivors.push(e.value);
            hops += e.messages as f64;
        }
    }
    Arm {
        completion_pct: 100.0 * survivors.count() as f64 / runs as f64,
        quality_pct: 100.0 * survivors.mean() / truth,
        hops_per_run: hops / runs as f64,
    }
}

fn naive_arm(
    faulty: &FaultyTopology<&census_graph::FrozenView>,
    probe: NodeId,
    truth: f64,
    runs: u64,
    seed: u64,
    rec: &Registry,
) -> Arm {
    let rt = RandomTour::new();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut survivors = OnlineMoments::new();
    let mut hops = 0.0;
    for _ in 0..runs {
        for _ in 0..NAIVE_ATTEMPTS {
            let mut ctx = RunCtx::with_recorder(faulty, &mut rng, rec);
            match rt.estimate_with(&mut ctx, probe) {
                Ok(e) => {
                    survivors.push(e.value);
                    hops += e.messages as f64;
                    break;
                }
                Err(_) => continue,
            }
        }
    }
    Arm {
        completion_pct: 100.0 * survivors.count() as f64 / runs as f64,
        quality_pct: 100.0 * survivors.mean() / truth,
        hops_per_run: hops / runs as f64,
    }
}

/// The loss sweep: per-hop drop probability (`λ/N` for λ in
/// [`LAMBDAS`]) × adaptive-timeout multiplier `k` → completion rate,
/// estimate bias and message overhead of the supervised Random Tour,
/// next to the naive retry-until-success baseline at the same loss rate.
///
/// Columns: `lambda, drop_p, timeout_k, sup_completion_pct,
/// sup_quality_pct, sup_retransmits_per_run, sup_hops_per_run,
/// naive_completion_pct, naive_quality_pct` (the naive arm ignores `k`,
/// so its columns repeat across a λ's rows).
#[must_use]
pub fn loss_sweep(p: &Params, rec: &Registry) -> FigureResult {
    let mut rng = SmallRng::seed_from_u64(p.seed ^ 0x10555);
    let net = DynamicNetwork::new(
        census_graph::generators::balanced(p.n, p.max_degree, &mut rng),
        census_sim::JoinRule::Balanced {
            max_degree: p.max_degree,
        },
    );
    let probe = net.graph().random_node(&mut rng).expect("non-empty");
    let truth = net.component_size_of(probe) as f64;
    let frozen = net.freeze();
    let runs = p.sc_runs;

    let mut table = CsvTable::new(&[
        "lambda",
        "drop_p",
        "timeout_k",
        "sup_completion_pct",
        "sup_quality_pct",
        "sup_retransmits_per_run",
        "sup_hops_per_run",
        "naive_completion_pct",
        "naive_quality_pct",
    ]);
    // The worst-loss, largest-k cell, for the summary.
    let mut headline_sup: Option<Arm> = None;
    let mut headline_naive: Option<Arm> = None;

    for (li, &lambda) in LAMBDAS.iter().enumerate() {
        let drop_p = lambda / p.n as f64;
        let fault_seed = p.seed ^ (0xFA0017 + 7 * li as u64);
        // The naive arm gets no retransmitting transport: the first drop
        // loses the probe, as in the bare §5.3.1 setting.
        let naive_topology = FaultPlan::new()
            .with_message_loss(drop_p, fault_seed)
            .apply(&frozen);
        let naive = naive_arm(
            &naive_topology,
            probe,
            truth,
            runs,
            p.seed ^ (0xBEEF + 31 * li as u64),
            rec,
        );
        for (ki, &k) in TIMEOUT_KS.iter().enumerate() {
            let sup_topology = FaultPlan::new()
                .with_message_loss(drop_p, fault_seed)
                .with_retransmits(RETRANSMITS)
                .apply(&frozen);
            let sup = supervised_arm(
                &sup_topology,
                probe,
                truth,
                k,
                runs,
                p.seed ^ (0xC0DE + 97 * li as u64 + 13 * ki as u64),
                rec,
            );
            let retransmits_per_run =
                sup_topology.fault_snapshot().retransmits as f64 / runs as f64;
            table.push_row(&[
                lambda,
                drop_p,
                k,
                sup.completion_pct,
                sup.quality_pct,
                retransmits_per_run,
                sup.hops_per_run,
                naive.completion_pct,
                naive.quality_pct,
            ]);
            if li == LAMBDAS.len() - 1 && ki == TIMEOUT_KS.len() - 1 {
                headline_sup = Some(sup);
                headline_naive = Some(naive);
            }
        }
    }

    let sup = headline_sup.expect("grids are non-empty");
    let naive = headline_naive.expect("grids are non-empty");
    let mut summary = format!(
        "loss-sweep: supervised Random Tour vs naive retry-until-success \
         under per-hop message loss (N = {}, {} runs/cell, retransmits = {}, \
         worst cell λ = {}, k = {}):\n",
        p.n,
        runs,
        RETRANSMITS,
        LAMBDAS.last().expect("non-empty"),
        TIMEOUT_KS.last().expect("non-empty"),
    );
    summary_line(
        &mut summary,
        "supervised completion %",
        100.0,
        sup.completion_pct,
    );
    summary_line(&mut summary, "supervised quality %", 100.0, sup.quality_pct);
    summary_line(
        &mut summary,
        "naive completion %",
        100.0,
        naive.completion_pct,
    );
    summary_line(&mut summary, "naive quality %", 100.0, naive.quality_pct);
    let _ = writeln!(
        summary,
        "  naive survivors are short tours, so its quality collapses while \
         the retransmitting supervised loop stays near 100%."
    );

    FigureResult {
        id: "loss-sweep",
        table,
        summary,
    }
}

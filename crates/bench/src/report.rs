//! The one JSON writer every bench artefact goes through.
//!
//! The perf probes used to serialise bare payload structs straight to
//! their `BENCH_N.json` files, so every consumer had to know which file
//! carried which shape and nothing identified a file as ours. Every
//! probe report now ships inside an [`Envelope`] carrying a stable
//! schema tag ([`SCHEMA`]), the probe arm that produced it, and whether
//! it ran in smoke mode — downstream tooling can sniff the `schema`
//! field instead of pattern-matching filenames.
//!
//! Writes are atomic: the JSON lands in a `.tmp` sibling first and is
//! renamed into place, so a crash mid-write never leaves a truncated
//! artefact where a previous good one stood. The campaign runner uses
//! the same [`write_json_atomic`] primitive for its manifest, which is
//! rewritten after *every* run.

use std::io;
use std::path::Path;

/// Schema tag stamped on every probe envelope this crate writes.
pub const SCHEMA: &str = "overlay-census/bench-v1";

/// The stable wrapper around every probe payload.
#[derive(Debug, serde::Serialize)]
pub struct Envelope<T: serde::Serialize> {
    /// Always [`SCHEMA`]; lets consumers sniff the artefact kind.
    pub schema: &'static str,
    /// The probe arm that produced the payload (e.g. `"snapshot-io"`).
    pub probe: &'static str,
    /// Whether the probe ran at reduced smoke scale — smoke numbers are
    /// CI health checks, never headline figures.
    pub smoke: bool,
    /// The arm-specific measurements.
    pub payload: T,
}

/// Serialises `value` as pretty JSON and writes it atomically: the bytes
/// go to `<path>.tmp` first, then a rename swings them into place.
///
/// # Errors
///
/// Propagates serialisation and I/O failures; on failure the target path
/// still holds whatever it held before.
pub fn write_json_atomic<T: serde::Serialize>(value: &T, path: &Path) -> io::Result<()> {
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, json)?;
    std::fs::rename(&tmp, path)
}

/// Wraps `payload` in an [`Envelope`] for `probe` and writes it
/// atomically to `path`.
///
/// # Errors
///
/// Propagates serialisation and I/O failures.
pub fn write_envelope<T: serde::Serialize>(
    probe: &'static str,
    smoke: bool,
    payload: &T,
    path: &Path,
) -> io::Result<()> {
    write_json_atomic(
        &Envelope {
            schema: SCHEMA,
            probe,
            smoke,
            payload,
        },
        path,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_write_leaves_no_tmp_file() {
        let dir = std::env::temp_dir().join("census-bench-report-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("envelope.json");
        write_envelope("headline", true, &42u32, &path).expect("write succeeds");
        let body = std::fs::read_to_string(&path).expect("file exists");
        assert!(
            body.contains(SCHEMA),
            "schema tag must appear in the artefact"
        );
        assert!(body.contains("\"probe\": \"headline\""));
        assert!(
            !dir.join("envelope.json.tmp").exists(),
            "tmp sibling must be renamed away"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Headline performance probes: `BENCH_2.json` and `BENCH_4.json`.
//!
//! A dependency-free (no criterion harness) wall-clock probe of the
//! numbers the stacked PRs promise to hold:
//!
//! 1. `frozen_vs_live` — CSR snapshot walk throughput vs the live
//!    adjacency-list graph (PR 1's claim).
//! 2. `recorder_overhead` — the no-op recorder vs a live atomic
//!    [`Registry`] on the same tour workload (PR 2's ≤ 5% budget).
//! 3. `--service` — end-to-end [`CensusService`] throughput
//!    (queries/sec) at the paper's N = 100,000 for several worker
//!    counts, with and without a concurrent churn stream (PR 4's
//!    scaling claim). Writes `BENCH_4.json`.
//! 4. `--batched` — CTRW samples/sec through the batched frontier
//!    kernel vs the serial walk engine on the same per-walk streams at
//!    the paper's N = 100,000 (PR 5's ≥ 2× claim), after asserting the
//!    two paths produce bit-identical samples. Writes `BENCH_5.json`.
//! 5. `--sharded` — end-to-end [`ShardedCensusService`] throughput
//!    (queries/sec and CTRW samples/sec) vs shard count at the paper's
//!    N = 100,000 on a mixed count + sample workload (PR 6's ≥ 1.5×
//!    claim), after asserting every sharded arm returns outcomes
//!    byte-identical to the unsharded service. Writes `BENCH_6.json`.
//!
//! ```text
//! cargo run --release -p census-bench --bin perf-probe [-- --out BENCH_2.json]
//! cargo run --release -p census-bench --bin perf-probe -- --service [--smoke]
//! cargo run --release -p census-bench --bin perf-probe -- --batched [--smoke]
//! cargo run --release -p census-bench --bin perf-probe -- --sharded [--smoke]
//! ```
//!
//! Each arm re-seeds its RNG identically, so every variant walks the
//! exact same hop sequence and the ratio isolates the representation /
//! recording / scheduling cost. Medians over repeated timed passes keep
//! one noisy scheduler quantum from skewing the headline ratios.
//! `--smoke` shrinks the service probe to a seconds-scale CI check.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use census_core::{RandomTour, SizeEstimator};
use census_graph::generators;
use census_metrics::{NoopRecorder, Registry, RunCtx};
use census_sampling::CtrwSampler;
use census_service::{
    CensusService, Counter, Query, QueryOutcome, ServiceConfig, ShardedCensusService,
};
use census_sim::{DynamicNetwork, JoinRule, MembershipDelta, Scenario};
use census_walk::continuous::{ctrw_walk, CtrwOutcome, Sojourn};
use census_walk::frontier::{ctrw_frontier, CtrwSpec};
use census_walk::stream::{stream_seed, SplitMix64, StreamDomain};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const PAPER_N: usize = 100_000;
const TOURS_PER_PASS: u32 = 5;
const REPEATS: usize = 9;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut out: Option<PathBuf> = None;
    let mut service = false;
    let mut batched = false;
    let mut sharded = false;
    let mut smoke = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                let Some(v) = args.next() else {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                };
                out = Some(PathBuf::from(v));
            }
            "--service" => service = true,
            "--batched" => batched = true,
            "--sharded" => sharded = true,
            "--smoke" => smoke = true,
            "--help" | "-h" => {
                println!("usage: perf-probe [--out BENCH_2.json]");
                println!("       perf-probe --service [--smoke] [--out BENCH_4.json]");
                println!("       perf-probe --batched [--smoke] [--out BENCH_5.json]");
                println!("       perf-probe --sharded [--smoke] [--out BENCH_6.json]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    if usize::from(service) + usize::from(batched) + usize::from(sharded) > 1 {
        eprintln!("--service, --batched, and --sharded are separate probes; pick one");
        return ExitCode::FAILURE;
    }
    if service {
        service_probe(out.unwrap_or_else(|| PathBuf::from("BENCH_4.json")), smoke)
    } else if batched {
        batched_probe(out.unwrap_or_else(|| PathBuf::from("BENCH_5.json")), smoke)
    } else if sharded {
        sharded_probe(out.unwrap_or_else(|| PathBuf::from("BENCH_6.json")), smoke)
    } else {
        headline_probe(out.unwrap_or_else(|| PathBuf::from("BENCH_2.json")))
    }
}

fn headline_probe(out: PathBuf) -> ExitCode {
    let mut rng = SmallRng::seed_from_u64(1);
    let g = generators::balanced(PAPER_N, 10, &mut rng);
    let frozen = g.freeze();
    let probe = g.nodes().next().expect("non-empty");
    let rt = RandomTour::new();
    let registry = Registry::new();

    println!(
        "perf probe on balanced N = {PAPER_N} ({TOURS_PER_PASS} tours/pass, median of {REPEATS})"
    );

    let live_s = median_secs(REPEATS, || {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut ctx = RunCtx::new(&g, &mut rng);
        for _ in 0..TOURS_PER_PASS {
            let _ = rt.estimate_with(&mut ctx, probe).expect("connected");
        }
    });
    let frozen_noop_s = median_secs(REPEATS, || {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut ctx = RunCtx::new(&frozen, &mut rng);
        for _ in 0..TOURS_PER_PASS {
            let _ = rt.estimate_with(&mut ctx, probe).expect("connected");
        }
    });
    let frozen_registry_s = median_secs(REPEATS, || {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut ctx = RunCtx::with_recorder(&frozen, &mut rng, &registry);
        for _ in 0..TOURS_PER_PASS {
            let _ = rt.estimate_with(&mut ctx, probe).expect("connected");
        }
    });

    let frozen_speedup = live_s / frozen_noop_s;
    let recorder_overhead_pct = (frozen_registry_s / frozen_noop_s - 1.0) * 100.0;
    println!("  live graph        : {live_s:.4} s/pass");
    println!("  frozen csr (noop) : {frozen_noop_s:.4} s/pass  ({frozen_speedup:.2}x vs live)");
    println!(
        "  frozen csr (reg)  : {frozen_registry_s:.4} s/pass  ({recorder_overhead_pct:+.2}% vs noop)"
    );

    let report = Report {
        n: PAPER_N,
        tours_per_pass: TOURS_PER_PASS,
        repeats: REPEATS,
        live_tour_pass_s: live_s,
        frozen_noop_pass_s: frozen_noop_s,
        frozen_registry_pass_s: frozen_registry_s,
        frozen_speedup_vs_live: frozen_speedup,
        recorder_overhead_pct,
        recorder_budget_pct: 5.0,
    };
    write_report(&report, &out)
}

/// `BENCH_4.json`: queries/sec through the full service stack — queue,
/// epoch pinning, worker pool — for several worker counts, with and
/// without churn racing the queries.
fn service_probe(out: PathBuf, smoke: bool) -> ExitCode {
    let (n, queries, worker_counts, repeats): (usize, u64, &[usize], usize) = if smoke {
        (5_000, 12, &[1, 2], 1)
    } else {
        (PAPER_N, 48, &[1, 2, 4, 8], 3)
    };
    // ~2% of the overlay departs across 8 events while queries run.
    let events = Scenario::new()
        .remove_gradually(0, 8, (n / 50) as u64)
        .events(8);

    println!(
        "service probe on balanced N = {n} ({queries} tour queries/pass, median of {repeats})"
    );
    let mut arms = Vec::new();
    for &workers in worker_counts {
        let quiet_s = median_secs(repeats, || run_service_pass(n, workers, queries, &[]));
        let churn_s = median_secs(repeats, || run_service_pass(n, workers, queries, &events));
        let arm = ServiceArm {
            workers,
            no_churn_qps: queries as f64 / quiet_s,
            churn_qps: queries as f64 / churn_s,
        };
        println!(
            "  {workers} worker(s): {:.1} q/s quiet, {:.1} q/s under churn",
            arm.no_churn_qps, arm.churn_qps
        );
        arms.push(arm);
    }

    let qps_at = |w: usize| arms.iter().find(|a| a.workers == w).map(|a| a.no_churn_qps);
    let scaling_1_to_4 = match (qps_at(1), qps_at(4)) {
        (Some(one), Some(four)) => Some(four / one),
        _ => None,
    };
    if let Some(s) = scaling_1_to_4 {
        println!("  1 -> 4 workers: {s:.2}x throughput");
    }

    let report = ServiceReport {
        n,
        queries_per_pass: queries,
        repeats,
        arms,
        scaling_1_to_4,
    };
    write_report(&report, &out)
}

/// Serves `queries` Random Tour count queries and returns the wall-clock
/// seconds from first submission to full drain.
fn run_service_pass(n: usize, workers: usize, queries: u64, events: &[MembershipDelta]) -> f64 {
    // Identical seeds per pass: every arm serves the same overlay and
    // the same query streams; only the schedule differs.
    let mut rng = SmallRng::seed_from_u64(11);
    let net = DynamicNetwork::new(
        generators::balanced(n, 10, &mut rng),
        JoinRule::Balanced { max_degree: 10 },
    );
    let config = ServiceConfig::new(33)
        .with_workers(workers)
        .with_queue_capacity(queries.max(1) as usize);
    let mut service = CensusService::new(net, config);

    let start = Instant::now();
    let ((), outcomes) = service.serve(events, |census| {
        for _ in 0..queries {
            census
                .submit(Query::Count(Counter::RandomTour(RandomTour::new())))
                .expect("queue sized to the full load");
        }
    });
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(outcomes.len() as u64, queries, "ledger must reconcile");
    secs
}

/// `BENCH_5.json`: CTRW sampling throughput through the batched frontier
/// kernel vs the serial engine, on the *same* per-walk tagged streams.
///
/// Before timing anything, the probe runs both paths once and asserts
/// every `(node, hops)` pair matches bit for bit — the speedup below is
/// only meaningful because the two paths are the same random variable.
fn batched_probe(out: PathBuf, smoke: bool) -> ExitCode {
    let (n, samples, repeats): (usize, u64, usize) = if smoke {
        (5_000, 512, 1)
    } else {
        (PAPER_N, 4_096, 5)
    };
    // The production frontier width (`census-sampling`'s sample_many
    // chunks) — wide enough to overlap many CSR misses.
    const WIDTH: u64 = 64;
    // The paper's experimental timer setting.
    const TIMER: f64 = 10.0;
    const BASE_SEED: u64 = 7;

    let mut rng = SmallRng::seed_from_u64(1);
    let g = generators::balanced(n, 10, &mut rng);
    let frozen = g.freeze();
    let start = g.nodes().next().expect("non-empty");
    let walk_rng = |i: u64| SplitMix64::new(stream_seed(StreamDomain::FrontierWalk, BASE_SEED, i));

    let serial_pass = || -> Vec<CtrwOutcome> {
        (0..samples)
            .map(|i| {
                ctrw_walk(
                    &frozen,
                    start,
                    TIMER,
                    Sojourn::Exponential,
                    &mut walk_rng(i),
                )
                .expect("fault-free CTRW completes")
            })
            .collect()
    };
    let batched_pass = || -> Vec<CtrwOutcome> {
        let mut outs = Vec::with_capacity(samples as usize);
        let mut next = 0u64;
        while next < samples {
            let width = (samples - next).min(WIDTH);
            let mut specs: Vec<CtrwSpec<&census_graph::FrozenView, SplitMix64>> = (0..width)
                .map(|i| CtrwSpec {
                    topology: &frozen,
                    rng: walk_rng(next + i),
                    start,
                    timer: TIMER,
                    sojourn: Sojourn::Exponential,
                })
                .collect();
            for fate in ctrw_frontier(&mut specs, &NoopRecorder) {
                outs.push(fate.result.expect("fault-free CTRW completes"));
            }
            next += width;
        }
        outs
    };

    println!(
        "batched frontier probe on balanced N = {n} ({samples} CTRW samples, T = {TIMER}, \
         W = {WIDTH}, median of {repeats})"
    );
    let serial_out = serial_pass();
    let batched_out = batched_pass();
    assert_eq!(
        serial_out, batched_out,
        "batched samples must be bit-identical to the serial walks"
    );
    println!("  equivalence       : {samples} samples bit-identical across paths");

    let serial_s = median_secs(repeats, || {
        let _ = serial_pass();
    });
    let batched_s = median_secs(repeats, || {
        let _ = batched_pass();
    });
    let serial_sps = samples as f64 / serial_s;
    let batched_sps = samples as f64 / batched_s;
    let speedup = serial_s / batched_s;
    println!("  serial walks      : {serial_s:.4} s/pass  ({serial_sps:.0} samples/s)");
    println!("  batched frontier  : {batched_s:.4} s/pass  ({batched_sps:.0} samples/s)");
    println!("  speedup           : {speedup:.2}x (target >= 2x at N = {PAPER_N})");

    let report = BatchedReport {
        n,
        samples,
        frontier_width: WIDTH,
        timer: TIMER,
        repeats,
        equivalent: true,
        serial_pass_s: serial_s,
        batched_pass_s: batched_s,
        serial_samples_per_s: serial_sps,
        batched_samples_per_s: batched_sps,
        batched_speedup: speedup,
        target_speedup: 2.0,
    };
    write_report(&report, &out)
}

/// `BENCH_6.json`: queries/sec and CTRW samples/sec through the sharded
/// service — partitioned snapshot, per-shard worker pools, cross-shard
/// walk stitching — vs shard count, on a mixed count + sample workload.
///
/// Every arm runs one worker per shard, so added throughput comes from
/// the partition, not from extra threads on one snapshot. Before any arm
/// is timed, its outcomes are asserted byte-identical to the unsharded
/// [`CensusService`] on the same seed and workload: the scaling below is
/// only meaningful because every arm computes the same random variable.
fn sharded_probe(out: PathBuf, smoke: bool) -> ExitCode {
    let (n, samples, counts, shard_counts, repeats): (usize, u64, u64, &[usize], usize) = if smoke {
        (5_000, 12, 4, &[1, 2], 1)
    } else {
        (PAPER_N, 40, 8, &[1, 2, 4, 8], 3)
    };
    // The paper's experimental timer setting: long walks cross shard
    // boundaries many times, exercising the handoff path the probe is
    // pricing.
    const TIMER: f64 = 10.0;
    let queries = samples + counts;

    println!(
        "sharded probe on balanced N = {n} ({samples} CTRW samples + {counts} tour counts/pass, \
         T = {TIMER}, 1 worker/shard, median of {repeats})"
    );

    let (_, expected) = run_sharded_pass(n, None, samples, counts, TIMER, queries);
    println!("  unsharded baseline: {} outcomes", expected.len());

    let mut arms = Vec::new();
    for &shards in shard_counts {
        let (_, outcomes) = run_sharded_pass(n, Some(shards), samples, counts, TIMER, queries);
        assert_eq!(
            outcomes, expected,
            "sharded outcomes must be byte-identical to the unsharded service"
        );
        let secs = median_secs(repeats, || {
            run_sharded_pass(n, Some(shards), samples, counts, TIMER, queries).0
        });
        let arm = ShardArm {
            shards,
            queries_per_s: queries as f64 / secs,
            samples_per_s: samples as f64 / secs,
        };
        println!(
            "  {shards} shard(s): {:.1} q/s, {:.1} samples/s (outcomes bit-identical)",
            arm.queries_per_s, arm.samples_per_s
        );
        arms.push(arm);
    }

    let qps_at = |s: usize| arms.iter().find(|a| a.shards == s).map(|a| a.queries_per_s);
    let best_multi = arms
        .iter()
        .filter(|a| a.shards > 1)
        .map(|a| a.queries_per_s)
        .fold(f64::NAN, f64::max);
    let multi_shard_speedup = qps_at(1).map(|one| best_multi / one);
    if let Some(s) = multi_shard_speedup {
        println!("  best multi-shard vs 1 shard: {s:.2}x (target >= 1.5x at N = {PAPER_N})");
    }

    let report = ShardedReport {
        n,
        samples_per_pass: samples,
        counts_per_pass: counts,
        timer: TIMER,
        repeats,
        equivalent: true,
        arms,
        multi_shard_speedup,
        target_speedup: 1.5,
    };
    write_report(&report, &out)
}

/// Serves the mixed workload on a fresh overlay — through the unsharded
/// service when `shards` is `None`, else through the sharded service with
/// one worker per shard — returning the serve-window seconds and the
/// outcomes (for the equivalence assertion).
fn run_sharded_pass(
    n: usize,
    shards: Option<usize>,
    samples: u64,
    counts: u64,
    timer: f64,
    queries: u64,
) -> (f64, Vec<QueryOutcome>) {
    assert_eq!(
        samples + counts,
        queries,
        "workload quotas must reconcile with the total query count"
    );
    // Identical seeds per pass: every arm serves the same overlay and
    // the same query streams; only the partition differs.
    let mut rng = SmallRng::seed_from_u64(11);
    let net = DynamicNetwork::new(
        generators::balanced(n, 10, &mut rng),
        JoinRule::Balanced { max_degree: 10 },
    );
    let config = ServiceConfig::new(33)
        .with_workers(1)
        .with_queue_capacity(queries.max(1) as usize);
    let workload: Vec<Query> = {
        let mut qs = Vec::with_capacity(queries as usize);
        let mut sampled = 0u64;
        for i in 0..queries {
            // Alternate, front-loading samples until their quota is met.
            if sampled < samples && (i % 2 == 0 || queries - i <= samples - sampled) {
                qs.push(Query::Sample(CtrwSampler::new(timer)));
                sampled += 1;
            } else {
                qs.push(Query::Count(Counter::RandomTour(RandomTour::new())));
            }
        }
        qs
    };
    match shards {
        None => {
            let mut service = CensusService::new(net, config);
            let start = Instant::now();
            let ((), outcomes) = service.serve(&[], |census| {
                for q in &workload {
                    census.submit(*q).expect("queue sized to the full load");
                }
            });
            let secs = start.elapsed().as_secs_f64();
            assert_eq!(outcomes.len() as u64, queries, "ledger must reconcile");
            (secs, outcomes)
        }
        Some(shards) => {
            let mut service = ShardedCensusService::new(net, config.with_shards(shards));
            let start = Instant::now();
            let ((), outcomes) = service.serve(&[], |census| {
                for q in &workload {
                    census.submit(*q).expect("queue sized to the full load");
                }
            });
            let secs = start.elapsed().as_secs_f64();
            assert_eq!(outcomes.len() as u64, queries, "ledger must reconcile");
            (secs, outcomes)
        }
    }
}

fn write_report<T: serde::Serialize>(report: &T, out: &PathBuf) -> ExitCode {
    match serde_json::to_string_pretty(report) {
        Ok(json) => {
            if let Err(e) = std::fs::write(out, json) {
                eprintln!("cannot write {}: {e}", out.display());
                return ExitCode::FAILURE;
            }
        }
        Err(e) => {
            eprintln!("cannot serialise report: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!("report -> {}", out.display());
    ExitCode::SUCCESS
}

/// Median wall-clock seconds of `repeats` timed invocations of `f` —
/// unless `f` itself returns the duration to score (the service pass
/// times only the serve window, excluding overlay construction).
fn median_secs<F: FnMut() -> R, R: IntoSecs>(repeats: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..repeats)
        .map(|_| {
            let start = Instant::now();
            let r = f();
            r.into_secs(start.elapsed().as_secs_f64())
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    samples[samples.len() / 2]
}

/// What a timed pass scores: `()` passes score their own wall time, `f64`
/// passes score the duration they measured internally.
trait IntoSecs {
    fn into_secs(self, elapsed: f64) -> f64;
}

impl IntoSecs for () {
    fn into_secs(self, elapsed: f64) -> f64 {
        elapsed
    }
}

impl IntoSecs for f64 {
    fn into_secs(self, _elapsed: f64) -> f64 {
        self
    }
}

/// `BENCH_2.json` payload.
#[derive(serde::Serialize)]
struct Report {
    n: usize,
    tours_per_pass: u32,
    repeats: usize,
    live_tour_pass_s: f64,
    frozen_noop_pass_s: f64,
    frozen_registry_pass_s: f64,
    frozen_speedup_vs_live: f64,
    recorder_overhead_pct: f64,
    recorder_budget_pct: f64,
}

/// `BENCH_4.json` payload.
#[derive(serde::Serialize)]
struct ServiceReport {
    n: usize,
    queries_per_pass: u64,
    repeats: usize,
    arms: Vec<ServiceArm>,
    /// Quiet-overlay throughput ratio of the 4-worker arm over the
    /// 1-worker arm; absent when either arm was not measured (`--smoke`).
    scaling_1_to_4: Option<f64>,
}

#[derive(serde::Serialize)]
struct ServiceArm {
    workers: usize,
    no_churn_qps: f64,
    churn_qps: f64,
}

/// `BENCH_6.json` payload.
#[derive(serde::Serialize)]
struct ShardedReport {
    n: usize,
    samples_per_pass: u64,
    counts_per_pass: u64,
    timer: f64,
    repeats: usize,
    /// Always `true` when the report exists at all: the probe aborts if
    /// any sharded arm's outcomes differ from the unsharded service's.
    equivalent: bool,
    arms: Vec<ShardArm>,
    /// Best multi-shard queries/sec over the single-shard arm; absent
    /// when the single-shard arm was not measured.
    multi_shard_speedup: Option<f64>,
    target_speedup: f64,
}

#[derive(serde::Serialize)]
struct ShardArm {
    shards: usize,
    queries_per_s: f64,
    samples_per_s: f64,
}

/// `BENCH_5.json` payload.
#[derive(serde::Serialize)]
struct BatchedReport {
    n: usize,
    samples: u64,
    frontier_width: u64,
    timer: f64,
    repeats: usize,
    /// Always `true` when the report exists at all: the probe aborts if
    /// the batched samples are not bit-identical to the serial walks.
    equivalent: bool,
    serial_pass_s: f64,
    batched_pass_s: f64,
    serial_samples_per_s: f64,
    batched_samples_per_s: f64,
    batched_speedup: f64,
    target_speedup: f64,
}

//! Headline performance probe: `BENCH_2.json`.
//!
//! A dependency-free (no criterion harness) wall-clock probe of the two
//! numbers this PR and its predecessor promise to hold:
//!
//! 1. `frozen_vs_live` — CSR snapshot walk throughput vs the live
//!    adjacency-list graph (PR 1's claim).
//! 2. `recorder_overhead` — the no-op recorder vs a live atomic
//!    [`Registry`] on the same tour workload (this PR's ≤ 5% budget).
//!
//! ```text
//! cargo run --release -p census-bench --bin perf-probe [-- --out BENCH_2.json]
//! ```
//!
//! Each arm re-seeds its RNG identically, so every variant walks the
//! exact same hop sequence and the ratio isolates the representation /
//! recording cost. Medians over `REPEATS` timed passes keep one noisy
//! scheduler quantum from skewing the headline ratios.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use census_core::{RandomTour, SizeEstimator};
use census_graph::generators;
use census_metrics::{Registry, RunCtx};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const PAPER_N: usize = 100_000;
const TOURS_PER_PASS: u32 = 5;
const REPEATS: usize = 9;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut out = PathBuf::from("BENCH_2.json");
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                let Some(v) = args.next() else {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                };
                out = PathBuf::from(v);
            }
            "--help" | "-h" => {
                println!("usage: perf-probe [--out BENCH_2.json]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut rng = SmallRng::seed_from_u64(1);
    let g = generators::balanced(PAPER_N, 10, &mut rng);
    let frozen = g.freeze();
    let probe = g.nodes().next().expect("non-empty");
    let rt = RandomTour::new();
    let registry = Registry::new();

    println!(
        "perf probe on balanced N = {PAPER_N} ({TOURS_PER_PASS} tours/pass, median of {REPEATS})"
    );

    let live_s = median_secs(|| {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut ctx = RunCtx::new(&g, &mut rng);
        for _ in 0..TOURS_PER_PASS {
            let _ = rt.estimate_with(&mut ctx, probe).expect("connected");
        }
    });
    let frozen_noop_s = median_secs(|| {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut ctx = RunCtx::new(&frozen, &mut rng);
        for _ in 0..TOURS_PER_PASS {
            let _ = rt.estimate_with(&mut ctx, probe).expect("connected");
        }
    });
    let frozen_registry_s = median_secs(|| {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut ctx = RunCtx::with_recorder(&frozen, &mut rng, &registry);
        for _ in 0..TOURS_PER_PASS {
            let _ = rt.estimate_with(&mut ctx, probe).expect("connected");
        }
    });

    let frozen_speedup = live_s / frozen_noop_s;
    let recorder_overhead_pct = (frozen_registry_s / frozen_noop_s - 1.0) * 100.0;
    println!("  live graph        : {live_s:.4} s/pass");
    println!("  frozen csr (noop) : {frozen_noop_s:.4} s/pass  ({frozen_speedup:.2}x vs live)");
    println!(
        "  frozen csr (reg)  : {frozen_registry_s:.4} s/pass  ({recorder_overhead_pct:+.2}% vs noop)"
    );

    let report = Report {
        n: PAPER_N,
        tours_per_pass: TOURS_PER_PASS,
        repeats: REPEATS,
        live_tour_pass_s: live_s,
        frozen_noop_pass_s: frozen_noop_s,
        frozen_registry_pass_s: frozen_registry_s,
        frozen_speedup_vs_live: frozen_speedup,
        recorder_overhead_pct,
        recorder_budget_pct: 5.0,
    };
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&out, json) {
                eprintln!("cannot write {}: {e}", out.display());
                return ExitCode::FAILURE;
            }
        }
        Err(e) => {
            eprintln!("cannot serialise report: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!("report -> {}", out.display());
    ExitCode::SUCCESS
}

/// Median wall-clock seconds of `REPEATS` timed invocations of `f`.
fn median_secs<F: FnMut()>(mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..REPEATS)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    samples[samples.len() / 2]
}

/// `BENCH_2.json` payload.
#[derive(serde::Serialize)]
struct Report {
    n: usize,
    tours_per_pass: u32,
    repeats: usize,
    live_tour_pass_s: f64,
    frozen_noop_pass_s: f64,
    frozen_registry_pass_s: f64,
    frozen_speedup_vs_live: f64,
    recorder_overhead_pct: f64,
    recorder_budget_pct: f64,
}

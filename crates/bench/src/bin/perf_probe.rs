//! The performance CLI: one-off probe arms and campaign sweeps.
//!
//! ```text
//! cargo run --release -p census-bench --bin perf-probe -- bench <arm> [--smoke] [--out PATH]
//! cargo run --release -p census-bench --bin perf-probe -- campaign <spec.json> [--results DIR] [--max-runs K]
//! cargo run --release -p census-bench --bin perf-probe -- list
//! ```
//!
//! `bench` runs one arm of the registry in
//! [`census_bench::probes`] (see `list` for the arms and the
//! `BENCH_N.json` artefact each writes); `--smoke` shrinks it to a
//! seconds-scale CI check of the same code path. `campaign` expands a
//! declarative sweep spec ([`census_bench::campaign`]) and executes it
//! resumably: rerunning the same spec skips every run already recorded
//! in `results/<campaign>/manifest.json`, and `--max-runs` caps how
//! many new runs one invocation performs.

use std::path::PathBuf;
use std::process::ExitCode;

use census_bench::campaign::{load_spec, run_campaign};
use census_bench::probes::{run_probe, ProbeArm};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("bench") => bench_cmd(&args[1..]),
        Some("campaign") => campaign_cmd(&args[1..]),
        Some("list") => {
            for arm in ProbeArm::ALL {
                println!("{:<12} -> {}", arm.name(), arm.default_output());
            }
            ExitCode::SUCCESS
        }
        Some("--help" | "-h") => {
            usage();
            ExitCode::SUCCESS
        }
        None => {
            usage();
            ExitCode::FAILURE
        }
        Some(other) => {
            eprintln!("unknown command {other:?}");
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    println!("usage: perf-probe bench <arm> [--smoke] [--out PATH]");
    println!("       perf-probe campaign <spec.json> [--results DIR] [--max-runs K]");
    println!("       perf-probe list");
    print!("arms:");
    for arm in ProbeArm::ALL {
        print!(" {}", arm.name());
    }
    println!();
}

fn bench_cmd(args: &[String]) -> ExitCode {
    let mut iter = args.iter();
    let Some(arm) = iter.next().and_then(|a| ProbeArm::from_name(a)) else {
        eprintln!("bench needs an arm; see `perf-probe list`");
        return ExitCode::FAILURE;
    };
    let mut smoke = false;
    let mut out: Option<PathBuf> = None;
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                let Some(v) = iter.next() else {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                };
                out = Some(PathBuf::from(v));
            }
            other => {
                eprintln!("unknown bench argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    let out = out.unwrap_or_else(|| PathBuf::from(arm.default_output()));
    match run_probe(arm, smoke, &out) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("probe {} failed: {e}", arm.name());
            ExitCode::FAILURE
        }
    }
}

fn campaign_cmd(args: &[String]) -> ExitCode {
    let mut iter = args.iter();
    let Some(spec_path) = iter.next() else {
        eprintln!("campaign needs a spec file");
        return ExitCode::FAILURE;
    };
    let mut results = PathBuf::from("results");
    let mut max_runs: Option<usize> = None;
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--results" => {
                let Some(v) = iter.next() else {
                    eprintln!("--results needs a directory");
                    return ExitCode::FAILURE;
                };
                results = PathBuf::from(v);
            }
            "--max-runs" => {
                let parsed = iter.next().and_then(|v| v.parse::<usize>().ok());
                let Some(k) = parsed else {
                    eprintln!("--max-runs needs a non-negative integer");
                    return ExitCode::FAILURE;
                };
                max_runs = Some(k);
            }
            other => {
                eprintln!("unknown campaign argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    let spec = match load_spec(&PathBuf::from(spec_path)) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match run_campaign(&spec, &results, max_runs) {
        Ok(outcome) => {
            println!(
                "campaign {:?}: {} executed, {} skipped (resume), {} total",
                spec.campaign, outcome.executed, outcome.skipped, outcome.total
            );
            println!("manifest -> {}", outcome.manifest_path.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

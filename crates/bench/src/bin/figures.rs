//! CLI regenerating the paper's figures and tables.
//!
//! ```text
//! figures [--scale S] [--timer T] [--replications R] [--svg] \
//!         [--metrics-json] [--out DIR] [all | fig1 fig3 table1 ...]
//! ```
//!
//! With no experiment list, prints the available ids. `--scale 1.0`
//! (default) is the paper's N = 100,000 setup; smaller scales shrink the
//! overlay and run counts proportionally. When `--scale` is absent, the
//! `CENSUS_SCALE` environment variable supplies the default (handy for CI
//! wrappers that cannot edit the command line). `--replications R` runs
//! each replicated figure R times instead of the paper's 3. Output CSVs
//! and summaries land in `--out` (default `target/figures`).
//!
//! `--metrics-json` additionally writes `metrics.json` next to the CSVs:
//! one cost-registry snapshot per experiment plus the absorbed total.
//! Recording is passive, so the CSVs are byte-identical either way.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use census_bench::{run_experiment_recorded, Params, ALL_IDS};
use census_metrics::{Registry, Snapshot};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1).peekable();
    let mut scale: Option<f64> = None;
    let mut svg = false;
    let mut metrics_json = false;
    let mut timer: Option<f64> = None;
    let mut replications: Option<u64> = None;
    let mut out_dir = PathBuf::from("target/figures");
    let mut ids: Vec<String> = Vec::new();

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let Some(v) = args.next() else {
                    eprintln!("--scale needs a value in (0, 1]");
                    return ExitCode::FAILURE;
                };
                match v.parse::<f64>() {
                    Ok(s) if s > 0.0 && s <= 1.0 => scale = Some(s),
                    _ => {
                        eprintln!("invalid scale {v:?}; expected a number in (0, 1]");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--replications" => {
                let Some(v) = args.next() else {
                    eprintln!("--replications needs a positive integer");
                    return ExitCode::FAILURE;
                };
                match v.parse::<u64>() {
                    Ok(r) if r > 0 => replications = Some(r),
                    _ => {
                        eprintln!("invalid replication count {v:?}; expected a positive integer");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--svg" => svg = true,
            "--metrics-json" => metrics_json = true,
            "--timer" => {
                let Some(v) = args.next() else {
                    eprintln!("--timer needs a positive value");
                    return ExitCode::FAILURE;
                };
                match v.parse::<f64>() {
                    Ok(t) if t > 0.0 && t.is_finite() => timer = Some(t),
                    _ => {
                        eprintln!("invalid timer {v:?}; expected a positive number");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--out" => {
                let Some(v) = args.next() else {
                    eprintln!("--out needs a directory");
                    return ExitCode::FAILURE;
                };
                out_dir = PathBuf::from(v);
            }
            "--help" | "-h" => {
                println!(
                    "usage: figures [--scale S] [--timer T] [--replications R] [--svg] \
                     [--metrics-json] [--out DIR] [all | {}]",
                    ALL_IDS.join(" | ")
                );
                return ExitCode::SUCCESS;
            }
            "all" => ids.extend(ALL_IDS.iter().map(|s| (*s).to_owned())),
            other => ids.push(other.to_owned()),
        }
    }

    if ids.is_empty() {
        println!("usage: figures [--scale S] [--out DIR] [all | <ids>]");
        println!("available experiments: {}", ALL_IDS.join(", "));
        return ExitCode::SUCCESS;
    }
    for id in &ids {
        if !ALL_IDS.contains(&id.as_str()) {
            eprintln!(
                "unknown experiment {id:?}; available: {}",
                ALL_IDS.join(", ")
            );
            return ExitCode::FAILURE;
        }
    }

    // Flag wins over the CENSUS_SCALE environment variable, which wins
    // over the paper-scale default.
    let scale = match scale {
        Some(s) => s,
        None => match std::env::var("CENSUS_SCALE") {
            Ok(v) if !v.trim().is_empty() => match v.trim().parse::<f64>() {
                Ok(s) if s > 0.0 && s <= 1.0 => s,
                _ => {
                    eprintln!("invalid CENSUS_SCALE {v:?}; expected a number in (0, 1]");
                    return ExitCode::FAILURE;
                }
            },
            _ => 1.0,
        },
    };
    let mut params = if (scale - 1.0).abs() < f64::EPSILON {
        Params::paper()
    } else {
        Params::scaled(scale)
    };
    if let Some(t) = timer {
        params.timer = t;
    }
    if let Some(r) = replications {
        params.replications = r;
    }
    println!(
        "running {} experiment(s) at scale {scale} (N = {})\n",
        ids.len(),
        params.n
    );

    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }

    let mut manifest_entries = Vec::new();
    let totals = Registry::new();
    let mut per_experiment: BTreeMap<String, Snapshot> = BTreeMap::new();
    for id in &ids {
        let start = Instant::now();
        let reg = Registry::new();
        let result = run_experiment_recorded(id, &params, &reg);
        if let Err(e) = result.write_to(&out_dir) {
            eprintln!("cannot write {id} outputs: {e}");
            return ExitCode::FAILURE;
        }
        if svg {
            if let Err(e) = result.write_svg(&out_dir) {
                eprintln!("cannot write {id} svg: {e}");
                return ExitCode::FAILURE;
            }
        }
        totals.absorb(&reg);
        per_experiment.insert((*id).clone(), reg.snapshot());
        let elapsed = start.elapsed().as_secs_f64();
        println!(
            "[{id}] done in {elapsed:.1}s ({} messages) -> {}/{id}.csv\n{}",
            reg.message_total(),
            out_dir.display(),
            result.summary
        );
        manifest_entries.push(ManifestEntry {
            id: (*id).clone(),
            rows: result.table.len(),
            seconds: elapsed,
        });
    }
    if metrics_json {
        let dump = MetricsDump {
            total: totals.snapshot(),
            experiments: per_experiment,
        };
        match serde_json::to_string_pretty(&dump) {
            Ok(json) => {
                if let Err(e) = std::fs::write(out_dir.join("metrics.json"), json) {
                    eprintln!("cannot write metrics: {e}");
                    return ExitCode::FAILURE;
                }
            }
            Err(e) => {
                eprintln!("cannot serialise metrics: {e}");
                return ExitCode::FAILURE;
            }
        }
        println!("metrics -> {}/metrics.json", out_dir.display());
    }
    let manifest = Manifest {
        scale,
        params,
        experiments: manifest_entries,
    };
    match serde_json::to_string_pretty(&manifest) {
        Ok(json) => {
            if let Err(e) = std::fs::write(out_dir.join("manifest.json"), json) {
                eprintln!("cannot write manifest: {e}");
                return ExitCode::FAILURE;
            }
        }
        Err(e) => {
            eprintln!("cannot serialise manifest: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!("manifest -> {}/manifest.json", out_dir.display());
    ExitCode::SUCCESS
}

/// Machine-readable record of one harness invocation.
#[derive(serde::Serialize)]
struct Manifest {
    scale: f64,
    params: Params,
    experiments: Vec<ManifestEntry>,
}

#[derive(serde::Serialize)]
struct ManifestEntry {
    id: String,
    rows: usize,
    seconds: f64,
}

/// `metrics.json` payload: the merged cost registry of the whole
/// invocation plus one snapshot per experiment, keyed by id.
#[derive(serde::Serialize)]
struct MetricsDump {
    total: Snapshot,
    experiments: BTreeMap<String, Snapshot>,
}

//! Discrete-time random walks (DTRW).
//!
//! The discrete-time walk moves at every step to a uniformly random
//! neighbour of the current node. Its stationary distribution weights
//! node `j` proportionally to its degree `d_j` (Eq. (1) of the paper) —
//! which is exactly why the Random Tour estimator must weight visits by
//! `1/d_j`, and why a DTRW stopped after a fixed number of steps is a
//! *biased* peer sampler.

use census_graph::{NodeId, Topology};
use census_metrics::{HistogramMetric, Metric, Recorder, RunCtx};
use rand::Rng;

use crate::WalkError;

/// Outcome of a completed random tour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tour {
    /// Number of steps until the walk first returned to the initiator.
    /// Each step is one overlay message, so this is also the tour's
    /// message cost. By the cycle formula its expectation from initiator
    /// `i` is `(Σ_j d_j) / d_i`.
    pub steps: u64,
}

/// Runs a discrete-time random walk from `start` until it first returns
/// to `start` (a *random tour*, §3.1), invoking `on_visit` on every node
/// the walk enters — including the initiator itself once, at launch time,
/// and *not* on the final return (matching the paper's counter updates:
/// the initiator contributes `f(i)/d_i` once, every intermediate visit
/// contributes once per visit).
///
/// `max_steps` bounds the tour; `None` runs to completion. Bounding
/// models the initiator-side timeout discussed in §5.3.1.
///
/// # Errors
///
/// - [`WalkError::Stuck`] if `start` has no neighbours.
/// - [`WalkError::Timeout`] if the tour exceeds `max_steps`.
///
/// # Panics
///
/// Panics if `start` is not a live member of the topology.
///
/// # Examples
///
/// ```
/// use census_graph::generators;
/// use census_walk::discrete::random_tour;
/// use rand::SeedableRng;
/// use rand::rngs::SmallRng;
///
/// let g = generators::ring(10);
/// let start = g.nodes().next().expect("non-empty");
/// let mut rng = SmallRng::seed_from_u64(5);
/// let tour = random_tour(&g, start, None, &mut rng, |_| {})?;
/// assert!(tour.steps >= 2);
/// # Ok::<(), census_walk::WalkError>(())
/// ```
pub fn random_tour<T, R, F>(
    topology: &T,
    start: NodeId,
    max_steps: Option<u64>,
    rng: &mut R,
    on_visit: F,
) -> Result<Tour, WalkError>
where
    T: Topology + ?Sized,
    R: Rng,
    F: FnMut(NodeId),
{
    random_tour_ctx(&mut RunCtx::new(topology, rng), start, max_steps, on_visit)
}

/// [`random_tour`] against a [`RunCtx`]: same walk, same RNG stream, plus
/// cost accounting through the context's recorder.
///
/// Records [`Metric::TourHops`] for every hop actually sent — including
/// the hops a lost tour spent before failing — so the registry's message
/// total reflects true overlay traffic. Every attempt ends in exactly one
/// of three events: completed tours record [`Metric::ToursCompleted`]
/// (plus a [`HistogramMetric::TourLength`] observation), walks stranded
/// on a dead or isolated peer record [`Metric::ToursLost`], and walks
/// aborted by the step budget record [`Metric::WalkTimeouts`]. The three
/// counters are disjoint, so `ToursCompleted + ToursLost + WalkTimeouts`
/// reconciles exactly with the number of tour attempts made.
///
/// # Errors
///
/// Same as [`random_tour`].
///
/// # Panics
///
/// Panics if `start` is not a live member of the topology.
pub fn random_tour_ctx<T, R, Rec, F>(
    ctx: &mut RunCtx<'_, T, R, Rec>,
    start: NodeId,
    max_steps: Option<u64>,
    mut on_visit: F,
) -> Result<Tour, WalkError>
where
    T: Topology + ?Sized,
    R: Rng,
    Rec: Recorder + ?Sized,
    F: FnMut(NodeId),
{
    let topology = ctx.topology;
    assert!(topology.contains(start), "tour initiator must be alive");
    // An isolated initiator is stuck *before* the launch visit: the tour
    // estimator's visit weight divides by d(start), which is undefined at
    // zero, so callers must never see a visit they cannot weight. The
    // degree probe draws nothing, so the RNG stream is unchanged.
    if topology.degree_of(start) == 0 {
        ctx.on_event(Metric::ToursLost, 1);
        return Err(WalkError::Stuck(start));
    }
    on_visit(start);
    let Some(mut current) = topology.neighbor_of(start, &mut *ctx.rng) else {
        ctx.on_event(Metric::ToursLost, 1);
        return Err(WalkError::Stuck(start));
    };
    let mut steps: u64 = 1;
    let cap = max_steps.unwrap_or(u64::MAX);
    while current != start {
        if steps >= cap {
            ctx.on_message(Metric::TourHops, steps);
            ctx.on_event(Metric::WalkTimeouts, 1);
            return Err(WalkError::Timeout(steps));
        }
        on_visit(current);
        let Some(next) = topology.neighbor_of(current, &mut *ctx.rng) else {
            ctx.on_message(Metric::TourHops, steps);
            ctx.on_event(Metric::ToursLost, 1);
            return Err(WalkError::Stuck(current));
        };
        current = next;
        steps += 1;
    }
    ctx.on_message(Metric::TourHops, steps);
    ctx.on_event(Metric::ToursCompleted, 1);
    ctx.observe(HistogramMetric::TourLength, steps as f64);
    Ok(Tour { steps })
}

/// Runs a discrete-time random walk for exactly `steps` steps and returns
/// the final node — the biased sampling primitive of prior work that §4.1
/// improves on (the result is degree-biased no matter how large `steps`
/// is).
///
/// # Errors
///
/// Returns [`WalkError::Stuck`] if `start` has no neighbours and
/// `steps > 0`.
///
/// # Panics
///
/// Panics if `start` is not a live member of the topology.
pub fn walk_fixed_steps<T, R>(
    topology: &T,
    start: NodeId,
    steps: u64,
    rng: &mut R,
) -> Result<NodeId, WalkError>
where
    T: Topology + ?Sized,
    R: Rng,
{
    assert!(topology.contains(start), "walk start must be alive");
    let mut current = start;
    for _ in 0..steps {
        current = topology
            .neighbor_of(current, rng)
            .ok_or(WalkError::Stuck(current))?;
    }
    Ok(current)
}

/// *Exact* expectation of the Random Tour estimate `d_i · Φ` for an
/// arbitrary node function `f`, by solving the absorbing-chain linear
/// system — the noiseless oracle for Proposition 1.
///
/// For `j ≠ i` let `h_j` be the expected weight `Σ f(X_k)/d(X_k)`
/// collected from `j` (inclusive) until the walk first hits `i`
/// (exclusive). Then
///
/// ```text
/// h_j = f(j)/d_j + (1/d_j) Σ_{k ~ j, k ≠ i} h_k
/// ```
///
/// and `E_i[X̂] = f(i) + Σ_{j ~ i} h_j / d_i · d_i = f(i) + (1/d_i)
/// Σ_{j~i} h_j · d_i`. Proposition 1 says this equals `Σ_j f(j)` exactly
/// on any connected graph; the test-suite checks that identity to
/// machine precision on random graphs.
///
/// Complexity is `O(n³)` (dense Gaussian elimination): an oracle for
/// small graphs, not a production path.
///
/// # Panics
///
/// Panics if the graph is disconnected, has more than 512 live nodes, or
/// `start` is not alive.
#[must_use]
pub fn exact_expected_tour_estimate<F>(g: &census_graph::Graph, start: NodeId, mut f: F) -> f64
where
    F: FnMut(NodeId) -> f64,
{
    use census_graph::spectral::DenseIndex;
    assert!(g.is_alive(start), "initiator must be alive");
    let idx = DenseIndex::new(g);
    let n = idx.len();
    assert!(
        n <= 512,
        "exact tour oracle is a small-graph tool (n <= 512)"
    );
    assert!(
        census_graph::algo::component_size(g, start) == n,
        "exact tour oracle needs a connected graph"
    );
    if n == 1 {
        return f(start);
    }

    // Unknowns: h_j for j != start, in dense order with start's row
    // repurposed (coefficient identity, RHS 0) to keep indexing simple.
    let mut a = vec![0.0f64; n * n];
    let mut b = vec![0.0f64; n];
    let s = idx.dense(start);
    for d in 0..n {
        if d == s {
            a[d * n + d] = 1.0;
            continue;
        }
        let v = idx.node(d);
        let deg = g.degree(v) as f64;
        a[d * n + d] = 1.0;
        for &u in g.neighbors(v) {
            let du = idx.dense(u);
            if du != s {
                a[d * n + du] -= 1.0 / deg;
            }
        }
        b[d] = f(v) / deg;
    }
    let h = solve_dense(&mut a, &mut b, n);
    let sum_neighbors: f64 = g.neighbors(start).iter().map(|&u| h[idx.dense(u)]).sum();
    f(start) + sum_neighbors
}

/// Gaussian elimination with partial pivoting on an `n × n` system
/// (row-major `a`, RHS `b`); both are consumed as scratch space.
fn solve_dense(a: &mut [f64], b: &mut [f64], n: usize) -> Vec<f64> {
    for col in 0..n {
        // Pivot.
        let pivot_row = (col..n)
            .max_by(|&r1, &r2| {
                a[r1 * n + col]
                    .abs()
                    .partial_cmp(&a[r2 * n + col].abs())
                    .expect("finite matrix entries")
            })
            .expect("non-empty range");
        assert!(
            a[pivot_row * n + col].abs() > 1e-12,
            "singular system: the chain is not absorbing"
        );
        if pivot_row != col {
            for k in 0..n {
                a.swap(col * n + k, pivot_row * n + k);
            }
            b.swap(col, pivot_row);
        }
        // Eliminate below.
        let pivot = a[col * n + col];
        for row in (col + 1)..n {
            let factor = a[row * n + col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row * n + k] -= factor * a[col * n + k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back-substitute.
    let mut x = vec![0.0f64; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row * n + k] * x[k];
        }
        x[row] = acc / a[row * n + row];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use census_graph::{generators, Graph};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn tour_on_two_nodes_takes_two_steps() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b).expect("fresh edge");
        let mut rng = SmallRng::seed_from_u64(1);
        let mut visited = Vec::new();
        let tour = random_tour(&g, a, None, &mut rng, |n| visited.push(n)).expect("completes");
        assert_eq!(tour.steps, 2);
        assert_eq!(visited, vec![a, b]);
    }

    #[test]
    fn tour_visits_do_not_include_final_return() {
        let g = generators::ring(6);
        let start = NodeId::new(0);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..50 {
            let mut visits = 0u64;
            let tour = random_tour(&g, start, None, &mut rng, |_| visits += 1).expect("completes");
            // One visit per step except the last (the return), plus the
            // initiator's launch visit.
            assert_eq!(visits, tour.steps);
        }
    }

    #[test]
    fn tour_from_isolated_node_is_stuck() {
        let mut g = Graph::new();
        let a = g.add_node();
        let mut rng = SmallRng::seed_from_u64(3);
        // Regression: the launch visit used to fire before the stuck
        // check, handing estimators a visit they must weight by
        // f(a)/d(a) = f(a)/0. A stuck-at-launch tour now reports no
        // visits at all, and consumes no RNG on the way out.
        let mut visits = 0u64;
        assert_eq!(
            random_tour(&g, a, None, &mut rng, |_| visits += 1),
            Err(WalkError::Stuck(a))
        );
        assert_eq!(visits, 0, "no visit may be charged at an isolated start");
        // The RNG is still at its launch position: its next word matches
        // a fresh twin's first word.
        let mut twin = SmallRng::seed_from_u64(3);
        assert_eq!(
            rng.random::<u64>(),
            twin.random::<u64>(),
            "stuck launch draws nothing"
        );
    }

    #[test]
    fn tour_times_out_on_cap() {
        let g = generators::ring(100);
        let mut rng = SmallRng::seed_from_u64(4);
        // A 1-step cap cannot complete a tour on a cycle.
        let res = random_tour(&g, NodeId::new(0), Some(1), &mut rng, |_| {});
        assert_eq!(res, Err(WalkError::Timeout(1)));
    }

    #[test]
    fn expected_return_time_matches_cycle_formula() {
        // E_i[tour steps] = (sum_j d_j) / d_i. On a star from a leaf: 2(n-1)/1.
        let g = generators::star(6);
        let leaf = NodeId::new(3);
        let mut rng = SmallRng::seed_from_u64(5);
        let runs = 20_000;
        let total: u64 = (0..runs)
            .map(|_| {
                random_tour(&g, leaf, None, &mut rng, |_| {})
                    .expect("completes")
                    .steps
            })
            .sum();
        let mean = total as f64 / f64::from(runs);
        let expected = g.degree_sum() as f64 / 1.0;
        assert!(
            (mean - expected).abs() < 0.25,
            "mean return time {mean} vs cycle formula {expected}"
        );
    }

    #[test]
    fn fixed_steps_walk_lands_on_live_node() {
        let g = generators::ring(9);
        let mut rng = SmallRng::seed_from_u64(6);
        let end = walk_fixed_steps(&g, NodeId::new(0), 25, &mut rng).expect("completes");
        assert!(g.is_alive(end));
    }

    #[test]
    fn fixed_steps_zero_returns_start() {
        let g = generators::ring(5);
        let mut rng = SmallRng::seed_from_u64(7);
        assert_eq!(
            walk_fixed_steps(&g, NodeId::new(2), 0, &mut rng).expect("trivial walk"),
            NodeId::new(2)
        );
    }

    #[test]
    fn fixed_steps_respects_bipartite_parity() {
        // On a bipartite graph an even-length DTRW stays on its side -- the
        // structural fact behind the paper's Remark 1.
        let g = generators::complete_bipartite(3, 3);
        let mut rng = SmallRng::seed_from_u64(8);
        for _ in 0..100 {
            let end = walk_fixed_steps(&g, NodeId::new(0), 10, &mut rng).expect("completes");
            assert!(end.index() < 3, "even walk crossed the bipartition");
        }
    }

    #[test]
    #[should_panic(expected = "must be alive")]
    fn tour_from_dead_node_panics() {
        let mut g = Graph::new();
        let a = g.add_node();
        g.add_node();
        g.remove_node(a).expect("alive");
        let mut rng = SmallRng::seed_from_u64(9);
        let _ = random_tour(&g, a, None, &mut rng, |_| {});
    }

    #[test]
    fn proposition_1_holds_exactly_via_the_linear_oracle() {
        // E_i[d_i Φ] = Σ_j f(j) to machine precision, for every initiator
        // and an arbitrary f, on random connected graphs.
        let mut rng = SmallRng::seed_from_u64(21);
        for trial in 0..5 {
            let g = generators::k_out(30 + trial * 7, 2, &mut rng);
            if !census_graph::algo::is_connected(&g) {
                continue;
            }
            let f = |n: NodeId| ((n.index() * 37 + 11) % 17) as f64 / 3.0;
            let truth: f64 = g.nodes().map(f).sum();
            for start in g.nodes().take(4) {
                let exact = exact_expected_tour_estimate(&g, start, f);
                assert!(
                    (exact - truth).abs() < 1e-8,
                    "Prop 1 violated at {start}: {exact} vs {truth}"
                );
            }
        }
    }

    #[test]
    fn linear_oracle_matches_monte_carlo() {
        let g = generators::ring(9);
        let start = NodeId::new(0);
        let f = |n: NodeId| {
            if n.index().is_multiple_of(2) {
                2.0
            } else {
                0.5
            }
        };
        let exact = exact_expected_tour_estimate(&g, start, f);
        let mut rng = SmallRng::seed_from_u64(22);
        let runs = 40_000;
        let mut total = 0.0;
        for _ in 0..runs {
            let mut counter = 0.0;
            random_tour(&g, start, None, &mut rng, |n| {
                counter += f(n) / g.degree(n) as f64;
            })
            .expect("connected");
            total += g.degree(start) as f64 * counter;
        }
        let mc = total / f64::from(runs);
        assert!(
            (mc - exact).abs() / exact < 0.05,
            "Monte Carlo {mc} vs oracle {exact}"
        );
    }

    #[test]
    fn oracle_on_single_node_is_f_of_that_node() {
        let mut g = Graph::new();
        let a = g.add_node();
        assert_eq!(exact_expected_tour_estimate(&g, a, |_| 3.5), 3.5);
    }

    #[test]
    #[should_panic(expected = "connected graph")]
    fn oracle_rejects_disconnected_graphs() {
        let mut g = generators::ring(4);
        g.add_node();
        let _ = exact_expected_tour_estimate(&g, NodeId::new(0), |_| 1.0);
    }

    #[test]
    fn ctx_recording_is_passive_and_exact() {
        use census_metrics::{HistogramMetric, Metric, Registry, RunCtx};
        let g = generators::ring(12);
        let start = NodeId::new(0);
        // Same seed with and without a live registry: identical tours.
        let mut plain_rng = SmallRng::seed_from_u64(77);
        let plain = random_tour(&g, start, None, &mut plain_rng, |_| {}).expect("completes");
        let reg = Registry::new();
        let mut rec_rng = SmallRng::seed_from_u64(77);
        let mut ctx = RunCtx::with_recorder(&g, &mut rec_rng, &reg);
        let recorded = random_tour_ctx(&mut ctx, start, None, |_| {}).expect("completes");
        assert_eq!(plain, recorded, "recording must not perturb the walk");
        assert_eq!(reg.counter(Metric::TourHops), recorded.steps);
        assert_eq!(reg.counter(Metric::ToursCompleted), 1);
        assert_eq!(reg.histogram_count(HistogramMetric::TourLength), 1);
        assert_eq!(ctx.messages_total(), recorded.steps);
    }

    #[test]
    fn ctx_records_spent_hops_of_lost_tours() {
        use census_metrics::{Metric, Registry, RunCtx};
        let g = generators::ring(100);
        let reg = Registry::new();
        let mut rng = SmallRng::seed_from_u64(4);
        let mut ctx = RunCtx::with_recorder(&g, &mut rng, &reg);
        let res = random_tour_ctx(&mut ctx, NodeId::new(0), Some(1), |_| {});
        assert_eq!(res, Err(WalkError::Timeout(1)));
        assert_eq!(reg.counter(Metric::TourHops), 1, "spent hop still counted");
        // A timeout is *not* a lost tour: the outcome counters are
        // disjoint so their sum reconciles with attempts made.
        assert_eq!(reg.counter(Metric::ToursLost), 0);
        assert_eq!(reg.counter(Metric::WalkTimeouts), 1);
        assert_eq!(reg.counter(Metric::ToursCompleted), 0);
    }

    #[test]
    fn tour_outcome_counters_partition_attempts() {
        use census_metrics::{Metric, Registry, RunCtx};
        // Three attempts with three distinct outcomes: one completion,
        // one timeout, one stuck walk. Each increments exactly one
        // outcome counter.
        let reg = Registry::new();
        let ring = generators::ring(50);
        let mut rng = SmallRng::seed_from_u64(11);
        let mut ctx = RunCtx::with_recorder(&ring, &mut rng, &reg);
        random_tour_ctx(&mut ctx, NodeId::new(0), None, |_| {}).expect("completes");
        let mut ctx = RunCtx::with_recorder(&ring, &mut rng, &reg);
        assert!(random_tour_ctx(&mut ctx, NodeId::new(0), Some(1), |_| {}).is_err());
        let mut isolated = Graph::new();
        let lone = isolated.add_node();
        let mut ctx = RunCtx::with_recorder(&isolated, &mut rng, &reg);
        assert!(random_tour_ctx(&mut ctx, lone, None, |_| {}).is_err());
        let completed = reg.counter(Metric::ToursCompleted);
        let lost = reg.counter(Metric::ToursLost);
        let timeouts = reg.counter(Metric::WalkTimeouts);
        assert_eq!((completed, lost, timeouts), (1, 1, 1));
        assert_eq!(completed + lost + timeouts, 3, "one outcome per attempt");
    }

    #[test]
    fn dtrw_stationary_distribution_is_degree_biased() {
        // Long-run visit frequency of the DTRW ~ d_j / sum d. On a star the
        // hub is visited every other step.
        let g = generators::star(5);
        let mut rng = SmallRng::seed_from_u64(10);
        let mut hub_visits = 0u64;
        let mut total = 0u64;
        let mut current = NodeId::new(1);
        for _ in 0..10_000 {
            current = g.random_neighbor(current, &mut rng).expect("connected");
            total += 1;
            if current == NodeId::new(0) {
                hub_visits += 1;
            }
        }
        let frac = hub_visits as f64 / total as f64;
        assert!((frac - 0.5).abs() < 0.02, "hub fraction {frac}");
    }
}

//! Continuous-time random walks (CTRW), emulated by message passing.
//!
//! The standard CTRW on a graph stays at node `j` for an exponential time
//! of mean `1/d_j`, then jumps to a uniform neighbour; its generator is
//! `−L` (the negated Laplacian) and its stationary distribution is
//! *uniform* — the key fact behind the paper's unbiased sampler (§4.1).
//! The overlay emulates the CTRW without any real clock: the probe
//! message carries a timer `T` and each visited node decrements it by a
//! locally drawn `Exp(1)/d_j`; when the timer dies at a node, that node is
//! distributed as the CTRW at time `T`.
//!
//! The paper's Remark 1 also considers the *deterministic*-sojourn variant
//! (each visit consumes exactly `1/d_j`), which needs no local randomness
//! but fails to mix on bipartite graphs; both variants are provided so the
//! counterexample is reproducible.

use census_graph::{Graph, NodeId, Topology};
use census_metrics::{HistogramMetric, Metric, Recorder, RunCtx};
use rand::Rng;

use crate::WalkError;

/// How a node's sojourn time is drawn during a CTRW emulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Sojourn {
    /// `Exp(1)/d_j`: the standard CTRW. Sound for sampling (Lemma 1).
    #[default]
    Exponential,
    /// Exactly `1/d_j`: the deterministic variant of §3.3 / Remark 1.
    /// Cheaper (no local randomness) but unsound for sampling on
    /// near-bipartite topologies.
    Deterministic,
}

/// Outcome of a CTRW emulation: where the timer died and what it cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtrwOutcome {
    /// The node at which the timer expired — the returned sample.
    pub node: NodeId,
    /// Overlay messages spent: one per forwarding hop. The expected value
    /// is `T·d̄` for the standard CTRW on a graph with mean degree `d̄`
    /// (§4.3).
    pub hops: u64,
}

/// Emulates a CTRW of duration `timer` from `start` and returns the node
/// where the timer expires, together with the hop cost (§4.1, the
/// sampling sub-routine).
///
/// An isolated `start` node traps the walk: the timer simply expires
/// there (the CTRW definition — zero jump rate — not an error).
///
/// # Errors
///
/// Returns [`WalkError::Lost`] when a neighbour probe fails despite a
/// positive degree — which cannot happen on an honest topology, but does
/// under the fault-injection wrappers (message loss, crashed peers).
///
/// # Panics
///
/// Panics if `start` is not alive or `timer` is not positive and finite.
///
/// # Examples
///
/// ```
/// use census_graph::generators;
/// use census_walk::continuous::{ctrw_walk, Sojourn};
/// use rand::SeedableRng;
/// use rand::rngs::SmallRng;
///
/// let g = generators::complete(20);
/// let start = g.nodes().next().expect("non-empty");
/// let mut rng = SmallRng::seed_from_u64(2);
/// let out = ctrw_walk(&g, start, 5.0, Sojourn::Exponential, &mut rng)?;
/// assert!(g.is_alive(out.node));
/// # Ok::<(), census_walk::WalkError>(())
/// ```
pub fn ctrw_walk<T, R>(
    topology: &T,
    start: NodeId,
    timer: f64,
    sojourn: Sojourn,
    rng: &mut R,
) -> Result<CtrwOutcome, WalkError>
where
    T: Topology + ?Sized,
    R: Rng,
{
    ctrw_walk_ctx(&mut RunCtx::new(topology, rng), start, timer, sojourn)
}

/// [`ctrw_walk`] against a [`RunCtx`]: same walk, same RNG stream, plus
/// cost accounting through the context's recorder.
///
/// Records [`Metric::CtrwHops`] for the forwarding hops,
/// [`Metric::SojournDraws`] for the exponential variates consumed
/// (deterministic sojourns draw nothing), and one
/// [`HistogramMetric::CtrwVirtualTime`] observation of the timer — under
/// adaptive Sample & Collide this traces the timer-doubling schedule.
///
/// # Errors
///
/// Same as [`ctrw_walk`]: [`WalkError::Lost`] when a fault-injecting
/// topology denies a neighbour probe mid-walk. The hops and draws spent
/// before the loss are still charged, so the registry reflects true
/// overlay traffic.
///
/// # Panics
///
/// Panics if `start` is not alive or `timer` is not positive and finite.
pub fn ctrw_walk_ctx<T, R, Rec>(
    ctx: &mut RunCtx<'_, T, R, Rec>,
    start: NodeId,
    timer: f64,
    sojourn: Sojourn,
) -> Result<CtrwOutcome, WalkError>
where
    T: Topology + ?Sized,
    R: Rng,
    Rec: Recorder + ?Sized,
{
    let topology = ctx.topology;
    assert!(topology.contains(start), "CTRW start must be alive");
    assert!(
        timer.is_finite() && timer > 0.0,
        "CTRW timer must be positive and finite"
    );
    let mut remaining = timer;
    let mut current = start;
    let mut hops: u64 = 0;
    let mut draws: u64 = 0;
    let outcome = loop {
        let degree = topology.degree_of(current);
        if degree == 0 {
            // Zero jump rate: the walk stays here forever.
            break CtrwOutcome {
                node: current,
                hops,
            };
        }
        let drain = match sojourn {
            Sojourn::Exponential => {
                draws += 1;
                standard_exponential(&mut *ctx.rng) / degree as f64
            }
            Sojourn::Deterministic => 1.0 / degree as f64,
        };
        remaining -= drain;
        if remaining <= 0.0 {
            break CtrwOutcome {
                node: current,
                hops,
            };
        }
        let Some(next) = topology.neighbor_of(current, &mut *ctx.rng) else {
            // A fault wrapper ate the probe: the walk is lost, but the
            // traffic it generated was real — charge it before failing.
            ctx.on_message(Metric::CtrwHops, hops);
            ctx.on_event(Metric::SojournDraws, draws);
            return Err(WalkError::Lost(current));
        };
        current = next;
        hops += 1;
    };
    ctx.on_message(Metric::CtrwHops, outcome.hops);
    ctx.on_event(Metric::SojournDraws, draws);
    ctx.observe(HistogramMetric::CtrwVirtualTime, timer);
    Ok(outcome)
}

/// Draws a unit-mean exponential variate via inversion, `−ln(U)` with
/// `U ∈ (0, 1]` (the method the paper cites from Ross).
pub fn standard_exponential<R: Rng>(rng: &mut R) -> f64 {
    // `random::<f64>()` is in [0, 1); flipping to (0, 1] avoids ln(0).
    -(1.0 - rng.random::<f64>()).ln()
}

/// Exact distribution of the standard CTRW at time `t` started from
/// `start`: the row `exp(−Lt) δ_start`, computed by uniformization
/// (Poisson-weighted powers of `I − L/Λ` with `Λ = max degree`).
///
/// This is the noiseless oracle for Lemma 1 used by the sampling tests:
/// the total-variation distance between this vector and uniform is the
/// exact sampling error of [`ctrw_walk`]. Indices follow
/// [`census_graph::spectral::DenseIndex`] order.
///
/// # Panics
///
/// Panics if the graph is empty, `start` is not alive, or `t` is
/// negative/not finite.
#[must_use]
pub fn exact_distribution(g: &Graph, start: NodeId, t: f64) -> Vec<f64> {
    assert!(g.is_alive(start), "CTRW start must be alive");
    assert!(
        t.is_finite() && t >= 0.0,
        "time must be non-negative and finite"
    );
    let idx = census_graph::spectral::DenseIndex::new(g);
    let n = idx.len();
    let lambda = g.max_degree().max(1) as f64;

    let mut current = vec![0.0f64; n];
    current[idx.dense(start)] = 1.0;
    let mut acc = vec![0.0f64; n];
    let mut next = vec![0.0f64; n];

    // Poisson(Λt) weights, accumulated until the tail is negligible.
    // Weights are tracked in log space: for large Λt (high-degree graphs,
    // long horizons) the head weight e^(−Λt) underflows to zero linearly,
    // which would silently zero the whole sum. In log space the early
    // terms exponentiate to (a correct) 0 and the bulk around k ≈ Λt
    // contributes normally; final renormalisation absorbs the truncated
    // head and tail.
    let lt = lambda * t;
    let mut log_weight = -lt;
    let mut cum = log_weight.exp();
    for i in 0..n {
        acc[i] += cum * current[i];
    }
    let mut k = 0u64;
    let horizon = (lt + 12.0 * lt.sqrt() + 50.0) as u64;
    while cum < 1.0 - 1e-13 && k < horizon {
        k += 1;
        // next = (I - L/Λ) current  =  current - (L current)/Λ
        for d in 0..n {
            let v = idx.node(d);
            let mut l_row = g.degree(v) as f64 * current[d];
            for &u in g.neighbors(v) {
                l_row -= current[idx.dense(u)];
            }
            next[d] = current[d] - l_row / lambda;
        }
        std::mem::swap(&mut current, &mut next);
        log_weight += (lt / k as f64).ln();
        let weight = log_weight.exp();
        cum += weight;
        if weight > 0.0 {
            for i in 0..n {
                acc[i] += weight * current[i];
            }
        }
    }
    // Renormalise away the truncated Poisson tail.
    let total: f64 = acc.iter().sum();
    for v in &mut acc {
        *v /= total;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use census_graph::{generators, Graph};
    use census_stats::total_variation;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn exponential_variates_have_unit_mean() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| standard_exponential(&mut rng)).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn walk_stays_on_isolated_node() {
        let mut g = Graph::new();
        let a = g.add_node();
        let mut rng = SmallRng::seed_from_u64(2);
        let out = ctrw_walk(&g, a, 10.0, Sojourn::Exponential, &mut rng).expect("completes");
        assert_eq!(out.node, a);
        assert_eq!(out.hops, 0);
    }

    #[test]
    fn tiny_timer_rarely_leaves_start() {
        let g = generators::ring(10);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut stayed = 0;
        for _ in 0..1000 {
            let out = ctrw_walk(&g, NodeId::new(0), 1e-6, Sojourn::Exponential, &mut rng)
                .expect("completes");
            if out.node == NodeId::new(0) {
                stayed += 1;
            }
        }
        assert!(stayed > 990, "stayed {stayed}/1000");
    }

    #[test]
    fn deterministic_sojourn_hops_are_exact() {
        // On a d-regular graph with deterministic sojourns, hops = ceil(T*d) - 1.
        let g = generators::ring(50); // 2-regular
        let mut rng = SmallRng::seed_from_u64(4);
        let out = ctrw_walk(&g, NodeId::new(0), 3.25, Sojourn::Deterministic, &mut rng)
            .expect("completes");
        // Timer drains 0.5 per visit; dies during the 7th visit -> 6 hops.
        assert_eq!(out.hops, 6);
    }

    #[test]
    fn expected_hop_cost_is_t_times_mean_degree() {
        // §4.3: mean messages per sample ≈ T * average degree.
        let g = generators::complete(11); // 10-regular
        let mut rng = SmallRng::seed_from_u64(5);
        let t = 3.0;
        let runs = 5_000;
        let total: u64 = (0..runs)
            .map(|_| {
                ctrw_walk(&g, NodeId::new(0), t, Sojourn::Exponential, &mut rng)
                    .expect("completes")
                    .hops
            })
            .sum();
        let mean = total as f64 / f64::from(runs);
        let expected = t * 10.0;
        assert!(
            (mean - expected).abs() < 1.0,
            "mean hops {mean} vs T*d = {expected}"
        );
    }

    #[test]
    fn long_timer_samples_nearly_uniformly_on_a_star() {
        // Star: DTRW would give the hub mass 1/2; the CTRW must give ~1/n.
        let g = generators::star(6);
        let mut rng = SmallRng::seed_from_u64(6);
        let runs = 30_000u32;
        let mut hub = 0u32;
        for _ in 0..runs {
            let out = ctrw_walk(&g, NodeId::new(1), 30.0, Sojourn::Exponential, &mut rng)
                .expect("completes");
            if out.node == NodeId::new(0) {
                hub += 1;
            }
        }
        let frac = f64::from(hub) / f64::from(runs);
        assert!(
            (frac - 1.0 / 6.0).abs() < 0.02,
            "hub mass {frac} should be ~1/6, not the DTRW's 1/2"
        );
    }

    #[test]
    fn ctx_recording_matches_outcome_and_preserves_the_walk() {
        use census_metrics::{HistogramMetric, Metric, Registry, RunCtx};
        let g = generators::complete(11);
        let mut plain_rng = SmallRng::seed_from_u64(55);
        let plain = ctrw_walk(
            &g,
            NodeId::new(0),
            4.0,
            Sojourn::Exponential,
            &mut plain_rng,
        )
        .expect("completes");
        let reg = Registry::new();
        let mut rec_rng = SmallRng::seed_from_u64(55);
        let mut ctx = RunCtx::with_recorder(&g, &mut rec_rng, &reg);
        let recorded =
            ctrw_walk_ctx(&mut ctx, NodeId::new(0), 4.0, Sojourn::Exponential).expect("completes");
        assert_eq!(plain, recorded, "recording must not perturb the walk");
        assert_eq!(reg.counter(Metric::CtrwHops), recorded.hops);
        // One draw per visited node: hops + the final (expiring) visit.
        assert_eq!(reg.counter(Metric::SojournDraws), recorded.hops + 1);
        assert_eq!(reg.histogram_count(HistogramMetric::CtrwVirtualTime), 1);
        assert!((reg.histogram_sum(HistogramMetric::CtrwVirtualTime) - 4.0).abs() < 1e-12);
        assert_eq!(ctx.messages_total(), recorded.hops);
    }

    #[test]
    fn deterministic_sojourns_record_no_draws() {
        use census_metrics::{Metric, Registry, RunCtx};
        let g = generators::ring(50);
        let reg = Registry::new();
        let mut rng = SmallRng::seed_from_u64(4);
        let mut ctx = RunCtx::with_recorder(&g, &mut rng, &reg);
        let out = ctrw_walk_ctx(&mut ctx, NodeId::new(0), 3.25, Sojourn::Deterministic)
            .expect("completes");
        assert_eq!(out.hops, 6);
        assert_eq!(reg.counter(Metric::SojournDraws), 0);
        assert_eq!(reg.counter(Metric::CtrwHops), 6);
    }

    #[test]
    fn exact_distribution_at_time_zero_is_delta() {
        let g = generators::ring(5);
        let dist = exact_distribution(&g, NodeId::new(2), 0.0);
        assert_eq!(dist[2], 1.0);
        assert_eq!(dist.iter().sum::<f64>(), 1.0);
    }

    #[test]
    fn exact_distribution_converges_to_uniform() {
        let g = generators::ring(8);
        let dist = exact_distribution(&g, NodeId::new(0), 200.0);
        let uniform = vec![1.0 / 8.0; 8];
        assert!(total_variation(&dist, &uniform) < 1e-9);
    }

    #[test]
    fn exact_distribution_survives_large_rate_times_time() {
        // Regression: a high-degree hub makes Λt large enough that the
        // head Poisson weight e^(-Λt) underflows; the log-space weights
        // must keep the distribution finite and normalised.
        let g = generators::star(100); // hub degree 99, Λt = 990 at t=10
        let dist = exact_distribution(&g, NodeId::new(3), 10.0);
        assert!(dist.iter().all(|p| p.is_finite() && *p >= 0.0));
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Long horizon: near-uniform, within Lemma 1's bound for the
        // star's spectral gap of 1: TV <= 0.5*sqrt(100)*e^(-10) ~ 2.3e-4.
        let uniform = vec![1.0 / 100.0; 100];
        let tv = total_variation(&dist, &uniform);
        assert!(tv <= 0.5 * 10.0 * (-10.0f64).exp() + 1e-12, "tv {tv}");
    }

    #[test]
    fn exact_distribution_matches_lemma_1_bound() {
        // d_TV(t) <= 0.5 * sqrt(N) * exp(-lambda_2 t) for every t.
        let g = generators::hypercube(3); // lambda_2 = 2, N = 8
        let uniform = vec![1.0 / 8.0; 8];
        for t in [0.1, 0.5, 1.0, 2.0, 4.0] {
            let dist = exact_distribution(&g, NodeId::new(0), t);
            let tv = total_variation(&dist, &uniform);
            let bound = 0.5 * 8.0f64.sqrt() * (-2.0 * t).exp();
            assert!(tv <= bound + 1e-9, "t={t}: tv {tv} > bound {bound}");
        }
    }

    #[test]
    fn empirical_ctrw_matches_exact_distribution() {
        let mut rng = SmallRng::seed_from_u64(7);
        let g = generators::erdos_renyi(12, 0.4, &mut rng);
        let start = g.nodes().next().expect("non-empty");
        let t = 1.5;
        let exact = exact_distribution(&g, start, t);
        let runs = 60_000u32;
        let mut counts = vec![0u64; g.slot_count()];
        for _ in 0..runs {
            let out = ctrw_walk(&g, start, t, Sojourn::Exponential, &mut rng).expect("completes");
            counts[out.node.index()] += 1;
        }
        let empirical: Vec<f64> = g
            .nodes()
            .map(|v| counts[v.index()] as f64 / f64::from(runs))
            .collect();
        let tv = total_variation(&empirical, &exact);
        assert!(tv < 0.02, "empirical vs exact CTRW law differ by {tv}");
    }

    #[test]
    fn remark_1_deterministic_sojourns_never_mix_on_bipartite_graphs() {
        // Regular bipartite graph, timer chosen so the parity is fixed:
        // with sojourn exactly 1/d per visit, after timer T = k (integer)
        // the walk has taken a deterministic number of hops.
        let mut rng = SmallRng::seed_from_u64(8);
        let g = generators::regular_bipartite(4, 3, &mut rng).expect("simple union");
        // Every visit drains exactly 1/3. An integer timer kills the
        // walk after a fixed hop count, so the side is deterministic.
        let mut sides = std::collections::HashSet::new();
        for _ in 0..500 {
            let out = ctrw_walk(&g, NodeId::new(0), 2.0, Sojourn::Deterministic, &mut rng)
                .expect("completes");
            sides.insert(out.node.index() < 4);
        }
        assert_eq!(sides.len(), 1, "deterministic sojourns leak across parity");

        // The exponential variant does cross the bipartition.
        let mut sides_exp = std::collections::HashSet::new();
        for _ in 0..500 {
            let out = ctrw_walk(&g, NodeId::new(0), 2.0, Sojourn::Exponential, &mut rng)
                .expect("completes");
            sides_exp.insert(out.node.index() < 4);
        }
        assert_eq!(sides_exp.len(), 2, "exponential sojourns must mix");
    }

    #[test]
    fn denied_probe_loses_the_walk_but_charges_spent_traffic() {
        use census_metrics::{Metric, Registry, RunCtx};
        use std::cell::Cell;

        /// A faulty environment: forwards `budget` neighbour probes, then
        /// denies every later one — the shape of a message-loss wrapper.
        struct DenyAfter<'g> {
            inner: &'g Graph,
            budget: Cell<u64>,
        }
        impl Topology for DenyAfter<'_> {
            fn peer_count(&self) -> usize {
                self.inner.peer_count()
            }
            fn contains(&self, node: NodeId) -> bool {
                self.inner.contains(node)
            }
            fn neighbors_of(&self, node: NodeId) -> &[NodeId] {
                self.inner.neighbors_of(node)
            }
            fn neighbor_of<R: rand::Rng + ?Sized>(
                &self,
                node: NodeId,
                rng: &mut R,
            ) -> Option<NodeId> {
                let next = self.inner.neighbor_of(node, rng)?;
                if self.budget.get() == 0 {
                    return None;
                }
                self.budget.set(self.budget.get() - 1);
                Some(next)
            }
            fn any_peer<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeId> {
                self.inner.any_peer(rng)
            }
        }

        let g = generators::complete(11);
        let faulty = DenyAfter {
            inner: &g,
            budget: Cell::new(3),
        };
        let reg = Registry::new();
        let mut rng = SmallRng::seed_from_u64(12);
        let mut ctx = RunCtx::with_recorder(&faulty, &mut rng, &reg);
        // A timer this long cannot expire within 3 hops on a 10-regular
        // graph, so the fourth probe's denial must surface as Lost.
        let res = ctrw_walk_ctx(&mut ctx, NodeId::new(0), 1_000.0, Sojourn::Exponential);
        assert!(
            matches!(res, Err(WalkError::Lost(_))),
            "denied probe must lose the walk, got {res:?}"
        );
        assert_eq!(reg.counter(Metric::CtrwHops), 3, "spent hops still charged");
        assert_eq!(reg.counter(Metric::SojournDraws), 4, "one draw per visit");
        assert_eq!(ctx.messages_total(), 3);
    }

    #[test]
    #[should_panic(expected = "timer must be positive")]
    fn zero_timer_panics() {
        let g = generators::ring(4);
        let mut rng = SmallRng::seed_from_u64(9);
        let _ = ctrw_walk(&g, NodeId::new(0), 0.0, Sojourn::Exponential, &mut rng);
    }
}

//! Walk failure modes.

use std::error::Error;
use std::fmt;

use census_graph::NodeId;

/// Reasons a random walk can fail to complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkError {
    /// The walk reached a node with no neighbours and cannot continue.
    /// On an undirected overlay this can only be the starting node.
    Stuck(NodeId),
    /// The walk exceeded its step budget. Models the initiator-side
    /// timeout of §5.3.1 (a probe message is declared lost when it does
    /// not come back in time); the field carries the number of hops
    /// taken before giving up.
    Timeout(u64),
    /// The walk visited a node that is no longer an overlay member (the
    /// peer departed while holding the probe message, §5.3.1).
    Lost(NodeId),
}

impl fmt::Display for WalkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalkError::Stuck(n) => write!(f, "walk stuck at isolated node {n}"),
            WalkError::Timeout(hops) => write!(f, "walk timed out after {hops} hops"),
            WalkError::Lost(n) => write!(f, "walk lost at departed node {n}"),
        }
    }
}

impl Error for WalkError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(format!("{}", WalkError::Stuck(NodeId::new(3))).contains("n3"));
        assert!(format!("{}", WalkError::Timeout(17)).contains("17"));
        assert!(format!("{}", WalkError::Lost(NodeId::new(5))).contains("n5"));
    }
}

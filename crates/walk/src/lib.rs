//! Random walk engines for the overlay-census reproduction.
//!
//! Both of the paper's estimators are driven by random walks over the
//! overlay graph, observed only through the local [`Topology`] interface:
//!
//! - The **Random Tour** method (§3) launches a *discrete-time* random
//!   walk and runs it until it returns to the initiator; see
//!   [`discrete::random_tour`].
//! - The **Sample & Collide** method (§4) needs uniform peer samples,
//!   obtained from an emulated *continuous-time* random walk whose
//!   exponential sojourn times cancel the degree bias of the discrete
//!   walk; see [`continuous::ctrw_walk`].
//!
//! The continuous module also provides the deterministic-sojourn variant
//! (used to interpret the Random Tour estimate in §3.3, and shown by the
//! paper's Remark 1 to be *unsound* for sampling on bipartite graphs) and
//! an exact `exp(−Lt)` distribution evaluator (by uniformization) that the
//! test-suite uses to check Lemma 1 without sampling noise.
//!
//! Every function reports its *message cost* in overlay hops — the cost
//! unit of the paper's evaluation (Figure 5, Table 1). The `_ctx`
//! variants ([`discrete::random_tour_ctx`], [`continuous::ctrw_walk_ctx`])
//! additionally charge every hop to a [`census_metrics::Recorder`]
//! through a [`census_metrics::RunCtx`]; the plain forms delegate to them
//! with the zero-cost no-op recorder, so both spellings run the identical
//! walk on the identical RNG stream.
//!
//! Two further modules serve the layers above:
//!
//! - [`frontier`] batches W independent walks into one lock-step
//!   *frontier* over a shared topology — same per-walk results, bit for
//!   bit, but with W memory accesses in flight instead of one.
//! - [`segment`] decomposes one walk into shard-local *segments* over a
//!   [`census_graph::ShardedFrozenView`], each run entirely inside one
//!   shard and stitched back together at cut-edge crossings — again
//!   bit-identical to the serial walk, which is what lets the sharded
//!   census service spread a single query's walk across per-shard
//!   worker pools.
//! - [`stream`] is the canonical home of the SplitMix64 seed-stream
//!   derivations (domain-tagged so replicas, service queries, and
//!   frontier walks can never collide) and a two-word SplitMix64
//!   generator for the frontier's per-walk streams.
//!
//! [`Topology`]: census_graph::Topology

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod continuous;
pub mod discrete;
pub mod frontier;
pub mod segment;
pub mod stream;

mod error;

pub use error::WalkError;

//! Batched multi-walk execution: a *frontier* of W concurrent walks
//! advanced in lock-step rounds over one pinned topology.
//!
//! The serial engines ([`crate::continuous::ctrw_walk_ctx`],
//! [`crate::discrete::random_tour_ctx`]) advance one walk at a time, so
//! every hop is a dependent chain: position → CSR offset load → neighbour
//! load → position. On a CSR snapshot bigger than cache (the paper's
//! N = 100,000 at mean degree 10 is ~8 MB) that chain is latency-bound —
//! the core idles on a cache miss per hop. The frontier interleaves W
//! *independent* chains: each round issues one visit-step for every live
//! walk, so the out-of-order window overlaps W cache misses instead of
//! waiting on one (memory-level parallelism). Das Sarma et al.'s
//! distributed walk line gets its speedups the same way — many short walk
//! segments batched over the same topology.
//!
//! # Determinism contract
//!
//! Results are **bit-identical to the serial path** by construction, not
//! by tolerance: every walk carries its *own* RNG and its own topology
//! handle in its spec, so its entire draw sequence is a pure function of
//! walk-private state. The kernel replicates the serial engines'
//! per-visit sequence exactly — degree probe, sojourn draw, timer check,
//! neighbour draw, in that order — and merely reorders *between* walks,
//! which no walk can observe. Compaction via `swap_remove` changes only
//! the round-iteration order of the survivors, never any walk's stream.
//!
//! One caveat inherited from the fault model: `FaultyTopology` draws its
//! faults from a shared counter-addressed stream, so two walks sharing
//! one faulty wrapper *can* observe schedule-dependent faults. Callers
//! that need bit-identity under faults give each walk its own wrapper
//! (one `FaultPlan::apply` per walk) in both the serial reference and the
//! batched run — exactly what `census-service` does per job.
//!
//! # State layout
//!
//! Per-walk mutable state lives in struct-of-arrays form — positions,
//! timers, hop counts in separate contiguous vectors — so a round's sweep
//! touches dense arrays instead of striding over fat per-walk structs,
//! and the whole frontier's hot state stays cache-resident next to the
//! CSR lines it probes.
//!
//! # Cost accounting
//!
//! The kernel records only its own execution-shape metrics —
//! [`Metric::WalkBatchRounds`] once per frontier and one
//! [`HistogramMetric::BatchOccupancy`] observation per round (the live
//! walk count, tracing how the frontier drains). Per-walk cost metrics
//! (`CtrwHops`, `TourHops`, outcome counters) are deliberately left to
//! the caller, who charges them per reported fate: a caller that stops
//! consuming early (Sample & Collide breaking at the l-th collision)
//! must be able to discard surplus walks *uncharged*, or the ledger
//! (`message_total == reported messages`) breaks.
//!
//! # When batching loses
//!
//! On graphs that fit in L1/L2 the serial path is already compute-bound
//! and the frontier's bookkeeping is pure overhead; likewise for W = 1 or
//! very short walks, where the frontier degenerates to the serial loop
//! plus a vector allocation. Batch when walks are many and the topology
//! is big; the serial engines remain the right tool for one-off walks.

use census_graph::{NodeId, Topology};
use census_metrics::{HistogramMetric, Metric, Recorder};
use rand::Rng;

use crate::continuous::{standard_exponential, CtrwOutcome, Sojourn};
use crate::discrete::Tour;
use crate::WalkError;

/// One CTRW walk's launch state: everything private to the walk.
///
/// The spec owns its topology handle (`T` is typically `&FrozenView`, or
/// an owned per-walk `FaultyTopology` under fault injection) and its RNG,
/// so the walk's draw sequence cannot depend on its neighbours in the
/// frontier. Specs are taken `&mut`: the kernel advances the RNGs in
/// place, so after the frontier returns, each spec's RNG has consumed
/// exactly what the serial walk would have — callers can continue on it
/// (e.g. serial retries of a failed walk).
#[derive(Debug)]
pub struct CtrwSpec<T, R> {
    /// The walk's view of the overlay.
    pub topology: T,
    /// The walk's private RNG stream.
    pub rng: R,
    /// Where the walk launches.
    pub start: NodeId,
    /// The emulated CTRW duration.
    pub timer: f64,
    /// How sojourn times are drawn.
    pub sojourn: Sojourn,
}

/// How one CTRW walk in a frontier ended.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CtrwFate {
    /// The walk's outcome — identical to what the serial
    /// [`crate::continuous::ctrw_walk`] returns for the same spec.
    pub result: Result<CtrwOutcome, WalkError>,
    /// Forwarding hops actually sent (also inside `result` when `Ok`;
    /// surfaced here so failed walks can be charged too).
    pub hops: u64,
    /// Exponential variates consumed (zero for deterministic sojourns).
    pub draws: u64,
}

/// One Random Tour walk's launch state; see [`CtrwSpec`] for the
/// ownership and determinism rationale.
#[derive(Debug)]
pub struct TourSpec<T, R> {
    /// The walk's view of the overlay.
    pub topology: T,
    /// The walk's private RNG stream.
    pub rng: R,
    /// The tour's initiator (launch and return point).
    pub start: NodeId,
    /// Step budget; `None` runs to completion.
    pub max_steps: Option<u64>,
}

/// How one Random Tour in a frontier ended.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TourFate {
    /// The tour's outcome — identical to what the serial
    /// [`crate::discrete::random_tour`] returns for the same spec.
    pub result: Result<Tour, WalkError>,
    /// Hops to charge as `TourHops`: the steps actually sent. Zero for a
    /// tour stuck at launch (the serial path charges none there).
    pub hops: u64,
    /// The visit accumulator `Σ f(X_k)/d(X_k)` over the tour's visits, in
    /// serial visit order (bit-identical f64 to the serial closure sum).
    pub weight: f64,
}

/// Advances a frontier of CTRW walks to completion and returns each
/// walk's fate, indexed like `specs`.
///
/// Each round issues one visit-step — degree probe, sojourn draw, timer
/// check, neighbour draw — for every live walk, then compacts finished
/// walks out of the active set. Per-walk results are bit-identical to
/// running [`crate::continuous::ctrw_walk`] on each spec serially.
///
/// Records [`Metric::WalkBatchRounds`] and per-round
/// [`HistogramMetric::BatchOccupancy`] on `recorder`; per-walk cost
/// metrics are the caller's to charge from the fates (see the module
/// docs on why).
///
/// # Panics
///
/// Panics if any spec's `start` is not alive or its `timer` is not
/// positive and finite — the serial preconditions, checked up front.
pub fn ctrw_frontier<T, R, Rec>(specs: &mut [CtrwSpec<T, R>], recorder: &Rec) -> Vec<CtrwFate>
where
    T: Topology,
    R: Rng,
    Rec: Recorder + ?Sized,
{
    let width = specs.len();
    // SoA hot state: one cache-dense lane per per-walk variable.
    let mut position: Vec<NodeId> = Vec::with_capacity(width);
    let mut remaining: Vec<f64> = Vec::with_capacity(width);
    let mut hops: Vec<u64> = vec![0; width];
    let mut draws: Vec<u64> = vec![0; width];
    let mut fates: Vec<Option<Result<CtrwOutcome, WalkError>>> = vec![None; width];
    for spec in specs.iter() {
        assert!(
            spec.topology.contains(spec.start),
            "CTRW start must be alive"
        );
        assert!(
            spec.timer.is_finite() && spec.timer > 0.0,
            "CTRW timer must be positive and finite"
        );
        position.push(spec.start);
        remaining.push(spec.timer);
    }

    let mut active: Vec<u32> = (0..width as u32).collect();
    let mut rounds: u64 = 0;
    while !active.is_empty() {
        recorder.observe(HistogramMetric::BatchOccupancy, active.len() as f64);
        rounds += 1;
        let mut j = 0;
        while j < active.len() {
            let i = active[j] as usize;
            let spec = &mut specs[i];
            let current = position[i];
            let degree = spec.topology.degree_of(current);
            // One serial visit-step: the walk ends here (zero degree or
            // timer death), hops on, or is lost to a faulty neighbour
            // probe — the exact serial sequence and RNG consumption.
            let finished = if degree == 0 {
                Some(Ok(CtrwOutcome {
                    node: current,
                    hops: hops[i],
                }))
            } else {
                let drain = match spec.sojourn {
                    Sojourn::Exponential => {
                        draws[i] += 1;
                        standard_exponential(&mut spec.rng) / degree as f64
                    }
                    Sojourn::Deterministic => 1.0 / degree as f64,
                };
                remaining[i] -= drain;
                if remaining[i] <= 0.0 {
                    Some(Ok(CtrwOutcome {
                        node: current,
                        hops: hops[i],
                    }))
                } else {
                    match spec.topology.neighbor_of(current, &mut spec.rng) {
                        Some(next) => {
                            position[i] = next;
                            hops[i] += 1;
                            None
                        }
                        None => Some(Err(WalkError::Lost(current))),
                    }
                }
            };
            match finished {
                Some(result) => {
                    fates[i] = Some(result);
                    active.swap_remove(j);
                }
                None => j += 1,
            }
        }
    }
    if rounds > 0 {
        recorder.incr(Metric::WalkBatchRounds, rounds);
    }

    fates
        .into_iter()
        .enumerate()
        .map(|(i, result)| CtrwFate {
            result: result.expect("every walk reaches a fate"),
            hops: hops[i],
            draws: draws[i],
        })
        .collect()
}

/// Advances a frontier of Random Tours to completion under the shared
/// visit weight `f`, returning each tour's fate indexed like `specs`.
///
/// Replicates [`crate::discrete::random_tour`]'s sequence per walk: a
/// launch visit and launch hop, then rounds of (return check, budget
/// check, visit, neighbour draw). `f` is the Random Tour estimator's node
/// function; each fate's `weight` accumulates `f(X_k)/d(X_k)` in serial
/// visit order, so `d(start) · weight` is the §3.1 estimate, bit-identical
/// to the serial closure's sum.
///
/// Metrics: as [`ctrw_frontier`] — frontier-shape only.
///
/// # Panics
///
/// Panics if any spec's `start` is not a live member of its topology.
pub fn tour_frontier<T, R, Rec, F>(
    specs: &mut [TourSpec<T, R>],
    f: F,
    recorder: &Rec,
) -> Vec<TourFate>
where
    T: Topology,
    R: Rng,
    Rec: Recorder + ?Sized,
    F: Fn(NodeId) -> f64,
{
    let width = specs.len();
    let mut position: Vec<NodeId> = vec![NodeId::new(0); width];
    let mut steps: Vec<u64> = vec![0; width];
    let mut weight: Vec<f64> = vec![0.0; width];
    let mut fates: Vec<Option<TourFate>> = Vec::with_capacity(width);
    let mut active: Vec<u32> = Vec::with_capacity(width);

    // Launch phase: the initiator's visit and first hop, exactly as the
    // serial tour performs them before entering its loop.
    for (i, spec) in specs.iter_mut().enumerate() {
        assert!(
            spec.topology.contains(spec.start),
            "tour initiator must be alive"
        );
        weight[i] += f(spec.start) / spec.topology.degree_of(spec.start) as f64;
        match spec.topology.neighbor_of(spec.start, &mut spec.rng) {
            Some(next) => {
                position[i] = next;
                steps[i] = 1;
                active.push(i as u32);
                fates.push(None);
            }
            None => fates.push(Some(TourFate {
                result: Err(WalkError::Stuck(spec.start)),
                // The serial path charges no TourHops for a launch
                // failure; neither do we.
                hops: 0,
                weight: weight[i],
            })),
        }
    }

    let mut rounds: u64 = 0;
    while !active.is_empty() {
        recorder.observe(HistogramMetric::BatchOccupancy, active.len() as f64);
        rounds += 1;
        let mut j = 0;
        while j < active.len() {
            let i = active[j] as usize;
            let spec = &mut specs[i];
            let current = position[i];
            // One iteration of the serial tour loop, with the loop's
            // `current != start` test first.
            let finished = if current == spec.start {
                Some(Ok(Tour { steps: steps[i] }))
            } else if steps[i] >= spec.max_steps.unwrap_or(u64::MAX) {
                Some(Err(WalkError::Timeout(steps[i])))
            } else {
                weight[i] += f(current) / spec.topology.degree_of(current) as f64;
                match spec.topology.neighbor_of(current, &mut spec.rng) {
                    Some(next) => {
                        position[i] = next;
                        steps[i] += 1;
                        None
                    }
                    None => Some(Err(WalkError::Stuck(current))),
                }
            };
            match finished {
                Some(result) => {
                    fates[i] = Some(TourFate {
                        result,
                        hops: steps[i],
                        weight: weight[i],
                    });
                    active.swap_remove(j);
                }
                None => j += 1,
            }
        }
    }
    if rounds > 0 {
        recorder.incr(Metric::WalkBatchRounds, rounds);
    }

    fates
        .into_iter()
        .map(|fate| fate.expect("every tour reaches a fate"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::continuous::ctrw_walk;
    use crate::discrete::random_tour;
    use crate::stream::{stream_seed, SplitMix64, StreamDomain};
    use census_graph::generators;
    use census_metrics::{NoopRecorder, Registry};

    fn walk_rng(i: u64) -> SplitMix64 {
        SplitMix64::new(stream_seed(StreamDomain::FrontierWalk, 99, i))
    }

    #[test]
    fn ctrw_frontier_matches_serial_bit_for_bit() {
        let g = generators::complete(17);
        let frozen = g.freeze();
        let start = g.nodes().next().expect("non-empty");
        for width in [1usize, 7, 64] {
            let mut specs: Vec<_> = (0..width)
                .map(|i| CtrwSpec {
                    topology: &frozen,
                    rng: walk_rng(i as u64),
                    start,
                    timer: 4.0,
                    sojourn: Sojourn::Exponential,
                })
                .collect();
            let fates = ctrw_frontier(&mut specs, &NoopRecorder);
            for (i, fate) in fates.iter().enumerate() {
                let mut rng = walk_rng(i as u64);
                let serial = ctrw_walk(&frozen, start, 4.0, Sojourn::Exponential, &mut rng)
                    .expect("fault-free walk completes");
                assert_eq!(fate.result, Ok(serial), "walk {i} diverged at W={width}");
                assert_eq!(fate.hops, serial.hops);
                assert_eq!(fate.draws, serial.hops + 1);
            }
        }
    }

    #[test]
    fn ctrw_frontier_leaves_rngs_where_serial_would() {
        // After the frontier, each spec's RNG must have consumed exactly
        // the serial walk's draws — callers continue on it for retries.
        let g = generators::complete(9);
        let start = g.nodes().next().expect("non-empty");
        let mut specs: Vec<_> = (0..5u64)
            .map(|i| CtrwSpec {
                topology: &g,
                rng: walk_rng(i),
                start,
                timer: 2.0,
                sojourn: Sojourn::Exponential,
            })
            .collect();
        ctrw_frontier(&mut specs, &NoopRecorder);
        for (i, spec) in specs.iter().enumerate() {
            let mut serial_rng = walk_rng(i as u64);
            ctrw_walk(&g, start, 2.0, Sojourn::Exponential, &mut serial_rng).expect("completes");
            assert_eq!(spec.rng, serial_rng, "walk {i} RNG position diverged");
        }
    }

    #[test]
    fn tour_frontier_matches_serial_bit_for_bit() {
        let mut seed_rng = SplitMix64::new(8);
        let g = generators::balanced(200, 6, &mut seed_rng);
        let frozen = g.freeze();
        let start = g.nodes().next().expect("non-empty");
        let f = |n: NodeId| ((n.index() % 13) as f64).mul_add(0.25, 1.0);
        for width in [1usize, 7, 64] {
            let mut specs: Vec<_> = (0..width)
                .map(|i| TourSpec {
                    topology: &frozen,
                    rng: walk_rng(1000 + i as u64),
                    start,
                    max_steps: Some(50_000),
                })
                .collect();
            let fates = tour_frontier(&mut specs, f, &NoopRecorder);
            for (i, fate) in fates.iter().enumerate() {
                let mut rng = walk_rng(1000 + i as u64);
                let mut weight = 0.0f64;
                let serial = random_tour(&frozen, start, Some(50_000), &mut rng, |n| {
                    weight += f(n) / frozen.degree_of(n) as f64;
                });
                assert_eq!(fate.result, serial, "tour {i} diverged at W={width}");
                assert_eq!(
                    fate.weight.to_bits(),
                    weight.to_bits(),
                    "tour {i} weight not bit-identical at W={width}"
                );
            }
        }
    }

    #[test]
    fn tour_stuck_at_launch_charges_no_hops() {
        let mut g = census_graph::Graph::new();
        let lone = g.add_node();
        let mut specs = vec![TourSpec {
            topology: &g,
            rng: walk_rng(0),
            start: lone,
            max_steps: None,
        }];
        let fates = tour_frontier(&mut specs, |_| 1.0, &NoopRecorder);
        assert_eq!(fates[0].result, Err(WalkError::Stuck(lone)));
        assert_eq!(fates[0].hops, 0);
    }

    #[test]
    fn frontier_records_rounds_and_occupancy_only() {
        let g = generators::complete(11);
        let start = g.nodes().next().expect("non-empty");
        let reg = Registry::new();
        let mut specs: Vec<_> = (0..8u64)
            .map(|i| CtrwSpec {
                topology: &g,
                rng: walk_rng(i),
                start,
                timer: 3.0,
                sojourn: Sojourn::Exponential,
            })
            .collect();
        let fates = ctrw_frontier(&mut specs, &reg);
        let rounds = reg.counter(Metric::WalkBatchRounds);
        // The frontier runs as many rounds as its longest walk has visits.
        let longest = fates.iter().map(|f| f.hops + 1).max().expect("non-empty");
        assert_eq!(rounds, longest);
        assert_eq!(reg.histogram_count(HistogramMetric::BatchOccupancy), rounds);
        // First round sees the full frontier.
        assert!(reg.histogram_sum(HistogramMetric::BatchOccupancy) >= 8.0);
        // The ledger stays the caller's: no message-class metric charged.
        assert_eq!(reg.message_total(), 0);
    }

    #[test]
    fn empty_frontier_is_a_no_op() {
        let reg = Registry::new();
        let fates = ctrw_frontier::<&census_graph::Graph, SplitMix64, _>(&mut [], &reg);
        assert!(fates.is_empty());
        assert_eq!(reg.counter(Metric::WalkBatchRounds), 0);
    }
}

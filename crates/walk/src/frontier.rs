//! Batched multi-walk execution: a *frontier* of W concurrent walks
//! advanced in lock-step rounds over one pinned topology.
//!
//! The serial engines ([`crate::continuous::ctrw_walk_ctx`],
//! [`crate::discrete::random_tour_ctx`]) advance one walk at a time, so
//! every hop is a dependent chain: position → CSR offset load → neighbour
//! load → position. On a CSR snapshot bigger than cache (the paper's
//! N = 100,000 at mean degree 10 is ~8 MB) that chain is latency-bound —
//! the core idles on a cache miss per hop. The frontier interleaves W
//! *independent* chains: each round issues one visit-step for every live
//! walk, so the out-of-order window overlaps W cache misses instead of
//! waiting on one (memory-level parallelism). Das Sarma et al.'s
//! distributed walk line gets its speedups the same way — many short walk
//! segments batched over the same topology.
//!
//! # Execution modes
//!
//! Every kernel entry point takes a [`FrontierMode`]:
//!
//! - [`FrontierMode::Exact`] keeps the bit-identity contract below and
//!   carries a [`KernelTuning`] of scheduling-only optimisations —
//!   frontier *bucketing by current node* (a stable O(W) counting pass
//!   groups the active set by id-space shard each round, so walks about
//!   to touch neighbouring CSR rows run back-to-back) and *software
//!   prefetch* of the CSR row a few walks ahead
//!   ([`Topology::prefetch_row`]). Both reorder or hint memory traffic
//!   *between* walks and change no walk's own draw sequence, so every
//!   tuning combination is bit-identical to the serial engines —
//!   `tests/frontier_equivalence.rs` asserts exactly that over the full
//!   [`KernelTuning::ALL`] matrix.
//! - [`FrontierMode::FastStatEq`] additionally changes *where draws come
//!   from*: all walks share one block-refilled
//!   [`BlockSplitMix64`](crate::stream::BlockSplitMix64) stream (seeded
//!   by one word from the first spec's RNG), consumed in scheduling
//!   order. Each draw is still an independent uniform variate, so every
//!   walk remains an honest CTRW/tour and the *law* of every fate is
//!   unchanged — but per-walk streams are no longer the serial ones, so
//!   results are not bit-comparable to serial runs (they remain a pure
//!   deterministic function of the specs' seeds and the frontier's
//!   composition). The statistical-equivalence bar lives in
//!   `tests/frontier_modes.rs`: chi-square against the exact CTRW law
//!   (`census-stats` + [`crate::continuous::exact_distribution`]) and
//!   Random Tour unbiasedness. After a fast frontier, spec RNG positions
//!   are *not* serial-compatible (spec 0 has consumed exactly one extra
//!   seeding word; the rest are untouched) — callers must not resume
//!   serial retries on them expecting serial streams.
//!
//! # Determinism contract (exact mode)
//!
//! Results are **bit-identical to the serial path** by construction, not
//! by tolerance: every walk carries its *own* RNG and its own topology
//! handle in its spec, so its entire draw sequence is a pure function of
//! walk-private state. The kernel replicates the serial engines'
//! per-visit sequence exactly — degree probe, sojourn draw, timer check,
//! neighbour draw, in that order — and merely reorders *between* walks,
//! which no walk can observe. Compaction via `swap_remove` and bucketing
//! change only the round-iteration order of the survivors, never any
//! walk's stream; prefetch hints are architecturally invisible.
//!
//! One caveat inherited from the fault model: `FaultyTopology` draws its
//! faults from a shared counter-addressed stream, so two walks sharing
//! one faulty wrapper *can* observe schedule-dependent faults. Callers
//! that need bit-identity under faults give each walk its own wrapper
//! (one `FaultPlan::apply` per walk) in both the serial reference and the
//! batched run — exactly what `census-service` does per job.
//!
//! # State layout
//!
//! Per-walk mutable state lives in one small fixed-size *lane* per walk
//! (position, timer, hop count packed into 32 bytes), indexed by the
//! compacted active list. A round's sweep therefore pays one bounds
//! check and touches one cache line per walk for all of its hot fields,
//! and the whole frontier's lane state stays cache-resident next to the
//! CSR lines it probes.
//!
//! # Cost accounting
//!
//! The kernel records only its own execution-shape metrics —
//! [`Metric::WalkBatchRounds`] once per frontier and one
//! [`HistogramMetric::BatchOccupancy`] observation per round (the live
//! walk count, tracing how the frontier drains) — identically in every
//! mode, and nothing at all for an empty or launch-only frontier (zero
//! rounds run, so no zero-occupancy observation and no rounds
//! increment). Per-walk cost metrics (`CtrwHops`, `TourHops`, outcome
//! counters) are deliberately left to the caller, who charges them per
//! reported fate: a caller that stops consuming early (Sample & Collide
//! breaking at the l-th collision) must be able to discard surplus walks
//! *uncharged*, or the ledger (`message_total == reported messages`)
//! breaks.
//!
//! # When batching loses
//!
//! On graphs that fit in L1/L2 the serial path is already compute-bound
//! and the frontier's bookkeeping is pure overhead; likewise for W = 1 or
//! very short walks, where the frontier degenerates to the serial loop
//! plus a vector allocation. Batch when walks are many and the topology
//! is big; the serial engines remain the right tool for one-off walks.

use census_graph::{NodeId, Topology};
use census_metrics::{HistogramMetric, Metric, Recorder};
use rand::Rng;

use crate::continuous::{standard_exponential, CtrwOutcome, Sojourn};
use crate::discrete::Tour;
use crate::stream::BlockSplitMix64;
use crate::WalkError;

/// How far ahead of the sweep the exact kernel's prefetch hint runs:
/// walk `j + LOOKAHEAD`'s CSR row is requested while walk `j` executes.
/// Far enough for a memory fetch to land before its walk's turn, close
/// enough that the line is still resident when it does.
pub const PREFETCH_LOOKAHEAD: usize = 16;

/// How many id-space shards [`KernelTuning::bucket_by_node`] groups a
/// round's active set into. 256 keeps the counting pass's bucket table
/// inside one cache line pair and still carves a 100k-node id space into
/// ~400-node CSR regions.
pub const BUCKET_SHARDS: usize = 256;

/// Occupancy below which a round skips bucketing even when
/// [`KernelTuning::bucket_by_node`] is on: the counting pass walks its
/// [`BUCKET_SHARDS`]-entry table every round regardless of how few
/// walks remain, so in a frontier's long drain tail (most rounds run a
/// handful of survivors) it costs more than the sweep it reorders.
/// Scheduling-only, like the toggle itself.
pub const MIN_BUCKET_OCCUPANCY: usize = 64;

/// Stably reorders `active` so walks whose current node shares an
/// id-space shard become adjacent: a two-pass counting bucket, O(W) per
/// round where a comparison sort would pay O(W log W) with a worse
/// constant. `node_of` maps a walk index to its current node id. Pure
/// between-walk scheduling — within a shard, arrival order is kept.
fn bucket_by_shard(active: &mut Vec<u32>, scratch: &mut Vec<u32>, node_of: impl Fn(u32) -> usize) {
    let max_id = active.iter().map(|&i| node_of(i)).max().unwrap_or(0);
    let id_bits = usize::BITS - (max_id + 1).leading_zeros();
    let shift = id_bits.saturating_sub(BUCKET_SHARDS.trailing_zeros());
    let mut bounds = [0u32; BUCKET_SHARDS + 1];
    for &i in active.iter() {
        bounds[(node_of(i) >> shift) + 1] += 1;
    }
    for b in 0..BUCKET_SHARDS {
        bounds[b + 1] += bounds[b];
    }
    scratch.resize(active.len(), 0);
    for &i in active.iter() {
        let b = node_of(i) >> shift;
        scratch[bounds[b] as usize] = i;
        bounds[b] += 1;
    }
    std::mem::swap(active, scratch);
}

/// Scheduling-only toggles of the exact kernel. Every combination
/// preserves the bit-identity contract — these change *when and in what
/// order between walks* memory is touched, never any walk's own draw
/// sequence — so callers may flip them freely; the matrix is pinned by
/// `tests/frontier_equivalence.rs` over [`KernelTuning::ALL`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelTuning {
    /// Group the active set by current node's id-space shard at the
    /// start of every round (a stable two-pass counting bucket over
    /// [`BUCKET_SHARDS`] shards, O(W) — a comparison sort here costs
    /// more than the locality it buys), so walks about to touch
    /// neighbouring CSR rows run back-to-back and same-node walks share
    /// one adjacency-row touch.
    pub bucket_by_node: bool,
    /// Issue a software prefetch ([`Topology::prefetch_row`]) for walk
    /// `j + `[`PREFETCH_LOOKAHEAD`]'s row while processing walk `j`.
    pub prefetch: bool,
}

impl KernelTuning {
    /// The PR-5 kernel: arrival-order sweeps, no hints.
    #[must_use]
    pub const fn serial_order() -> Self {
        Self {
            bucket_by_node: false,
            prefetch: false,
        }
    }

    /// The measured-fastest default on the BENCH_10 reference hardware:
    /// prefetch on, bucketing off. No toggle can change results, so the
    /// choice is purely empirical — row prefetch reliably buys back the
    /// serial path's stall time, while shard bucketing's O(W) counting
    /// pass costs more than the locality it recovers below frontier
    /// widths of several thousand (256 walks spread over a 100k-node id
    /// space almost never share rows). Flip `bucket_by_node` on for very
    /// wide frontiers over huge snapshots.
    #[must_use]
    pub const fn tuned() -> Self {
        Self {
            bucket_by_node: false,
            prefetch: true,
        }
    }

    /// Every toggle combination, for equivalence-test matrices.
    pub const ALL: [Self; 4] = [
        Self {
            bucket_by_node: false,
            prefetch: false,
        },
        Self {
            bucket_by_node: true,
            prefetch: false,
        },
        Self {
            bucket_by_node: false,
            prefetch: true,
        },
        Self {
            bucket_by_node: true,
            prefetch: true,
        },
    ];
}

impl Default for KernelTuning {
    fn default() -> Self {
        Self::tuned()
    }
}

/// How a frontier kernel schedules walks and sources their draws; see
/// the module docs for the full contract of each mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontierMode {
    /// Bit-identical to the serial engines under any [`KernelTuning`].
    /// The default (with [`KernelTuning::tuned`]), and the only mode the
    /// deterministic-replay layers (`census-service` defaults, campaign
    /// records) may use.
    Exact(KernelTuning),
    /// Fast, *statistically* equivalent: all walks draw from one shared
    /// block-refilled SplitMix64 in scheduling order. Same fate law,
    /// different bits; spec RNGs are left non-serial-compatible (spec 0
    /// consumes one seeding word). Gate it behind workloads that consume
    /// fates only in aggregate.
    FastStatEq,
}

impl Default for FrontierMode {
    fn default() -> Self {
        Self::Exact(KernelTuning::default())
    }
}

/// One CTRW walk's launch state: everything private to the walk.
///
/// The spec owns its topology handle (`T` is typically `&FrozenView`, or
/// an owned per-walk `FaultyTopology` under fault injection) and its RNG,
/// so the walk's draw sequence cannot depend on its neighbours in the
/// frontier. Specs are taken `&mut`: the kernel advances the RNGs in
/// place, so after an exact-mode frontier returns, each spec's RNG has
/// consumed exactly what the serial walk would have — callers can
/// continue on it (e.g. serial retries of a failed walk). Fast mode
/// instead consumes one seeding word from the *first* spec's RNG and
/// leaves every other RNG untouched.
#[derive(Debug)]
pub struct CtrwSpec<T, R> {
    /// The walk's view of the overlay.
    pub topology: T,
    /// The walk's private RNG stream.
    pub rng: R,
    /// Where the walk launches.
    pub start: NodeId,
    /// The emulated CTRW duration.
    pub timer: f64,
    /// How sojourn times are drawn.
    pub sojourn: Sojourn,
}

/// How one CTRW walk in a frontier ended.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CtrwFate {
    /// The walk's outcome — in exact mode, identical to what the serial
    /// [`crate::continuous::ctrw_walk`] returns for the same spec.
    pub result: Result<CtrwOutcome, WalkError>,
    /// Forwarding hops actually sent (also inside `result` when `Ok`;
    /// surfaced here so failed walks can be charged too).
    pub hops: u64,
    /// Exponential variates consumed (zero for deterministic sojourns).
    pub draws: u64,
}

/// One Random Tour walk's launch state; see [`CtrwSpec`] for the
/// ownership and determinism rationale.
#[derive(Debug)]
pub struct TourSpec<T, R> {
    /// The walk's view of the overlay.
    pub topology: T,
    /// The walk's private RNG stream.
    pub rng: R,
    /// The tour's initiator (launch and return point).
    pub start: NodeId,
    /// Step budget; `None` runs to completion.
    pub max_steps: Option<u64>,
}

/// How one Random Tour in a frontier ended.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TourFate {
    /// The tour's outcome — in exact mode, identical to what the serial
    /// [`crate::discrete::random_tour`] returns for the same spec.
    pub result: Result<Tour, WalkError>,
    /// Hops to charge as `TourHops`: the steps actually sent. Zero for a
    /// tour stuck at launch (the serial path charges none there).
    pub hops: u64,
    /// The visit accumulator `Σ f(X_k)/d(X_k)` over the tour's visits, in
    /// serial visit order (bit-identical f64 to the serial closure sum in
    /// exact mode). Exactly `0.0` for a tour stuck at an isolated
    /// initiator: the launch visit never happens there, because its
    /// weight `f(start)/0` is undefined.
    pub weight: f64,
}

/// Advances a frontier of CTRW walks to completion in the default mode
/// ([`FrontierMode::Exact`] with [`KernelTuning::tuned`]) and returns
/// each walk's fate, indexed like `specs`. See [`ctrw_frontier_with`].
///
/// # Panics
///
/// Panics if any spec's `start` is not alive or its `timer` is not
/// positive and finite — the serial preconditions, checked up front
/// before any RNG is touched.
pub fn ctrw_frontier<T, R, Rec>(specs: &mut [CtrwSpec<T, R>], recorder: &Rec) -> Vec<CtrwFate>
where
    T: Topology,
    R: Rng,
    Rec: Recorder + ?Sized,
{
    ctrw_frontier_with(specs, FrontierMode::default(), recorder)
}

/// Advances a frontier of CTRW walks to completion under `mode` and
/// returns each walk's fate, indexed like `specs`.
///
/// Each round issues one visit-step — degree probe, sojourn draw, timer
/// check, neighbour draw — for every live walk, then compacts finished
/// walks out of the active set. In exact mode, per-walk results are
/// bit-identical to running [`crate::continuous::ctrw_walk`] on each
/// spec serially, for every [`KernelTuning`]; in
/// [`FrontierMode::FastStatEq`] they are identically *distributed*
/// instead (module docs).
///
/// Records [`Metric::WalkBatchRounds`] and per-round
/// [`HistogramMetric::BatchOccupancy`] on `recorder`; per-walk cost
/// metrics are the caller's to charge from the fates (see the module
/// docs on why).
///
/// # Panics
///
/// Panics if any spec's `start` is not alive or its `timer` is not
/// positive and finite. The whole frontier is validated *before* any
/// spec's RNG consumes a draw, so a precondition panic leaves every RNG
/// at its launch position.
pub fn ctrw_frontier_with<T, R, Rec>(
    specs: &mut [CtrwSpec<T, R>],
    mode: FrontierMode,
    recorder: &Rec,
) -> Vec<CtrwFate>
where
    T: Topology,
    R: Rng,
    Rec: Recorder + ?Sized,
{
    // Validation pre-pass: every precondition panic fires before any
    // RNG (including the fast mode's pool seed) has consumed a draw.
    for spec in specs.iter() {
        assert!(
            spec.topology.contains(spec.start),
            "CTRW start must be alive"
        );
        assert!(
            spec.timer.is_finite() && spec.timer > 0.0,
            "CTRW timer must be positive and finite"
        );
    }
    match mode {
        FrontierMode::Exact(tuning) => ctrw_rounds::<_, _, _, false>(specs, tuning, None, recorder),
        FrontierMode::FastStatEq => {
            let mut pool = specs
                .first_mut()
                .map(|spec| BlockSplitMix64::new(spec.rng.random()));
            ctrw_rounds::<_, _, _, true>(specs, KernelTuning::tuned(), pool.as_mut(), recorder)
        }
    }
}

/// One CTRW walk's hot mutable state, packed so a visit-step touches a
/// single cache line (and pays a single bounds check) for all of it.
struct CtrwLane {
    position: NodeId,
    remaining: f64,
    hops: u64,
    draws: u64,
}

/// The CTRW round loop shared by both modes, monomorphised on the draw
/// source: with `POOLED` false every draw comes from the walk's own
/// `spec.rng` (exact mode) and `pool` is never consulted; with `POOLED`
/// true every draw drains the fast mode's shared stream in scheduling
/// order. A const parameter rather than an `Option` test so the exact
/// kernel's visit-step carries no dead branch.
fn ctrw_rounds<T, R, Rec, const POOLED: bool>(
    specs: &mut [CtrwSpec<T, R>],
    tuning: KernelTuning,
    mut pool: Option<&mut BlockSplitMix64>,
    recorder: &Rec,
) -> Vec<CtrwFate>
where
    T: Topology,
    R: Rng,
    Rec: Recorder + ?Sized,
{
    let width = specs.len();
    let mut lanes: Vec<CtrwLane> = specs
        .iter()
        .map(|spec| CtrwLane {
            position: spec.start,
            remaining: spec.timer,
            hops: 0,
            draws: 0,
        })
        .collect();
    let mut fates: Vec<Option<Result<CtrwOutcome, WalkError>>> = vec![None; width];

    let mut active: Vec<u32> = (0..width as u32).collect();
    let mut scratch: Vec<u32> = Vec::new();
    let mut rounds: u64 = 0;
    while !active.is_empty() {
        recorder.observe(HistogramMetric::BatchOccupancy, active.len() as f64);
        rounds += 1;
        if tuning.bucket_by_node && active.len() >= MIN_BUCKET_OCCUPANCY {
            bucket_by_shard(&mut active, &mut scratch, |i| {
                lanes[i as usize].position.index()
            });
        }
        let mut j = 0;
        while j < active.len() {
            if tuning.prefetch {
                // Request the row a few walks ahead; advisory, so it is
                // fine that compaction may reshuffle who actually runs
                // there (see `Topology::prefetch_row`'s no-effect rule).
                if let Some(&ahead) = active.get(j + PREFETCH_LOOKAHEAD) {
                    let a = ahead as usize;
                    specs[a].topology.prefetch_row(lanes[a].position);
                }
            }
            let i = active[j] as usize;
            let spec = &mut specs[i];
            let lane = &mut lanes[i];
            let current = lane.position;
            let degree = spec.topology.degree_of(current);
            // One serial visit-step: the walk ends here (zero degree or
            // timer death), hops on, or is lost to a faulty neighbour
            // probe — the exact serial sequence and RNG consumption.
            let finished = if degree == 0 {
                Some(Ok(CtrwOutcome {
                    node: current,
                    hops: lane.hops,
                }))
            } else {
                let drain = match spec.sojourn {
                    Sojourn::Exponential => {
                        lane.draws += 1;
                        let x = if POOLED {
                            let p: &mut BlockSplitMix64 = pool.as_mut().expect("fast mode pool");
                            standard_exponential(p)
                        } else {
                            standard_exponential(&mut spec.rng)
                        };
                        x / degree as f64
                    }
                    Sojourn::Deterministic => 1.0 / degree as f64,
                };
                lane.remaining -= drain;
                if lane.remaining <= 0.0 {
                    Some(Ok(CtrwOutcome {
                        node: current,
                        hops: lane.hops,
                    }))
                } else {
                    let step = if POOLED {
                        let p: &mut BlockSplitMix64 = pool.as_mut().expect("fast mode pool");
                        spec.topology.neighbor_of(current, p)
                    } else {
                        spec.topology.neighbor_of(current, &mut spec.rng)
                    };
                    match step {
                        Some(next) => {
                            lane.position = next;
                            lane.hops += 1;
                            None
                        }
                        None => Some(Err(WalkError::Lost(current))),
                    }
                }
            };
            match finished {
                Some(result) => {
                    fates[i] = Some(result);
                    active.swap_remove(j);
                }
                None => j += 1,
            }
        }
    }
    if rounds > 0 {
        recorder.incr(Metric::WalkBatchRounds, rounds);
    }

    fates
        .into_iter()
        .zip(&lanes)
        .map(|(result, lane)| CtrwFate {
            result: result.expect("every walk reaches a fate"),
            hops: lane.hops,
            draws: lane.draws,
        })
        .collect()
}

/// Advances a frontier of Random Tours to completion in the default mode
/// ([`FrontierMode::Exact`] with [`KernelTuning::tuned`]) under the
/// shared visit weight `f`; see [`tour_frontier_with`].
///
/// # Panics
///
/// Panics if any spec's `start` is not a live member of its topology —
/// checked for the whole frontier before any RNG is touched.
pub fn tour_frontier<T, R, Rec, F>(
    specs: &mut [TourSpec<T, R>],
    f: F,
    recorder: &Rec,
) -> Vec<TourFate>
where
    T: Topology,
    R: Rng,
    Rec: Recorder + ?Sized,
    F: Fn(NodeId) -> f64,
{
    tour_frontier_with(specs, f, FrontierMode::default(), recorder)
}

/// Advances a frontier of Random Tours to completion under `mode` and
/// the shared visit weight `f`, returning each tour's fate indexed like
/// `specs`.
///
/// Replicates [`crate::discrete::random_tour`]'s sequence per walk: a
/// launch visit and launch hop, then rounds of (return check, budget
/// check, visit, neighbour draw). `f` is the Random Tour estimator's node
/// function; each fate's `weight` accumulates `f(X_k)/d(X_k)` in serial
/// visit order, so `d(start) · weight` is the §3.1 estimate — in exact
/// mode bit-identical to the serial closure's sum. A tour launched at an
/// *isolated* initiator reports `Stuck` with **zero** weight and hops:
/// its launch visit never happens, because the visit weight `f(start)/0`
/// is undefined (the serial path skips `on_visit` there identically).
///
/// Metrics: as [`ctrw_frontier_with`] — frontier-shape only.
///
/// # Panics
///
/// Panics if any spec's `start` is not a live member of its topology.
/// The whole frontier is validated *before* any spec's RNG consumes a
/// draw, so a precondition panic leaves every RNG at its launch
/// position.
pub fn tour_frontier_with<T, R, Rec, F>(
    specs: &mut [TourSpec<T, R>],
    f: F,
    mode: FrontierMode,
    recorder: &Rec,
) -> Vec<TourFate>
where
    T: Topology,
    R: Rng,
    Rec: Recorder + ?Sized,
    F: Fn(NodeId) -> f64,
{
    // Validation pre-pass: the documented "checked up front" contract.
    // Asserting inside the launch loop instead would let earlier specs'
    // RNGs consume launch draws before spec k's panic fires.
    for spec in specs.iter() {
        assert!(
            spec.topology.contains(spec.start),
            "tour initiator must be alive"
        );
    }
    match mode {
        FrontierMode::Exact(tuning) => {
            tour_rounds::<_, _, _, _, false>(specs, f, tuning, None, recorder)
        }
        FrontierMode::FastStatEq => {
            let mut pool = specs
                .first_mut()
                .map(|spec| BlockSplitMix64::new(spec.rng.random()));
            tour_rounds::<_, _, _, _, true>(
                specs,
                f,
                KernelTuning::tuned(),
                pool.as_mut(),
                recorder,
            )
        }
    }
}

/// One tour's hot mutable state; see [`CtrwLane`].
struct TourLane {
    position: NodeId,
    steps: u64,
    weight: f64,
}

/// The tour launch phase and round loop shared by both modes; `POOLED`
/// and `pool` as in [`ctrw_rounds`].
fn tour_rounds<T, R, Rec, F, const POOLED: bool>(
    specs: &mut [TourSpec<T, R>],
    f: F,
    tuning: KernelTuning,
    mut pool: Option<&mut BlockSplitMix64>,
    recorder: &Rec,
) -> Vec<TourFate>
where
    T: Topology,
    R: Rng,
    Rec: Recorder + ?Sized,
    F: Fn(NodeId) -> f64,
{
    let width = specs.len();
    let mut lanes: Vec<TourLane> = (0..width)
        .map(|_| TourLane {
            position: NodeId::new(0),
            steps: 0,
            weight: 0.0,
        })
        .collect();
    let mut fates: Vec<Option<TourFate>> = Vec::with_capacity(width);
    let mut active: Vec<u32> = Vec::with_capacity(width);

    // Launch phase: the initiator's visit and first hop, exactly as the
    // serial tour performs them before entering its loop.
    for (i, spec) in specs.iter_mut().enumerate() {
        let launch_degree = spec.topology.degree_of(spec.start);
        if launch_degree == 0 {
            // Isolated initiator: stuck *before* the launch visit. The
            // visit weight f(start)/0 is undefined — folding it in would
            // poison the fate with ±inf/NaN — so the fate carries zero
            // weight and zero hops, like the serial path, which skips
            // `on_visit` for this case. No RNG draw happens either way
            // (an empty neighbour list never consumes one).
            fates.push(Some(TourFate {
                result: Err(WalkError::Stuck(spec.start)),
                hops: 0,
                weight: 0.0,
            }));
            continue;
        }
        lanes[i].weight += f(spec.start) / launch_degree as f64;
        let step = if POOLED {
            let p: &mut BlockSplitMix64 = pool.as_mut().expect("fast mode pool");
            spec.topology.neighbor_of(spec.start, p)
        } else {
            spec.topology.neighbor_of(spec.start, &mut spec.rng)
        };
        match step {
            Some(next) => {
                lanes[i].position = next;
                lanes[i].steps = 1;
                active.push(i as u32);
                fates.push(None);
            }
            // A faulty launch probe (degree > 0, probe killed): the
            // serial path has already charged the launch visit, so the
            // fate keeps its weight; it still charges no TourHops.
            None => fates.push(Some(TourFate {
                result: Err(WalkError::Stuck(spec.start)),
                hops: 0,
                weight: lanes[i].weight,
            })),
        }
    }

    let mut scratch: Vec<u32> = Vec::new();
    let mut rounds: u64 = 0;
    while !active.is_empty() {
        recorder.observe(HistogramMetric::BatchOccupancy, active.len() as f64);
        rounds += 1;
        if tuning.bucket_by_node && active.len() >= MIN_BUCKET_OCCUPANCY {
            bucket_by_shard(&mut active, &mut scratch, |i| {
                lanes[i as usize].position.index()
            });
        }
        let mut j = 0;
        while j < active.len() {
            if tuning.prefetch {
                if let Some(&ahead) = active.get(j + PREFETCH_LOOKAHEAD) {
                    let a = ahead as usize;
                    specs[a].topology.prefetch_row(lanes[a].position);
                }
            }
            let i = active[j] as usize;
            let spec = &mut specs[i];
            let lane = &mut lanes[i];
            let current = lane.position;
            // One iteration of the serial tour loop, with the loop's
            // `current != start` test first.
            let finished = if current == spec.start {
                Some(Ok(Tour { steps: lane.steps }))
            } else if lane.steps >= spec.max_steps.unwrap_or(u64::MAX) {
                Some(Err(WalkError::Timeout(lane.steps)))
            } else {
                lane.weight += f(current) / spec.topology.degree_of(current) as f64;
                let step = if POOLED {
                    let p: &mut BlockSplitMix64 = pool.as_mut().expect("fast mode pool");
                    spec.topology.neighbor_of(current, p)
                } else {
                    spec.topology.neighbor_of(current, &mut spec.rng)
                };
                match step {
                    Some(next) => {
                        lane.position = next;
                        lane.steps += 1;
                        None
                    }
                    None => Some(Err(WalkError::Stuck(current))),
                }
            };
            match finished {
                Some(result) => {
                    fates[i] = Some(TourFate {
                        result,
                        hops: lane.steps,
                        weight: lane.weight,
                    });
                    active.swap_remove(j);
                }
                None => j += 1,
            }
        }
    }
    if rounds > 0 {
        recorder.incr(Metric::WalkBatchRounds, rounds);
    }

    fates
        .into_iter()
        .map(|fate| fate.expect("every tour reaches a fate"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::continuous::ctrw_walk;
    use crate::discrete::random_tour;
    use crate::stream::{stream_seed, SplitMix64, StreamDomain};
    use census_graph::generators;
    use census_metrics::{NoopRecorder, Registry};

    fn walk_rng(i: u64) -> SplitMix64 {
        SplitMix64::new(stream_seed(StreamDomain::FrontierWalk, 99, i))
    }

    #[test]
    fn ctrw_frontier_matches_serial_bit_for_bit() {
        let g = generators::complete(17);
        let frozen = g.freeze();
        let start = g.nodes().next().expect("non-empty");
        for tuning in KernelTuning::ALL {
            for width in [1usize, 7, 64] {
                let mut specs: Vec<_> = (0..width)
                    .map(|i| CtrwSpec {
                        topology: &frozen,
                        rng: walk_rng(i as u64),
                        start,
                        timer: 4.0,
                        sojourn: Sojourn::Exponential,
                    })
                    .collect();
                let fates =
                    ctrw_frontier_with(&mut specs, FrontierMode::Exact(tuning), &NoopRecorder);
                for (i, fate) in fates.iter().enumerate() {
                    let mut rng = walk_rng(i as u64);
                    let serial = ctrw_walk(&frozen, start, 4.0, Sojourn::Exponential, &mut rng)
                        .expect("fault-free walk completes");
                    assert_eq!(
                        fate.result,
                        Ok(serial),
                        "walk {i} diverged at W={width} under {tuning:?}"
                    );
                    assert_eq!(fate.hops, serial.hops);
                    assert_eq!(fate.draws, serial.hops + 1);
                }
            }
        }
    }

    #[test]
    fn ctrw_frontier_leaves_rngs_where_serial_would() {
        // After the frontier, each spec's RNG must have consumed exactly
        // the serial walk's draws — callers continue on it for retries.
        let g = generators::complete(9);
        let start = g.nodes().next().expect("non-empty");
        let mut specs: Vec<_> = (0..5u64)
            .map(|i| CtrwSpec {
                topology: &g,
                rng: walk_rng(i),
                start,
                timer: 2.0,
                sojourn: Sojourn::Exponential,
            })
            .collect();
        ctrw_frontier(&mut specs, &NoopRecorder);
        for (i, spec) in specs.iter().enumerate() {
            let mut serial_rng = walk_rng(i as u64);
            ctrw_walk(&g, start, 2.0, Sojourn::Exponential, &mut serial_rng).expect("completes");
            assert_eq!(spec.rng, serial_rng, "walk {i} RNG position diverged");
        }
    }

    #[test]
    fn tour_frontier_matches_serial_bit_for_bit() {
        let mut seed_rng = SplitMix64::new(8);
        let g = generators::balanced(200, 6, &mut seed_rng);
        let frozen = g.freeze();
        let start = g.nodes().next().expect("non-empty");
        let f = |n: NodeId| ((n.index() % 13) as f64).mul_add(0.25, 1.0);
        for tuning in KernelTuning::ALL {
            for width in [1usize, 7, 64] {
                let mut specs: Vec<_> = (0..width)
                    .map(|i| TourSpec {
                        topology: &frozen,
                        rng: walk_rng(1000 + i as u64),
                        start,
                        max_steps: Some(50_000),
                    })
                    .collect();
                let fates =
                    tour_frontier_with(&mut specs, f, FrontierMode::Exact(tuning), &NoopRecorder);
                for (i, fate) in fates.iter().enumerate() {
                    let mut rng = walk_rng(1000 + i as u64);
                    let mut weight = 0.0f64;
                    let serial = random_tour(&frozen, start, Some(50_000), &mut rng, |n| {
                        weight += f(n) / frozen.degree_of(n) as f64;
                    });
                    assert_eq!(
                        fate.result, serial,
                        "tour {i} diverged at W={width} under {tuning:?}"
                    );
                    assert_eq!(
                        fate.weight.to_bits(),
                        weight.to_bits(),
                        "tour {i} weight not bit-identical at W={width} under {tuning:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn tour_stuck_at_launch_charges_no_hops_and_no_weight() {
        let mut g = census_graph::Graph::new();
        let lone = g.add_node();
        let mut specs = vec![TourSpec {
            topology: &g,
            rng: walk_rng(0),
            start: lone,
            max_steps: None,
        }];
        let fates = tour_frontier(&mut specs, |_| 1.0, &NoopRecorder);
        assert_eq!(fates[0].result, Err(WalkError::Stuck(lone)));
        assert_eq!(fates[0].hops, 0);
        // Regression: the launch visit used to fold in f(start)/0 = inf.
        assert_eq!(fates[0].weight.to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn frontier_records_rounds_and_occupancy_only() {
        let g = generators::complete(11);
        let start = g.nodes().next().expect("non-empty");
        let reg = Registry::new();
        let mut specs: Vec<_> = (0..8u64)
            .map(|i| CtrwSpec {
                topology: &g,
                rng: walk_rng(i),
                start,
                timer: 3.0,
                sojourn: Sojourn::Exponential,
            })
            .collect();
        let fates = ctrw_frontier(&mut specs, &reg);
        let rounds = reg.counter(Metric::WalkBatchRounds);
        // The frontier runs as many rounds as its longest walk has visits.
        let longest = fates.iter().map(|f| f.hops + 1).max().expect("non-empty");
        assert_eq!(rounds, longest);
        assert_eq!(reg.histogram_count(HistogramMetric::BatchOccupancy), rounds);
        // First round sees the full frontier.
        assert!(reg.histogram_sum(HistogramMetric::BatchOccupancy) >= 8.0);
        // The ledger stays the caller's: no message-class metric charged.
        assert_eq!(reg.message_total(), 0);
    }

    #[test]
    fn empty_frontier_is_a_no_op() {
        let reg = Registry::new();
        let fates = ctrw_frontier::<&census_graph::Graph, SplitMix64, _>(&mut [], &reg);
        assert!(fates.is_empty());
        assert_eq!(reg.counter(Metric::WalkBatchRounds), 0);
    }

    #[test]
    fn fast_mode_is_deterministic_and_consumes_one_seed_word() {
        let g = generators::complete(13);
        let start = g.nodes().next().expect("non-empty");
        let build = || -> Vec<_> {
            (0..16u64)
                .map(|i| CtrwSpec {
                    topology: &g,
                    rng: walk_rng(i),
                    start,
                    timer: 3.0,
                    sojourn: Sojourn::Exponential,
                })
                .collect()
        };
        let mut a = build();
        let mut b = build();
        let fates_a = ctrw_frontier_with(&mut a, FrontierMode::FastStatEq, &NoopRecorder);
        let fates_b = ctrw_frontier_with(&mut b, FrontierMode::FastStatEq, &NoopRecorder);
        assert_eq!(fates_a, fates_b, "fast mode must be replayable");
        // Spec 0 donated exactly one pool-seeding word; the rest are
        // untouched (their streams are simply never consulted).
        let mut seed_twin = walk_rng(0);
        let _: u64 = rand::Rng::random(&mut seed_twin);
        assert_eq!(a[0].rng, seed_twin);
        for (i, spec) in a.iter().enumerate().skip(1) {
            assert_eq!(spec.rng, walk_rng(i as u64), "spec {i} RNG was consumed");
        }
    }
}

//! Shard-local walk segments and the stitcher that joins them.
//!
//! Das Sarma et al.'s distributed walk decomposition (PAPERS.md) runs a
//! long random walk as a chain of short *segments*, each executed
//! entirely inside one shard of the partitioned topology, joined at the
//! cut edges where the walk crosses a shard boundary. This module is the
//! walk-engine half of that decomposition over
//! [`census_graph::ShardedFrozenView`]:
//!
//! - the **segment kernels** ([`ctrw_segment`], [`tour_segment`]) advance
//!   one walk shard-locally until it terminates or hits a cut edge,
//!   returning a typed exit record ([`CtrwSegmentExit`],
//!   [`TourSegmentExit`]) that says *why* the segment ended and — for a
//!   boundary hop — the [`Connector`] naming the destination shard;
//! - the **stitchers** ([`ctrw_walk_stitched`], [`tour_stitched`])
//!   resume each walk on the destination shard with the *same per-walk
//!   RNG stream*, so the stitched trajectory is bit-identical to the
//!   unsharded serial walk by construction (the acceptance property of
//!   `tests/sharded_equivalence.rs`).
//!
//! # Determinism contract
//!
//! A segment consumes the walk RNG exactly as the serial engines do: one
//! exponential variate per CTRW visit, one uniform index per hop, drawn
//! through calls identical to [`Topology::neighbor_of`]'s default
//! implementation. Crossing a shard boundary consumes *nothing extra* —
//! the connector lookup is pure table indexing — so where the walk ends,
//! how many hops it takes, and where the RNG lands are all independent
//! of the shard count. `shards = 1` degenerates to a single segment and
//! zero crossings.
//!
//! # Cost accounting
//!
//! Like the [`frontier`](crate::frontier) kernel, the stitchers record
//! only *execution-shape* metrics — one
//! [`HistogramMetric::SegmentLength`] observation per segment and one
//! [`Metric::CutCrossings`] increment per boundary hop; the unsharded
//! path records zero of both. Walk costs (`CtrwHops`, `SojournDraws`,
//! `TourHops`, tour completion events) are *not* charged here: the
//! returned fate carries the totals and the caller charges them exactly
//! as it would for a serial walk, so sharded and unsharded runs produce
//! identical cost ledgers. (`Metric::ShardHandoffs` is likewise left to
//! the service layer, which counts cross-shard *flights* between worker
//! pools; an in-process stitcher resumes every crossing inline.)

use census_graph::{Connector, NodeId, Route, ShardedFrozenView, Topology};
use census_metrics::{HistogramMetric, Metric, Recorder};
use rand::Rng;

use crate::continuous::{standard_exponential, CtrwOutcome, Sojourn};
use crate::discrete::Tour;
use crate::WalkError;

/// Resumable position of a continuous-time walk between segments.
///
/// The stitcher threads one value of this through successive
/// [`ctrw_segment`] calls; `hops` and `draws` accumulate across segments
/// so the final totals equal the serial walk's.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CtrwSegmentState {
    /// Node the walk currently occupies.
    pub node: NodeId,
    /// Virtual time left on the probe's timer.
    pub remaining: f64,
    /// Forwarding hops taken so far, across all segments.
    pub hops: u64,
    /// Exponential variates drawn so far, across all segments.
    pub draws: u64,
}

impl CtrwSegmentState {
    /// Starts a walk of duration `timer` at `start` (no validation here;
    /// the stitchers assert liveness and timer sanity like the serial
    /// engine does).
    #[must_use]
    pub fn launch(start: NodeId, timer: f64) -> Self {
        Self {
            node: start,
            remaining: timer,
            hops: 0,
            draws: 0,
        }
    }
}

/// Why a continuous-time segment ended.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CtrwSegmentExit {
    /// The timer expired (or the walk is trapped on an isolated node):
    /// the walk is finished and the outcome is final.
    Done(CtrwOutcome),
    /// A fault wrapper denied the neighbour probe at this node. Never
    /// returned by the honest fast path ([`ctrw_segment`]); only the
    /// fault-capable [`ctrw_segment_on`] can observe it.
    Lost(NodeId),
    /// The walk hopped across a cut edge; resume it on the shard the
    /// [`Connector`] names. The crossing hop is already counted and the
    /// state's `node` already sits on the far side.
    Handoff(Connector),
}

/// Advances one continuous-time walk shard-locally over the honest
/// sharded view until it terminates or crosses a cut edge.
///
/// Consumes the RNG exactly as [`ctrw_walk`](crate::continuous::ctrw_walk)
/// does — one exponential per visit, one uniform index per hop — so a
/// chain of segments replays the serial walk bit for bit.
///
/// # Panics
///
/// Panics if the state's node is not alive in the view.
pub fn ctrw_segment<R: Rng>(
    view: &ShardedFrozenView,
    state: &mut CtrwSegmentState,
    sojourn: Sojourn,
    rng: &mut R,
) -> CtrwSegmentExit {
    let (shard, mut local) = view.locate(state.node);
    let slab = view.slab(shard);
    assert!(slab.is_alive(local), "segment resumed on dead node");
    loop {
        let degree = slab.degree(local);
        if degree == 0 {
            // Zero jump rate: the walk stays here forever.
            return CtrwSegmentExit::Done(CtrwOutcome {
                node: state.node,
                hops: state.hops,
            });
        }
        let drain = match sojourn {
            Sojourn::Exponential => {
                state.draws += 1;
                standard_exponential(rng) / degree as f64
            }
            Sojourn::Deterministic => 1.0 / degree as f64,
        };
        state.remaining -= drain;
        if state.remaining <= 0.0 {
            return CtrwSegmentExit::Done(CtrwOutcome {
                node: state.node,
                hops: state.hops,
            });
        }
        // Identical draw to `Topology::neighbor_of`'s default body: the
        // routes row is parallel to the neighbour row, so indexing it
        // picks the same neighbour the serial engine would.
        let idx = rng.random_range(0..degree);
        state.hops += 1;
        match slab.decode(slab.routes(local)[idx]) {
            Route::Local(l) => {
                local = l;
                state.node = slab.global(l);
            }
            Route::Cut(c) => {
                state.node = view.global(c.shard, c.local);
                return CtrwSegmentExit::Handoff(c);
            }
        }
    }
}

/// [`ctrw_segment`] through an arbitrary [`Topology`] — the fault-capable
/// path. `topology` performs the walk steps (and may deny probes, like
/// `census-sim`'s `FaultyTopology`); `view` only classifies each hop as
/// local or cut. The step sequence — `degree_of`, sojourn draw,
/// `neighbor_of` — is the serial engine's exactly, so per-walk fault
/// wrappers stay on the same fault stream as the unsharded walk.
///
/// # Panics
///
/// Panics if the state's node is not alive in the topology.
pub fn ctrw_segment_on<T, R>(
    view: &ShardedFrozenView,
    topology: &T,
    state: &mut CtrwSegmentState,
    sojourn: Sojourn,
    rng: &mut R,
) -> CtrwSegmentExit
where
    T: Topology + ?Sized,
    R: Rng,
{
    let shard = view.shard_of(state.node);
    assert!(
        topology.contains(state.node),
        "segment resumed on dead node"
    );
    loop {
        let degree = topology.degree_of(state.node);
        if degree == 0 {
            return CtrwSegmentExit::Done(CtrwOutcome {
                node: state.node,
                hops: state.hops,
            });
        }
        let drain = match sojourn {
            Sojourn::Exponential => {
                state.draws += 1;
                standard_exponential(rng) / degree as f64
            }
            Sojourn::Deterministic => 1.0 / degree as f64,
        };
        state.remaining -= drain;
        if state.remaining <= 0.0 {
            return CtrwSegmentExit::Done(CtrwOutcome {
                node: state.node,
                hops: state.hops,
            });
        }
        let Some(next) = topology.neighbor_of(state.node, rng) else {
            return CtrwSegmentExit::Lost(state.node);
        };
        state.node = next;
        state.hops += 1;
        let (next_shard, next_local) = view.locate(next);
        if next_shard != shard {
            return CtrwSegmentExit::Handoff(Connector {
                shard: next_shard,
                local: next_local,
            });
        }
    }
}

/// What a stitched continuous-time walk produced and what it consumed —
/// the segment analogue of [`frontier::CtrwFate`](crate::frontier::CtrwFate).
/// The caller charges `hops` to [`Metric::CtrwHops`] and `draws` to
/// [`Metric::SojournDraws`] whether the walk completed or was lost,
/// exactly as for the serial engine.
#[derive(Debug, Clone, PartialEq)]
pub struct CtrwStitchFate {
    /// The walk's outcome, identical to the serial engine's.
    pub result: Result<CtrwOutcome, WalkError>,
    /// Forwarding hops taken (also charged on a lost walk).
    pub hops: u64,
    /// Exponential variates drawn (also charged on a lost walk).
    pub draws: u64,
    /// Segments executed: cut crossings + 1.
    pub segments: u64,
}

/// Runs a complete continuous-time walk over the sharded view as a chain
/// of shard-local segments, bit-identical to
/// [`ctrw_walk`](crate::continuous::ctrw_walk) on the source snapshot.
///
/// Records one [`HistogramMetric::SegmentLength`] observation per
/// segment (its hop count, the crossing hop included) and one
/// [`Metric::CutCrossings`] per boundary hop; walk costs are returned in
/// the fate for the caller to charge (see the module docs).
///
/// # Panics
///
/// Panics if `start` is not alive or `timer` is not positive and finite.
pub fn ctrw_walk_stitched<R, Rec>(
    view: &ShardedFrozenView,
    start: NodeId,
    timer: f64,
    sojourn: Sojourn,
    rng: &mut R,
    recorder: &Rec,
) -> CtrwStitchFate
where
    R: Rng,
    Rec: Recorder + ?Sized,
{
    assert!(view.is_alive(start), "CTRW start must be alive");
    assert!(
        timer.is_finite() && timer > 0.0,
        "CTRW timer must be positive and finite"
    );
    let mut state = CtrwSegmentState::launch(start, timer);
    stitch_ctrw(&mut state, recorder, |state| {
        ctrw_segment(view, state, sojourn, rng)
    })
}

/// [`ctrw_walk_stitched`] through an arbitrary [`Topology`] (fault
/// wrappers), stepping via [`ctrw_segment_on`].
///
/// # Panics
///
/// Panics if `start` is not alive or `timer` is not positive and finite.
pub fn ctrw_walk_stitched_on<T, R, Rec>(
    view: &ShardedFrozenView,
    topology: &T,
    start: NodeId,
    timer: f64,
    sojourn: Sojourn,
    rng: &mut R,
    recorder: &Rec,
) -> CtrwStitchFate
where
    T: Topology + ?Sized,
    R: Rng,
    Rec: Recorder + ?Sized,
{
    assert!(topology.contains(start), "CTRW start must be alive");
    assert!(
        timer.is_finite() && timer > 0.0,
        "CTRW timer must be positive and finite"
    );
    let mut state = CtrwSegmentState::launch(start, timer);
    stitch_ctrw(&mut state, recorder, |state| {
        ctrw_segment_on(view, topology, state, sojourn, rng)
    })
}

/// The stitching loop shared by both CTRW drivers: run segments until a
/// terminal exit, observing segment lengths and cut crossings.
fn stitch_ctrw<Rec, Step>(
    state: &mut CtrwSegmentState,
    recorder: &Rec,
    mut step: Step,
) -> CtrwStitchFate
where
    Rec: Recorder + ?Sized,
    Step: FnMut(&mut CtrwSegmentState) -> CtrwSegmentExit,
{
    let mut segments = 0u64;
    loop {
        let before = state.hops;
        let exit = step(state);
        segments += 1;
        recorder.observe(HistogramMetric::SegmentLength, (state.hops - before) as f64);
        match exit {
            CtrwSegmentExit::Handoff(_) => recorder.incr(Metric::CutCrossings, 1),
            CtrwSegmentExit::Done(out) => {
                return CtrwStitchFate {
                    result: Ok(out),
                    hops: state.hops,
                    draws: state.draws,
                    segments,
                }
            }
            CtrwSegmentExit::Lost(node) => {
                return CtrwStitchFate {
                    result: Err(WalkError::Lost(node)),
                    hops: state.hops,
                    draws: state.draws,
                    segments,
                }
            }
        }
    }
}

/// Resumable position of a random tour between segments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TourSegmentState {
    /// The initiator the tour must return to.
    pub start: NodeId,
    /// Node the walk currently occupies.
    pub node: NodeId,
    /// Steps taken so far, across all segments.
    pub steps: u64,
    /// Accumulated visit weight `Σ f(v)/d_v`, across all segments.
    pub weight: f64,
    /// Whether the launch visit (the initiator's own contribution) has
    /// happened yet.
    pub launched: bool,
}

impl TourSegmentState {
    /// Starts a tour at `start`.
    #[must_use]
    pub fn launch(start: NodeId) -> Self {
        Self {
            start,
            node: start,
            steps: 0,
            weight: 0.0,
            launched: false,
        }
    }
}

/// Why a tour segment ended.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TourSegmentExit {
    /// The walk returned to its initiator: the tour is complete.
    Done(Tour),
    /// The step budget ran out mid-tour.
    Timeout(u64),
    /// The walk was stranded: an isolated node, or a denied probe under
    /// a fault wrapper.
    Stuck(NodeId),
    /// The walk hopped across a cut edge; resume on the named shard.
    Handoff(Connector),
}

/// Advances one random tour shard-locally over the honest sharded view
/// until it completes, times out, strands, or crosses a cut edge.
///
/// Visit weights accumulate as `f(v) / d_v` in serial visit order —
/// including the initiator once at launch and *not* on the final return —
/// exactly like [`random_tour`](crate::discrete::random_tour) driven by
/// the estimators' visit closure (an isolated node contributes an
/// infinite weight there too; the walk then strands).
///
/// # Panics
///
/// Panics if the state's node is not alive in the view.
pub fn tour_segment<F, R>(
    view: &ShardedFrozenView,
    state: &mut TourSegmentState,
    max_steps: Option<u64>,
    f: &F,
    rng: &mut R,
) -> TourSegmentExit
where
    F: Fn(NodeId) -> f64,
    R: Rng,
{
    let (shard, mut local) = view.locate(state.node);
    let slab = view.slab(shard);
    assert!(slab.is_alive(local), "segment resumed on dead node");
    let cap = max_steps.unwrap_or(u64::MAX);
    if !state.launched {
        let degree = slab.degree(local);
        state.weight += f(state.node) / degree as f64;
        if degree == 0 {
            return TourSegmentExit::Stuck(state.node);
        }
        let idx = rng.random_range(0..degree);
        state.steps = 1;
        state.launched = true;
        match slab.decode(slab.routes(local)[idx]) {
            Route::Local(l) => {
                local = l;
                state.node = slab.global(l);
            }
            Route::Cut(c) => {
                state.node = view.global(c.shard, c.local);
                return TourSegmentExit::Handoff(c);
            }
        }
    }
    loop {
        if state.node == state.start {
            return TourSegmentExit::Done(Tour { steps: state.steps });
        }
        if state.steps >= cap {
            return TourSegmentExit::Timeout(state.steps);
        }
        let degree = slab.degree(local);
        state.weight += f(state.node) / degree as f64;
        if degree == 0 {
            return TourSegmentExit::Stuck(state.node);
        }
        let idx = rng.random_range(0..degree);
        state.steps += 1;
        match slab.decode(slab.routes(local)[idx]) {
            Route::Local(l) => {
                local = l;
                state.node = slab.global(l);
            }
            Route::Cut(c) => {
                state.node = view.global(c.shard, c.local);
                return TourSegmentExit::Handoff(c);
            }
        }
    }
}

/// [`tour_segment`] through an arbitrary [`Topology`] — the fault-capable
/// path; see [`ctrw_segment_on`] for the division of labour between
/// `topology` and `view`.
///
/// # Panics
///
/// Panics if the state's node is not alive in the topology.
pub fn tour_segment_on<T, F, R>(
    view: &ShardedFrozenView,
    topology: &T,
    state: &mut TourSegmentState,
    max_steps: Option<u64>,
    f: &F,
    rng: &mut R,
) -> TourSegmentExit
where
    T: Topology + ?Sized,
    F: Fn(NodeId) -> f64,
    R: Rng,
{
    let shard = view.shard_of(state.node);
    assert!(
        topology.contains(state.node),
        "segment resumed on dead node"
    );
    let cap = max_steps.unwrap_or(u64::MAX);
    if !state.launched {
        let degree = topology.degree_of(state.node);
        state.weight += f(state.node) / degree as f64;
        let Some(next) = topology.neighbor_of(state.node, rng) else {
            return TourSegmentExit::Stuck(state.node);
        };
        state.steps = 1;
        state.launched = true;
        state.node = next;
        let (next_shard, next_local) = view.locate(next);
        if next_shard != shard {
            return TourSegmentExit::Handoff(Connector {
                shard: next_shard,
                local: next_local,
            });
        }
    }
    loop {
        if state.node == state.start {
            return TourSegmentExit::Done(Tour { steps: state.steps });
        }
        if state.steps >= cap {
            return TourSegmentExit::Timeout(state.steps);
        }
        let degree = topology.degree_of(state.node);
        state.weight += f(state.node) / degree as f64;
        let Some(next) = topology.neighbor_of(state.node, rng) else {
            return TourSegmentExit::Stuck(state.node);
        };
        state.steps += 1;
        state.node = next;
        let (next_shard, next_local) = view.locate(next);
        if next_shard != shard {
            return TourSegmentExit::Handoff(Connector {
                shard: next_shard,
                local: next_local,
            });
        }
    }
}

/// What a stitched tour produced — the segment analogue of
/// [`frontier::TourFate`](crate::frontier::TourFate). The caller charges
/// `hops` to [`Metric::TourHops`] and records the terminal event
/// (completed / lost / timeout) exactly as for the serial engine.
#[derive(Debug, Clone, PartialEq)]
pub struct TourStitchFate {
    /// The tour's outcome, identical to the serial engine's.
    pub result: Result<Tour, WalkError>,
    /// Steps actually taken (also charged on a failed tour).
    pub hops: u64,
    /// Accumulated visit weight `Σ f(v)/d_v`, bit-identical to the
    /// serial visit closure's sum.
    pub weight: f64,
    /// Segments executed: cut crossings + 1.
    pub segments: u64,
}

/// Runs a complete random tour over the sharded view as a chain of
/// shard-local segments, bit-identical to
/// [`random_tour`](crate::discrete::random_tour) on the source snapshot
/// (trajectory, step count, weight bits, and final RNG position).
///
/// Records segment metrics as [`ctrw_walk_stitched`] does; tour costs
/// ride in the fate.
///
/// # Panics
///
/// Panics if `start` is not alive.
pub fn tour_stitched<F, R, Rec>(
    view: &ShardedFrozenView,
    start: NodeId,
    max_steps: Option<u64>,
    f: F,
    rng: &mut R,
    recorder: &Rec,
) -> TourStitchFate
where
    F: Fn(NodeId) -> f64,
    R: Rng,
    Rec: Recorder + ?Sized,
{
    assert!(view.is_alive(start), "tour initiator must be alive");
    let mut state = TourSegmentState::launch(start);
    stitch_tour(&mut state, recorder, |state| {
        tour_segment(view, state, max_steps, &f, rng)
    })
}

/// [`tour_stitched`] through an arbitrary [`Topology`] (fault wrappers),
/// stepping via [`tour_segment_on`].
///
/// # Panics
///
/// Panics if `start` is not alive.
pub fn tour_stitched_on<T, F, R, Rec>(
    view: &ShardedFrozenView,
    topology: &T,
    start: NodeId,
    max_steps: Option<u64>,
    f: F,
    rng: &mut R,
    recorder: &Rec,
) -> TourStitchFate
where
    T: Topology + ?Sized,
    F: Fn(NodeId) -> f64,
    R: Rng,
    Rec: Recorder + ?Sized,
{
    assert!(topology.contains(start), "tour initiator must be alive");
    let mut state = TourSegmentState::launch(start);
    stitch_tour(&mut state, recorder, |state| {
        tour_segment_on(view, topology, state, max_steps, &f, rng)
    })
}

/// The stitching loop shared by both tour drivers.
fn stitch_tour<Rec, Step>(
    state: &mut TourSegmentState,
    recorder: &Rec,
    mut step: Step,
) -> TourStitchFate
where
    Rec: Recorder + ?Sized,
    Step: FnMut(&mut TourSegmentState) -> TourSegmentExit,
{
    let mut segments = 0u64;
    loop {
        let before = state.steps;
        let exit = step(state);
        segments += 1;
        recorder.observe(
            HistogramMetric::SegmentLength,
            (state.steps - before) as f64,
        );
        let result = match exit {
            TourSegmentExit::Handoff(_) => {
                recorder.incr(Metric::CutCrossings, 1);
                continue;
            }
            TourSegmentExit::Done(tour) => Ok(tour),
            TourSegmentExit::Timeout(steps) => Err(WalkError::Timeout(steps)),
            TourSegmentExit::Stuck(node) => Err(WalkError::Stuck(node)),
        };
        return TourStitchFate {
            result,
            hops: state.steps,
            weight: state.weight,
            segments,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::continuous::ctrw_walk;
    use crate::discrete::random_tour;
    use crate::stream::{stream_seed, SplitMix64, StreamDomain};
    use census_graph::{generators, FrozenView};
    use census_metrics::{NoopRecorder, Registry};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn fixture(n: usize, seed: u64) -> FrozenView {
        let mut rng = SmallRng::seed_from_u64(seed);
        generators::balanced(n, 6, &mut rng).freeze()
    }

    fn walk_rng(base: u64, i: u64) -> SplitMix64 {
        SplitMix64::new(stream_seed(StreamDomain::FrontierWalk, base, i))
    }

    fn visit_weight(n: NodeId) -> f64 {
        ((n.index() % 13) as f64).mul_add(0.25, 1.0)
    }

    #[test]
    fn stitched_ctrw_matches_serial_across_shard_counts() {
        let frozen = fixture(200, 11);
        let start = frozen.nodes().next().expect("non-empty");
        for shards in [1usize, 2, 8] {
            let view = ShardedFrozenView::partition(&frozen, shards);
            for i in 0..20u64 {
                let mut serial_rng = walk_rng(7, i);
                let serial = ctrw_walk(&frozen, start, 3.0, Sojourn::Exponential, &mut serial_rng);
                let mut rng = walk_rng(7, i);
                let fate = ctrw_walk_stitched(
                    &view,
                    start,
                    3.0,
                    Sojourn::Exponential,
                    &mut rng,
                    &NoopRecorder,
                );
                assert_eq!(fate.result, serial, "walk {i} diverged at S={shards}");
                assert_eq!(&rng, &serial_rng, "walk {i} RNG diverged at S={shards}");
                let out = serial.expect("fault-free CTRW completes");
                assert_eq!(fate.hops, out.hops);
                assert_eq!(fate.draws, out.hops + 1, "one draw per visit");
                if shards == 1 {
                    assert_eq!(fate.segments, 1, "one shard means one segment");
                }
            }
        }
    }

    #[test]
    fn stitched_tour_matches_serial_across_shard_counts() {
        let frozen = fixture(150, 12);
        let start = frozen.nodes().next().expect("non-empty");
        for shards in [1usize, 2, 8] {
            let view = ShardedFrozenView::partition(&frozen, shards);
            for i in 0..10u64 {
                let mut serial_rng = walk_rng(13, i);
                let mut weight = 0.0f64;
                let serial = random_tour(&frozen, start, Some(50_000), &mut serial_rng, |v| {
                    weight += visit_weight(v) / frozen.degree_of(v) as f64;
                });
                let mut rng = walk_rng(13, i);
                let fate = tour_stitched(
                    &view,
                    start,
                    Some(50_000),
                    visit_weight,
                    &mut rng,
                    &NoopRecorder,
                );
                assert_eq!(fate.result, serial, "tour {i} diverged at S={shards}");
                assert_eq!(
                    fate.weight.to_bits(),
                    weight.to_bits(),
                    "tour {i} weight not bit-identical at S={shards}"
                );
                assert_eq!(&rng, &serial_rng, "tour {i} RNG diverged at S={shards}");
            }
        }
    }

    #[test]
    fn segment_metrics_reconcile_with_the_fate() {
        let frozen = fixture(200, 14);
        let start = frozen.nodes().next().expect("non-empty");
        let view = ShardedFrozenView::partition(&frozen, 8);
        let reg = Registry::new();
        let mut rng = walk_rng(15, 0);
        let fate = ctrw_walk_stitched(&view, start, 5.0, Sojourn::Exponential, &mut rng, &reg);
        let out = fate.result.expect("fault-free CTRW completes");
        assert_eq!(
            reg.counter(Metric::CutCrossings),
            fate.segments - 1,
            "every non-final segment ends at a cut"
        );
        assert_eq!(
            reg.histogram_count(HistogramMetric::SegmentLength),
            fate.segments
        );
        let sum = reg.histogram_sum(HistogramMetric::SegmentLength);
        assert!(
            (sum - out.hops as f64).abs() < 1e-9,
            "segment lengths must sum to total hops: {sum} vs {}",
            out.hops
        );
        assert_eq!(reg.counter(Metric::ShardHandoffs), 0, "service-level only");
    }

    #[test]
    fn single_shard_stitching_records_no_crossings() {
        let frozen = fixture(100, 16);
        let start = frozen.nodes().next().expect("non-empty");
        let view = ShardedFrozenView::partition(&frozen, 1);
        let reg = Registry::new();
        let mut rng = walk_rng(17, 0);
        let fate = tour_stitched(&view, start, None, visit_weight, &mut rng, &reg);
        assert!(fate.result.is_ok());
        assert_eq!(fate.segments, 1);
        assert_eq!(reg.counter(Metric::CutCrossings), 0);
        assert_eq!(reg.histogram_count(HistogramMetric::SegmentLength), 1);
    }

    #[test]
    fn generic_path_matches_fast_path_on_the_honest_view() {
        let frozen = fixture(180, 18);
        let start = frozen.nodes().next().expect("non-empty");
        let view = ShardedFrozenView::partition(&frozen, 4);
        for i in 0..10u64 {
            let mut fast_rng = walk_rng(19, i);
            let fast = ctrw_walk_stitched(
                &view,
                start,
                4.0,
                Sojourn::Exponential,
                &mut fast_rng,
                &NoopRecorder,
            );
            let mut gen_rng = walk_rng(19, i);
            let generic = ctrw_walk_stitched_on(
                &view,
                &frozen,
                start,
                4.0,
                Sojourn::Exponential,
                &mut gen_rng,
                &NoopRecorder,
            );
            assert_eq!(fast, generic, "walk {i}: fast and generic paths diverged");
            assert_eq!(&fast_rng, &gen_rng);
        }
    }

    #[test]
    fn tour_timeout_and_weight_survive_stitching() {
        let frozen = fixture(150, 20);
        let start = frozen.nodes().next().expect("non-empty");
        let view = ShardedFrozenView::partition(&frozen, 8);
        // A cap of 2 cannot complete a tour on a simple graph (no
        // self-loops): both paths must time out identically.
        let mut serial_rng = walk_rng(21, 0);
        let mut weight = 0.0f64;
        let serial = random_tour(&frozen, start, Some(2), &mut serial_rng, |v| {
            weight += visit_weight(v) / frozen.degree_of(v) as f64;
        });
        let mut rng = walk_rng(21, 0);
        let fate = tour_stitched(&view, start, Some(2), visit_weight, &mut rng, &NoopRecorder);
        assert_eq!(fate.result, serial);
        assert!(matches!(fate.result, Err(WalkError::Timeout(2))));
        assert_eq!(fate.weight.to_bits(), weight.to_bits());
        assert_eq!(fate.hops, 2);
    }

    #[test]
    #[should_panic(expected = "must be alive")]
    fn stitched_walk_from_dead_node_panics() {
        let mut g = census_graph::Graph::new();
        let a = g.add_node();
        g.add_node();
        g.remove_node(a).expect("alive");
        let view = ShardedFrozenView::partition(&g.freeze(), 2);
        let mut rng = walk_rng(22, 0);
        let _ = ctrw_walk_stitched(&view, a, 1.0, Sojourn::Exponential, &mut rng, &NoopRecorder);
    }
}

//! Domain-separated SplitMix64 seed streams and a tiny per-walk generator.
//!
//! Several layers of the stack spawn families of independent RNG streams
//! from one base seed: parallel replicas (`census_sim::parallel`), service
//! query workers (`census-service`), the churn driver, and the batched
//! walk frontier in [`crate::frontier`]. They all used to share one
//! derivation shape — `splitmix64(base + index)` — which collides whenever
//! two domains pass equal `(base, index)` pairs: replica 3 of a run seeded
//! `s` and service query 3 of a service seeded `s` would walk the *same*
//! stream, silently correlating layers that must be independent.
//!
//! [`stream_seed`] fixes that by folding a per-domain tag constant into
//! the derivation: the old inner term `splitmix64(base + index)` is XORed
//! with the domain's tag and passed through the SplitMix64 finaliser once
//! more, so streams from distinct domains differ even at equal
//! `(base, index)`, while streams within a domain keep the decorrelation
//! the finaliser provides for consecutive inputs.
//!
//! [`SplitMix64`] is the matching *generator*: the standard
//! add-golden-gamma-then-finalise sequence (Steele, Lea & Flood), used by
//! the frontier for its per-walk streams because its two-word state makes
//! a width-W frontier's RNG block fit in W×8 bytes — `SmallRng` would be
//! 16–32× larger and blow the cache the frontier exists to exploit.

use rand::RngCore;

/// The golden-gamma increment of the SplitMix64 sequence.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 output function (Steele, Lea & Flood; the finaliser Vigna
/// recommends for seeding other generators). Maps consecutive inputs to
/// well-decorrelated outputs.
#[must_use]
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(GOLDEN_GAMMA);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A family of seed streams that must stay decorrelated from every other
/// family, even when both derive from the same base seed and index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamDomain {
    /// Parallel experiment replicas (`census_sim::parallel::replicate`).
    Replica,
    /// Per-query worker streams in `census-service`.
    ServiceQuery,
    /// Per-walk streams inside a batched frontier ([`crate::frontier`]).
    FrontierWalk,
    /// The service's background churn driver.
    Churn,
    /// Per-campaign query arrival processes (`census-service`'s arrival
    /// driver pacing trace-style workloads).
    Arrival,
    /// Byzantine adversary decisions (`census_sim::attacks`): which nodes
    /// are subverted and what each subverted node does to a traversing
    /// walk. A dedicated domain keeps adversarial randomness fully
    /// decorrelated from honest-walk streams, so an empty attack plan
    /// leaves every walk bit-identical.
    Attack,
    /// Self-constructing overlay protocols (`census-overlay`): join
    /// walks, rewiring decisions, and gradient swaps. A dedicated domain
    /// keeps protocol randomness fully decorrelated from estimator walk
    /// streams, so overlay ticks never perturb the walks measuring them
    /// (the same isolation contract as [`StreamDomain::Attack`]).
    Overlay,
}

impl StreamDomain {
    /// The domain's tag constant, folded into every seed it derives.
    ///
    /// Arbitrary distinct odd constants; their only job is to differ so
    /// the finaliser maps equal `(base, index)` pairs from different
    /// domains to different seeds.
    #[must_use]
    pub const fn tag(self) -> u64 {
        match self {
            StreamDomain::Replica => 0x5245_504C_4943_4131,
            StreamDomain::ServiceQuery => 0x5345_5256_4943_4551,
            StreamDomain::FrontierWalk => 0x4652_4F4E_5449_4552,
            StreamDomain::Churn => 0x4348_5552_4E21_4E21,
            StreamDomain::Arrival => 0x4152_5249_5641_4C21,
            StreamDomain::Attack => 0x4154_5441_434B_2121,
            StreamDomain::Overlay => 0x4F56_4552_4C41_5921,
        }
    }

    /// Every domain, for exhaustive pairwise tests.
    pub const ALL: [StreamDomain; 7] = [
        StreamDomain::Replica,
        StreamDomain::ServiceQuery,
        StreamDomain::FrontierWalk,
        StreamDomain::Churn,
        StreamDomain::Arrival,
        StreamDomain::Attack,
        StreamDomain::Overlay,
    ];
}

/// Derives the seed of stream `index` in `domain`'s family over
/// `base_seed`.
///
/// The inner `splitmix64(base + index)` term is the pre-tag derivation
/// every caller already used; the tag XOR plus a second finaliser pass
/// separates the domains without disturbing within-domain decorrelation.
#[must_use]
pub fn stream_seed(domain: StreamDomain, base_seed: u64, index: u64) -> u64 {
    splitmix64(splitmix64(base_seed.wrapping_add(index)) ^ domain.tag())
}

/// The SplitMix64 generator: `state += GOLDEN_GAMMA; output = mix(state)`.
///
/// Two words of state per stream (position is folded into `state`), which
/// is what lets a frontier of W walks keep all W generators resident in
/// cache. Passes BigCrush per Vigna; more than adequate for walk
/// next-hop selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator whose first output is `splitmix64(seed)`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        // High bits: the finaliser's low bits are the weaker ones.
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let out = splitmix64(self.state);
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        out
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Outputs [`BlockSplitMix64`] computes per refill.
pub const BLOCK_LANES: usize = 8;

/// A block-refilled SplitMix64: the **same output stream** as
/// [`SplitMix64`] from the same seed, computed [`BLOCK_LANES`] outputs at
/// a time.
///
/// Because output `k` of the sequence is `splitmix64(seed + k·γ)` — a
/// pure function of the index — a refill can finalise eight consecutive
/// indices with no cross-lane dependency, which the compiler
/// auto-vectorises (the adds, shifts, XORs and multiplies of the
/// finaliser all exist as packed instructions). The batched walk
/// frontier's fast mode drains one shared `BlockSplitMix64` for every
/// per-hop draw in the frontier, amortising RNG arithmetic across walks;
/// the stream-identity with [`SplitMix64`] (pinned by a test) means the
/// block layout itself can never change what is drawn, only when it is
/// computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSplitMix64 {
    state: u64,
    buf: [u64; BLOCK_LANES],
    next: usize,
}

impl BlockSplitMix64 {
    /// A generator producing the identical stream to
    /// `SplitMix64::new(seed)`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed,
            buf: [0; BLOCK_LANES],
            next: BLOCK_LANES,
        }
    }

    /// Finalises the next [`BLOCK_LANES`] consecutive indices. Lane `j`
    /// mixes `state + j·γ` independently of every other lane, so the
    /// loop body has no loop-carried dependency.
    #[inline]
    fn refill(&mut self) {
        for (j, slot) in self.buf.iter_mut().enumerate() {
            *slot = splitmix64(
                self.state
                    .wrapping_add((j as u64).wrapping_mul(GOLDEN_GAMMA)),
            );
        }
        self.state = self
            .state
            .wrapping_add((BLOCK_LANES as u64).wrapping_mul(GOLDEN_GAMMA));
        self.next = 0;
    }
}

impl RngCore for BlockSplitMix64 {
    fn next_u32(&mut self) -> u32 {
        // High bits, exactly as the scalar generator.
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        if self.next == BLOCK_LANES {
            self.refill();
        }
        let out = self.buf[self.next];
        self.next += 1;
        out
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn finaliser_matches_reference_vector() {
        // First three outputs of the SplitMix64 sequence from seed 0
        // (published reference values).
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(g.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(g.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn untagged_derivations_collide_across_domains() {
        // The bug this module fixes: the pre-tag shape hands different
        // domains the same stream for equal (base, index).
        let replica_style = splitmix64(42u64.wrapping_add(3));
        let service_style = splitmix64(42u64.wrapping_add(3));
        assert_eq!(replica_style, service_style);
    }

    #[test]
    fn tagged_derivations_never_collide_across_domains() {
        // Regression for the cross-domain collision: every domain pair,
        // over a spread of (base, index) pairs including the adversarial
        // equal-pair case, yields distinct seeds.
        for &(base, index) in &[(0u64, 0u64), (42, 3), (42, 42), (u64::MAX, 1), (7, 1 << 40)] {
            for (i, &a) in StreamDomain::ALL.iter().enumerate() {
                for &b in &StreamDomain::ALL[i + 1..] {
                    assert_ne!(
                        stream_seed(a, base, index),
                        stream_seed(b, base, index),
                        "domains {a:?} and {b:?} collide at base={base} index={index}"
                    );
                }
            }
        }
    }

    #[test]
    fn tags_are_distinct() {
        let mut tags: Vec<u64> = StreamDomain::ALL.iter().map(|d| d.tag()).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), StreamDomain::ALL.len());
    }

    #[test]
    fn within_domain_streams_stay_decorrelated() {
        let seeds: Vec<u64> = (0..64)
            .map(|i| stream_seed(StreamDomain::FrontierWalk, 9, i))
            .collect();
        let distinct: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(distinct.len(), seeds.len());
    }

    #[test]
    fn generator_is_pure_and_uniform_enough() {
        let mut a = SplitMix64::new(77);
        let mut b = SplitMix64::new(77);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Sanity: f64 draws through the rand façade land in [0, 1).
        let mut g = SplitMix64::new(5);
        for _ in 0..1000 {
            let x: f64 = g.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn block_generator_matches_scalar_stream_exactly() {
        // The identity the frontier's fast mode rests on: block refills
        // change *when* outputs are computed, never *what* they are —
        // across refill boundaries and for every access width.
        for seed in [0u64, 1, 77, u64::MAX] {
            let mut scalar = SplitMix64::new(seed);
            let mut block = BlockSplitMix64::new(seed);
            for i in 0..1000 {
                assert_eq!(
                    scalar.next_u64(),
                    block.next_u64(),
                    "u64 stream diverged at output {i} (seed {seed})"
                );
            }
            let mut scalar = SplitMix64::new(seed);
            let mut block = BlockSplitMix64::new(seed);
            for i in 0..100 {
                assert_eq!(
                    scalar.next_u32(),
                    block.next_u32(),
                    "u32 stream diverged at output {i} (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn block_generator_fill_bytes_matches_scalar() {
        let mut scalar = SplitMix64::new(11);
        let mut block = BlockSplitMix64::new(11);
        let mut a = [0u8; 37]; // straddles several words and a refill
        let mut b = [0u8; 37];
        scalar.fill_bytes(&mut a);
        block.fill_bytes(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn fill_bytes_matches_word_stream() {
        let mut words = SplitMix64::new(3);
        let expect = words.next_u64().to_le_bytes();
        let mut bytes = SplitMix64::new(3);
        let mut buf = [0u8; 5];
        bytes.fill_bytes(&mut buf);
        assert_eq!(buf, expect[..5]);
    }
}

//! Wire messages of the self-constructing overlay protocols.
//!
//! `census-overlay`'s protocols (`ScaleFreeConstruction`,
//! `GradientOverlay`) are per-node state machines exchanging these
//! payloads in synchronous rounds: a message sent at tick `t` is
//! delivered at tick `t + 1`. They are deliberately decoupled from
//! [`crate::Message`] — estimator probes belong to an *operation* run by
//! the discrete-event simulator, while overlay messages belong to no
//! operation: they are the topology rewriting itself underneath whatever
//! estimators happen to be running.

use census_graph::NodeId;

/// Payloads exchanged by self-constructing overlay protocols.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OverlayMessage {
    /// A joining node's attachment walk (Scholtes-style construction).
    /// The walk hops until its TTL expires; the node it lands on becomes
    /// one of the joiner's initial neighbors. Because a random walk's
    /// stationary distribution is proportional to degree, TTL-expired
    /// endpoints implement preferential attachment without any global
    /// degree knowledge.
    JoinWalk {
        /// The node seeking attachment points.
        joiner: NodeId,
        /// Remaining hop budget; the walk attaches where it expires.
        ttl: u32,
    },
    /// An adaptation walk rewiring an existing edge. The edge
    /// `(origin, drop)` is replaced only when the walk lands on a valid
    /// new endpoint, so rewiring is atomic — the overlay never passes
    /// through a state with the old edge removed and no replacement.
    RewireWalk {
        /// The node rewiring one of its edges.
        origin: NodeId,
        /// The neighbor whose edge is to be replaced.
        drop: NodeId,
        /// Remaining hop budget; the walk rewires where it expires.
        ttl: u32,
    },
    /// A gradient overlay's candidate-sampling walk: a uniform random
    /// walk that aggregates on board — each node it visits offers itself,
    /// and the walk keeps whichever candidate the origin would prefer.
    /// When the TTL expires the best candidate seen is reported back to
    /// the origin with [`OverlayMessage::UtilityReply`]. On-walk
    /// aggregation is what lets a uniform (well-mixing) walk serve a
    /// biased query: the walk visits `ttl` nodes, not one.
    UtilityProbe {
        /// The node looking for a better neighbor.
        origin: NodeId,
        /// The origin's scalar utility, carried so visited nodes can
        /// rank themselves without extra round trips.
        origin_utility: f64,
        /// Best candidate seen so far (initially the origin itself).
        best: NodeId,
        /// The best candidate's scalar utility.
        best_utility: f64,
        /// Remaining hop budget.
        ttl: u32,
    },
    /// The sampled candidate reporting itself to a gradient origin (one
    /// direct message, like [`crate::Message::SampleReply`]).
    UtilityReply {
        /// The node where the probe expired.
        candidate: NodeId,
        /// The candidate's scalar utility.
        utility: f64,
    },
}

/// An overlay message in flight towards a peer, delivered next tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverlayEnvelope {
    /// Destination peer.
    pub to: NodeId,
    /// Payload.
    pub message: OverlayMessage,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelopes_are_plain_values() {
        let e = OverlayEnvelope {
            to: NodeId::new(3),
            message: OverlayMessage::JoinWalk {
                joiner: NodeId::new(9),
                ttl: 16,
            },
        };
        let copy = e;
        assert_eq!(e, copy);
        assert!(matches!(
            copy.message,
            OverlayMessage::JoinWalk { ttl: 16, .. }
        ));
    }
}

//! The paper's wire messages.

use census_graph::NodeId;

use crate::sim::OperationId;

/// Payloads exchanged by the protocols, as described in §3.1 and §4.1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Message {
    /// A Random Tour probe: tagged with the initiator's identity and the
    /// running counter `Φ` (§3.1 step 1–2). The receiving peer either
    /// adds `f/d` and forwards it, or — if it *is* the initiator —
    /// completes the estimate `d_i · Φ`.
    TourProbe {
        /// Operation this probe belongs to.
        op: OperationId,
        /// The peer that launched the tour.
        initiator: NodeId,
        /// Accumulated counter `Φ = Σ f(j)/d_j` so far.
        counter: f64,
        /// Remaining hop budget. Overlay probes carry a TTL so that a
        /// probe orphaned by churn (initiator departed, or the walk's
        /// component split away from the initiator) is eventually
        /// garbage-collected instead of circulating forever.
        ttl: u64,
    },
    /// A sampling message: carries the remaining timer (§4.1 step 1–2).
    /// Each receiver decrements the timer by `Exp(1)/d`; on expiry it
    /// answers the initiator with [`Message::SampleReply`].
    SampleProbe {
        /// Operation this probe belongs to.
        op: OperationId,
        /// The peer that requested the sample.
        initiator: NodeId,
        /// Remaining timer value `T`.
        timer: f64,
    },
    /// The sampled peer reporting itself to the initiator (one direct
    /// message, routed over the underlay rather than the overlay).
    SampleReply {
        /// Operation this reply belongs to.
        op: OperationId,
        /// The peer where the sampling timer expired.
        sample: NodeId,
    },
}

impl Message {
    /// The operation the message belongs to.
    #[must_use]
    pub fn operation(&self) -> OperationId {
        match *self {
            Message::TourProbe { op, .. }
            | Message::SampleProbe { op, .. }
            | Message::SampleReply { op, .. } => op,
        }
    }
}

/// A message in flight towards a peer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Envelope {
    /// Destination peer.
    pub to: NodeId,
    /// Payload.
    pub message: Message,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operation_is_extracted_from_every_variant() {
        let op = OperationId::for_tests(7);
        let msgs = [
            Message::TourProbe {
                op,
                initiator: NodeId::new(1),
                counter: 0.5,
                ttl: 100,
            },
            Message::SampleProbe {
                op,
                initiator: NodeId::new(1),
                timer: 3.0,
            },
            Message::SampleReply {
                op,
                sample: NodeId::new(2),
            },
        ];
        for m in msgs {
            assert_eq!(m.operation(), op);
        }
    }
}

//! Message-level protocol simulation of the paper's estimators.
//!
//! The algorithm crates (`census-core`, `census-sampling`) execute the
//! paper's protocols as *function calls* over a neighbour oracle — the
//! right level for statistical experiments at 100k nodes. This crate
//! executes them as what they actually are in §3.1 and §4.1: **messages**
//! hopping between peers, with network latency, concurrent in-flight
//! operations from many initiators, peers departing while holding a probe
//! (the §5.3.1 failure mode), and initiator-side timeouts.
//!
//! The simulation is a classic discrete-event loop:
//!
//! - [`SimTime`]: virtual time; [`Latency`]: per-hop delay model;
//! - [`Message`]: the paper's two probe formats (a Random Tour probe
//!   carrying `(initiator, Φ)` and a sampling message carrying
//!   `(initiator, timer)`) plus the sample reply;
//! - [`ProtocolSim`]: owns the overlay, the event queue and the pending
//!   operations; callers launch operations and then
//!   [`run_until_idle`](ProtocolSim::run_until_idle).
//!
//! Determinism: given one seed, event ordering is total (ties broken by
//! sequence number), so every run is exactly reproducible.
//!
//! # Examples
//!
//! ```
//! use census_graph::generators;
//! use census_proto::{Latency, Outcome, ProtocolSim};
//! use rand::SeedableRng;
//! use rand::rngs::SmallRng;
//!
//! let mut rng = SmallRng::seed_from_u64(5);
//! let g = generators::balanced(500, 10, &mut rng);
//! let me = g.nodes().next().expect("non-empty");
//! let mut sim = ProtocolSim::new(g, Latency::Constant(1.0), 7);
//! let op = sim.launch_random_tour(me, None);
//! let done = sim.run_until_idle();
//! assert_eq!(done.len(), 1);
//! assert_eq!(done[0].op, op);
//! assert!(matches!(done[0].outcome, Outcome::Estimate(v) if v > 0.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod message;
mod overlay;
mod sim;
mod time;

pub use event::{Event, EventQueue};
pub use message::{Envelope, Message};
pub use overlay::{OverlayEnvelope, OverlayMessage};
pub use sim::{Completion, OperationId, Outcome, ProtocolSim};
pub use time::{Latency, SimTime};

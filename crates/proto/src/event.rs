//! The discrete-event queue.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

use census_graph::NodeId;

use crate::message::Envelope;
use crate::sim::OperationId;
use crate::time::SimTime;

/// Something scheduled to happen at a point in virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A message arrives at its destination.
    Deliver(Envelope),
    /// A peer departs the overlay (taking any probe it holds with it —
    /// in-flight messages towards it are dropped at delivery time).
    Departure(NodeId),
    /// An initiator's patience for an operation runs out (§5.3.1).
    Timeout(OperationId),
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Scheduled {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl Eq for Scheduled {}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Time first; insertion order breaks ties so runs are
        // deterministic for a given seed.
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered event queue with deterministic FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use census_graph::NodeId;
/// use census_proto::{Event, EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::new(2.0), Event::Departure(NodeId::new(1)));
/// q.schedule(SimTime::new(1.0), Event::Departure(NodeId::new(2)));
/// let (t, _) = q.pop().expect("non-empty");
/// assert_eq!(t, SimTime::new(1.0));
/// ```
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Scheduled>>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules an event.
    pub fn schedule(&mut self, at: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq, event }));
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|Reverse(s)| (s.at, s.event))
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn departure(i: usize) -> Event {
        Event::Departure(NodeId::new(i))
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(3.0), departure(3));
        q.schedule(SimTime::new(1.0), departure(1));
        q.schedule(SimTime::new(2.0), departure(2));
        let order: Vec<f64> = std::iter::from_fn(|| q.pop())
            .map(|(t, _)| t.as_secs())
            .collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(SimTime::new(1.0), departure(i));
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Departure(n) => n.index(),
                _ => unreachable!("only departures scheduled"),
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn len_and_empty_track_operations() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, departure(0));
        assert_eq!(q.len(), 1);
        let _ = q.pop();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    proptest! {
        #[test]
        fn always_pops_non_decreasing_times(
            times in proptest::collection::vec(0.0f64..1e6, 1..100),
        ) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::new(t), departure(i % 5));
            }
            let mut prev = SimTime::ZERO;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= prev);
                prev = t;
            }
        }
    }
}

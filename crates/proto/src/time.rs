//! Virtual time and latency models.

use census_walk::continuous::standard_exponential;
use rand::Rng;
use std::cmp::Ordering;
use std::fmt;
use std::ops::Add;

/// A point in virtual time (seconds of simulated wall clock).
///
/// Wraps `f64` with a total order so it can key the event queue; the
/// simulator never produces NaN times (latencies are validated).
///
/// # Examples
///
/// ```
/// use census_proto::SimTime;
///
/// let t = SimTime::ZERO + 1.5;
/// assert!(t > SimTime::ZERO);
/// assert_eq!(t.as_secs(), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimTime(f64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time point.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    #[must_use]
    pub fn new(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "sim time must be finite and non-negative"
        );
        Self(secs)
    }

    /// Seconds since the epoch.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0
    }
}

impl Eq for SimTime {}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("sim times are never NaN")
    }
}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;

    fn add(self, delta: f64) -> SimTime {
        SimTime::new(self.0 + delta)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.0)
    }
}

/// Per-hop network delay model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Latency {
    /// Every hop takes exactly this long.
    Constant(f64),
    /// Hop delays are exponential with this mean — the standard
    /// memoryless WAN approximation.
    ExponentialMean(f64),
    /// Hop delays are uniform in `[min, max]`.
    Uniform(f64, f64),
}

impl Latency {
    /// Draws one hop delay.
    ///
    /// # Panics
    ///
    /// Panics if the model parameters are invalid (non-positive mean,
    /// inverted or negative uniform range).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        match *self {
            Latency::Constant(d) => {
                assert!(
                    d.is_finite() && d >= 0.0,
                    "constant latency must be non-negative"
                );
                d
            }
            Latency::ExponentialMean(mean) => {
                assert!(
                    mean.is_finite() && mean > 0.0,
                    "latency mean must be positive"
                );
                mean * standard_exponential(rng)
            }
            Latency::Uniform(lo, hi) => {
                assert!(
                    lo.is_finite() && hi.is_finite() && 0.0 <= lo && lo <= hi,
                    "uniform latency range must satisfy 0 <= lo <= hi"
                );
                if lo == hi {
                    lo
                } else {
                    rng.random_range(lo..hi)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn ordering_is_total() {
        let a = SimTime::new(1.0);
        let b = SimTime::new(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(SimTime::ZERO.as_secs(), 0.0);
    }

    #[test]
    fn addition_advances() {
        let t = SimTime::new(1.0) + 0.5;
        assert_eq!(t.as_secs(), 1.5);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_time_panics() {
        let _ = SimTime::new(-1.0);
    }

    #[test]
    fn constant_latency_is_constant() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(Latency::Constant(2.5).sample(&mut rng), 2.5);
    }

    #[test]
    fn exponential_latency_has_requested_mean() {
        let mut rng = SmallRng::seed_from_u64(2);
        let lat = Latency::ExponentialMean(3.0);
        let n = 50_000;
        let total: f64 = (0..n).map(|_| lat.sample(&mut rng)).sum();
        let mean = total / f64::from(n);
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn uniform_latency_stays_in_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        let lat = Latency::Uniform(1.0, 2.0);
        for _ in 0..1_000 {
            let d = lat.sample(&mut rng);
            assert!((1.0..2.0).contains(&d));
        }
        assert_eq!(Latency::Uniform(1.5, 1.5).sample(&mut rng), 1.5);
    }

    #[test]
    #[should_panic(expected = "0 <= lo <= hi")]
    fn inverted_uniform_panics() {
        let mut rng = SmallRng::seed_from_u64(4);
        let _ = Latency::Uniform(2.0, 1.0).sample(&mut rng);
    }
}

//! The protocol simulator.

use std::collections::{HashMap, HashSet};

use census_core::ml_estimate;
use census_graph::{Graph, NodeId};
use census_walk::continuous::standard_exponential;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::event::{Event, EventQueue};
use crate::message::{Envelope, Message};
use crate::time::{Latency, SimTime};

/// Identifier of a launched protocol operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OperationId(u64);

impl OperationId {
    /// Constructs an id out of thin air — unit-test helper.
    #[doc(hidden)]
    #[must_use]
    pub fn for_tests(raw: u64) -> Self {
        Self(raw)
    }
}

/// How an operation ended.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Outcome {
    /// A size estimate was produced (Random Tour or Sample & Collide).
    Estimate(f64),
    /// A single peer sample was returned.
    Sample(NodeId),
    /// The initiator's timeout fired before the operation completed
    /// (§5.3.1 — the probe is presumed lost, or just slow).
    TimedOut,
    /// The operation can never complete: its probe died with a departed
    /// peer (or the initiator itself departed) and no timeout was set.
    Lost,
}

/// A finished operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// Which operation finished.
    pub op: OperationId,
    /// How it ended.
    pub outcome: Outcome,
    /// Overlay messages attributable to the operation (probe hops and
    /// sample replies).
    pub messages: u64,
    /// Virtual time of completion.
    pub finished_at: SimTime,
}

#[derive(Debug)]
enum OpState {
    Tour,
    Sample,
    SampleCollide {
        l: u32,
        timer: f64,
        seen: HashSet<NodeId>,
        collisions: u32,
        samples: u64,
    },
}

#[derive(Debug)]
struct Pending {
    state: OpState,
    initiator: NodeId,
    messages: u64,
}

/// Discrete-event execution of the paper's protocols over an overlay.
///
/// See the [crate docs](crate) for the model. All launched operations run
/// concurrently: probes from different operations interleave freely in
/// virtual time, exactly as they would on a real overlay.
#[derive(Debug)]
pub struct ProtocolSim {
    graph: Graph,
    latency: Latency,
    rng: SmallRng,
    queue: EventQueue,
    clock: SimTime,
    pending: HashMap<OperationId, Pending>,
    completed: Vec<Completion>,
    next_op: u64,
    probe_ttl: Option<u64>,
}

impl ProtocolSim {
    /// Creates a simulator over `graph` with the given per-hop latency
    /// model and RNG seed.
    #[must_use]
    pub fn new(graph: Graph, latency: Latency, seed: u64) -> Self {
        Self {
            graph,
            latency,
            rng: SmallRng::seed_from_u64(seed),
            queue: EventQueue::new(),
            clock: SimTime::ZERO,
            pending: HashMap::new(),
            completed: Vec::new(),
            next_op: 0,
            probe_ttl: None,
        }
    }

    /// Overrides the hop budget (TTL) carried by tour probes. The
    /// default is `max(1_000, 200 × slots)`, far above any plausible
    /// return time, so only orphaned probes are ever collected.
    ///
    /// # Panics
    ///
    /// Panics if `ttl` is zero.
    #[must_use]
    pub fn with_probe_ttl(mut self, ttl: u64) -> Self {
        assert!(ttl > 0, "a zero TTL would kill probes at birth");
        self.probe_ttl = Some(ttl);
        self
    }

    fn default_ttl(&self) -> u64 {
        self.probe_ttl
            .unwrap_or_else(|| (200 * self.graph.slot_count() as u64).max(1_000))
    }

    /// The overlay as the simulator currently sees it.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Number of operations still in flight.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    fn fresh_op(&mut self) -> OperationId {
        let id = OperationId(self.next_op);
        self.next_op += 1;
        id
    }

    fn send(&mut self, op: OperationId, to: NodeId, message: Message) {
        let delay = self.latency.sample(&mut self.rng);
        if let Some(p) = self.pending.get_mut(&op) {
            p.messages += 1;
        }
        self.queue
            .schedule(self.clock + delay, Event::Deliver(Envelope { to, message }));
    }

    fn arm_timeout(&mut self, op: OperationId, timeout: Option<f64>) {
        if let Some(after) = timeout {
            assert!(
                after.is_finite() && after > 0.0,
                "timeout must be positive and finite"
            );
            self.queue.schedule(self.clock + after, Event::Timeout(op));
        }
    }

    /// Launches a Random Tour (§3.1, with `f ≡ 1`: size estimation) from
    /// `initiator`, optionally guarded by an initiator-side timeout in
    /// virtual seconds.
    ///
    /// # Panics
    ///
    /// Panics if the initiator is not alive or is isolated.
    pub fn launch_random_tour(&mut self, initiator: NodeId, timeout: Option<f64>) -> OperationId {
        assert!(self.graph.is_alive(initiator), "initiator must be alive");
        let d_i = self.graph.degree(initiator);
        assert!(d_i > 0, "an isolated initiator cannot launch a tour");
        let op = self.fresh_op();
        self.pending.insert(
            op,
            Pending {
                state: OpState::Tour,
                initiator,
                messages: 0,
            },
        );
        let first = self
            .graph
            .random_neighbor(initiator, &mut self.rng)
            .expect("degree was checked positive");
        let counter = 1.0 / d_i as f64;
        let ttl = self.default_ttl();
        self.send(
            op,
            first,
            Message::TourProbe {
                op,
                initiator,
                counter,
                ttl,
            },
        );
        self.arm_timeout(op, timeout);
        op
    }

    /// Launches one CTRW sampling operation (§4.1) with the given timer.
    ///
    /// # Panics
    ///
    /// Panics if the initiator is not alive or the timer is not positive.
    pub fn launch_sample(
        &mut self,
        initiator: NodeId,
        timer: f64,
        timeout: Option<f64>,
    ) -> OperationId {
        assert!(self.graph.is_alive(initiator), "initiator must be alive");
        assert!(timer.is_finite() && timer > 0.0, "timer must be positive");
        let op = self.fresh_op();
        self.pending.insert(
            op,
            Pending {
                state: OpState::Sample,
                initiator,
                messages: 0,
            },
        );
        // The initiator is the first node the sampling message "visits";
        // deliver to self with zero latency cost (local handling).
        self.deliver_sample_probe(op, initiator, initiator, timer);
        self.arm_timeout(op, timeout);
        op
    }

    /// Launches a full Sample & Collide estimation (§4.2): samples are
    /// requested sequentially until the `l`-th collision, then the ML
    /// estimate is reported.
    ///
    /// # Panics
    ///
    /// Panics if the initiator is not alive, `l` is zero, or the timer is
    /// not positive.
    pub fn launch_sample_collide(
        &mut self,
        initiator: NodeId,
        l: u32,
        timer: f64,
        timeout: Option<f64>,
    ) -> OperationId {
        assert!(self.graph.is_alive(initiator), "initiator must be alive");
        assert!(l > 0, "need at least one collision");
        assert!(timer.is_finite() && timer > 0.0, "timer must be positive");
        let op = self.fresh_op();
        self.pending.insert(
            op,
            Pending {
                state: OpState::SampleCollide {
                    l,
                    timer,
                    seen: HashSet::new(),
                    collisions: 0,
                    samples: 0,
                },
                initiator,
                messages: 0,
            },
        );
        self.deliver_sample_probe(op, initiator, initiator, timer);
        self.arm_timeout(op, timeout);
        op
    }

    /// Schedules `node` to depart the overlay at virtual time `at`. Any
    /// probe it holds then is lost; messages in flight towards it are
    /// dropped on delivery.
    pub fn schedule_departure(&mut self, node: NodeId, at: SimTime) {
        self.queue.schedule(at, Event::Departure(node));
    }

    /// Runs the event loop until no events remain. Operations that can no
    /// longer complete (their probe died with a departed peer, and no
    /// timeout was armed) are reported as [`Outcome::Lost`]. Returns all
    /// completions since the previous call, in completion order.
    pub fn run_until_idle(&mut self) -> Vec<Completion> {
        while let Some((at, event)) = self.queue.pop() {
            debug_assert!(at >= self.clock, "event queue is time-ordered");
            self.clock = at;
            match event {
                Event::Deliver(envelope) => self.handle_delivery(envelope),
                Event::Departure(node) => {
                    if self.graph.is_alive(node) {
                        self.graph
                            .remove_node(node)
                            .expect("liveness was just checked");
                    }
                }
                Event::Timeout(op) => {
                    if let Some(p) = self.pending.remove(&op) {
                        self.completed.push(Completion {
                            op,
                            outcome: Outcome::TimedOut,
                            messages: p.messages,
                            finished_at: self.clock,
                        });
                    }
                }
            }
        }
        // Anything still pending is unreachable: no event can revive it.
        let mut stranded: Vec<_> = self.pending.drain().collect();
        stranded.sort_by_key(|(op, _)| *op);
        for (op, p) in stranded {
            self.completed.push(Completion {
                op,
                outcome: Outcome::Lost,
                messages: p.messages,
                finished_at: self.clock,
            });
        }
        std::mem::take(&mut self.completed)
    }

    fn complete(&mut self, op: OperationId, outcome: Outcome) {
        let p = self
            .pending
            .remove(&op)
            .expect("completion is only called for pending operations");
        self.completed.push(Completion {
            op,
            outcome,
            messages: p.messages,
            finished_at: self.clock,
        });
    }

    fn handle_delivery(&mut self, envelope: Envelope) {
        let Envelope { to, message } = envelope;
        if !self.graph.is_alive(to) {
            // The destination departed while the message was in flight:
            // the probe is lost (§5.3.1).
            return;
        }
        if !self.pending.contains_key(&message.operation()) {
            // Stale message of an operation that already timed out.
            return;
        }
        match message {
            Message::TourProbe {
                op,
                initiator,
                counter,
                ttl,
            } => {
                if to == initiator {
                    let estimate = self.graph.degree(initiator) as f64 * counter;
                    self.complete(op, Outcome::Estimate(estimate));
                    return;
                }
                // Garbage-collect orphaned probes: the initiator has
                // departed, or the hop budget ran out (the walk can no
                // longer plausibly return, e.g. after a component split).
                if !self.graph.is_alive(initiator) || ttl <= 1 {
                    if let Some(p) = self.pending.remove(&op) {
                        self.completed.push(Completion {
                            op,
                            outcome: Outcome::Lost,
                            messages: p.messages,
                            finished_at: self.clock,
                        });
                    }
                    return;
                }
                let d = self.graph.degree(to);
                if d == 0 {
                    // The walk is stranded on a node churn isolated; the
                    // probe can never move again.
                    if let Some(p) = self.pending.remove(&op) {
                        self.completed.push(Completion {
                            op,
                            outcome: Outcome::Lost,
                            messages: p.messages,
                            finished_at: self.clock,
                        });
                    }
                    return;
                }
                let counter = counter + 1.0 / d as f64;
                let next = self
                    .graph
                    .random_neighbor(to, &mut self.rng)
                    .expect("degree was checked positive");
                self.send(
                    op,
                    next,
                    Message::TourProbe {
                        op,
                        initiator,
                        counter,
                        ttl: ttl - 1,
                    },
                );
            }
            Message::SampleProbe {
                op,
                initiator,
                timer,
            } => {
                self.deliver_sample_probe(op, initiator, to, timer);
            }
            Message::SampleReply { op, sample } => {
                let p = self
                    .pending
                    .get_mut(&op)
                    .expect("pending membership was checked above");
                match &mut p.state {
                    OpState::Sample => self.complete(op, Outcome::Sample(sample)),
                    OpState::SampleCollide {
                        l,
                        timer,
                        seen,
                        collisions,
                        samples,
                    } => {
                        *samples += 1;
                        if !seen.insert(sample) {
                            *collisions += 1;
                        }
                        if *collisions >= *l {
                            let estimate = ml_estimate(*samples, *l);
                            self.complete(op, Outcome::Estimate(estimate));
                        } else {
                            let (initiator, timer) = (p.initiator, *timer);
                            self.deliver_sample_probe(op, initiator, initiator, timer);
                        }
                    }
                    OpState::Tour => {
                        unreachable!("tour operations never receive sample replies")
                    }
                }
            }
        }
    }

    /// Local handling of a sampling message at `at_node` (§4.1 step 2):
    /// drain the timer by `Exp(1)/d`; reply to the initiator on expiry,
    /// forward otherwise.
    fn deliver_sample_probe(
        &mut self,
        op: OperationId,
        initiator: NodeId,
        at_node: NodeId,
        timer: f64,
    ) {
        let d = self.graph.degree(at_node);
        let drain = if d == 0 {
            f64::INFINITY // zero jump rate: the timer dies here
        } else {
            standard_exponential(&mut self.rng) / d as f64
        };
        let remaining = timer - drain;
        if remaining <= 0.0 {
            self.send(
                op,
                initiator,
                Message::SampleReply {
                    op,
                    sample: at_node,
                },
            );
        } else {
            let next = self
                .graph
                .random_neighbor(at_node, &mut self.rng)
                .expect("finite drain implies positive degree");
            self.send(
                op,
                next,
                Message::SampleProbe {
                    op,
                    initiator,
                    timer: remaining,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use census_graph::generators;
    use census_stats::OnlineMoments;

    fn k2() -> (Graph, NodeId, NodeId) {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b).expect("fresh edge");
        (g, a, b)
    }

    #[test]
    fn tour_on_k2_is_exact() {
        let (g, a, _) = k2();
        let mut sim = ProtocolSim::new(g, Latency::Constant(1.0), 1);
        let op = sim.launch_random_tour(a, None);
        let done = sim.run_until_idle();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].op, op);
        assert_eq!(done[0].outcome, Outcome::Estimate(2.0));
        assert_eq!(done[0].messages, 2);
        assert_eq!(done[0].finished_at, SimTime::new(2.0));
    }

    #[test]
    fn tours_are_unbiased_through_the_message_layer() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(2);
        let g = generators::balanced(300, 10, &mut rng);
        let n = census_graph::algo::component_size(&g, g.nodes().next().expect("non-empty"));
        let me = g.nodes().next().expect("non-empty");
        let mut sim = ProtocolSim::new(g, Latency::ExponentialMean(0.05), 3);
        let mut m = OnlineMoments::new();
        for _ in 0..40 {
            for _ in 0..50 {
                sim.launch_random_tour(me, None);
            }
            for c in sim.run_until_idle() {
                match c.outcome {
                    Outcome::Estimate(v) => m.push(v),
                    other => panic!("unexpected outcome {other:?}"),
                }
            }
        }
        let err = (m.mean() - n as f64).abs() / m.standard_error();
        assert!(err < 4.0, "proto RT mean {} vs {n}", m.mean());
    }

    #[test]
    fn concurrent_operations_interleave_and_all_complete() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(4);
        let g = generators::balanced(200, 10, &mut rng);
        let initiators: Vec<NodeId> = g.nodes().take(30).collect();
        let mut sim = ProtocolSim::new(g, Latency::Uniform(0.01, 0.2), 5);
        let ops: Vec<OperationId> = initiators
            .iter()
            .map(|&i| sim.launch_random_tour(i, None))
            .collect();
        assert_eq!(sim.in_flight(), 30);
        let done = sim.run_until_idle();
        assert_eq!(done.len(), 30);
        let mut finished: Vec<OperationId> = done.iter().map(|c| c.op).collect();
        finished.sort();
        assert_eq!(finished, ops);
        assert_eq!(sim.in_flight(), 0);
    }

    #[test]
    fn sampling_is_uniform_on_the_star() {
        let g = generators::star(6);
        let me = NodeId::new(3);
        let mut sim = ProtocolSim::new(g, Latency::Constant(0.01), 6);
        let mut hub = 0u32;
        let runs = 20_000;
        for _ in 0..runs {
            sim.launch_sample(me, 25.0, None);
        }
        for c in sim.run_until_idle() {
            match c.outcome {
                Outcome::Sample(node) => {
                    if node == NodeId::new(0) {
                        hub += 1;
                    }
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        let frac = f64::from(hub) / f64::from(runs);
        assert!(
            (frac - 1.0 / 6.0).abs() < 0.02,
            "hub mass {frac}, expected ~1/6"
        );
    }

    #[test]
    fn sample_collide_estimates_through_the_message_layer() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        let n = 1_000;
        let g = generators::balanced(n, 10, &mut rng);
        let me = g.nodes().next().expect("non-empty");
        let mut sim = ProtocolSim::new(g, Latency::Constant(0.01), 8);
        let mut m = OnlineMoments::new();
        for _ in 0..8 {
            sim.launch_sample_collide(me, 20, 10.0, None);
        }
        for c in sim.run_until_idle() {
            match c.outcome {
                Outcome::Estimate(v) => m.push(v),
                other => panic!("unexpected outcome {other:?}"),
            }
            // Cost sanity: ~ C_l hops * T * d-bar, plus C_l replies.
            assert!(c.messages > 1_000, "cost {} too small", c.messages);
        }
        assert!(
            (m.mean() / n as f64 - 1.0).abs() < 0.35,
            "proto S&C mean {}",
            m.mean()
        );
    }

    #[test]
    fn departure_loses_the_probe() {
        let (g, a, b) = k2();
        let mut sim = ProtocolSim::new(g, Latency::Constant(1.0), 9);
        let op = sim.launch_random_tour(a, None);
        // b departs while the probe is in flight towards it.
        sim.schedule_departure(b, SimTime::new(0.5));
        let done = sim.run_until_idle();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].op, op);
        assert_eq!(done[0].outcome, Outcome::Lost);
    }

    #[test]
    fn timeout_converts_lost_probe_into_timed_out() {
        let (g, a, b) = k2();
        let mut sim = ProtocolSim::new(g, Latency::Constant(1.0), 10);
        let op = sim.launch_random_tour(a, Some(5.0));
        sim.schedule_departure(b, SimTime::new(0.5));
        let done = sim.run_until_idle();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].op, op);
        assert_eq!(done[0].outcome, Outcome::TimedOut);
        assert_eq!(done[0].finished_at, SimTime::new(5.0));
    }

    #[test]
    fn timeout_does_not_fire_after_success() {
        let (g, a, _) = k2();
        let mut sim = ProtocolSim::new(g, Latency::Constant(1.0), 11);
        let op = sim.launch_random_tour(a, Some(100.0));
        let done = sim.run_until_idle();
        // Exactly one completion: the estimate; the later timeout event
        // found the operation gone.
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].op, op);
        assert!(matches!(done[0].outcome, Outcome::Estimate(_)));
    }

    #[test]
    fn departed_initiator_strands_the_operation() {
        let mut g = Graph::new();
        let ids = g.add_nodes(3);
        g.add_edge(ids[0], ids[1]).expect("fresh edge");
        g.add_edge(ids[1], ids[2]).expect("fresh edge");
        g.add_edge(ids[2], ids[0]).expect("fresh edge");
        let mut sim = ProtocolSim::new(g, Latency::Constant(1.0), 12);
        let op = sim.launch_random_tour(ids[0], None);
        sim.schedule_departure(ids[0], SimTime::new(0.1));
        let done = sim.run_until_idle();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].op, op);
        assert_eq!(done[0].outcome, Outcome::Lost);
    }

    #[test]
    fn ttl_garbage_collects_probes_that_cannot_return() {
        // With a tiny TTL, a tour either returns within the budget or is
        // garbage-collected as Lost — and the event loop always drains
        // (the run completing at all is the anti-livelock property).
        let mut saw_collected = false;
        for seed in 0..40 {
            let g = generators::ring(16);
            let mut sim = ProtocolSim::new(g, Latency::Constant(1.0), seed).with_probe_ttl(4);
            let op = sim.launch_random_tour(NodeId::new(0), None);
            let done = sim.run_until_idle();
            assert_eq!(done.len(), 1);
            assert_eq!(done[0].op, op);
            match done[0].outcome {
                Outcome::Estimate(v) => assert!(v > 0.0),
                Outcome::Lost => {
                    assert!(done[0].messages <= 4, "TTL bounds the hop count");
                    saw_collected = true;
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        // On a 16-ring, returning within 4 hops has probability well
        // below 1, so some run must have exercised the TTL path.
        assert!(saw_collected, "no run exercised the TTL garbage collection");
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let run = || {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(13);
            let g = generators::balanced(150, 10, &mut rng);
            let me = g.nodes().next().expect("non-empty");
            let mut sim = ProtocolSim::new(g, Latency::ExponentialMean(0.1), 14);
            for _ in 0..10 {
                sim.launch_random_tour(me, None);
                sim.launch_sample(me, 5.0, None);
            }
            sim.run_until_idle()
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "isolated initiator")]
    fn isolated_initiator_panics() {
        let mut g = Graph::new();
        let a = g.add_node();
        let mut sim = ProtocolSim::new(g, Latency::Constant(1.0), 15);
        let _ = sim.launch_random_tour(a, None);
    }
}

//! The sharded census service: per-shard worker pools stitching walks
//! across partition boundaries.
//!
//! [`ShardedCensusService`] is the multi-shard deployment shape of
//! [`CensusService`](crate::CensusService). The overlay snapshot is
//! partitioned into a [`ShardedFrozenView`] — per-shard CSR slabs plus
//! cut-edge connector tables — and each shard gets its own worker pool.
//! A query is admitted once, routed to its initiator's home shard, and
//! executed there; a `Query::Sample` walk advances *shard-locally*
//! through [`census_walk::segment`] and, when it hops a cut edge, parks
//! as a handoff flight on the destination shard's queue, carrying its
//! RNG mid-stream. Because the segment kernels consume the RNG exactly
//! as the serial engines do, every answer is byte-identical to the
//! unsharded service's for the same `(seed, id, epoch)` — shard count
//! changes *where* a walk runs, never *what* it computes.
//!
//! Two pieces differ from the unsharded service:
//!
//! - **Epoch vectors** ([`ShardedEpochChain`]): a refreeze republishes
//!   every slab, but only the shards whose slab *content* changed adopt
//!   the new epoch stamp; untouched shards keep their old stamp. The
//!   `EpochLag` gauge reports the *maximum* lag across the pinned
//!   vector, per the merge rule documented in `census_metrics`.
//! - **Bounded handoff queues with ingress backpressure**: cross-shard
//!   flights always enqueue and always drain (so a parked walk can never
//!   deadlock), while *fresh* admissions pause whenever the total
//!   handoff backlog reaches [`ServiceConfig::handoff_capacity`] —
//!   backpressure sheds new work, never in-flight work.
//!
//! `Query::Count` and `Query::Aggregate` run whole on the initiator's
//! home shard through the same `run_query` path as the unsharded
//! service (tour stitching is proven bit-identical at the walk layer;
//! the service keeps supervised estimates single-shard for simplicity).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread;
use std::time::Instant;

use census_core::EstimateError;
use census_graph::{NodeId, ShardedFrozenView};
use census_metrics::{GaugeMetric, HistogramMetric, Metric, NoopRecorder, Recorder, RunCtx, NOOP};
use census_sampling::{CtrwSampler, Sample};
use census_sim::attacks::AdversarialTopology;
use census_sim::faults::FaultyTopology;
use census_sim::{DynamicNetwork, MembershipDelta};
use census_walk::segment::{ctrw_segment, ctrw_segment_on, CtrwSegmentExit, CtrwSegmentState};
use census_walk::stream::{stream_seed, StreamDomain};
use census_walk::WalkError;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::query::{Query, QueryAnswer, QueryOutcome, SubmitError};
use crate::queue::Job;
use crate::service::{churn_loop, run_query, ServiceConfig};

/// One pinned generation of the sharded snapshot chain: the partitioned
/// view plus the per-shard epoch vector it was published under.
///
/// Cloning is two `Arc` bumps; workers pin a snapshot per query and walk
/// it lock-free, exactly like the unsharded `Arc<FrozenView>` pin.
#[derive(Debug, Clone)]
pub struct ShardedSnapshot {
    view: Arc<ShardedFrozenView>,
    epochs: Arc<Vec<u64>>,
}

impl ShardedSnapshot {
    /// The partitioned snapshot itself.
    #[must_use]
    pub fn view(&self) -> &ShardedFrozenView {
        &self.view
    }

    /// Per-shard epoch stamps: `epochs()[s]` is the epoch of the last
    /// publish that changed shard `s`'s slab.
    #[must_use]
    pub fn epochs(&self) -> &[u64] {
        &self.epochs
    }

    /// Epoch stamp of the freeze this snapshot was partitioned from —
    /// the value answers computed on it are stamped with.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.view.epoch()
    }
}

/// An epoch chain over partitioned snapshots, tracking staleness per
/// shard.
///
/// [`ShardedEpochChain::publish`] diffs the incoming partition against
/// the current one slab by slab: shards whose slab content changed adopt
/// the new view's epoch stamp, untouched shards keep their old stamp. A
/// pinned snapshot's lag is then the *maximum* per-shard lag — the merge
/// rule the `EpochLag` gauge documents — so a reader that is current on
/// every shard it can reach reports zero even while other shards churn.
#[derive(Debug)]
pub struct ShardedEpochChain {
    latest: RwLock<ShardedSnapshot>,
}

impl ShardedEpochChain {
    /// Starts the chain with `view` as every shard's first epoch.
    #[must_use]
    pub fn new(view: ShardedFrozenView) -> Self {
        let epochs = vec![view.epoch(); view.shards()];
        Self {
            latest: RwLock::new(ShardedSnapshot {
                view: Arc::new(view),
                epochs: Arc::new(epochs),
            }),
        }
    }

    /// Pins the newest snapshot (two `Arc` clones, never blocks a
    /// publisher for long).
    #[must_use]
    pub fn pin(&self) -> ShardedSnapshot {
        self.latest.read().expect("sharded chain poisoned").clone()
    }

    /// Publishes a freshly partitioned snapshot, advancing the epoch
    /// stamp of exactly the shards whose slab content changed.
    pub fn publish(&self, view: ShardedFrozenView) {
        let mut latest = self.latest.write().expect("sharded chain poisoned");
        let epoch = view.epoch();
        let epochs: Vec<u64> = (0..view.shards())
            .map(|s| {
                let shard = u32::try_from(s).expect("shard index fits in u32");
                if s < latest.view.shards() && latest.view.slab(shard) == view.slab(shard) {
                    latest.epochs[s]
                } else {
                    epoch
                }
            })
            .collect();
        *latest = ShardedSnapshot {
            view: Arc::new(view),
            epochs: Arc::new(epochs),
        };
    }

    /// The newest per-shard epoch vector.
    #[must_use]
    pub fn latest_epochs(&self) -> Vec<u64> {
        self.latest
            .read()
            .expect("sharded chain poisoned")
            .epochs
            .to_vec()
    }

    /// How far behind the newest publish `pinned` is: the maximum
    /// per-shard epoch lag (the `EpochLag` merge rule).
    #[must_use]
    pub fn lag_of(&self, pinned: &ShardedSnapshot) -> u64 {
        let latest = self.latest.read().expect("sharded chain poisoned");
        latest
            .epochs
            .iter()
            .zip(pinned.epochs.iter())
            .map(|(l, p)| l.saturating_sub(*p))
            .max()
            .unwrap_or(0)
    }
}

/// The per-query context every flight carries between shards: identity,
/// private RNG stream (mid-walk position included), pinned snapshot, and
/// the latency clock started at dequeue.
struct FlightHead {
    id: u64,
    query: Query,
    initiator: NodeId,
    rng: SmallRng,
    snapshot: ShardedSnapshot,
    started: Instant,
}

/// The wrapped topology a `Query::Sample` flight walks. Built once per
/// job and riding the flight, so the wrapper is the *same instance*
/// across all of the job's segments and retries — its counter-addressed
/// fault and attack streams replay the serial worker's exactly. Boxing
/// keeps parked flights small.
enum FlightTopology {
    /// Honest overlay: segments run on the raw sharded view's fast path.
    Bare,
    /// Fault wrapper only (the historical `with_faults` path).
    Faulty(Box<FaultyTopology<Arc<ShardedFrozenView>>>),
    /// Attack wrapper only.
    Adversarial(Box<AdversarialTopology<Arc<ShardedFrozenView>>>),
    /// Attacks layered over faults — adversaries act on the overlay the
    /// faults left standing, matching the unsharded worker's stacking.
    Both(Box<AdversarialTopology<FaultyTopology<Arc<ShardedFrozenView>>>>),
}

impl FlightTopology {
    fn build(config: &ServiceConfig, view: &Arc<ShardedFrozenView>) -> Self {
        match (config.faults(), config.attacks()) {
            (None, None) => FlightTopology::Bare,
            (Some(plan), None) => FlightTopology::Faulty(Box::new(plan.apply(Arc::clone(view)))),
            (None, Some(attack)) => {
                FlightTopology::Adversarial(Box::new(attack.apply(Arc::clone(view))))
            }
            (Some(plan), Some(attack)) => {
                FlightTopology::Both(Box::new(attack.apply(plan.apply(Arc::clone(view)))))
            }
        }
    }

    /// Absorbs the wrapper's attack footprint into the recorder — called
    /// once per flight, at its terminal outcome, so swallowed-mid-handoff
    /// walks charge their counters exactly once.
    fn absorb<Rec: Recorder + ?Sized>(&self, recorder: &Rec) {
        match self {
            FlightTopology::Bare | FlightTopology::Faulty(_) => {}
            FlightTopology::Adversarial(t) => t.attack_snapshot().charge(recorder),
            FlightTopology::Both(t) => t.attack_snapshot().charge(recorder),
        }
    }
}

/// The resumable walk state of a `Query::Sample` flight.
struct SampleState {
    sampler: CtrwSampler,
    state: CtrwSegmentState,
    attempt: u32,
    topology: FlightTopology,
}

/// A query in execution, parked on (or travelling to) some shard.
enum Flight {
    /// Count/Aggregate: runs whole on the initiator's home shard.
    Whole(FlightHead),
    /// Sample: advances segment by segment, hopping shards at cut edges.
    Sample(FlightHead, SampleState),
}

impl Flight {
    fn head(&self) -> &FlightHead {
        match self {
            Flight::Whole(head) | Flight::Sample(head, _) => head,
        }
    }
}

/// Shared admission + handoff state for the whole worker fleet: one
/// fresh-job queue (admission order allocates ids, like the unsharded
/// `JobQueue`) plus one handoff queue per shard.
struct EngineState {
    fresh: VecDeque<Job>,
    next_id: u64,
    open: bool,
    handoffs: Vec<VecDeque<Flight>>,
    backlog: usize,
    inflight: usize,
}

struct Engine {
    state: Mutex<EngineState>,
    available: Condvar,
    capacity: usize,
    handoff_capacity: usize,
}

impl Engine {
    fn new(shards: usize, capacity: usize, handoff_capacity: usize) -> Self {
        Self {
            state: Mutex::new(EngineState {
                fresh: VecDeque::with_capacity(capacity),
                next_id: 0,
                open: true,
                handoffs: (0..shards).map(|_| VecDeque::new()).collect(),
                backlog: 0,
                inflight: 0,
            }),
            available: Condvar::new(),
            capacity,
            handoff_capacity,
        }
    }

    /// Admits `query` exactly like `JobQueue::push`: an id is allocated
    /// only to accepted queries, and a full (or closed) queue refuses
    /// without burning one.
    fn push(&self, query: Query) -> Result<(u64, usize), SubmitError> {
        let mut state = self.state.lock().expect("engine poisoned");
        if !state.open || state.fresh.len() >= self.capacity {
            return Err(SubmitError::Overloaded);
        }
        let id = state.next_id;
        state.next_id += 1;
        state.fresh.push_back(Job { id, query });
        let depth = state.fresh.len();
        drop(state);
        self.available.notify_one();
        Ok((id, depth))
    }

    /// Parks a flight on `shard`'s handoff queue. Handoffs are never
    /// refused: backpressure gates fresh admissions instead, so every
    /// walk already in flight can always land.
    fn park(&self, shard: u32, flight: Flight) {
        let mut state = self.state.lock().expect("engine poisoned");
        state.handoffs[shard as usize].push_back(flight);
        state.backlog += 1;
        drop(state);
        self.available.notify_all();
    }

    /// One flight fully completed (its outcome recorded).
    fn finish_one(&self) {
        let mut state = self.state.lock().expect("engine poisoned");
        state.inflight -= 1;
        drop(state);
        self.available.notify_all();
    }

    /// Stops admission and wakes every parked worker so the engine can
    /// drain to empty.
    fn close(&self) {
        self.state.lock().expect("engine poisoned").open = false;
        self.available.notify_all();
    }

    fn depth(&self) -> usize {
        self.state.lock().expect("engine poisoned").fresh.len()
    }
}

/// Everything a shard worker needs, bundled so flights can be handed
/// between helpers without seven-argument signatures.
struct ShardCtx<'s, Rec: ?Sized> {
    engine: &'s Engine,
    chain: &'s ShardedEpochChain,
    recorder: &'s Rec,
    outcomes: &'s Mutex<Vec<QueryOutcome>>,
    config: &'s ServiceConfig,
}

impl<Rec: ?Sized> Clone for ShardCtx<'_, Rec> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<Rec: ?Sized> Copy for ShardCtx<'_, Rec> {}

/// The per-shard worker loop. Priority order: (1) drain this shard's
/// handoff queue — in-flight walks always make progress; (2) admit a
/// fresh job, but only while the total handoff backlog is under the
/// configured bound; (3) exit once the engine is closed and idle.
fn shard_worker<Rec: Recorder + ?Sized>(shard: usize, ctx: ShardCtx<'_, Rec>) {
    let mut state = ctx.engine.state.lock().expect("engine poisoned");
    loop {
        if let Some(flight) = state.handoffs[shard].pop_front() {
            state.backlog -= 1;
            drop(state);
            ctx.engine.available.notify_all();
            advance_flight(shard, flight, ctx);
            state = ctx.engine.state.lock().expect("engine poisoned");
            continue;
        }
        if state.backlog < ctx.engine.handoff_capacity {
            if let Some(job) = state.fresh.pop_front() {
                state.inflight += 1;
                let depth = state.fresh.len();
                drop(state);
                ctx.recorder
                    .set_gauge(GaugeMetric::QueueDepth, depth as u64);
                launch_job(shard, job, ctx);
                state = ctx.engine.state.lock().expect("engine poisoned");
                continue;
            }
        }
        if !state.open && state.fresh.is_empty() && state.inflight == 0 {
            drop(state);
            ctx.engine.available.notify_all();
            return;
        }
        state = ctx.engine.available.wait(state).expect("engine poisoned");
    }
}

/// Pins a snapshot, derives the query's private RNG stream, draws the
/// initiator, and routes the resulting flight to its home shard —
/// everything up to the initiator draw mirrors the unsharded worker, so
/// the RNG position entering the walk is identical.
fn launch_job<Rec: Recorder + ?Sized>(shard: usize, job: Job, ctx: ShardCtx<'_, Rec>) {
    let started = Instant::now();
    let snapshot = ctx.chain.pin();
    ctx.recorder
        .set_gauge(GaugeMetric::EpochLag, ctx.chain.lag_of(&snapshot));
    let mut rng = SmallRng::seed_from_u64(stream_seed(
        StreamDomain::ServiceQuery,
        ctx.config.seed(),
        job.id,
    ));
    let Some(initiator) = snapshot.view.random_node(&mut rng) else {
        complete(
            QueryOutcome {
                id: job.id,
                query: job.query,
                epoch: snapshot.epoch(),
                result: Err(EstimateError::Degenerate(
                    "snapshot holds no live peers".to_owned(),
                )),
            },
            started,
            ctx,
        );
        return;
    };
    let head = FlightHead {
        id: job.id,
        query: job.query,
        initiator,
        rng,
        snapshot,
        started,
    };
    let flight = match job.query {
        Query::Sample(sampler) => {
            // The wrapper stack is created once per job (like the serial
            // worker's) and rides the flight so its counter-addressed
            // fault and attack streams span every segment and retry.
            let topology = FlightTopology::build(ctx.config, &head.snapshot.view);
            Flight::Sample(
                head,
                SampleState {
                    sampler,
                    state: CtrwSegmentState::launch(initiator, sampler.timer()),
                    attempt: 0,
                    topology,
                },
            )
        }
        _ => Flight::Whole(head),
    };
    route(shard, flight, ctx);
}

/// Routes a flight to its initiator's home shard: inline if already
/// there, otherwise a counted handoff.
fn route<Rec: Recorder + ?Sized>(shard: usize, flight: Flight, ctx: ShardCtx<'_, Rec>) {
    let head = flight.head();
    let home = head.snapshot.view.shard_of(head.initiator);
    if home as usize == shard {
        advance_flight(shard, flight, ctx);
    } else {
        ctx.recorder.incr(Metric::ShardHandoffs, 1);
        ctx.engine.park(home, flight);
    }
}

/// Executes (or resumes) a flight on this shard.
fn advance_flight<Rec: Recorder + ?Sized>(shard: usize, flight: Flight, ctx: ShardCtx<'_, Rec>) {
    match flight {
        Flight::Whole(head) => run_whole(head, ctx),
        Flight::Sample(head, sample) => advance_sample(shard, head, sample, ctx),
    }
}

/// Runs a Count/Aggregate query whole on the pinned sharded view — the
/// unsharded worker's execution arm verbatim, with the sharded view (or
/// a per-job fault wrapper over it) as the topology.
fn run_whole<Rec: Recorder + ?Sized>(mut head: FlightHead, ctx: ShardCtx<'_, Rec>) {
    let view = Arc::clone(&head.snapshot.view);
    let result = match (ctx.config.faults(), ctx.config.attacks()) {
        (None, None) => {
            let mut run = RunCtx::with_recorder(&*view, &mut head.rng, ctx.recorder);
            run_query(&head.query, &mut run, head.initiator, ctx.config)
        }
        (Some(plan), None) => {
            let faulty = plan.apply(&*view);
            let mut run = RunCtx::with_recorder(&faulty, &mut head.rng, ctx.recorder);
            run_query(&head.query, &mut run, head.initiator, ctx.config)
        }
        (None, Some(attack)) => {
            let adversarial = attack.apply(&*view);
            let mut run = RunCtx::with_recorder(&adversarial, &mut head.rng, ctx.recorder);
            let result = run_query(&head.query, &mut run, head.initiator, ctx.config);
            adversarial.attack_snapshot().charge(ctx.recorder);
            result
        }
        (Some(plan), Some(attack)) => {
            let adversarial = attack.apply(plan.apply(&*view));
            let mut run = RunCtx::with_recorder(&adversarial, &mut head.rng, ctx.recorder);
            let result = run_query(&head.query, &mut run, head.initiator, ctx.config);
            adversarial.attack_snapshot().charge(ctx.recorder);
            result
        }
    };
    complete(
        QueryOutcome {
            id: head.id,
            query: head.query,
            epoch: head.snapshot.epoch(),
            result,
        },
        head.started,
        ctx,
    );
}

/// Advances a Sample flight shard-locally until it finishes, loses its
/// walk, or crosses a cut edge into another shard's queue.
///
/// The cost accounting is the serial `sample_ctx` path's exactly —
/// `CtrwHops` + `SojournDraws` charged per attempt, `CtrwVirtualTime` /
/// `SamplesDrawn` / `SampleCost` on success, `WalkRetries` per retry —
/// plus the sharded execution-shape extras (`SegmentLength` per segment,
/// `CutCrossings` per cut-edge hop, `ShardHandoffs` per park).
fn advance_sample<Rec: Recorder + ?Sized>(
    shard: usize,
    mut head: FlightHead,
    mut sample: SampleState,
    ctx: ShardCtx<'_, Rec>,
) {
    loop {
        let before = sample.state.hops;
        let exit = match &sample.topology {
            FlightTopology::Bare => ctrw_segment(
                &head.snapshot.view,
                &mut sample.state,
                sample.sampler.sojourn(),
                &mut head.rng,
            ),
            FlightTopology::Faulty(t) => ctrw_segment_on(
                &head.snapshot.view,
                &**t,
                &mut sample.state,
                sample.sampler.sojourn(),
                &mut head.rng,
            ),
            FlightTopology::Adversarial(t) => ctrw_segment_on(
                &head.snapshot.view,
                &**t,
                &mut sample.state,
                sample.sampler.sojourn(),
                &mut head.rng,
            ),
            FlightTopology::Both(t) => ctrw_segment_on(
                &head.snapshot.view,
                &**t,
                &mut sample.state,
                sample.sampler.sojourn(),
                &mut head.rng,
            ),
        };
        ctx.recorder.observe(
            HistogramMetric::SegmentLength,
            (sample.state.hops - before) as f64,
        );
        match exit {
            CtrwSegmentExit::Handoff(connector) => {
                ctx.recorder.incr(Metric::CutCrossings, 1);
                if connector.shard as usize == shard {
                    continue;
                }
                ctx.recorder.incr(Metric::ShardHandoffs, 1);
                ctx.engine
                    .park(connector.shard, Flight::Sample(head, sample));
                return;
            }
            CtrwSegmentExit::Done(out) => {
                ctx.recorder.incr(Metric::CtrwHops, out.hops);
                ctx.recorder.incr(Metric::SojournDraws, sample.state.draws);
                ctx.recorder
                    .observe(HistogramMetric::CtrwVirtualTime, sample.sampler.timer());
                ctx.recorder.incr(Metric::SamplesDrawn, 1);
                ctx.recorder
                    .observe(HistogramMetric::SampleCost, out.hops as f64);
                sample.topology.absorb(ctx.recorder);
                complete(
                    QueryOutcome {
                        id: head.id,
                        query: head.query,
                        epoch: head.snapshot.epoch(),
                        result: Ok(QueryAnswer::Sample(Sample {
                            node: out.node,
                            hops: out.hops,
                        })),
                    },
                    head.started,
                    ctx,
                );
                return;
            }
            CtrwSegmentExit::Lost(node) => {
                ctx.recorder.incr(Metric::CtrwHops, sample.state.hops);
                ctx.recorder.incr(Metric::SojournDraws, sample.state.draws);
                if sample.attempt >= ctx.config.retries() {
                    sample.topology.absorb(ctx.recorder);
                    complete(
                        QueryOutcome {
                            id: head.id,
                            query: head.query,
                            epoch: head.snapshot.epoch(),
                            result: Err(EstimateError::Walk(WalkError::Lost(node))),
                        },
                        head.started,
                        ctx,
                    );
                    return;
                }
                ctx.recorder.incr(Metric::WalkRetries, 1);
                sample.attempt += 1;
                sample.state = CtrwSegmentState::launch(head.initiator, sample.sampler.timer());
                let home = head.snapshot.view.shard_of(head.initiator);
                if home as usize != shard {
                    ctx.recorder.incr(Metric::ShardHandoffs, 1);
                    ctx.engine.park(home, Flight::Sample(head, sample));
                    return;
                }
            }
        }
    }
}

/// Books a flight's terminal outcome: completion counters, latency
/// histogram, the outcome record, and the engine's in-flight count.
fn complete<Rec: Recorder + ?Sized>(
    outcome: QueryOutcome,
    started: Instant,
    ctx: ShardCtx<'_, Rec>,
) {
    match &outcome.result {
        Ok(_) => ctx.recorder.incr(Metric::QueriesCompleted, 1),
        Err(_) => ctx.recorder.incr(Metric::QueriesExpired, 1),
    }
    ctx.recorder.observe(
        HistogramMetric::QueryLatency,
        started.elapsed().as_secs_f64() * 1e6,
    );
    ctx.outcomes
        .lock()
        .expect("outcomes poisoned")
        .push(outcome);
    ctx.engine.finish_one();
}

/// The submission surface [`ShardedCensusService::serve_rec`] hands its
/// closure — the sharded twin of
/// [`ServiceHandle`](crate::ServiceHandle), with identical admission
/// semantics and ledger metrics.
pub struct ShardedServiceHandle<'s, Rec: ?Sized = NoopRecorder> {
    engine: &'s Engine,
    chain: &'s ShardedEpochChain,
    recorder: &'s Rec,
}

impl<Rec: Recorder + ?Sized> ShardedServiceHandle<'_, Rec> {
    /// Submits a query, returning its id. Ids are allocated in admission
    /// order and only to accepted queries; a full queue refuses with
    /// [`SubmitError::Overloaded`] without consuming an id.
    pub fn submit(&self, query: Query) -> Result<u64, SubmitError> {
        self.recorder.incr(Metric::QueriesSubmitted, 1);
        match self.engine.push(query) {
            Ok((id, depth)) => {
                self.recorder
                    .set_gauge(GaugeMetric::QueueDepth, depth as u64);
                Ok(id)
            }
            Err(e) => {
                self.recorder.incr(Metric::QueriesRejected, 1);
                Err(e)
            }
        }
    }

    /// Fresh queries currently queued (racy by nature; a scheduling
    /// hint). Parked cross-shard flights are not counted — they are
    /// in-flight work, not admissions.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.engine.depth()
    }

    /// The newest per-shard epoch vector.
    #[must_use]
    pub fn latest_epochs(&self) -> Vec<u64> {
        self.chain.latest_epochs()
    }
}

/// Closes the engine and stops the churn applier when dropped, so worker
/// threads always unblock — even if the submission closure panics.
struct EngineShutdown<'s> {
    engine: &'s Engine,
    stop: &'s AtomicBool,
}

impl Drop for EngineShutdown<'_> {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        self.engine.close();
    }
}

/// A long-running census engine whose snapshot, worker pool, and epoch
/// chain are partitioned into shards.
///
/// Construction partitions the first freeze into
/// [`ServiceConfig::shards`] vertex-range slabs; [`serve`] spawns
/// [`ServiceConfig::workers`] threads *per shard* plus the shared churn
/// applier. The determinism contract is the unsharded service's with the
/// epoch scalar widened to a vector: every outcome is a pure function of
/// `(seed, id, epoch vector)`, and for any fixed epoch it is
/// byte-identical to [`CensusService`](crate::CensusService)'s answer —
/// at `shards = 1` the two services are the same machine.
///
/// [`serve`]: ShardedCensusService::serve
///
/// # Examples
///
/// ```
/// use census_graph::generators;
/// use census_sampling::CtrwSampler;
/// use census_service::{Query, ServiceConfig, ShardedCensusService};
/// use census_sim::{DynamicNetwork, JoinRule};
/// use rand::{SeedableRng, rngs::SmallRng};
///
/// let mut rng = SmallRng::seed_from_u64(7);
/// let net = DynamicNetwork::new(
///     generators::balanced(400, 8, &mut rng),
///     JoinRule::Balanced { max_degree: 8 },
/// );
/// let config = ServiceConfig::new(42).with_shards(4);
/// let mut service = ShardedCensusService::new(net, config);
/// let (ids, outcomes) = service.serve(&[], |census| {
///     (0..4)
///         .map(|_| census.submit(Query::Sample(CtrwSampler::new(8.0))))
///         .collect::<Result<Vec<_>, _>>()
///         .expect("queue has room")
/// });
/// assert_eq!(ids, vec![0, 1, 2, 3]);
/// assert!(outcomes.iter().all(|o| o.result.is_ok()));
/// ```
#[derive(Debug)]
pub struct ShardedCensusService {
    net: DynamicNetwork,
    chain: ShardedEpochChain,
    config: ServiceConfig,
}

impl ShardedCensusService {
    /// Wraps `net`, freezing and partitioning it as every shard's epoch
    /// 0.
    ///
    /// # Panics
    ///
    /// Panics if the configured shard count is zero (which
    /// [`ServiceConfig::with_shards`] already rejects).
    #[must_use]
    pub fn new(net: DynamicNetwork, config: ServiceConfig) -> Self {
        let chain =
            ShardedEpochChain::new(ShardedFrozenView::partition(&net.freeze(), config.shards()));
        Self { net, chain, config }
    }

    /// The live overlay.
    #[must_use]
    pub fn network(&self) -> &DynamicNetwork {
        &self.net
    }

    /// The configuration this service runs under.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Pins the newest partitioned snapshot.
    #[must_use]
    pub fn pin(&self) -> ShardedSnapshot {
        self.chain.pin()
    }

    /// The newest per-shard epoch vector.
    #[must_use]
    pub fn latest_epochs(&self) -> Vec<u64> {
        self.chain.latest_epochs()
    }

    /// Recovers the live overlay, dropping the snapshot chain.
    #[must_use]
    pub fn into_network(self) -> DynamicNetwork {
        self.net
    }

    /// [`ShardedCensusService::serve_rec`] with the no-op recorder.
    pub fn serve<F, O>(&mut self, events: &[MembershipDelta], f: F) -> (O, Vec<QueryOutcome>)
    where
        F: FnOnce(&ShardedServiceHandle<'_, NoopRecorder>) -> O,
    {
        self.serve_rec(events, &NOOP, f)
    }

    /// Runs the sharded service: spawns the per-shard worker pools and
    /// the churn applier on scoped threads, hands `f` a
    /// [`ShardedServiceHandle`], and on return drains every accepted
    /// query — fresh and parked alike — before joining.
    ///
    /// Semantics match [`CensusService::serve_rec`]
    /// (admission ledger, graceful drain, outcomes sorted by id) with
    /// two sharded twists: the churn applier re-partitions each freeze
    /// and publishes it into the per-shard epoch vector, and
    /// cross-shard walks park on bounded handoff queues whose total
    /// backlog throttles *fresh* admissions only, so in-flight walks
    /// always drain and shutdown cannot deadlock.
    ///
    /// [`CensusService::serve_rec`]: crate::CensusService::serve_rec
    ///
    /// # Panics
    ///
    /// Panics if the event stream empties the overlay.
    pub fn serve_rec<Rec, F, O>(
        &mut self,
        events: &[MembershipDelta],
        recorder: &Rec,
        f: F,
    ) -> (O, Vec<QueryOutcome>)
    where
        Rec: Recorder + Sync + ?Sized,
        F: FnOnce(&ShardedServiceHandle<'_, Rec>) -> O,
    {
        let config = self.config;
        let shards = config.shards();
        let net = &mut self.net;
        let chain = &self.chain;
        let engine = Engine::new(shards, config.queue_capacity(), config.handoff_capacity());
        let outcomes: Mutex<Vec<QueryOutcome>> = Mutex::new(Vec::new());
        let stop = AtomicBool::new(false);

        let output = thread::scope(|scope| {
            for shard in 0..shards {
                for _ in 0..config.workers() {
                    let ctx = ShardCtx {
                        engine: &engine,
                        chain,
                        recorder,
                        outcomes: &outcomes,
                        config: &config,
                    };
                    scope.spawn(move || shard_worker(shard, ctx));
                }
            }
            if !events.is_empty() {
                let stop = &stop;
                let config = &config;
                scope.spawn(move || {
                    churn_loop(net, events, config, stop, |net| {
                        let view = net.freeze();
                        recorder.incr(Metric::Refreezes, 1);
                        recorder.set_gauge(GaugeMetric::SnapshotEpoch, view.epoch());
                        chain.publish(ShardedFrozenView::partition(&view, shards));
                    });
                });
            }
            let guard = EngineShutdown {
                engine: &engine,
                stop: &stop,
            };
            let handle = ShardedServiceHandle {
                engine: &engine,
                chain,
                recorder,
            };
            // QueueFlood: adversarial junk submissions through the same
            // admission path as honest queries, before the caller runs —
            // the sharded twin of the unsharded flood, hitting the
            // fresh-admission queue the handoff backpressure also gates.
            if let Some(attack) = config.attacks() {
                for _ in 0..attack.queue_flood() {
                    let _ = handle.submit(Query::Sample(CtrwSampler::new(1.0)));
                }
            }
            let output = f(&handle);
            drop(guard);
            output
        });

        let mut results = outcomes.into_inner().expect("outcomes poisoned");
        results.sort_unstable_by_key(|o| o.id);
        (output, results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Counter;
    use crate::CensusService;
    use census_core::RandomTour;
    use census_graph::{generators, Graph};
    use census_metrics::Registry;
    use census_sim::faults::FaultPlan;
    use census_sim::{JoinRule, Scenario};

    fn network(n: usize, seed: u64) -> DynamicNetwork {
        let mut rng = SmallRng::seed_from_u64(seed);
        DynamicNetwork::new(
            generators::balanced(n, 8, &mut rng),
            JoinRule::Balanced { max_degree: 8 },
        )
    }

    fn mixed_queries() -> Vec<Query> {
        vec![
            Query::Count(Counter::RandomTour(RandomTour::new())),
            Query::Sample(CtrwSampler::new(6.0)),
            Query::Aggregate(|_| 1.0),
            Query::Sample(CtrwSampler::new(9.0)),
        ]
    }

    #[test]
    fn outcomes_match_the_unsharded_service_for_every_shard_count() {
        let config = ServiceConfig::new(11).with_workers(2);
        let mut baseline = CensusService::new(network(300, 5), config);
        let ((), expected) = baseline.serve(&[], |census| {
            for q in mixed_queries().into_iter().cycle().take(12) {
                census.submit(q).expect("queue has room");
            }
        });
        for shards in [1usize, 2, 8] {
            let mut svc = ShardedCensusService::new(network(300, 5), config.with_shards(shards));
            let ((), outcomes) = svc.serve(&[], |census| {
                for q in mixed_queries().into_iter().cycle().take(12) {
                    census.submit(q).expect("queue has room");
                }
            });
            assert_eq!(outcomes, expected, "diverged at {shards} shards");
        }
    }

    #[test]
    fn cross_shard_walks_park_and_resume() {
        let config = ServiceConfig::new(3).with_workers(1).with_shards(8);
        let mut svc = ShardedCensusService::new(network(400, 9), config);
        let reg = Registry::new();
        let (ids, outcomes) = svc.serve_rec(&[], &reg, |census| {
            (0..16)
                .map(|_| census.submit(Query::Sample(CtrwSampler::new(10.0))))
                .collect::<Result<Vec<_>, _>>()
                .expect("queue has room")
        });
        assert_eq!(ids.len(), 16);
        assert!(outcomes.iter().all(|o| o.result.is_ok()));
        // A balanced graph partitioned eight ways is almost all cut
        // edges, so walks of virtual time 10 must cross shards.
        assert!(reg.counter(Metric::CutCrossings) > 0);
        assert!(reg.counter(Metric::ShardHandoffs) > 0);
        // Each crossing parked a flight or continued a segment: the
        // segment count reconciles with the crossing count.
        assert_eq!(
            reg.histogram_count(HistogramMetric::SegmentLength),
            reg.counter(Metric::CutCrossings) + reg.counter(Metric::SamplesDrawn)
        );
    }

    #[test]
    fn ledger_reconciles_under_faults_and_churn() {
        let events = Scenario::new().remove_gradually(0, 4, 60).events(4);
        let config = ServiceConfig::new(23)
            .with_workers(2)
            .with_shards(4)
            .with_retries(1)
            .with_faults(
                FaultPlan::new()
                    .with_message_loss(0.2, 77)
                    .with_retransmits(1),
            );
        let mut svc = ShardedCensusService::new(network(300, 8), config);
        let reg = Registry::new();
        let (submitted, outcomes) = svc.serve_rec(&events, &reg, |census| {
            let mut submitted = 0u64;
            for q in mixed_queries().into_iter().cycle().take(20) {
                if census.submit(q).is_ok() {
                    submitted += 1;
                }
            }
            submitted
        });
        assert_eq!(outcomes.len() as u64, submitted);
        assert_eq!(reg.counter(Metric::QueriesSubmitted), 20);
        assert_eq!(
            reg.counter(Metric::QueriesCompleted) + reg.counter(Metric::QueriesExpired),
            submitted
        );
        // Outcomes are keyed by contiguous admission-ordered ids.
        for (i, outcome) in outcomes.iter().enumerate() {
            assert_eq!(outcome.id, i as u64);
        }
    }

    #[test]
    fn default_attack_plan_is_inert_for_the_sharded_service() {
        use census_sim::attacks::AttackPlan;
        let config = ServiceConfig::new(11).with_workers(2).with_shards(4);
        let mut plain = ShardedCensusService::new(network(300, 5), config);
        let ((), expected) = plain.serve(&[], |census| {
            for q in mixed_queries().into_iter().cycle().take(12) {
                census.submit(q).expect("queue has room");
            }
        });
        let mut attacked =
            ShardedCensusService::new(network(300, 5), config.with_attacks(AttackPlan::default()));
        let reg = Registry::new();
        let ((), outcomes) = attacked.serve_rec(&[], &reg, |census| {
            for q in mixed_queries().into_iter().cycle().take(12) {
                census.submit(q).expect("queue has room");
            }
        });
        assert_eq!(outcomes, expected, "an empty plan must be bit-inert");
        assert_eq!(reg.counter(Metric::ByzantineEncounters), 0);
        assert_eq!(reg.counter(Metric::SwallowedWalks), 0);
    }

    #[test]
    fn swallowed_walks_mid_handoff_reconcile_the_ledger() {
        use census_sim::attacks::AttackPlan;
        // Regression (PR 8): a swallowed walk often dies parked on a
        // *remote* shard's handoff queue, after the handoff bookkeeping
        // already counted it. Every such flight must still reach exactly
        // one terminal outcome — submitted = completed + expired, with
        // contiguous ids — and charge its attack counters exactly once.
        let plan = AttackPlan::default()
            .with_byzantine(0.25, 41)
            .with_walk_swallow(1.0);
        let config = ServiceConfig::new(7)
            .with_workers(2)
            .with_shards(8)
            .with_retries(1)
            .with_attacks(plan);
        let mut svc = ShardedCensusService::new(network(400, 9), config);
        let reg = Registry::new();
        let (submitted, outcomes) = svc.serve_rec(&[], &reg, |census| {
            let mut submitted = 0u64;
            for _ in 0..16 {
                if census.submit(Query::Sample(CtrwSampler::new(10.0))).is_ok() {
                    submitted += 1;
                }
            }
            submitted
        });
        assert_eq!(outcomes.len() as u64, submitted);
        assert_eq!(reg.counter(Metric::QueriesSubmitted), 16);
        assert_eq!(
            reg.counter(Metric::QueriesCompleted) + reg.counter(Metric::QueriesExpired),
            submitted
        );
        assert!(
            reg.counter(Metric::SwallowedWalks) > 0,
            "a quarter of 400 peers swallowing everything must bite"
        );
        assert!(reg.counter(Metric::QueriesExpired) > 0);
        assert!(
            reg.counter(Metric::ShardHandoffs) > 0,
            "an 8-way partition must hand walks off before they die"
        );
        for (i, outcome) in outcomes.iter().enumerate() {
            assert_eq!(outcome.id, i as u64, "ledger must stay contiguous");
        }
    }

    #[test]
    fn overload_refuses_without_burning_ids() {
        let config = ServiceConfig::new(1).with_workers(1).with_queue_capacity(1);
        let mut svc = ShardedCensusService::new(network(60, 2), config);
        let reg = Registry::new();
        let (rejected, outcomes) = svc.serve_rec(&[], &reg, |census| {
            // Saturate the queue faster than one worker drains it; at
            // least one of a tight burst must bounce.
            let mut rejected = 0u32;
            while rejected == 0 {
                if census
                    .submit(Query::Count(Counter::RandomTour(RandomTour::new())))
                    .is_err()
                {
                    rejected += 1;
                }
            }
            rejected
        });
        assert!(rejected > 0);
        assert_eq!(
            reg.counter(Metric::QueriesSubmitted),
            outcomes.len() as u64 + u64::from(rejected)
        );
        for (i, outcome) in outcomes.iter().enumerate() {
            assert_eq!(outcome.id, i as u64, "rejections must not burn ids");
        }
    }

    #[test]
    fn epoch_vector_advances_only_for_changed_slabs() {
        // Two 4-cliques on slots 0..4 and 4..8: with stride 4 every edge
        // is shard-local, so churning one clique leaves the other slab
        // (and its epoch stamp) untouched.
        let mut g = Graph::new();
        let nodes = g.add_nodes(8);
        for clique in [&nodes[..4], &nodes[4..]] {
            for (i, &a) in clique.iter().enumerate() {
                for &b in &clique[i + 1..] {
                    g.add_edge(a, b).expect("fresh edge");
                }
            }
        }
        let chain = ShardedEpochChain::new(ShardedFrozenView::partition(&g.freeze(), 2));
        assert_eq!(chain.latest_epochs(), vec![0, 0]);

        g.remove_node(nodes[6]).expect("live node");
        let second = g.freeze();
        let epoch = second.epoch();
        chain.publish(ShardedFrozenView::partition(&second, 2));
        assert_eq!(chain.latest_epochs(), vec![0, epoch]);

        // A pin taken now lags a later publish only by its changed shards.
        let pinned = chain.pin();
        assert_eq!(chain.lag_of(&pinned), 0);
        g.remove_node(nodes[1]).expect("live node");
        let third = g.freeze();
        chain.publish(ShardedFrozenView::partition(&third, 2));
        assert_eq!(chain.latest_epochs(), vec![third.epoch(), epoch]);
        assert_eq!(chain.lag_of(&pinned), third.epoch());
    }

    #[test]
    fn churn_publishes_into_the_epoch_vector() {
        let events = Scenario::new().remove_gradually(0, 5, 80).events(5);
        let config = ServiceConfig::new(31).with_workers(1).with_shards(4);
        let mut svc = ShardedCensusService::new(network(400, 3), config);
        let ((), outcomes) = svc.serve(&events, |census| {
            census
                .submit(Query::Count(Counter::RandomTour(RandomTour::new())))
                .expect("queue has room");
        });
        assert_eq!(outcomes.len(), 1);
        // The unpaced stream is fully applied: some shard republished.
        assert!(svc.latest_epochs().iter().any(|&e| e > 0));
        assert_eq!(svc.network().size(), 400 - 80);
    }
}
